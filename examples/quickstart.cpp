// Quickstart: the whole pipeline in one page.
//
// 1. Describe spatiotemporal objects as piecewise-polynomial trajectories.
// 2. Split them into tight boxes (MergeSplit + LAGreedy distribution).
// 3. Index the segments with a partially persistent R-tree.
// 4. Ask historical snapshot and interval queries, and see the disk
//    accesses the paper's experiments count.
#include <cstdio>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "pprtree/ppr_tree.h"
#include "trajectory/trajectory.h"

using namespace stindex;

int main() {
  // --- 1. Two hand-made objects -------------------------------------
  // A delivery drone: flies east for 20 instants, then loops back.
  std::vector<MovementTuple> drone_tuples(2);
  drone_tuples[0].interval = TimeInterval(0, 20);
  drone_tuples[0].center_x = Polynomial::Linear(0.10, 0.02);  // x: 0.1 -> 0.5
  drone_tuples[0].center_y = Polynomial::Constant(0.30);
  drone_tuples[0].extent_x = Polynomial::Constant(0.01);
  drone_tuples[0].extent_y = Polynomial::Constant(0.01);
  drone_tuples[1].interval = TimeInterval(20, 40);
  drone_tuples[1].center_x = Polynomial::Linear(0.50, -0.02);  // and back
  drone_tuples[1].center_y = Polynomial::Constant(0.30);
  drone_tuples[1].extent_x = Polynomial::Constant(0.01);
  drone_tuples[1].extent_y = Polynomial::Constant(0.01);
  Trajectory drone(/*id=*/0, drone_tuples);

  // A growing wildfire: stays put, extent grows quadratically.
  std::vector<MovementTuple> fire_tuples(1);
  fire_tuples[0].interval = TimeInterval(10, 60);
  fire_tuples[0].center_x = Polynomial::Constant(0.70);
  fire_tuples[0].center_y = Polynomial::Constant(0.65);
  fire_tuples[0].extent_x = Polynomial({0.02, 0.0, 0.0001});
  fire_tuples[0].extent_y = Polynomial({0.02, 0.0, 0.0001});
  Trajectory fire(/*id=*/1, fire_tuples);

  const std::vector<Trajectory> objects = {drone, fire};

  // --- 2. Split: 2 artificial splits per object on average ----------
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, /*k_max=*/16, SplitMethod::kMerge);
  std::printf("volume with 0 splits: %.6f\n", UnsplitVolume(curves));
  const Distribution dist = DistributeLAGreedy(curves, /*k_total=*/4);
  std::printf("volume with 4 splits: %.6f (drone got %d, fire got %d)\n",
              dist.total_volume, dist.splits[0], dist.splits[1]);

  const std::vector<SegmentRecord> records =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  std::printf("%zu objects became %zu segment records\n", objects.size(),
              records.size());

  // --- 3. Index with the PPR-tree -----------------------------------
  std::unique_ptr<PprTree> index = BuildPprTree(records);
  std::printf("PPR-tree: %zu pages, %zu root eras\n", index->PageCount(),
              index->NumRoots());

  // --- 4. Historical queries ----------------------------------------
  auto report = [&](const char* what, const std::vector<PprDataId>& hits) {
    std::printf("%s ->", what);
    for (PprDataId id : hits) {
      std::printf(" object %u (segment %llu)", records[id].object,
                  static_cast<unsigned long long>(id));
    }
    std::printf("%s\n", hits.empty() ? " nothing" : "");
  };

  std::vector<PprDataId> hits;
  // Who was near (0.45..0.55, 0.25..0.35) at instant 18? The drone,
  // right before turning around.
  index->ResetQueryState();
  index->SnapshotQuery(Rect2D(0.45, 0.25, 0.55, 0.35), 18, &hits);
  report("snapshot t=18 around (0.5, 0.3)", hits);
  std::printf("  ... answered with %llu disk accesses\n",
              static_cast<unsigned long long>(index->stats().misses));

  // Did anything cross the fire lookout area during instants [30, 50)?
  index->SnapshotQuery(Rect2D(0.6, 0.55, 0.8, 0.75), 5, &hits);
  report("snapshot t=5 around the fire (before ignition)", hits);
  index->IntervalQuery(Rect2D(0.6, 0.55, 0.8, 0.75), TimeInterval(30, 50),
                       &hits);
  report("interval [30,50) around the fire", hits);
  return 0;
}
