// Railway tracker: the paper's motivating skewed workload as an
// application. Generates a day of train traffic on the synthetic CA/NY
// railway map, builds a split PPR-tree over it, and answers the kinds of
// questions a dispatcher's dashboard would ask about the past: which
// trains were near a city at a given time, and which passed through a
// corridor during a time window.
#include <cstdio>
#include <set>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "datagen/railway.h"
#include "pprtree/ppr_tree.h"

using namespace stindex;

int main() {
  // A day of traffic: 2000 trains on the 22-city / 51-track map.
  RailwayDatasetConfig config;
  config.num_trains = 2000;
  config.seed = 2026;
  const std::vector<Trajectory> trains = GenerateRailwayDataset(config);
  const RailwayMap map = BuildRailwayMap();
  std::printf("generated %zu trains over %lld instants (%.1f h each)\n",
              trains.size(), static_cast<long long>(config.time_domain),
              config.hours_per_instant);

  // Split with a 100% budget and index.
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(trains, 64, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(trains.size()));
  const std::vector<SegmentRecord> records =
      BuildSegments(trains, dist.splits, SplitMethod::kMerge);
  std::unique_ptr<PprTree> index = BuildPprTree(records);
  std::printf("indexed %zu segments in %zu pages across %zu eras\n\n",
              records.size(), index->PageCount(), index->NumRoots());

  // Dashboard question 1: which trains were within ~60 miles of
  // Sacramento at instant 500?
  const Point2D sacramento = map.cities[0].position;
  const double radius = 60.0 / map.map_width_miles;
  const Rect2D near_sac(sacramento.x - radius, sacramento.y - radius,
                        sacramento.x + radius, sacramento.y + radius);
  std::vector<PprDataId> hits;
  index->ResetQueryState();
  index->SnapshotQuery(near_sac, 500, &hits);
  std::set<ObjectId> train_ids;
  for (PprDataId id : hits) train_ids.insert(records[id].object);
  std::printf("trains near Sacramento at t=500: %zu (%llu disk accesses)\n",
              train_ids.size(),
              static_cast<unsigned long long>(index->stats().misses));

  // Dashboard question 2: traffic through the Denver corridor during
  // instants [400, 440) — an interval (small range) query.
  const Point2D denver = map.cities[19].position;
  const Rect2D corridor(denver.x - radius, denver.y - radius,
                        denver.x + radius, denver.y + radius);
  index->ResetQueryState();
  index->IntervalQuery(corridor, TimeInterval(400, 440), &hits);
  train_ids.clear();
  for (PprDataId id : hits) train_ids.insert(records[id].object);
  std::printf(
      "trains through the Denver corridor in [400,440): %zu (%llu disk "
      "accesses)\n",
      train_ids.size(),
      static_cast<unsigned long long>(index->stats().misses));

  // Dashboard question 3: hourly occupancy of downtown NYC over a day
  // slice — 12 snapshot queries.
  const Point2D nyc = map.cities[16].position;
  const Rect2D downtown(nyc.x - radius, nyc.y - radius, nyc.x + radius,
                        nyc.y + radius);
  std::printf("\nNYC area occupancy, instants 480..590 (segment counts "
              "via the aggregation API):\n");
  const std::vector<size_t> occupancy =
      index->OccupancyHistogram(downtown, TimeInterval(480, 590));
  for (size_t i = 0; i < occupancy.size(); i += 10) {
    std::printf("  t=%3zu: %zu trains\n", 480 + i, occupancy[i]);
  }
  return 0;
}
