// Encounter detection: which pairs of objects came close together, and
// when? A classic spatiotemporal-analytics workload (contact tracing,
// near-miss detection, convoy mining) built entirely on the historical
// index: for every segment of every probe object, run one interval query
// around its box and intersect lifetimes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "datagen/random_dataset.h"
#include "pprtree/ppr_tree.h"

using namespace stindex;

namespace {

Rect2D Inflate(const Rect2D& rect, double margin) {
  return Rect2D(rect.xlo - margin, rect.ylo - margin, rect.xhi + margin,
                rect.yhi + margin);
}

}  // namespace

int main() {
  // A fleet of 1500 objects over 1000 instants.
  RandomDatasetConfig config;
  config.num_objects = 1500;
  config.seed = 77;
  const std::vector<Trajectory> objects = GenerateRandomDataset(config);

  // Split fairly aggressively: tight segment boxes make the proximity
  // queries selective, which is exactly the paper's point.
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 64, SplitMethod::kMerge);
  const Distribution dist = DistributeLAGreedy(
      curves, static_cast<int64_t>(objects.size()) * 3 / 2);
  const std::vector<SegmentRecord> segments =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  std::unique_ptr<PprTree> index = BuildPprTree(segments);
  std::printf("indexed %zu segments of %zu objects (%zu pages)\n",
              segments.size(), objects.size(), index->PageCount());

  // Find all encounters of 25 probe objects within `radius` of another
  // object at some shared instant.
  const double radius = 0.01;
  std::set<std::pair<ObjectId, ObjectId>> encounters;
  uint64_t queries_run = 0;
  uint64_t total_io = 0;
  std::vector<PprDataId> hits;
  for (ObjectId probe = 0; probe < 25; ++probe) {
    for (const SegmentRecord& segment : segments) {
      if (segment.object != probe) continue;
      index->ResetQueryState();
      index->IntervalQuery(Inflate(segment.box.rect, radius),
                           segment.box.interval, &hits);
      ++queries_run;
      total_io += index->stats().misses;
      for (PprDataId id : hits) {
        const SegmentRecord& other = segments[id];
        if (other.object == probe) continue;
        // The boxes overlap in space-time; order the pair canonically.
        encounters.insert({std::min(probe, other.object),
                           std::max(probe, other.object)});
      }
    }
  }
  std::printf(
      "%zu candidate encounter pairs for 25 probes (%llu interval queries, "
      "avg %.2f disk accesses each)\n",
      encounters.size(), static_cast<unsigned long long>(queries_run),
      static_cast<double>(total_io) / static_cast<double>(queries_run));

  // Refinement: the index produced *candidates* (overlapping space-time
  // boxes). Verify each against the exact trajectories.
  size_t confirmed = 0;
  std::pair<ObjectId, ObjectId> best_pair{0, 0};
  Time best_t = 0;
  double best_distance = 1e300;
  for (const auto& [a, b] : encounters) {
    const Trajectory& ta = objects[a];
    const Trajectory& tb = objects[b];
    if (!ta.Lifetime().Intersects(tb.Lifetime())) continue;
    const TimeInterval common = ta.Lifetime().Intersection(tb.Lifetime());
    double pair_closest = 1e300;
    Time pair_t = common.start;
    for (Time t = common.start; t < common.end; ++t) {
      const Point2D pa = ta.RectAt(t).Center();
      const Point2D pb = tb.RectAt(t).Center();
      const double dx = pa.x - pb.x;
      const double dy = pa.y - pb.y;
      const double d2 = dx * dx + dy * dy;
      if (d2 < pair_closest) {
        pair_closest = d2;
        pair_t = t;
      }
    }
    if (pair_closest <= radius * radius) ++confirmed;
    if (pair_closest < best_distance) {
      best_distance = pair_closest;
      best_pair = {a, b};
      best_t = pair_t;
    }
  }
  std::printf("confirmed %zu true encounters (within %.3f) after exact "
              "refinement\n",
              confirmed, radius);
  std::printf("closest approach overall: pair (%u, %u), distance %.4f at "
              "instant %lld\n",
              best_pair.first, best_pair.second, std::sqrt(best_distance),
              static_cast<long long>(best_t));
  return 0;
}
