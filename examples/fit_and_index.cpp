// From raw tracks to historical queries: the full ingest pipeline.
//
// Real deployments do not receive polynomial movement tuples — they
// receive per-instant fixes (GPS points, detected bounding boxes). This
// example (1) synthesizes noisy raw tracks, (2) compresses them into the
// paper's piecewise-polynomial representation with the least-squares
// fitter, (3) splits and indexes them, and (4) answers historical
// queries, reporting how much the fitted representation saved.
#include <cstdio>

#include "core/distribute.h"
#include "core/split_pipeline.h"
#include "pprtree/ppr_tree.h"
#include "trajectory/fit.h"
#include "util/random.h"

using namespace stindex;

int main() {
  Rng rng(2026);
  const size_t kVehicles = 400;
  const Time kDomain = 500;

  // --- 1. Raw tracks: waypoint-to-waypoint motion with GPS-like noise.
  std::vector<std::vector<RawObservation>> raw_tracks;
  size_t total_fixes = 0;
  for (size_t v = 0; v < kVehicles; ++v) {
    const Time life = rng.UniformInt(30, 120);
    const Time start = rng.UniformInt(0, kDomain - life);
    double x = rng.UniformDouble(0.1, 0.9);
    double y = rng.UniformDouble(0.1, 0.9);
    double vx = rng.UniformDouble(-0.004, 0.004);
    double vy = rng.UniformDouble(-0.004, 0.004);
    std::vector<RawObservation> track;
    for (Time t = start; t < start + life; ++t) {
      if (rng.Bernoulli(0.05)) {  // occasional turn
        vx = rng.UniformDouble(-0.004, 0.004);
        vy = rng.UniformDouble(-0.004, 0.004);
      }
      x += vx;
      y += vy;
      RawObservation fix;
      fix.t = t;
      fix.center = Point2D(x + rng.UniformDouble(-0.0005, 0.0005),
                           y + rng.UniformDouble(-0.0005, 0.0005));
      fix.extent_x = fix.extent_y = 0.004;
      track.push_back(fix);
    }
    total_fixes += track.size();
    raw_tracks.push_back(std::move(track));
  }
  std::printf("raw input: %zu vehicles, %zu fixes\n", kVehicles,
              total_fixes);

  // --- 2. Fit piecewise polynomials (error bound = noise scale).
  FitOptions options;
  options.max_error = 0.002;
  std::vector<Trajectory> fitted;
  size_t total_tuples = 0;
  for (size_t v = 0; v < raw_tracks.size(); ++v) {
    Result<Trajectory> result =
        FitTrajectory(static_cast<ObjectId>(v), raw_tracks[v], options);
    if (!result.ok()) {
      std::fprintf(stderr, "fit failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    total_tuples += result.value().tuples().size();
    fitted.push_back(std::move(result).value());
  }
  std::printf("fitted: %zu movement tuples (%.1fx compression, max error "
              "%.4f)\n",
              total_tuples,
              static_cast<double>(total_fixes) /
                  static_cast<double>(total_tuples),
              options.max_error);

  // --- 3. Split and index.
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(fitted, 64, SplitMethod::kMerge);
  const Distribution dist =
      DistributeLAGreedy(curves, static_cast<int64_t>(fitted.size()));
  const std::vector<SegmentRecord> segments =
      BuildSegments(fitted, dist.splits, SplitMethod::kMerge);
  std::unique_ptr<PprTree> index = BuildPprTree(segments);
  std::printf("indexed: %zu segments in %zu pages\n", segments.size(),
              index->PageCount());

  // --- 4. Historical queries against the fitted history.
  std::vector<PprDataId> hits;
  index->ResetQueryState();
  index->SnapshotQuery(Rect2D(0.45, 0.45, 0.55, 0.55), 250, &hits);
  std::printf("vehicles in the centre block at t=250: %zu (%llu disk "
              "accesses)\n",
              hits.size(),
              static_cast<unsigned long long>(index->stats().misses));
  index->ResetQueryState();
  index->IntervalQuery(Rect2D(0.0, 0.0, 0.2, 0.2), TimeInterval(100, 160),
                       &hits);
  std::printf("vehicles through the south-west corner in [100,160): %zu "
              "(%llu disk accesses)\n",
              hits.size(),
              static_cast<unsigned long long>(index->stats().misses));
  return 0;
}
