// Split tuning: Section IV of the paper as an application. Given a
// dataset and an expected query workload, pick the number of artificial
// splits with (a) the analytical cost models and (b) the sampling
// advisor, then verify the choice by measuring the real index.
#include <cstdio>

#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/random_dataset.h"
#include "model/split_advisor.h"
#include "pprtree/ppr_tree.h"

using namespace stindex;

namespace {

double MeasureRealIo(const std::vector<Trajectory>& objects, int64_t budget,
                     const std::vector<STQuery>& queries) {
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);
  const Distribution dist = DistributeLAGreedy(curves, budget);
  const std::vector<SegmentRecord> records =
      BuildSegments(objects, dist.splits, SplitMethod::kMerge);
  const std::unique_ptr<PprTree> tree = BuildPprTree(records);
  uint64_t misses = 0;
  std::vector<PprDataId> results;
  for (const STQuery& query : queries) {
    tree->ResetQueryState();
    if (query.IsSnapshot()) {
      tree->SnapshotQuery(query.area, query.range.start, &results);
    } else {
      tree->IntervalQuery(query.area, query.range, &results);
    }
    misses += tree->stats().misses;
  }
  return static_cast<double>(misses) / static_cast<double>(queries.size());
}

}  // namespace

int main() {
  // A dense dataset (~300 alive objects per instant) and the workload we
  // expect in production: small range queries.
  RandomDatasetConfig data_config;
  data_config.num_objects = 3000;
  data_config.time_domain = 250;
  data_config.max_lifetime = 60;
  const std::vector<Trajectory> objects = GenerateRandomDataset(data_config);

  QuerySetConfig query_config = SmallRangeSet();
  query_config.count = 150;
  query_config.time_domain = data_config.time_domain;
  const std::vector<STQuery> workload = GenerateQuerySet(query_config);

  const int64_t n = static_cast<int64_t>(objects.size());
  const std::vector<int64_t> candidates = {0,     n / 10, n / 4, n / 2,
                                           n,     n * 3 / 2};

  SplitAdvisorOptions options;
  options.time_domain = data_config.time_domain;

  // (a) Analytical: Tao-Papadias-style PPR model over recomputed dataset
  // statistics for each candidate budget.
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);
  const SplitAdvice analytical = SplitAdvisor::ChooseAnalytical(
      objects, curves, candidates, workload, IndexKind::kPprTree, options);
  std::printf("analytical advisor cost curve:\n");
  for (const auto& [budget, cost] : analytical.evaluated) {
    std::printf("  %5lld splits -> predicted %6.2f node accesses%s\n",
                static_cast<long long>(budget), cost,
                budget == analytical.num_splits ? "   <= chosen" : "");
  }

  // (b) Sampling: build real indexes over a 25% object sample.
  const SplitAdvice sampled = SplitAdvisor::ChooseBySampling(
      objects, candidates, /*sample_fraction=*/0.25, workload,
      /*max_queries=*/60, IndexKind::kPprTree, options, /*seed=*/17);
  std::printf("\nsampling advisor cost curve (25%% sample):\n");
  for (const auto& [budget, cost] : sampled.evaluated) {
    std::printf("  %5lld splits -> measured %6.2f disk accesses%s\n",
                static_cast<long long>(budget), cost,
                budget == sampled.num_splits ? "   <= chosen" : "");
  }

  // Ground truth: measure the full index at each candidate.
  std::printf("\nfull-index ground truth:\n");
  double best_cost = 1e300;
  int64_t best_budget = 0;
  for (int64_t budget : candidates) {
    const double io = MeasureRealIo(objects, budget, workload);
    std::printf("  %5lld splits -> actual   %6.2f disk accesses\n",
                static_cast<long long>(budget), io);
    if (io < best_cost) {
      best_cost = io;
      best_budget = budget;
    }
  }
  std::printf(
      "\nchosen budgets: analytical=%lld, sampling=%lld, ground "
      "truth=%lld\n",
      static_cast<long long>(analytical.num_splits),
      static_cast<long long>(sampled.num_splits),
      static_cast<long long>(best_budget));
  return 0;
}
