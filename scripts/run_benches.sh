#!/usr/bin/env bash
# Runs every structured-report bench harness with --json and aggregates
# the per-bench reports into one BENCH_results.json:
#
#   { "schema_version": 2, "results": [ <per-bench report>, ... ] }
#
# The per-bench report schema is documented in bench/bench_report.h.
# bench_micro_ops is skipped — it is a google-benchmark binary with its
# own reporting and no --json flag.
#
# Usage: scripts/run_benches.sh [build-dir] [output-dir]
#
# Environment:
#   STINDEX_SCALE    bench scale (small|paper), forwarded to the benches.
#   STINDEX_THREADS  default thread count for the parallel harnesses.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_reports}"
mkdir -p "$OUT_DIR"

reports=()
for bench in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    *.cmake | *Makefile | CMakeFiles) continue ;;
    bench_micro_ops) echo "== $name (skipped: google-benchmark harness) =="
                     continue ;;
  esac
  echo "== $name =="
  # fig17 doubles as the tracing smoke: capture a Chrome trace of the
  # whole run and validate it below.
  extra=()
  if [ "$name" = "bench_fig17_range_io" ]; then
    extra=(--trace="$OUT_DIR/$name.trace.json")
  fi
  "$bench" --json="$OUT_DIR/$name.json" "${extra[@]}" \
    | tee "$OUT_DIR/$name.txt"
  reports+=("$OUT_DIR/$name.json")
done

if [ "${#reports[@]}" -eq 0 ]; then
  echo "error: no bench binaries found under $BUILD_DIR/bench" >&2
  exit 1
fi

# Aggregate the per-bench reports into one document.
AGGREGATE="$OUT_DIR/BENCH_results.json"
python3 - "$AGGREGATE" "${reports[@]}" <<'EOF'
import json, sys
out, paths = sys.argv[1], sys.argv[2:]
results = []
for path in paths:
    with open(path, "r", encoding="utf-8") as f:
        results.append(json.load(f))
with open(out, "w", encoding="utf-8") as f:
    json.dump({"schema_version": 2, "results": results}, f, indent=2)
    f.write("\n")
EOF

python3 "$(dirname "$0")/validate_report.py" "$AGGREGATE"
echo "Aggregated ${#reports[@]} reports into $AGGREGATE"

# Validate the fig17 trace capture (ph/ts/tid fields, balanced B/E).
FIG17_TRACE="$OUT_DIR/bench_fig17_range_io.trace.json"
if [ -f "$FIG17_TRACE" ]; then
  python3 "$(dirname "$0")/validate_trace.py" "$FIG17_TRACE"
fi

SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT

# Server-driver smoke: replay a short mixed stream from 4 client threads
# against one shared sharded pool over a real page file; the report must
# validate and prove actual disk reads (backend.file.reads > 0).
SERVER="$BUILD_DIR/bench/stindex_server"
if [ -x "$SERVER" ]; then
  echo "== stindex_server shared-pool smoke =="
  "$SERVER" --threads=4 --stream=400 --buffer-pages=32 \
    --backend=file --db="$SMOKE_DIR" \
    --json="$OUT_DIR/stindex_server.json" \
    --prom="$OUT_DIR/stindex_server.prom" \
    | tee "$OUT_DIR/stindex_server.txt"
  python3 "$(dirname "$0")/validate_report.py" "$OUT_DIR/stindex_server.json"
  python3 - "$OUT_DIR/stindex_server.json" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    report = json.load(f)
counters = report["metrics"]["counters"]
reads = counters.get("backend.file.reads", 0)
assert reads > 0, f"expected file-backend reads, got {counters}"
series = {s["name"] for s in report["series"]}
for required in ("qps", "latency_p50_ms", "latency_p95_ms",
                 "latency_p99_ms"):
    assert required in series, f"report missing series '{required}'"
assert report["params"]["effective_buffer_pages"] == 32, report["params"]
print(f"stindex_server smoke OK: {reads} file reads, "
      f"{report['latency_ms']['count']} latencies")
EOF
else
  echo "warning: $SERVER not built, skipping server smoke" >&2
fi

# Mixed update/query smoke: one fifth of the request stream are live
# movement updates journaled through the WAL onto a real page file while
# the rest run freshness-bound tiered queries from 4 client threads.
# Group commit coalesces the per-client commits and --checkpoint-every=1
# forces at least one full checkpoint + truncation cycle mid-run. The
# report must validate against schema v2, prove actual journal writes
# (backend.file.writes > 0), prove the journal was truncated
# (live.wal.truncated_pages > 0) and carry a sane updates_per_s sample.
if [ -x "$SERVER" ]; then
  echo "== stindex_server mixed update/query smoke =="
  "$SERVER" --threads=4 --stream=400 --update-frac=0.2 \
    --group-commit --commit-interval=200 --checkpoint-every=1 \
    --backend=file --db="$SMOKE_DIR" \
    --json="$OUT_DIR/stindex_server_mixed.json" \
    | tee "$OUT_DIR/stindex_server_mixed.txt"
  python3 "$(dirname "$0")/validate_report.py" \
    "$OUT_DIR/stindex_server_mixed.json"
  python3 - "$OUT_DIR/stindex_server_mixed.json" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    report = json.load(f)
params = report["params"]
assert params["update_frac"] == 0.2, params
assert params["updates_applied"] > 0, params
assert params["wal_commits"] > 0, params
assert params["group_commit"] == 1, params
assert params["wal_checkpoints"] > 0, params
assert "updates_dropped" in params, params
counters = report["metrics"]["counters"]
writes = counters.get("backend.file.writes", 0)
assert writes > 0, f"expected WAL file writes, got {counters}"
observes = counters.get("live.observes", 0)
assert observes > 0, f"expected live observes, got {counters}"
checkpoints = counters.get("live.wal.checkpoints", 0)
assert checkpoints > 0, f"expected checkpoints, got {counters}"
truncated = counters.get("live.wal.truncated_pages", 0)
assert truncated > 0, f"expected truncated journal pages, got {counters}"
series = {s["name"] for s in report["series"]}
for required in ("qps", "updates_per_s", "latency_p50_ms",
                 "update_latency_p50_ms"):
    assert required in series, f"report missing series '{required}'"
ups = [p["y"] for s in report["series"] if s["name"] == "updates_per_s"
       for p in s["points"]]
assert ups and ups[0] > 0, f"expected positive updates_per_s, got {ups}"
print(f"stindex_server mixed smoke OK: {params['updates_applied']} updates "
      f"({params['updates_dropped']} dropped), {writes} WAL file writes, "
      f"{params['wal_commits']} commits, {checkpoints} checkpoints, "
      f"{truncated} truncated pages")
EOF
fi

# Soak smoke: run the wall-clock-bounded mixed workload for ~10s with the
# telemetry plane on an ephemeral port, scrape it live (>=3 scrapes with
# monotone counters, windowed p95, healthz green), then check the soak
# report validates and the slow-query JSONL (threshold 0 => every query
# captures) parses line by line.
if [ -x "$SERVER" ]; then
  echo "== stindex_server soak + live scrape smoke =="
  SOAK_DIR="$SMOKE_DIR/soak"
  mkdir -p "$SOAK_DIR"
  "$SERVER" --soak --duration-s=10 --threads=4 --buffer-pages=32 \
    --metrics-port=0 --port-file="$SOAK_DIR/port" \
    --slow-query-ms=0 --slow-log="$SOAK_DIR/slow.jsonl" \
    --backend=file --db="$SOAK_DIR" \
    --json="$OUT_DIR/stindex_server_soak.json" \
    > "$OUT_DIR/stindex_server_soak.txt" 2>&1 &
  SOAK_PID=$!
  for _ in $(seq 1 50); do
    [ -s "$SOAK_DIR/port" ] && break
    kill -0 "$SOAK_PID" 2>/dev/null || break
    sleep 0.2
  done
  if [ ! -s "$SOAK_DIR/port" ]; then
    echo "error: soak server never published its port" >&2
    wait "$SOAK_PID" || true
    cat "$OUT_DIR/stindex_server_soak.txt" >&2
    exit 1
  fi
  if ! python3 "$(dirname "$0")/scrape_soak.py" "$(cat "$SOAK_DIR/port")" \
      --scrapes 3 --interval 1; then
    kill "$SOAK_PID" 2>/dev/null || true
    wait "$SOAK_PID" || true
    cat "$OUT_DIR/stindex_server_soak.txt" >&2
    exit 1
  fi
  wait "$SOAK_PID"
  cat "$OUT_DIR/stindex_server_soak.txt"
  python3 "$(dirname "$0")/validate_report.py" \
    "$OUT_DIR/stindex_server_soak.json"
  python3 - "$OUT_DIR/stindex_server_soak.json" "$SOAK_DIR/slow.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    report = json.load(f)
params = report["params"]
assert params["soak_queries"] > 0, params
assert params["scrapes"] >= 3, params
assert params["slow_queries"] > 0, params
series = {s["name"] for s in report["series"]}
for required in ("qps", "latency_p50_ms", "latency_p95_ms",
                 "latency_p99_ms"):
    assert required in series, f"report missing series '{required}'"
with open(sys.argv[2], "r", encoding="utf-8") as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "slow-query JSONL is empty at threshold 0"
for entry in lines:
    assert "latency_ms" in entry and "results" in entry, entry
print(f"soak smoke OK: {params['soak_queries']} queries, "
      f"{params['soak_updates']} updates, {params['scrapes']} scrapes, "
      f"{len(lines)} slow-log entries")
EOF
fi

# File-backend smoke: run the CLI pipeline against a real page file in a
# scratch directory and check the metrics dump proves actual disk reads
# (backend.file.reads > 0) rather than the simulated store.
CLI="$BUILD_DIR/tools/stindex_cli"
if [ -x "$CLI" ]; then
  echo "== stindex_cli --backend file smoke =="
  "$CLI" generate --family random --n 500 --out "$SMOKE_DIR/objects.csv"
  "$CLI" split --in "$SMOKE_DIR/objects.csv" --out "$SMOKE_DIR/segments.csv" \
    --budget-percent 100
  "$CLI" queries --set small --count 50 --out "$SMOKE_DIR/queries.csv"
  "$CLI" query --segments "$SMOKE_DIR/segments.csv" \
    --queries "$SMOKE_DIR/queries.csv" --index ppr \
    --backend file --db "$SMOKE_DIR" --stats "$SMOKE_DIR/metrics.json" \
    --explain --objects "$SMOKE_DIR/objects.csv" \
    --trace "$SMOKE_DIR/query.trace.json"
  python3 "$(dirname "$0")/validate_trace.py" "$SMOKE_DIR/query.trace.json"
  python3 - "$SMOKE_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    counters = json.load(f)["counters"]
reads = counters.get("backend.file.reads", 0)
writes = counters.get("backend.file.writes", 0)
assert reads > 0, f"expected file-backend reads, got {counters}"
assert writes > 0, f"expected file-backend writes, got {counters}"
print(f"file backend smoke OK: {reads} reads, {writes} writes")
EOF
else
  echo "warning: $CLI not built, skipping file-backend smoke" >&2
fi

# Zero-copy snapshot smoke: ingest a stream into a live-tier WAL, pack it
# into a read-only snapshot (stindex_cli pack), then serve queries with
# --backend=mmap. Warm queries must come entirely from the mapping — the
# CLI stats dump proves zero file-backend reads and nonzero borrowed
# pages — and the fig17 mmap report must still validate against schema
# v2 with the same invariant.
FIG17="$BUILD_DIR/bench/bench_fig17_range_io"
if [ -x "$CLI" ]; then
  echo "== stindex_cli pack + --backend mmap smoke =="
  MMAP_DIR="$SMOKE_DIR/mmap"
  mkdir -p "$MMAP_DIR"
  "$CLI" ingest --in "$SMOKE_DIR/objects.csv" --db "$MMAP_DIR"
  "$CLI" pack --db "$MMAP_DIR" --out "$MMAP_DIR/historical.stsnap"
  [ -s "$MMAP_DIR/historical.stsnap" ] || {
    echo "error: pack produced no snapshot" >&2; exit 1; }
  "$CLI" query --segments "$SMOKE_DIR/segments.csv" \
    --queries "$SMOKE_DIR/queries.csv" --index ppr \
    --backend mmap --db "$MMAP_DIR" --stats "$MMAP_DIR/metrics.json"
  python3 - "$MMAP_DIR/metrics.json" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    counters = json.load(f)["counters"]
file_reads = counters.get("backend.file.reads", 0)
borrows = counters.get("backend.mmap.borrows", 0)
fallback_reads = counters.get("backend.mmap.reads", 0)
packed = counters.get("backend.mmap.packed_pages", 0)
assert file_reads == 0, f"expected zero file reads under mmap, got {counters}"
assert packed > 0, f"expected packed snapshot pages, got {counters}"
assert borrows + fallback_reads > 0, \
    f"expected snapshot pages served, got {counters}"
print(f"mmap backend smoke OK: {packed} packed pages, {borrows} borrows, "
      f"{fallback_reads} fallback reads, 0 file reads")
EOF
else
  echo "warning: $CLI not built, skipping mmap smoke" >&2
fi

if [ -x "$FIG17" ]; then
  echo "== bench_fig17_range_io --backend=mmap smoke =="
  mkdir -p "$SMOKE_DIR/mmap_fig17"
  "$FIG17" --backend=mmap --db="$SMOKE_DIR/mmap_fig17" \
    --json="$OUT_DIR/bench_fig17_range_io_mmap.json" \
    | tee "$OUT_DIR/bench_fig17_range_io_mmap.txt"
  python3 "$(dirname "$0")/validate_report.py" \
    "$OUT_DIR/bench_fig17_range_io_mmap.json"
  python3 - "$OUT_DIR/bench_fig17_range_io_mmap.json" <<'EOF'
import json, sys
with open(sys.argv[1], "r", encoding="utf-8") as f:
    report = json.load(f)
assert report["params"]["backend"] == "mmap", report["params"]
counters = report["metrics"]["counters"]
file_reads = counters.get("backend.file.reads", 0)
assert file_reads == 0, f"expected zero file reads under mmap, got {counters}"
served = counters.get("backend.mmap.borrows", 0) + \
    counters.get("backend.mmap.reads", 0)
assert served > 0, f"expected snapshot pages served, got {counters}"
print(f"fig17 mmap smoke OK: report valid, {served} snapshot pages served, "
      f"0 file reads")
EOF
else
  echo "warning: $FIG17 not built, skipping fig17 mmap smoke" >&2
fi
