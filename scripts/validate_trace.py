#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON capture (util/trace.h export).

Checks, per file:
  * top level is an object with a traceEvents array and
    otherData.dropped_events;
  * every event carries ph, ts, pid and tid, with ts a non-negative
    number and ph one of B/E/C;
  * B/E events carry cat and name; C events carry name and a numeric
    args value;
  * per (pid, tid), timestamps are non-decreasing and B/E events nest:
    every E closes the matching open B (same cat/name), and nothing is
    left open at the end. When the capture dropped events
    (otherData.dropped_events > 0) the ring may have evicted opening
    events, so unmatched E prefixes and unclosed B tails are tolerated
    for that file only.

Usage: validate_trace.py TRACE.json [TRACE2.json ...]
Exits non-zero with a message on the first violation.
"""

import json
import sys

ALLOWED_PHASES = {"B", "E", "C"}


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def validate_event_fields(path, i, event):
    for field in ("ph", "ts", "pid", "tid"):
        if field not in event:
            fail(path, f"event {i} missing '{field}': {event}")
    if event["ph"] not in ALLOWED_PHASES:
        fail(path, f"event {i} has unknown phase {event['ph']!r}")
    if not isinstance(event["ts"], (int, float)) or event["ts"] < 0:
        fail(path, f"event {i} has bad ts {event['ts']!r}")
    for field in ("pid", "tid"):
        if not isinstance(event[field], int):
            fail(path, f"event {i} has non-integer {field}")
    if event["ph"] in ("B", "E"):
        for field in ("cat", "name"):
            if not isinstance(event.get(field), str) or not event[field]:
                fail(path, f"event {i} ({event['ph']}) missing '{field}'")
    else:  # C
        if not isinstance(event.get("name"), str) or not event["name"]:
            fail(path, f"counter event {i} missing 'name'")
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            fail(path, f"counter event {i} missing args: {event}")
        for key, value in args.items():
            if not isinstance(value, (int, float)):
                fail(path, f"counter event {i} arg {key!r} is not numeric")


def validate_thread_nesting(path, tid_key, events, drops_allowed):
    last_ts = None
    stack = []
    unmatched_ends = 0
    for event in events:
        if last_ts is not None and event["ts"] < last_ts:
            fail(path, f"thread {tid_key}: timestamps run backwards "
                       f"({event['ts']} after {last_ts})")
        last_ts = event["ts"]
        if event["ph"] == "B":
            stack.append(event)
        elif event["ph"] == "E":
            if stack:
                opener = stack.pop()
                if (opener["cat"], opener["name"]) != (event["cat"],
                                                       event["name"]):
                    fail(path, f"thread {tid_key}: E {event['cat']}:"
                               f"{event['name']} closes B {opener['cat']}:"
                               f"{opener['name']}")
            else:
                unmatched_ends += 1
    if not drops_allowed:
        if unmatched_ends:
            fail(path, f"thread {tid_key}: {unmatched_ends} E events with "
                       "no matching B (and dropped_events == 0)")
        if stack:
            fail(path, f"thread {tid_key}: {len(stack)} B events never "
                       "closed (and dropped_events == 0)")


def validate(path):
    with open(path, "r", encoding="utf-8") as f:
        try:
            document = json.load(f)
        except json.JSONDecodeError as error:
            fail(path, f"not valid JSON: {error}")
    if not isinstance(document, dict):
        fail(path, "top level is not an object")
    events = document.get("traceEvents")
    if not isinstance(events, list):
        fail(path, "missing traceEvents array")
    other = document.get("otherData")
    if not isinstance(other, dict) or "dropped_events" not in other:
        fail(path, "missing otherData.dropped_events")
    dropped = other["dropped_events"]
    if not isinstance(dropped, int) or dropped < 0:
        fail(path, f"bad dropped_events {dropped!r}")

    threads = {}
    duration_events = 0
    for i, event in enumerate(events):
        validate_event_fields(path, i, event)
        if event["ph"] == "C":
            continue
        duration_events += 1
        threads.setdefault((event["pid"], event["tid"]), []).append(event)
    for tid_key, thread_events in sorted(threads.items()):
        validate_thread_nesting(path, tid_key, thread_events,
                                drops_allowed=dropped > 0)

    print(f"{path}: OK ({len(events)} events, {duration_events} duration "
          f"events on {len(threads)} threads, {dropped} dropped)")


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    for path in argv[1:]:
        validate(path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
