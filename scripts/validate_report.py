#!/usr/bin/env python3
"""Validates bench report JSON against the schema in bench/bench_report.h.

Accepts either a single per-bench report (an object with a "bench" key)
or an aggregate produced by scripts/run_benches.sh (an object with a
"results" array of per-bench reports). Exits non-zero with a readable
message on the first violation, so CI can gate on schema stability.

Usage: scripts/validate_report.py REPORT.json [REPORT.json ...]
"""
import json
import sys


def fail(path, message):
    print(f"{path}: {message}", file=sys.stderr)
    sys.exit(1)


def expect(condition, path, message):
    if not condition:
        fail(path, message)


def is_number(value):
    # bool is an int subclass in Python; a bool here means the report
    # emitted true/false where the schema promises a number.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_point(point, path, where):
    expect(isinstance(point, dict), path, f"{where}: point is not an object")
    expect("y" in point and is_number(point["y"]), path,
           f"{where}: point missing numeric 'y'")
    has_x = "x" in point
    has_label = "label" in point
    expect(has_x != has_label, path,
           f"{where}: point must have exactly one of 'x' or 'label'")
    if has_x:
        expect(is_number(point["x"]), path, f"{where}: 'x' is not a number")
    else:
        expect(isinstance(point["label"], str), path,
               f"{where}: 'label' is not a string")


def validate_report(report, path):
    expect(isinstance(report, dict), path, "report is not a JSON object")
    expect(report.get("schema_version") == 2, path,
           f"schema_version is {report.get('schema_version')!r}, want 2")
    for key, kind in (("bench", str), ("scale", str), ("threads", int),
                      ("params", dict), ("series", list), ("io", dict),
                      ("latency_ms", dict), ("metrics", dict)):
        expect(isinstance(report.get(key), kind), path,
               f"'{key}' missing or not a {kind.__name__}")
    expect(report["threads"] >= 1, path, "'threads' must be >= 1")

    for name, value in report["params"].items():
        expect(isinstance(value, (str, int, float)), path,
               f"param '{name}' has unsupported type {type(value).__name__}")

    seen_series = set()
    for series in report["series"]:
        expect(isinstance(series, dict), path, "series entry is not an object")
        name = series.get("name")
        expect(isinstance(name, str) and name, path,
               "series entry missing non-empty 'name'")
        expect(name not in seen_series, path, f"duplicate series '{name}'")
        seen_series.add(name)
        points = series.get("points")
        expect(isinstance(points, list) and points, path,
               f"series '{name}' has no points")
        for point in points:
            validate_point(point, path, f"series '{name}'")

    io = report["io"]
    for key in ("accesses", "misses", "hits", "false_hits"):
        expect(isinstance(io.get(key), int) and io[key] >= 0, path,
               f"io.{key} missing or not a non-negative integer")
    expect(io["accesses"] == io["misses"] + io["hits"], path,
           "io.accesses != io.misses + io.hits")

    latency = report["latency_ms"]
    expect(isinstance(latency.get("count"), int) and latency["count"] >= 0,
           path, "latency_ms.count missing or negative")
    for key in ("p50", "p90", "p95", "p99", "max"):
        expect(is_number(latency.get(key)), path,
               f"latency_ms.{key} missing or not a number")
    if latency["count"] > 0:
        expect(latency["p50"] <= latency["p90"] <= latency["p95"]
               <= latency["p99"] <= latency["max"], path,
               "latency percentiles are not monotone")

    metrics = report["metrics"]
    for section, kind in (("counters", int), ("gauges", int),
                          ("histograms", dict)):
        entries = metrics.get(section)
        expect(isinstance(entries, dict), path,
               f"metrics.{section} missing or not an object")
        names = list(entries.keys())
        expect(names == sorted(names), path,
               f"metrics.{section} names are not sorted")
        for name, value in entries.items():
            expect(isinstance(value, kind), path,
                   f"metrics.{section}['{name}'] is not a {kind.__name__}")
            if section == "histograms":
                for field in ("count", "sum", "min", "max", "p50", "p90",
                              "p95", "p99"):
                    expect(is_number(value.get(field)), path,
                           f"metrics.histograms['{name}'].{field} missing "
                           "or not a number")


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as f:
                document = json.load(f)
        except (OSError, json.JSONDecodeError) as error:
            fail(path, f"unreadable or invalid JSON: {error}")
        if "results" in document:
            expect(document.get("schema_version") == 2, path,
                   "aggregate schema_version != 2")
            results = document["results"]
            expect(isinstance(results, list) and results, path,
                   "aggregate 'results' missing or empty")
            for index, report in enumerate(results):
                validate_report(report, f"{path}[results:{index}]")
            print(f"{path}: OK ({len(results)} reports)")
        else:
            validate_report(document, path)
            print(f"{path}: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
