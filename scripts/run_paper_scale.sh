#!/usr/bin/env bash
# Runs the full experiment suite at the paper's dataset sizes (10k-80k
# objects, 1000-query sets). Expect multi-hour runtimes for the dynamic
# programming experiments — the paper itself reports "almost one day" for
# DPSplit on the largest dataset.
#
# Usage: scripts/run_paper_scale.sh [build-dir] [output-dir]
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-paper_scale_results}"
mkdir -p "$OUT_DIR"

export STINDEX_SCALE=paper

for bench in "$BUILD_DIR"/bench/bench_*; do
  name="$(basename "$bench")"
  echo "== $name =="
  "$bench" | tee "$OUT_DIR/$name.txt"
done

echo "Results written to $OUT_DIR/"
