#!/usr/bin/env bash
# Builds the concurrency-sensitive test binaries under ThreadSanitizer
# (via the STINDEX_SANITIZE CMake option) and runs them. Any data race —
# including one TSan finds in a passing test — fails the script. CI runs
# this on every change; run it locally before touching the thread pool,
# the parallel split pipeline, or the buffer-pool read path.
#
# Usage: scripts/check_tsan.sh [build-dir]
set -euo pipefail

BUILD_DIR="${1:-build-tsan}"
JOBS="$(nproc 2>/dev/null || echo 2)"
TESTS=(thread_pool_test parallel_pipeline_test concurrency_test
       backend_differential_test snapshot_backend_test trace_test
       shared_buffer_pool_test fuzz_differential_test crash_recovery_test
       live_tier_test http_exposition_test)

cmake -B "$BUILD_DIR" -S "$(dirname "$0")/.." \
  -DSTINDEX_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target "${TESTS[@]}" -j"$JOBS"

# halt_on_error: make the first race fail the binary, not just warn.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"
status=0
for test in "${TESTS[@]}"; do
  echo "== TSan: $test =="
  if ! "$BUILD_DIR/tests/$test"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "ThreadSanitizer FAILED" >&2
else
  echo "ThreadSanitizer clean: ${TESTS[*]}"
fi
exit "$status"
