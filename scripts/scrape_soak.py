#!/usr/bin/env python3
"""Scrape a running stindex_server --soak telemetry plane and assert it
is sane: counters are monotone across scrapes, gauges are finite,
sliding-window percentiles are being published, and /healthz is green.

Usage: scrape_soak.py PORT [--scrapes N] [--interval S]

Exits 0 when every assertion holds over at least N successful scrapes;
prints the violated assertion and exits 1 otherwise. Stdlib only — this
is the CI soak smoke, it must not need pip.
"""

import argparse
import math
import sys
import time
import urllib.error
import urllib.request


def fetch(port, path, timeout=5.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=timeout
    ) as response:
        return response.status, response.read().decode("utf-8", "replace")


def parse_metrics(text):
    """Prometheus text -> {series_name_with_labels: float}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples[name] = float(value)
        except ValueError:
            raise AssertionError(f"unparseable sample line: {line!r}")
    return samples


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("port", type=int)
    parser.add_argument("--scrapes", type=int, default=3,
                        help="minimum successful scrapes (default 3)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="seconds between scrapes (default 1)")
    args = parser.parse_args()

    # Counters must never decrease between scrapes. Everything the
    # registry exports as a counter carries its own # TYPE line, so key
    # off those rather than a hard-coded list.
    counter_names = set()
    previous = {}
    scrapes_done = 0
    saw_window_p95 = False

    while scrapes_done < args.scrapes:
        try:
            status, body = fetch(args.port, "/metrics")
        except (urllib.error.URLError, ConnectionError, TimeoutError) as err:
            print(f"scrape_soak: /metrics scrape failed: {err}",
                  file=sys.stderr)
            return 1
        assert status == 200, f"/metrics returned {status}"

        for line in body.splitlines():
            if line.startswith("# TYPE ") and line.endswith(" counter"):
                counter_names.add(line.split()[2])
        samples = parse_metrics(body)

        for name, value in samples.items():
            assert math.isfinite(value), f"{name} is not finite: {value}"
            base = name.split("{", 1)[0]
            if base in counter_names:
                assert value >= 0, f"counter {name} is negative: {value}"
                if name in previous:
                    assert value >= previous[name], (
                        f"counter {name} went backwards: "
                        f"{previous[name]} -> {value}")
        previous.update(
            {n: v for n, v in samples.items()
             if n.split("{", 1)[0] in counter_names})

        if any(name.endswith('_window{quantile="0.95"}')
               for name in samples):
            saw_window_p95 = True

        health_status, health_body = fetch(args.port, "/healthz")
        assert health_status == 200, (
            f"/healthz returned {health_status}: {health_body.strip()}")

        scrapes_done += 1
        print(f"scrape_soak: scrape {scrapes_done}/{args.scrapes} ok "
              f"({len(samples)} samples, healthz 200)")
        if scrapes_done < args.scrapes:
            time.sleep(args.interval)

    assert saw_window_p95, (
        "no sliding-window p95 series (<name>_window{quantile=\"0.95\"}) "
        "appeared in any scrape")
    print(f"scrape_soak: OK — {scrapes_done} scrapes, counters monotone, "
          "windowed p95 present, healthz green")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as err:
        print(f"scrape_soak: FAILED: {err}", file=sys.stderr)
        sys.exit(1)
