// stindex_cli — command-line front end for the library: generate
// datasets, split them, build indexes, and run query sets, passing data
// between steps as CSV files.
//
//   stindex_cli generate --family random --n 2000 --out objects.csv
//   stindex_cli split    --in objects.csv --budget-percent 150
//                        --algo lagreedy --out segments.csv
//   stindex_cli queries  --set small-range --count 200 --out queries.csv
//   stindex_cli stats    --segments segments.csv --index ppr
//   stindex_cli query    --segments segments.csv --queries queries.csv
//                        --index ppr
//   stindex_cli advise   --in objects.csv --set small-range
//
// Every command additionally accepts --stats FILE, which dumps the
// process metrics registry (buffer I/O, tree build events, pipeline
// phase times) after a successful run — as JSON by default, or as
// Prometheus text exposition with --stats-format prom. The query command
// also supports --explain (per-level EXPLAIN profile), --objects FILE
// (exact-geometry refinement / false-hit counting) and --trace FILE
// (Chrome trace capture of build and query spans).
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/distribute.h"
#include "core/piecewise_split.h"
#include "core/split_pipeline.h"
#include "datagen/clustered_dataset.h"
#include "datagen/query_gen.h"
#include "datagen/railway.h"
#include "datagen/random_dataset.h"
#include "hrtree/hr_tree.h"
#include "io/csv.h"
#include "live/live_tier.h"
#include "model/split_advisor.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"
#include "core/query_profile.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "util/json_writer.h"
#include "util/metrics.h"
#include "util/prom_writer.h"
#include "util/threads.h"
#include "util/trace.h"

namespace stindex {
namespace cli {
namespace {

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        std::fprintf(stderr, "unexpected argument '%s'\n", key.c_str());
        std::exit(2);
      }
      key.erase(0, 2);
      if (IsBoolean(key)) {
        values_[key] = std::string("1");
        continue;
      }
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for --%s\n", key.c_str());
        std::exit(2);
      }
      values_[key] = argv[++i];
    }
  }

  // Presence flags that take no value.
  static bool IsBoolean(const std::string& key) {
    return key == "explain" || key == "group-commit";
  }

  bool GetBool(const std::string& key) { return Get(key, "") == "1"; }

  std::string Get(const std::string& key, const std::string& fallback) {
    used_.insert(key);
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  std::string Require(const std::string& key) {
    used_.insert(key);
    auto it = values_.find(key);
    if (it == values_.end()) {
      std::fprintf(stderr, "missing required flag --%s\n", key.c_str());
      std::exit(2);
    }
    return it->second;
  }

  int64_t GetInt(const std::string& key, int64_t fallback) {
    const std::string value = Get(key, std::to_string(fallback));
    return std::strtoll(value.c_str(), nullptr, 10);
  }

  void RejectUnknown() const {
    for (const auto& [key, value] : values_) {
      if (used_.find(key) == used_.end()) {
        std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
        std::exit(2);
      }
    }
  }

 private:
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> used_;
};

void Die(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  std::exit(1);
}

// Shared thread-count resolution: --threads flag > STINDEX_THREADS > 1.
// Bad values from either source are fatal, never silently replaced.
int ResolveThreadsOrDie(Flags& flags) {
  const Result<int> threads = ResolveThreadCount(flags.Get("threads", ""));
  if (!threads.ok()) Die(threads.status());
  return threads.value();
}

// Writes the process metrics registry to `path` — as JSON mirroring the
// "metrics" section of the bench report schema (bench/bench_report.h), or
// as Prometheus text exposition (util/prom_writer.h).
void DumpMetrics(const std::string& path, const std::string& format) {
  // GetCounter registers on first use, so trace.dropped_events (and with
  // it the health of the trace ring) always appears in --stats dumps,
  // even for runs that never traced.
  MetricRegistry::Global().GetCounter("trace.dropped_events");
  const MetricsSnapshot metrics = MetricRegistry::Global().Snapshot();
  std::string document;
  if (format == "prom") {
    document = RenderPrometheus(metrics);
  } else {
    JsonWriter json;
    json.BeginObject();
    json.Key("counters").BeginObject();
    for (const auto& [name, value] : metrics.counters) {
      json.Key(name).Uint(value);
    }
    json.EndObject();
    json.Key("gauges").BeginObject();
    for (const auto& [name, value] : metrics.gauges) {
      json.Key(name).Int(value);
    }
    json.EndObject();
    json.Key("histograms").BeginObject();
    for (const auto& [name, snapshot] : metrics.histograms) {
      json.Key(name).BeginObject();
      json.Key("count").Uint(snapshot.count);
      json.Key("sum").Double(snapshot.sum);
      json.Key("min").Double(snapshot.min);
      json.Key("max").Double(snapshot.max);
      json.Key("p50").Double(snapshot.p50);
      json.Key("p90").Double(snapshot.p90);
      json.Key("p95").Double(snapshot.p95);
      json.Key("p99").Double(snapshot.p99);
      json.EndObject();
    }
    json.EndObject();
    json.EndObject();
    document = json.str() + "\n";
  }
  std::ofstream out(path);
  out << document;
  if (!out) {
    Die(Status::FailedPrecondition("cannot write stats file: " + path));
  }
  std::fprintf(stderr, "wrote metrics to %s\n", path.c_str());
}

std::vector<Trajectory> LoadObjects(const std::string& path) {
  Result<std::vector<Trajectory>> result = ReadTrajectoriesCsv(path);
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

std::vector<SegmentRecord> LoadSegments(const std::string& path) {
  Result<std::vector<SegmentRecord>> result = ReadSegmentsCsv(path);
  if (!result.ok()) Die(result.status());
  return std::move(result).value();
}

// Backend selection for `query`: --backend store|memory|file|mmap plus
// --db DIR for the file-backed ones. "store" is the legacy in-memory
// PageStore (no serialization); "memory" and "file" persist the index
// through a PageBackend so buffer misses are actual page reads; "mmap"
// packs the tree into a read-only snapshot file under --db and serves it
// zero-copy. Returns the validated backend name.
std::string GetBackendFlags(Flags& flags, std::string* db_path) {
  const std::string backend = flags.Get("backend", "store");
  *db_path = flags.Get("db", "");
  if (backend != "store" && backend != "memory" && backend != "file" &&
      backend != "mmap") {
    std::fprintf(
        stderr,
        "--backend must be 'store', 'memory', 'file' or 'mmap', got '%s'\n",
        backend.c_str());
    std::exit(2);
  }
  if ((backend == "file" || backend == "mmap") && db_path->empty()) {
    std::fprintf(stderr, "--backend %s requires --db DIR\n", backend.c_str());
    std::exit(2);
  }
  return backend;
}

std::unique_ptr<PageBackend> MakeCliBackend(const std::string& backend,
                                            const std::string& db_path,
                                            const std::string& tag) {
  if (backend == "memory") return std::make_unique<MemoryPageBackend>();
  Result<std::unique_ptr<FilePageBackend>> file =
      FilePageBackend::Create(db_path + "/" + tag + ".stpages");
  if (!file.ok()) Die(file.status());
  return std::move(file).value();
}

QuerySetConfig NamedQuerySet(const std::string& name) {
  if (name == "tiny") return TinySnapshotSet();
  if (name == "small") return SmallSnapshotSet();
  if (name == "mixed") return MixedSnapshotSet();
  if (name == "large") return LargeSnapshotSet();
  if (name == "small-range") return SmallRangeSet();
  if (name == "medium-range") return MediumRangeSet();
  std::fprintf(stderr,
               "unknown query set '%s' (tiny|small|mixed|large|small-range|"
               "medium-range)\n",
               name.c_str());
  std::exit(2);
}

int CmdGenerate(Flags& flags) {
  const std::string family = flags.Get("family", "random");
  const size_t n = static_cast<size_t>(flags.GetInt("n", 10000));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const Time domain = flags.GetInt("time-domain", 1000);
  const std::string out = flags.Require("out");
  flags.RejectUnknown();

  std::vector<Trajectory> objects;
  if (family == "random") {
    RandomDatasetConfig config;
    config.num_objects = n;
    config.seed = seed;
    config.time_domain = domain;
    objects = GenerateRandomDataset(config);
  } else if (family == "railway") {
    RailwayDatasetConfig config;
    config.num_trains = n;
    config.seed = seed;
    config.time_domain = domain;
    objects = GenerateRailwayDataset(config);
  } else if (family == "clustered") {
    ClusteredDatasetConfig config;
    config.num_objects = n;
    config.seed = seed;
    config.time_domain = domain;
    objects = GenerateClusteredDataset(config);
  } else {
    std::fprintf(stderr,
                 "unknown family '%s' (random|railway|clustered)\n",
                 family.c_str());
    return 2;
  }
  const Status status = WriteTrajectoriesCsv(out, objects);
  if (!status.ok()) Die(status);
  const DatasetStats stats = ComputeDatasetStats(objects, domain);
  std::printf("wrote %zu objects (%zu segments, avg lifetime %.1f) to %s\n",
              stats.total_objects, stats.total_segments, stats.avg_lifetime,
              out.c_str());
  return 0;
}

int CmdSplit(Flags& flags) {
  const std::string in = flags.Require("in");
  const std::string out = flags.Require("out");
  const int64_t percent = flags.GetInt("budget-percent", 150);
  const std::string algo = flags.Get("algo", "lagreedy");
  const std::string method_name = flags.Get("method", "merge");
  // The split pipeline is deterministic at any thread count, so --threads
  // only changes wall-clock time, never the written segments.
  const int threads = ResolveThreadsOrDie(flags);
  flags.RejectUnknown();

  const std::vector<Trajectory> objects = LoadObjects(in);
  const SplitMethod method =
      method_name == "dp" ? SplitMethod::kDp : SplitMethod::kMerge;
  std::vector<SegmentRecord> records;
  if (percent == 0) {
    records = BuildUnsplitSegments(objects, threads);
  } else {
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 128, method, threads);
    const int64_t budget =
        static_cast<int64_t>(objects.size()) * percent / 100;
    Distribution dist;
    if (algo == "greedy") {
      dist = DistributeGreedy(curves, budget, threads);
    } else if (algo == "optimal") {
      dist = DistributeOptimal(curves, budget);
    } else if (algo == "lagreedy") {
      dist = DistributeLAGreedy(curves, budget, threads);
    } else {
      std::fprintf(stderr, "unknown algo '%s' (lagreedy|greedy|optimal)\n",
                   algo.c_str());
      return 2;
    }
    records = BuildSegments(objects, dist.splits, method, threads);
    std::printf("distributed %lld splits, total volume %.6f\n",
                static_cast<long long>(dist.TotalSplits()),
                dist.total_volume);
  }
  const Status status = WriteSegmentsCsv(out, records);
  if (!status.ok()) Die(status);
  std::printf("wrote %zu segment records to %s\n", records.size(),
              out.c_str());
  return 0;
}

int CmdPiecewise(Flags& flags) {
  const std::string in = flags.Require("in");
  const std::string out = flags.Require("out");
  flags.RejectUnknown();
  const std::vector<Trajectory> objects = LoadObjects(in);
  int64_t splits = 0;
  const std::vector<SegmentRecord> records =
      PiecewiseSplitAll(objects, &splits);
  const Status status = WriteSegmentsCsv(out, records);
  if (!status.ok()) Die(status);
  std::printf("piecewise split used %lld splits; wrote %zu records to %s\n",
              static_cast<long long>(splits), records.size(), out.c_str());
  return 0;
}

int CmdQueries(Flags& flags) {
  QuerySetConfig config = NamedQuerySet(flags.Get("set", "small"));
  config.count = static_cast<size_t>(flags.GetInt("count", 1000));
  config.time_domain = flags.GetInt("time-domain", 1000);
  const std::string out = flags.Require("out");
  flags.RejectUnknown();
  const std::vector<STQuery> queries = GenerateQuerySet(config);
  const Status status = WriteQueriesCsv(out, queries);
  if (!status.ok()) Die(status);
  std::printf("wrote %zu '%s' queries to %s\n", queries.size(),
              config.name.c_str(), out.c_str());
  return 0;
}

int CmdStats(Flags& flags) {
  const std::string path = flags.Require("segments");
  const std::string index = flags.Get("index", "ppr");
  const Time domain = flags.GetInt("time-domain", 1000);
  flags.RejectUnknown();
  const std::vector<SegmentRecord> records = LoadSegments(path);
  std::printf("%zu segment records, total volume %.6f\n", records.size(),
              TotalVolume(records));
  if (index == "ppr") {
    const std::unique_ptr<PprTree> tree = BuildPprTree(records);
    std::printf("ppr: %zu pages, %zu root eras, %zu alive at end\n",
                tree->PageCount(), tree->NumRoots(), tree->AliveCount());
  } else if (index == "rstar") {
    RStarTree tree;
    const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, domain);
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree.Insert(boxes[i], static_cast<DataId>(i));
    }
    std::printf("rstar: %zu pages, height %zu\n", tree.PageCount(),
                tree.Height());
  } else if (index == "hr") {
    const std::unique_ptr<HrTree> tree = BuildHrTree(records);
    std::printf("hr: %zu pages, %zu versions\n", tree->PageCount(),
                tree->NumVersions());
  } else {
    std::fprintf(stderr, "unknown index '%s' (ppr|rstar|hr)\n",
                 index.c_str());
    return 2;
  }
  return 0;
}

int CmdQuery(Flags& flags) {
  const std::string segments_path = flags.Require("segments");
  const std::string queries_path = flags.Require("queries");
  const std::string index = flags.Get("index", "ppr");
  const Time domain = flags.GetInt("time-domain", 1000);
  const bool explain = flags.GetBool("explain");
  const std::string trace_path = flags.Get("trace", "");
  const std::string objects_path = flags.Get("objects", "");
  // Total LRU capacity of the query buffer in pages; 0 keeps the tree's
  // configured default (the paper's 10-page protocol).
  const long long buffer_pages_flag = flags.GetInt("buffer-pages", 0);
  std::string db_path;
  const std::string backend = GetBackendFlags(flags, &db_path);
  flags.RejectUnknown();
  if (buffer_pages_flag < 0) {
    std::fprintf(stderr, "--buffer-pages must be non-negative, got %lld\n",
                 buffer_pages_flag);
    return 2;
  }
  const size_t buffer_pages = static_cast<size_t>(buffer_pages_flag);
  if (index == "hr" && buffer_pages != 0) {
    std::fprintf(stderr,
                 "--buffer-pages is only supported for ppr and rstar\n");
    return 2;
  }
  if (backend != "store" && index == "hr") {
    std::fprintf(stderr, "--backend %s: the hr index only supports the "
                 "in-memory store\n", backend.c_str());
    return 2;
  }
  if (index == "hr" && (explain || !objects_path.empty())) {
    std::fprintf(stderr,
                 "--explain/--objects are only supported for ppr and rstar\n");
    return 2;
  }

  const std::vector<SegmentRecord> records = LoadSegments(segments_path);
  Result<std::vector<STQuery>> queries_result =
      ReadQueriesCsv(queries_path);
  if (!queries_result.ok()) Die(queries_result.status());
  const std::vector<STQuery>& queries = queries_result.value();

  // --objects supplies the original trajectories so candidates can be
  // refined against exact per-instant rectangles (false-hit counting).
  std::vector<Trajectory> objects;
  std::unique_ptr<FalseHitRefiner> refiner;
  if (!objects_path.empty()) {
    objects = LoadObjects(objects_path);
    refiner = std::make_unique<FalseHitRefiner>(objects, records);
  }
  QueryProfile profile;
  QueryProfile* profile_ptr =
      (explain || refiner != nullptr) ? &profile : nullptr;

  // Start tracing before the build so index-construction spans land in
  // the capture alongside the query spans.
  if (!trace_path.empty()) TraceSession::Start();

  uint64_t misses = 0;
  uint64_t hits_total = 0;
  if (index == "ppr") {
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    if (backend == "mmap") {
      const Status status =
          ppr->PackSnapshot(db_path + "/query_ppr.stsnap");
      if (!status.ok()) Die(status);
    } else if (backend != "store") {
      const Status status =
          ppr->AttachBackend(MakeCliBackend(backend, db_path, "query_ppr"));
      if (!status.ok()) Die(status);
    }
    const std::unique_ptr<BufferPool> buffer =
        ppr->NewQueryBuffer(buffer_pages);
    for (const STQuery& query : queries) {
      buffer->ResetCache();
      buffer->ResetStats();
      std::vector<PprDataId> out;
      if (query.IsSnapshot()) {
        ppr->SnapshotQuery(query.area, query.range.start, buffer.get(), &out,
                           profile_ptr);
      } else {
        ppr->IntervalQuery(query.area, query.range, buffer.get(), &out,
                           profile_ptr);
      }
      if (refiner != nullptr) refiner->CountFalseHits(out, query, profile_ptr);
      misses += buffer->stats().misses;
      hits_total += out.size();
    }
  } else if (index == "hr") {
    const std::unique_ptr<HrTree> hr = BuildHrTree(records);
    for (const STQuery& query : queries) {
      hr->ResetQueryState();
      std::vector<HrDataId> out;
      if (query.IsSnapshot()) {
        hr->SnapshotQuery(query.area, query.range.start, &out);
      } else {
        hr->IntervalQuery(query.area, query.range, &out);
      }
      misses += hr->stats().misses;
      hits_total += out.size();
    }
  } else if (index == "rstar") {
    RStarTree tree;
    const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, domain);
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree.Insert(boxes[i], static_cast<DataId>(i));
    }
    if (backend == "mmap") {
      const Status status =
          tree.PackSnapshot(db_path + "/query_rstar.stsnap");
      if (!status.ok()) Die(status);
    } else if (backend != "store") {
      const Status status =
          tree.AttachBackend(MakeCliBackend(backend, db_path, "query_rstar"));
      if (!status.ok()) Die(status);
    }
    const std::unique_ptr<BufferPool> buffer =
        tree.NewQueryBuffer(buffer_pages);
    for (const STQuery& query : queries) {
      buffer->ResetCache();
      buffer->ResetStats();
      std::vector<DataId> out;
      tree.Search(QueryToBox(query, 0, domain), buffer.get(), &out,
                  profile_ptr);
      if (refiner != nullptr) refiner->CountFalseHits(out, query, profile_ptr);
      misses += buffer->stats().misses;
      hits_total += out.size();
    }
  } else {
    std::fprintf(stderr, "unknown index '%s' (ppr|rstar|hr)\n",
                 index.c_str());
    return 2;
  }

  if (!trace_path.empty()) {
    TraceSession::Stop();
    const Status status = TraceSession::WriteChromeTrace(trace_path);
    if (!status.ok()) Die(status);
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 TraceSession::CollectedEvents().size(), trace_path.c_str());
  }
  if (refiner != nullptr) {
    MetricRegistry::Global().GetCounter("io.query.false_hits")
        ->Add(profile.false_hits);
  }
  std::printf("%zu queries: avg %.2f disk accesses, avg %.2f hits\n",
              queries.size(),
              static_cast<double>(misses) /
                  static_cast<double>(queries.size()),
              static_cast<double>(hits_total) /
                  static_cast<double>(queries.size()));
  if (explain) {
    std::fputs(profile.ToTable().c_str(), stdout);
    if (refiner == nullptr) {
      std::printf("  (pass --objects FILE to refine candidates and count "
                  "false hits)\n");
    }
  }
  return 0;
}

// Streams a trajectory dataset through the crash-safe live ingestion
// tier, journaling onto a page file under --db. The WAL is opened if it
// already exists (recovery) and created otherwise, and absorbed updates
// are detected and skipped — so re-running the same ingest after a crash
// or a completed run is idempotent and converges to the same index.
// --capacity/--duration/--buffer mirror LIT's -c/-d/-b sealing knobs.
int CmdIngest(Flags& flags) {
  const std::string in = flags.Require("in");
  const std::string db = flags.Require("db");
  LiveTierOptions options;
  options.index.capacity = static_cast<size_t>(flags.GetInt("capacity", 64));
  options.index.duration = flags.GetInt("duration", 0);
  options.index.buffer = static_cast<size_t>(flags.GetInt("buffer", 0));
  options.checkpoint_every_pages =
      static_cast<size_t>(flags.GetInt("checkpoint-every", 0));
  options.group_commit = flags.GetBool("group-commit");
  options.commit_interval_us = flags.GetInt("commit-interval", 0);
  const int64_t commit_every = flags.GetInt("commit-every", 64);
  flags.RejectUnknown();
  if (commit_every <= 0) {
    std::fprintf(stderr, "--commit-every must be positive\n");
    return 2;
  }
  if (options.commit_interval_us < 0) {
    std::fprintf(stderr, "--commit-interval must be non-negative\n");
    return 2;
  }

  const std::string wal_path = db + "/live_wal.stpages";
  Result<std::unique_ptr<FilePageBackend>> wal = FilePageBackend::Open(wal_path);
  const bool resumed = wal.ok();
  if (!resumed) wal = FilePageBackend::Create(wal_path);
  if (!wal.ok()) Die(wal.status());

  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(options, std::move(wal).value());
  if (!tier.ok()) Die(tier.status());
  if (resumed) {
    std::printf("recovered %llu journal records (%llu pages) from %s\n",
                static_cast<unsigned long long>(
                    tier.value()->recovered().records),
                static_cast<unsigned long long>(tier.value()->recovered().pages),
                wal_path.c_str());
  }

  const std::vector<Trajectory> objects = LoadObjects(in);
  const std::vector<LiveObservation> stream = MakeObservationStream(objects);
  MetricRegistry& registry = MetricRegistry::Global();
  const uint64_t dup_base = registry.GetCounter("live.dup_skips")->Value();
  for (size_t i = 0; i < stream.size(); ++i) {
    const Status status = tier.value()->Apply(stream[i]);
    if (!status.ok()) Die(status);
    if ((i + 1) % static_cast<size_t>(commit_every) == 0) {
      const Status committed = tier.value()->Commit();
      if (!committed.ok()) Die(committed);
    }
  }
  const Status finished = tier.value()->Finish();
  if (!finished.ok()) Die(finished);
  // Surface the tier's WAL/checkpoint gauges and pool counters in the
  // --stats dump written after this command returns.
  tier.value()->PublishGauges();

  const uint64_t dup_skips =
      registry.GetCounter("live.dup_skips")->Value() - dup_base;
  std::printf("ingested %zu objects (%zu updates, %llu already absorbed): "
              "%zu segments migrated, %zu tree pages, %llu WAL records in "
              "%llu pages, %llu commits, %llu checkpoints\n",
              objects.size(), stream.size(),
              static_cast<unsigned long long>(dup_skips),
              tier.value()->migrated_segments().size(),
              tier.value()->historical().PageCount(),
              static_cast<unsigned long long>(tier.value()->wal_records()),
              static_cast<unsigned long long>(tier.value()->wal_pages()),
              static_cast<unsigned long long>(tier.value()->wal_commits()),
              static_cast<unsigned long long>(tier.value()->checkpoint_seq()));
  return 0;
}

// Converts an ingested --db (the live tier's WAL journal) into a packed
// read-only mmap snapshot: recovers the tier from DIR/live_wal.stpages,
// finishes the stream (seals every buffer, drains migration), then packs
// the historical tree into --out. The WAL itself is untouched — the
// snapshot is a derived artifact a query server can mmap and serve
// zero-copy.
int CmdPack(Flags& flags) {
  const std::string db = flags.Require("db");
  const std::string out = flags.Get("out", db + "/historical.stsnap");
  flags.RejectUnknown();

  const std::string wal_path = db + "/live_wal.stpages";
  Result<std::unique_ptr<FilePageBackend>> wal =
      FilePageBackend::Open(wal_path);
  if (!wal.ok()) Die(wal.status());
  Result<std::unique_ptr<LiveTier>> tier =
      LiveTier::Open(LiveTierOptions{}, std::move(wal).value());
  if (!tier.ok()) Die(tier.status());

  const Status finished = tier.value()->Finish();
  if (!finished.ok()) Die(finished);
  MetricRegistry& registry = MetricRegistry::Global();
  const uint64_t packed_base =
      registry.GetCounter("backend.mmap.packed_pages")->Value();
  const Status packed = tier.value()->PackHistorical(out);
  if (!packed.ok()) Die(packed);
  const uint64_t packed_pages =
      registry.GetCounter("backend.mmap.packed_pages")->Value() - packed_base;
  tier.value()->PublishGauges();
  std::printf("packed %llu node pages (%zu migrated segments) from %s "
              "into %s\n",
              static_cast<unsigned long long>(packed_pages),
              tier.value()->migrated_segments().size(), wal_path.c_str(),
              out.c_str());
  return 0;
}

int CmdAdvise(Flags& flags) {
  const std::string in = flags.Require("in");
  QuerySetConfig query_config = NamedQuerySet(flags.Get("set", "small"));
  query_config.count = static_cast<size_t>(flags.GetInt("count", 200));
  const Time domain = flags.GetInt("time-domain", 1000);
  query_config.time_domain = domain;
  const std::string mode = flags.Get("mode", "analytical");
  const int threads = ResolveThreadsOrDie(flags);
  flags.RejectUnknown();

  const std::vector<Trajectory> objects = LoadObjects(in);
  const std::vector<STQuery> workload = GenerateQuerySet(query_config);
  const int64_t n = static_cast<int64_t>(objects.size());
  const std::vector<int64_t> candidates = {0,         n / 20, n / 10,
                                           n / 4,     n / 2,  n,
                                           n * 3 / 2};
  SplitAdvisorOptions options;
  options.time_domain = domain;

  SplitAdvice advice;
  if (mode == "analytical") {
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kMerge, threads);
    advice = SplitAdvisor::ChooseAnalytical(objects, curves, candidates,
                                            workload, IndexKind::kPprTree,
                                            options);
  } else if (mode == "sampling") {
    advice = SplitAdvisor::ChooseBySampling(objects, candidates, 0.25,
                                            workload, 60,
                                            IndexKind::kPprTree, options, 17);
  } else {
    std::fprintf(stderr, "unknown mode '%s' (analytical|sampling)\n",
                 mode.c_str());
    return 2;
  }
  for (const auto& [budget, cost] : advice.evaluated) {
    std::printf("%8lld splits -> %.2f%s\n", static_cast<long long>(budget),
                cost, budget == advice.num_splits ? "   <= chosen" : "");
  }
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: stindex_cli <command> [flags]\n"
      "  generate  --family random|railway|clustered --n N --out FILE\n"
      "            [--seed S] [--time-domain T]\n"
      "  split     --in FILE --out FILE [--budget-percent P]\n"
      "            [--algo lagreedy|greedy|optimal] [--method merge|dp]\n"
      "            [--threads N]\n"
      "  piecewise --in FILE --out FILE\n"
      "  queries   --set NAME --out FILE [--count N] [--time-domain T]\n"
      "  stats     --segments FILE [--index ppr|rstar|hr]\n"
      "  query     --segments FILE --queries FILE [--index ppr|rstar|hr]\n"
      "            [--backend store|memory|file|mmap] [--db DIR] [--explain]\n"
      "            [--objects FILE] [--trace FILE] [--buffer-pages N]\n"
      "            --backend mmap packs the tree into DIR/query_*.stsnap\n"
      "            and serves it zero-copy through the mmap backend\n"
      "  ingest    --in FILE --db DIR [--capacity N] [--duration T]\n"
      "            [--buffer N] [--commit-every N] [--checkpoint-every P]\n"
      "            [--group-commit] [--commit-interval US]\n"
      "            stream objects through the crash-safe live tier,\n"
      "            journaling to DIR/live_wal.stpages; re-running after a\n"
      "            crash recovers and skips absorbed updates.\n"
      "            --checkpoint-every P truncates the journal once P\n"
      "            flushed WAL pages accumulate; --group-commit coalesces\n"
      "            concurrent commits, waiting --commit-interval US for\n"
      "            joiners\n"
      "  pack      --db DIR [--out FILE]\n"
      "            recover the live tier from DIR/live_wal.stpages, finish\n"
      "            the stream and pack the historical tree into a read-only\n"
      "            mmap snapshot (default DIR/historical.stsnap)\n"
      "  advise    --in FILE [--set NAME] [--mode analytical|sampling]\n"
      "            [--threads N]\n"
      "Query flags:\n"
      "  --explain       print a per-query-set profile (node visits per\n"
      "                  level, buffer hits/misses, candidates, false hits)\n"
      "  --objects FILE  original trajectories; refines candidates against\n"
      "                  exact per-instant rectangles to count false hits\n"
      "  --trace FILE    capture a Chrome trace (chrome://tracing, Perfetto)\n"
      "                  of the build and query spans\n"
      "  --buffer-pages N  total LRU buffer capacity in pages (0/default:\n"
      "                  the tree's configured 10-page paper protocol)\n"
      "Common flags:\n"
      "  --stats FILE         dump the metrics registry after the run\n"
      "  --stats-format FMT   'json' (default) or 'prom' (Prometheus text\n"
      "                       exposition)\n"
      "  --threads N    worker threads for split/advise (overrides the\n"
      "                 STINDEX_THREADS environment variable; default 1)\n");
  return 2;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  // Claim --stats/--stats-format before dispatch so RejectUnknown accepts
  // them for every command; the dump itself runs only after the command
  // succeeds.
  const std::string stats_path = flags.Get("stats", "");
  const std::string stats_format = flags.Get("stats-format", "json");
  if (stats_format != "json" && stats_format != "prom") {
    std::fprintf(stderr, "--stats-format must be 'json' or 'prom', got '%s'\n",
                 stats_format.c_str());
    return 2;
  }
  int rc = 2;
  if (command == "generate") {
    rc = CmdGenerate(flags);
  } else if (command == "split") {
    rc = CmdSplit(flags);
  } else if (command == "piecewise") {
    rc = CmdPiecewise(flags);
  } else if (command == "queries") {
    rc = CmdQueries(flags);
  } else if (command == "stats") {
    rc = CmdStats(flags);
  } else if (command == "query") {
    rc = CmdQuery(flags);
  } else if (command == "ingest") {
    rc = CmdIngest(flags);
  } else if (command == "pack") {
    rc = CmdPack(flags);
  } else if (command == "advise") {
    rc = CmdAdvise(flags);
  } else {
    return Usage();
  }
  if (rc == 0 && !stats_path.empty()) DumpMetrics(stats_path, stats_format);
  return rc;
}

}  // namespace
}  // namespace cli
}  // namespace stindex

int main(int argc, char** argv) { return stindex::cli::Main(argc, argv); }
