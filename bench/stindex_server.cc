// Server-style query driver: N client threads replay a large mixed
// stream of snapshot and small-range queries against ONE shared sharded
// buffer pool (total capacity `--buffer-pages`, default 64 — a warm
// cache, not the paper's per-query-reset measurement protocol). Reports
// throughput (QPS) and per-query latency percentiles through the
// standard schema-v2 JSON report; `--prom=PATH` additionally dumps the
// metric registry in Prometheus text format for scraping.
//
// Extra flags on top of the shared bench surface (bench_report.h):
//   --stream=N   total queries replayed across all clients
//                (default: 20x the scale's query_count)
//   --prom=PATH  write a Prometheus text-format metrics snapshot
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "storage/shared_buffer_pool.h"
#include "util/metrics.h"
#include "util/prom_writer.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {
namespace bench {
namespace {

struct ServerFlags {
  size_t stream = 0;      // 0: scale default
  std::string prom_path;  // empty: no Prometheus dump
};

// Splits the server-only flags off argv before ParseBenchArgs sees it
// (unknown arguments are a hard error there).
ServerFlags ExtractServerFlags(int* argc, char** argv) {
  ServerFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    bool matched = true;
    if (arg.rfind("--stream=", 0) == 0) {
      value = arg.substr(9);
    } else if (arg == "--stream" && i + 1 < *argc) {
      value = argv[++i];
    } else if (arg.rfind("--prom=", 0) == 0) {
      flags.prom_path = arg.substr(7);
    } else if (arg == "--prom" && i + 1 < *argc) {
      flags.prom_path = argv[++i];
    } else {
      matched = false;
      argv[out++] = argv[i];
    }
    if (matched && !value.empty()) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "stindex_server: --stream expects a positive query "
                     "count, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
      flags.stream = static_cast<size_t>(n);
    }
  }
  *argc = out;
  return flags;
}

// Alternates the two paper query mixes into one request stream, so
// neighboring requests from one client exercise different access
// patterns (like interleaved dashboard + drill-down traffic).
std::vector<STQuery> MakeRequestStream(const BenchScale& scale, size_t total) {
  const size_t half = (total + 1) / 2;
  const std::vector<STQuery> snapshots =
      MakeQueries(MixedSnapshotSet(), half);
  const std::vector<STQuery> ranges = MakeQueries(SmallRangeSet(), half);
  std::vector<STQuery> stream;
  stream.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const std::vector<STQuery>& set = i % 2 == 0 ? snapshots : ranges;
    stream.push_back(set[(i / 2) % set.size()]);
  }
  return stream;
}

void Run(const BenchArgs& args, const ServerFlags& flags) {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  const size_t stream_size =
      flags.stream == 0 ? scale.query_count * 20 : flags.stream;
  const size_t buffer_pages = args.buffer_pages == 0 ? 64 : args.buffer_pages;
  std::printf("stindex_server (scale=%s, clients=%d, backend=%s): %zu-query "
              "mixed stream over a %zu-object PPR-tree, one shared "
              "%zu-page pool.\n",
              scale.name.c_str(), args.threads,
              args.backend.empty() ? "store" : args.backend.c_str(),
              stream_size, n, buffer_pages);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records =
      SplitWithLaGreedy(objects, 150, args.threads);
  const std::unique_ptr<PprTree> tree = BuildPprTree(records);
  AttachBenchBackend(tree.get(), args, "server");
  const std::vector<STQuery> stream = MakeRequestStream(scale, stream_size);

  const std::unique_ptr<SharedBufferPool> pool =
      tree->NewSharedQueryPool(buffer_pages);
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(args.threads));
  Report().SetParam("stream", static_cast<int64_t>(stream_size));
  Report().SetParam("effective_buffer_pages",
                    static_cast<int64_t>(pool->capacity()));
  Report().SetParam("pool_shards", static_cast<int64_t>(pool->shard_count()));

  const size_t chunks = ParallelChunks(args.threads, stream.size());
  std::vector<IoStats> chunk_stats(chunks);
  std::vector<Histogram> latency_shards(chunks);
  std::vector<uint64_t> chunk_results(chunks, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("bench", "server_replay");
    span.Arg("requests", static_cast<int64_t>(stream.size()))
        .Arg("clients", static_cast<int64_t>(args.threads));
    ParallelFor(args.threads, stream.size(),
                [&](size_t chunk, size_t begin, size_t end) {
                  // Pass-through session: no per-query reset, stats
                  // mirror the shared pool's real hits and misses.
                  SharedBufferPool::Session session(pool.get(), 0);
                  Histogram& latency = latency_shards[chunk];
                  for (size_t q = begin; q < end; ++q) {
                    const STQuery& query = stream[q];
                    std::vector<PprDataId> results;
                    const auto start = std::chrono::steady_clock::now();
                    if (query.IsSnapshot()) {
                      tree->SnapshotQuery(query.area, query.range.start,
                                          &session, &results);
                    } else {
                      tree->IntervalQuery(query.area, query.range, &session,
                                          &results);
                    }
                    const std::chrono::duration<double, std::milli> elapsed =
                        std::chrono::steady_clock::now() - start;
                    latency.Record(elapsed.count());
                    chunk_results[chunk] += results.size();
                  }
                  chunk_stats[chunk] = session.stats();
                });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  IoStats total;
  uint64_t result_rows = 0;
  for (size_t i = 0; i < chunks; ++i) {
    total.accesses += chunk_stats[i].accesses;
    total.misses += chunk_stats[i].misses;
    result_rows += chunk_results[i];
  }
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("io.query.accesses")->Add(total.accesses);
  registry.GetCounter("io.query.misses")->Add(total.misses);
  MergeShards(latency_shards, registry.GetHistogram("io.query.latency_ms"));
  pool->PublishStats();

  const double seconds = wall.count();
  const double qps =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  PrintHeader("stindex_server: shared-pool replay",
              "clients | qps        | p50_ms  | p95_ms  | p99_ms  | "
              "miss_rate | rows");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %10.0f | %7.3f | %7.3f | %7.3f | %9.4f | %zu",
                args.threads, qps, latency.p50, latency.p95, latency.p99,
                total.accesses == 0
                    ? 0.0
                    : static_cast<double>(total.misses) /
                          static_cast<double>(total.accesses),
                static_cast<size_t>(result_rows));
  PrintRow(row);
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(result_rows));

  if (!flags.prom_path.empty()) {
    const std::string text = RenderPrometheus(registry.Snapshot());
    std::ofstream out(flags.prom_path);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "stindex_server: write to '%s' failed\n",
                   flags.prom_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", flags.prom_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  stindex::bench::ServerFlags flags =
      stindex::bench::ExtractServerFlags(&argc, argv);
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "stindex_server", /*accept_backend=*/true);
  stindex::bench::Run(args, flags);
  stindex::bench::FinishReport(args);
  return 0;
}
