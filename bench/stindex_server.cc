// Server-style query driver: N client threads replay a large mixed
// stream of snapshot and small-range queries against ONE shared sharded
// buffer pool (total capacity `--buffer-pages`, default 64 — a warm
// cache, not the paper's per-query-reset measurement protocol). Reports
// throughput (QPS) and per-query latency percentiles through the
// standard schema-v2 JSON report; `--prom=PATH` additionally dumps the
// metric registry in Prometheus text format for scraping.
//
// Extra flags on top of the shared bench surface (bench_report.h):
//   --stream=N        total requests replayed across all clients
//                     (default: 20x the scale's query_count)
//   --prom=PATH       write a Prometheus text-format metrics snapshot
//   --update-frac=F   fraction of the request stream that are movement
//                     updates (0 <= F < 1, default 0). With F > 0 the
//                     server runs the crash-safe live ingestion tier
//                     (src/live): updates stream through the WAL-journaled
//                     LiveIndex and migrate into the PPR-tree while the
//                     remaining requests run freshness-bound tiered
//                     queries (historical tree + in-flight migration +
//                     live buffers) concurrently. --backend=file puts the
//                     WAL on a real page file under --db.
//   --group-commit    coalesce concurrent WAL commits into one fsync
//                     (mixed mode only; see LiveTierOptions::group_commit)
//   --commit-interval=US  with --group-commit: microseconds the commit
//                     leader waits for joiners before flushing (default 0)
//   --checkpoint-every=N  checkpoint + truncate the journal once N flushed
//                     WAL pages accumulate (mixed mode only; 0 = never)
//   --pack-at=N       after N applied updates, pack the historical tree
//                     into a read-only mmap snapshot under --db and keep
//                     serving it zero-copy as a frozen layer while a
//                     fresh active tree takes over migration (mixed mode
//                     only; 0 = never; requires --db). The WAL tier stays
//                     on its page-file backend throughout.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "live/live_tier.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/shared_buffer_pool.h"
#include "util/metrics.h"
#include "util/prom_writer.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {
namespace bench {
namespace {

struct ServerFlags {
  size_t stream = 0;        // 0: scale default
  std::string prom_path;    // empty: no Prometheus dump
  double update_frac = 0.0;  // 0: pure-query replay (the classic mode)
  bool group_commit = false;
  int64_t commit_interval_us = 0;
  size_t checkpoint_every = 0;  // flushed WAL pages between checkpoints
  size_t pack_at = 0;  // applied updates before packing the historical tree
};

// Parses a non-negative integer flag value or dies with a usage error.
int64_t ParseNonNegative(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n < 0) {
    std::fprintf(stderr,
                 "stindex_server: %s expects a non-negative integer, "
                 "got '%s'\n",
                 flag, value.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(n);
}

// Splits the server-only flags off argv before ParseBenchArgs sees it
// (unknown arguments are a hard error there).
ServerFlags ExtractServerFlags(int* argc, char** argv) {
  ServerFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    bool matched = true;
    if (arg.rfind("--stream=", 0) == 0) {
      value = arg.substr(9);
    } else if (arg == "--stream" && i + 1 < *argc) {
      value = argv[++i];
    } else if (arg.rfind("--prom=", 0) == 0) {
      flags.prom_path = arg.substr(7);
    } else if (arg == "--prom" && i + 1 < *argc) {
      flags.prom_path = argv[++i];
    } else if (arg == "--group-commit") {
      flags.group_commit = true;
    } else if (arg.rfind("--commit-interval=", 0) == 0 ||
               (arg == "--commit-interval" && i + 1 < *argc)) {
      const std::string us =
          arg == "--commit-interval" ? argv[++i] : arg.substr(18);
      flags.commit_interval_us = ParseNonNegative("--commit-interval", us);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0 ||
               (arg == "--checkpoint-every" && i + 1 < *argc)) {
      const std::string pages =
          arg == "--checkpoint-every" ? argv[++i] : arg.substr(19);
      flags.checkpoint_every =
          static_cast<size_t>(ParseNonNegative("--checkpoint-every", pages));
    } else if (arg.rfind("--pack-at=", 0) == 0 ||
               (arg == "--pack-at" && i + 1 < *argc)) {
      const std::string count = arg == "--pack-at" ? argv[++i] : arg.substr(10);
      flags.pack_at =
          static_cast<size_t>(ParseNonNegative("--pack-at", count));
    } else if (arg.rfind("--update-frac=", 0) == 0 ||
               (arg == "--update-frac" && i + 1 < *argc)) {
      const std::string frac =
          arg == "--update-frac" ? argv[++i] : arg.substr(14);
      char* end = nullptr;
      flags.update_frac = std::strtod(frac.c_str(), &end);
      if (end == frac.c_str() || *end != '\0' || flags.update_frac < 0.0 ||
          flags.update_frac >= 1.0) {
        std::fprintf(stderr,
                     "stindex_server: --update-frac expects a fraction in "
                     "[0, 1), got '%s'\n",
                     frac.c_str());
        std::exit(2);
      }
    } else {
      matched = false;
      argv[out++] = argv[i];
    }
    if (matched && !value.empty()) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "stindex_server: --stream expects a positive query "
                     "count, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
      flags.stream = static_cast<size_t>(n);
    }
  }
  *argc = out;
  return flags;
}

// Alternates the two paper query mixes into one request stream, so
// neighboring requests from one client exercise different access
// patterns (like interleaved dashboard + drill-down traffic).
std::vector<STQuery> MakeRequestStream(const BenchScale& scale, size_t total) {
  const size_t half = (total + 1) / 2;
  const std::vector<STQuery> snapshots =
      MakeQueries(MixedSnapshotSet(), half);
  const std::vector<STQuery> ranges = MakeQueries(SmallRangeSet(), half);
  std::vector<STQuery> stream;
  stream.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const std::vector<STQuery>& set = i % 2 == 0 ? snapshots : ranges;
    stream.push_back(set[(i / 2) % set.size()]);
  }
  return stream;
}

// --- mixed update/query mode (--update-frac > 0) -------------------------
//
// Request i is an update when the Bresenham accumulator crosses an
// integer (so updates are spread evenly through the stream at the exact
// requested fraction). Updates are pulled in stream order from one
// shared cursor under a mutex — the live tier requires globally
// non-decreasing times — while queries fan out across all clients
// through the tier's readers-writer lock and shared pool. A Commit every
// `kCommitEvery` applied updates acknowledges the batch through the WAL.
void RunMixed(const BenchArgs& args, const ServerFlags& flags) {
  constexpr size_t kCommitEvery = 32;
  if (flags.pack_at > 0 && args.db_path.empty()) {
    std::fprintf(stderr, "stindex_server: --pack-at requires --db=DIR\n");
    std::exit(2);
  }
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  const size_t stream_size =
      flags.stream == 0 ? scale.query_count * 20 : flags.stream;
  std::printf(
      "stindex_server (scale=%s, clients=%d, backend=%s): %zu-request "
      "stream at update-frac %.2f over a live tier of %zu objects.\n",
      scale.name.c_str(), args.threads,
      args.backend.empty() ? "store" : args.backend.c_str(), stream_size,
      flags.update_frac, n);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<LiveObservation> updates = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeRequestStream(scale, stream_size);

  std::unique_ptr<PageBackend> wal;
  if (args.backend == "file") {
    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(args.db_path + "/stindex_server_wal.stpages");
    if (!file.ok()) {
      std::fprintf(stderr, "stindex_server: %s\n",
                   file.status().ToString().c_str());
      std::exit(1);
    }
    wal = std::move(file).value();
  } else {
    wal = std::make_unique<MemoryPageBackend>();
  }

  LiveTierOptions options;
  options.index.capacity = 32;  // seal eagerly so migration runs mid-bench
  options.query_pool_pages = args.buffer_pages;
  options.group_commit = flags.group_commit;
  options.commit_interval_us = flags.commit_interval_us;
  options.checkpoint_every_pages = flags.checkpoint_every;
  Result<std::unique_ptr<LiveTier>> opened =
      LiveTier::Open(options, std::move(wal));
  if (!opened.ok()) {
    std::fprintf(stderr, "stindex_server: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  LiveTier* tier = opened.value().get();

  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(args.threads));
  Report().SetParam("stream", static_cast<int64_t>(stream_size));
  Report().SetParam("backend", args.backend.empty() ? "store" : args.backend);
  Report().SetParam("update_frac", flags.update_frac);
  Report().SetParam("group_commit",
                    static_cast<int64_t>(flags.group_commit ? 1 : 0));
  Report().SetParam("commit_interval_us", flags.commit_interval_us);
  Report().SetParam("checkpoint_every",
                    static_cast<int64_t>(flags.checkpoint_every));
  Report().SetParam("pack_at", static_cast<int64_t>(flags.pack_at));

  std::mutex update_mu;
  size_t update_cursor = 0;
  size_t updates_applied = 0;
  size_t updates_dropped = 0;  // update slots with no work: exhausted stream
  bool update_failed = false;
  bool pack_done = false;

  const size_t chunks = ParallelChunks(args.threads, stream_size);
  std::vector<Histogram> query_latency(chunks);
  std::vector<Histogram> update_latency(chunks);
  std::vector<uint64_t> chunk_results(chunks, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("bench", "server_mixed_replay");
    span.Arg("requests", static_cast<int64_t>(stream_size))
        .Arg("clients", static_cast<int64_t>(args.threads));
    ParallelFor(args.threads, stream_size,
                [&](size_t chunk, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const bool is_update =
                        static_cast<size_t>(static_cast<double>(i + 1) *
                                            flags.update_frac) >
                        static_cast<size_t>(static_cast<double>(i) *
                                            flags.update_frac);
                    const auto start = std::chrono::steady_clock::now();
                    if (is_update) {
                      bool applied = false;
                      bool commit_due = false;
                      {
                        std::lock_guard<std::mutex> lock(update_mu);
                        if (update_failed || update_cursor >= updates.size()) {
                          // No-op slot (latched tier / exhausted stream):
                          // nothing was applied, so nothing may land in the
                          // update-latency histogram.
                          ++updates_dropped;
                        } else {
                          const Status status =
                              tier->Apply(updates[update_cursor]);
                          if (!status.ok()) {
                            std::fprintf(stderr,
                                         "stindex_server: update: %s\n",
                                         status.ToString().c_str());
                            update_failed = true;
                          } else {
                            ++update_cursor;
                            applied = true;
                            commit_due =
                                ++updates_applied % kCommitEvery == 0;
                            if (flags.pack_at > 0 && !pack_done &&
                                updates_applied >= flags.pack_at) {
                              // Freeze the historical tree into a zero-copy
                              // snapshot layer mid-stream; queries keep
                              // running concurrently (PackHistorical takes
                              // the tier's writer lock itself).
                              pack_done = true;
                              const Status packed = tier->PackHistorical(
                                  args.db_path +
                                  "/stindex_server_hist.stsnap");
                              if (!packed.ok()) {
                                std::fprintf(stderr,
                                             "stindex_server: pack: %s\n",
                                             packed.ToString().c_str());
                                update_failed = true;
                              }
                            }
                          }
                        }
                      }
                      // Commit outside update_mu so concurrent committers
                      // coalesce through the group-commit leader instead of
                      // serializing on the apply lock.
                      if (applied && commit_due && !tier->Commit().ok()) {
                        std::lock_guard<std::mutex> lock(update_mu);
                        update_failed = true;
                      }
                      if (applied) {
                        const std::chrono::duration<double, std::milli> ms =
                            std::chrono::steady_clock::now() - start;
                        update_latency[chunk].Record(ms.count());
                      }
                    } else {
                      const STQuery& query = queries[i];
                      std::vector<ObjectId> results;
                      if (query.IsSnapshot()) {
                        tier->SnapshotQuery(query.area, query.range.start,
                                            &results);
                      } else {
                        tier->IntervalQuery(query.area, query.range, &results);
                      }
                      const std::chrono::duration<double, std::milli> ms =
                          std::chrono::steady_clock::now() - start;
                      query_latency[chunk].Record(ms.count());
                      chunk_results[chunk] += results.size();
                    }
                  }
                });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  if (update_failed) {
    std::fprintf(stderr, "stindex_server: update stream failed\n");
    std::exit(1);
  }
  const Status commit = tier->Commit();
  if (!commit.ok()) {
    std::fprintf(stderr, "stindex_server: final commit: %s\n",
                 commit.ToString().c_str());
    std::exit(1);
  }

  uint64_t result_rows = 0;
  for (size_t i = 0; i < chunks; ++i) result_rows += chunk_results[i];
  MetricRegistry& registry = MetricRegistry::Global();
  MergeShards(query_latency, registry.GetHistogram("io.query.latency_ms"));
  MergeShards(update_latency, registry.GetHistogram("live.update.latency_ms"));

  const double seconds = wall.count();
  const double qps =
      seconds > 0.0 ? static_cast<double>(stream_size) / seconds : 0.0;
  const double ups = seconds > 0.0
                         ? static_cast<double>(updates_applied) / seconds
                         : 0.0;
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  const HistogramSnapshot update_ms =
      registry.GetHistogram("live.update.latency_ms")->Value().Snapshot();
  PrintHeader("stindex_server: mixed update/query replay",
              "clients | qps        | updates/s  | q_p50_ms | u_p50_ms | "
              "segments | live | rows");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %10.0f | %10.0f | %8.3f | %8.3f | %8zu | %4zu | %zu",
                args.threads, qps, ups, latency.p50, update_ms.p50,
                tier->migrated_segments().size(), tier->live_objects(),
                static_cast<size_t>(result_rows));
  PrintRow(row);

  if (updates_dropped > 0) {
    std::printf("  (%zu update slots dropped: stream exhausted)\n",
                updates_dropped);
  }

  Report().SetParam("updates_applied", static_cast<int64_t>(updates_applied));
  Report().SetParam("updates_dropped",
                    static_cast<int64_t>(updates_dropped));
  Report().SetParam("wal_checkpoints",
                    static_cast<int64_t>(tier->checkpoint_seq()));
  Report().SetParam("migrated_segments",
                    static_cast<int64_t>(tier->migrated_segments().size()));
  Report().SetParam("live_objects",
                    static_cast<int64_t>(tier->live_objects()));
  Report().SetParam("wal_commits", static_cast<int64_t>(tier->wal_commits()));
  Report().SetParam("frozen_layers",
                    static_cast<int64_t>(tier->frozen_layers()));
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("updates_per_s", "overall", ups);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("update_latency_p50_ms", "overall", update_ms.p50);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(result_rows));

  if (!flags.prom_path.empty()) {
    const std::string text = RenderPrometheus(registry.Snapshot());
    std::ofstream out(flags.prom_path);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "stindex_server: write to '%s' failed\n",
                   flags.prom_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", flags.prom_path.c_str());
  }
}

void Run(const BenchArgs& args, const ServerFlags& flags) {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  const size_t stream_size =
      flags.stream == 0 ? scale.query_count * 20 : flags.stream;
  const size_t buffer_pages = args.buffer_pages == 0 ? 64 : args.buffer_pages;
  std::printf("stindex_server (scale=%s, clients=%d, backend=%s): %zu-query "
              "mixed stream over a %zu-object PPR-tree, one shared "
              "%zu-page pool.\n",
              scale.name.c_str(), args.threads,
              args.backend.empty() ? "store" : args.backend.c_str(),
              stream_size, n, buffer_pages);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records =
      SplitWithLaGreedy(objects, 150, args.threads);
  const std::unique_ptr<PprTree> tree = BuildPprTree(records);
  AttachBenchBackend(tree.get(), args, "server");
  const std::vector<STQuery> stream = MakeRequestStream(scale, stream_size);

  const std::unique_ptr<SharedBufferPool> pool =
      tree->NewSharedQueryPool(buffer_pages);
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(args.threads));
  Report().SetParam("stream", static_cast<int64_t>(stream_size));
  Report().SetParam("effective_buffer_pages",
                    static_cast<int64_t>(pool->capacity()));
  Report().SetParam("pool_shards", static_cast<int64_t>(pool->shard_count()));

  const size_t chunks = ParallelChunks(args.threads, stream.size());
  std::vector<IoStats> chunk_stats(chunks);
  std::vector<Histogram> latency_shards(chunks);
  std::vector<uint64_t> chunk_results(chunks, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("bench", "server_replay");
    span.Arg("requests", static_cast<int64_t>(stream.size()))
        .Arg("clients", static_cast<int64_t>(args.threads));
    ParallelFor(args.threads, stream.size(),
                [&](size_t chunk, size_t begin, size_t end) {
                  // Pass-through session: no per-query reset, stats
                  // mirror the shared pool's real hits and misses.
                  SharedBufferPool::Session session(pool.get(), 0);
                  Histogram& latency = latency_shards[chunk];
                  for (size_t q = begin; q < end; ++q) {
                    const STQuery& query = stream[q];
                    std::vector<PprDataId> results;
                    const auto start = std::chrono::steady_clock::now();
                    if (query.IsSnapshot()) {
                      tree->SnapshotQuery(query.area, query.range.start,
                                          &session, &results);
                    } else {
                      tree->IntervalQuery(query.area, query.range, &session,
                                          &results);
                    }
                    const std::chrono::duration<double, std::milli> elapsed =
                        std::chrono::steady_clock::now() - start;
                    latency.Record(elapsed.count());
                    chunk_results[chunk] += results.size();
                  }
                  chunk_stats[chunk] = session.stats();
                });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  IoStats total;
  uint64_t result_rows = 0;
  for (size_t i = 0; i < chunks; ++i) {
    total.accesses += chunk_stats[i].accesses;
    total.misses += chunk_stats[i].misses;
    result_rows += chunk_results[i];
  }
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("io.query.accesses")->Add(total.accesses);
  registry.GetCounter("io.query.misses")->Add(total.misses);
  MergeShards(latency_shards, registry.GetHistogram("io.query.latency_ms"));
  pool->PublishStats();

  const double seconds = wall.count();
  const double qps =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  PrintHeader("stindex_server: shared-pool replay",
              "clients | qps        | p50_ms  | p95_ms  | p99_ms  | "
              "miss_rate | rows");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %10.0f | %7.3f | %7.3f | %7.3f | %9.4f | %zu",
                args.threads, qps, latency.p50, latency.p95, latency.p99,
                total.accesses == 0
                    ? 0.0
                    : static_cast<double>(total.misses) /
                          static_cast<double>(total.accesses),
                static_cast<size_t>(result_rows));
  PrintRow(row);
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(result_rows));

  if (!flags.prom_path.empty()) {
    const std::string text = RenderPrometheus(registry.Snapshot());
    std::ofstream out(flags.prom_path);
    out << text;
    if (!out.good()) {
      std::fprintf(stderr, "stindex_server: write to '%s' failed\n",
                   flags.prom_path.c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %s\n", flags.prom_path.c_str());
  }
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  stindex::bench::ServerFlags flags =
      stindex::bench::ExtractServerFlags(&argc, argv);
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "stindex_server", /*accept_backend=*/true);
  if (flags.update_frac > 0.0) {
    stindex::bench::RunMixed(args, flags);
  } else {
    stindex::bench::Run(args, flags);
  }
  stindex::bench::FinishReport(args);
  return 0;
}
