// Server-style query driver: N client threads replay a large mixed
// stream of snapshot and small-range queries against ONE shared sharded
// buffer pool (total capacity `--buffer-pages`, default 64 — a warm
// cache, not the paper's per-query-reset measurement protocol). Reports
// throughput (QPS) and per-query latency percentiles through the
// standard schema-v2 JSON report; `--prom=PATH` additionally dumps the
// metric registry in Prometheus text format for scraping.
//
// Extra flags on top of the shared bench surface (bench_report.h):
//   --stream=N        total requests replayed across all clients
//                     (default: 20x the scale's query_count)
//   --prom=PATH       write a Prometheus text-format metrics snapshot
//   --update-frac=F   fraction of the request stream that are movement
//                     updates (0 <= F < 1, default 0). With F > 0 the
//                     server runs the crash-safe live ingestion tier
//                     (src/live): updates stream through the WAL-journaled
//                     LiveIndex and migrate into the PPR-tree while the
//                     remaining requests run freshness-bound tiered
//                     queries (historical tree + in-flight migration +
//                     live buffers) concurrently. --backend=file puts the
//                     WAL on a real page file under --db.
//   --group-commit    coalesce concurrent WAL commits into one fsync
//                     (mixed mode only; see LiveTierOptions::group_commit)
//   --commit-interval=US  with --group-commit: microseconds the commit
//                     leader waits for joiners before flushing (default 0)
//   --checkpoint-every=N  checkpoint + truncate the journal once N flushed
//                     WAL pages accumulate (mixed mode only; 0 = never)
//   --pack-at=N       after N applied updates, pack the historical tree
//                     into a read-only mmap snapshot under --db and keep
//                     serving it zero-copy as a frozen layer while a
//                     fresh active tree takes over migration (mixed mode
//                     only; 0 = never; requires --db). The WAL tier stays
//                     on its page-file backend throughout.
//
// Soak mode (--soak): instead of replaying a fixed-length stream, run a
// wall-clock-bounded mixed read/write workload against the live tier and
// serve the telemetry plane live while it runs:
//   --soak            run until --duration-s elapses (workload loops over
//                     the generated streams; update-frac defaults to 0.2)
//   --duration-s=N    soak wall-clock budget in seconds (default 30)
//   --metrics-port=P  serve /metrics, /healthz and /statusz on
//                     127.0.0.1:P for the whole soak (0 = ephemeral port;
//                     pair with --port-file so scrapers can find it)
//   --port-file=PATH  write the bound metrics port (one line) once the
//                     exposition server is up
//   --publish-interval-s=S  seconds between gauge publications and
//                     progress lines (default 2)
//   --slow-query-ms=T capture every query at or above T ms into the
//                     slow-query EXPLAIN ring (shown on /statusz);
//                     T=0 captures every query, omit to disable
//   --slow-log=PATH   additionally append captured slow queries to PATH
//                     as JSON lines
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_report.h"
#include "core/slow_query_log.h"
#include "live/live_tier.h"
#include "storage/file_backend.h"
#include "storage/page_backend.h"
#include "storage/shared_buffer_pool.h"
#include "util/http_exposition.h"
#include "util/metrics.h"
#include "util/prom_writer.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {
namespace bench {
namespace {

struct ServerFlags {
  size_t stream = 0;        // 0: scale default
  std::string prom_path;    // empty: no Prometheus dump
  double update_frac = 0.0;  // 0: pure-query replay (the classic mode)
  bool group_commit = false;
  int64_t commit_interval_us = 0;
  size_t checkpoint_every = 0;  // flushed WAL pages between checkpoints
  size_t pack_at = 0;  // applied updates before packing the historical tree
  // Soak mode (wall-clock-bounded live-tier workload + telemetry plane).
  bool soak = false;
  int64_t duration_s = 30;
  int64_t metrics_port = -1;  // < 0: no exposition server
  std::string port_file;      // write the bound port here once serving
  double publish_interval_s = 2.0;
  double slow_query_ms = -1.0;  // < 0: slow-query capture disabled
  std::string slow_log_path;   // JSONL sink for captured slow queries
};

// Parses a non-negative integer flag value or dies with a usage error.
int64_t ParseNonNegative(const char* flag, const std::string& value) {
  char* end = nullptr;
  const long long n = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || n < 0) {
    std::fprintf(stderr,
                 "stindex_server: %s expects a non-negative integer, "
                 "got '%s'\n",
                 flag, value.c_str());
    std::exit(2);
  }
  return static_cast<int64_t>(n);
}

// Splits the server-only flags off argv before ParseBenchArgs sees it
// (unknown arguments are a hard error there).
ServerFlags ExtractServerFlags(int* argc, char** argv) {
  ServerFlags flags;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    bool matched = true;
    if (arg.rfind("--stream=", 0) == 0) {
      value = arg.substr(9);
    } else if (arg == "--stream" && i + 1 < *argc) {
      value = argv[++i];
    } else if (arg.rfind("--prom=", 0) == 0) {
      flags.prom_path = arg.substr(7);
    } else if (arg == "--prom" && i + 1 < *argc) {
      flags.prom_path = argv[++i];
    } else if (arg == "--group-commit") {
      flags.group_commit = true;
    } else if (arg.rfind("--commit-interval=", 0) == 0 ||
               (arg == "--commit-interval" && i + 1 < *argc)) {
      const std::string us =
          arg == "--commit-interval" ? argv[++i] : arg.substr(18);
      flags.commit_interval_us = ParseNonNegative("--commit-interval", us);
    } else if (arg.rfind("--checkpoint-every=", 0) == 0 ||
               (arg == "--checkpoint-every" && i + 1 < *argc)) {
      const std::string pages =
          arg == "--checkpoint-every" ? argv[++i] : arg.substr(19);
      flags.checkpoint_every =
          static_cast<size_t>(ParseNonNegative("--checkpoint-every", pages));
    } else if (arg.rfind("--pack-at=", 0) == 0 ||
               (arg == "--pack-at" && i + 1 < *argc)) {
      const std::string count = arg == "--pack-at" ? argv[++i] : arg.substr(10);
      flags.pack_at =
          static_cast<size_t>(ParseNonNegative("--pack-at", count));
    } else if (arg == "--soak") {
      flags.soak = true;
    } else if (arg.rfind("--duration-s=", 0) == 0 ||
               (arg == "--duration-s" && i + 1 < *argc)) {
      const std::string s = arg == "--duration-s" ? argv[++i] : arg.substr(13);
      flags.duration_s = ParseNonNegative("--duration-s", s);
    } else if (arg.rfind("--metrics-port=", 0) == 0 ||
               (arg == "--metrics-port" && i + 1 < *argc)) {
      const std::string port =
          arg == "--metrics-port" ? argv[++i] : arg.substr(15);
      flags.metrics_port = ParseNonNegative("--metrics-port", port);
      if (flags.metrics_port > 65535) {
        std::fprintf(stderr,
                     "stindex_server: --metrics-port expects a TCP port, "
                     "got '%s'\n",
                     port.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--port-file=", 0) == 0) {
      flags.port_file = arg.substr(12);
    } else if (arg == "--port-file" && i + 1 < *argc) {
      flags.port_file = argv[++i];
    } else if (arg.rfind("--publish-interval-s=", 0) == 0 ||
               (arg == "--publish-interval-s" && i + 1 < *argc)) {
      const std::string s =
          arg == "--publish-interval-s" ? argv[++i] : arg.substr(21);
      char* end = nullptr;
      flags.publish_interval_s = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0' || flags.publish_interval_s <= 0.0) {
        std::fprintf(stderr,
                     "stindex_server: --publish-interval-s expects positive "
                     "seconds, got '%s'\n",
                     s.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--slow-query-ms=", 0) == 0 ||
               (arg == "--slow-query-ms" && i + 1 < *argc)) {
      const std::string ms =
          arg == "--slow-query-ms" ? argv[++i] : arg.substr(16);
      char* end = nullptr;
      flags.slow_query_ms = std::strtod(ms.c_str(), &end);
      if (end == ms.c_str() || *end != '\0' || flags.slow_query_ms < 0.0) {
        std::fprintf(stderr,
                     "stindex_server: --slow-query-ms expects non-negative "
                     "milliseconds, got '%s'\n",
                     ms.c_str());
        std::exit(2);
      }
    } else if (arg.rfind("--slow-log=", 0) == 0) {
      flags.slow_log_path = arg.substr(11);
    } else if (arg == "--slow-log" && i + 1 < *argc) {
      flags.slow_log_path = argv[++i];
    } else if (arg.rfind("--update-frac=", 0) == 0 ||
               (arg == "--update-frac" && i + 1 < *argc)) {
      const std::string frac =
          arg == "--update-frac" ? argv[++i] : arg.substr(14);
      char* end = nullptr;
      flags.update_frac = std::strtod(frac.c_str(), &end);
      if (end == frac.c_str() || *end != '\0' || flags.update_frac < 0.0 ||
          flags.update_frac >= 1.0) {
        std::fprintf(stderr,
                     "stindex_server: --update-frac expects a fraction in "
                     "[0, 1), got '%s'\n",
                     frac.c_str());
        std::exit(2);
      }
    } else {
      matched = false;
      argv[out++] = argv[i];
    }
    if (matched && !value.empty()) {
      char* end = nullptr;
      const long n = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || n <= 0) {
        std::fprintf(stderr,
                     "stindex_server: --stream expects a positive query "
                     "count, got '%s'\n",
                     value.c_str());
        std::exit(2);
      }
      flags.stream = static_cast<size_t>(n);
    }
  }
  *argc = out;
  return flags;
}

// Writes the registry's Prometheus text rendering to --prom=PATH (no-op
// without the flag); shared by every server mode.
void DumpProm(const ServerFlags& flags, MetricRegistry& registry) {
  if (flags.prom_path.empty()) return;
  const std::string text = RenderPrometheus(registry.Snapshot());
  std::ofstream out(flags.prom_path);
  out << text;
  if (!out.good()) {
    std::fprintf(stderr, "stindex_server: write to '%s' failed\n",
                 flags.prom_path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s\n", flags.prom_path.c_str());
}

// Alternates the two paper query mixes into one request stream, so
// neighboring requests from one client exercise different access
// patterns (like interleaved dashboard + drill-down traffic).
std::vector<STQuery> MakeRequestStream(const BenchScale& scale, size_t total) {
  const size_t half = (total + 1) / 2;
  const std::vector<STQuery> snapshots =
      MakeQueries(MixedSnapshotSet(), half);
  const std::vector<STQuery> ranges = MakeQueries(SmallRangeSet(), half);
  std::vector<STQuery> stream;
  stream.reserve(total);
  for (size_t i = 0; i < total; ++i) {
    const std::vector<STQuery>& set = i % 2 == 0 ? snapshots : ranges;
    stream.push_back(set[(i / 2) % set.size()]);
  }
  return stream;
}

// --- mixed update/query mode (--update-frac > 0) -------------------------
//
// Request i is an update when the Bresenham accumulator crosses an
// integer (so updates are spread evenly through the stream at the exact
// requested fraction). Updates are pulled in stream order from one
// shared cursor under a mutex — the live tier requires globally
// non-decreasing times — while queries fan out across all clients
// through the tier's readers-writer lock and shared pool. A Commit every
// `kCommitEvery` applied updates acknowledges the batch through the WAL.
void RunMixed(const BenchArgs& args, const ServerFlags& flags) {
  constexpr size_t kCommitEvery = 32;
  if (flags.pack_at > 0 && args.db_path.empty()) {
    std::fprintf(stderr, "stindex_server: --pack-at requires --db=DIR\n");
    std::exit(2);
  }
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  const size_t stream_size =
      flags.stream == 0 ? scale.query_count * 20 : flags.stream;
  std::printf(
      "stindex_server (scale=%s, clients=%d, backend=%s): %zu-request "
      "stream at update-frac %.2f over a live tier of %zu objects.\n",
      scale.name.c_str(), args.threads,
      args.backend.empty() ? "store" : args.backend.c_str(), stream_size,
      flags.update_frac, n);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<LiveObservation> updates = MakeObservationStream(objects);
  const std::vector<STQuery> queries = MakeRequestStream(scale, stream_size);

  std::unique_ptr<PageBackend> wal;
  if (args.backend == "file") {
    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(args.db_path + "/stindex_server_wal.stpages");
    if (!file.ok()) {
      std::fprintf(stderr, "stindex_server: %s\n",
                   file.status().ToString().c_str());
      std::exit(1);
    }
    wal = std::move(file).value();
  } else {
    wal = std::make_unique<MemoryPageBackend>();
  }

  LiveTierOptions options;
  options.index.capacity = 32;  // seal eagerly so migration runs mid-bench
  options.query_pool_pages = args.buffer_pages;
  options.group_commit = flags.group_commit;
  options.commit_interval_us = flags.commit_interval_us;
  options.checkpoint_every_pages = flags.checkpoint_every;
  Result<std::unique_ptr<LiveTier>> opened =
      LiveTier::Open(options, std::move(wal));
  if (!opened.ok()) {
    std::fprintf(stderr, "stindex_server: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  LiveTier* tier = opened.value().get();

  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(args.threads));
  Report().SetParam("stream", static_cast<int64_t>(stream_size));
  Report().SetParam("backend", args.backend.empty() ? "store" : args.backend);
  Report().SetParam("update_frac", flags.update_frac);
  Report().SetParam("group_commit",
                    static_cast<int64_t>(flags.group_commit ? 1 : 0));
  Report().SetParam("commit_interval_us", flags.commit_interval_us);
  Report().SetParam("checkpoint_every",
                    static_cast<int64_t>(flags.checkpoint_every));
  Report().SetParam("pack_at", static_cast<int64_t>(flags.pack_at));

  std::mutex update_mu;
  size_t update_cursor = 0;
  size_t updates_applied = 0;
  size_t updates_dropped = 0;  // update slots with no work: exhausted stream
  bool update_failed = false;
  bool pack_done = false;

  const size_t chunks = ParallelChunks(args.threads, stream_size);
  std::vector<Histogram> query_latency(chunks);
  std::vector<Histogram> update_latency(chunks);
  std::vector<uint64_t> chunk_results(chunks, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("bench", "server_mixed_replay");
    span.Arg("requests", static_cast<int64_t>(stream_size))
        .Arg("clients", static_cast<int64_t>(args.threads));
    ParallelFor(args.threads, stream_size,
                [&](size_t chunk, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const bool is_update =
                        static_cast<size_t>(static_cast<double>(i + 1) *
                                            flags.update_frac) >
                        static_cast<size_t>(static_cast<double>(i) *
                                            flags.update_frac);
                    const auto start = std::chrono::steady_clock::now();
                    if (is_update) {
                      bool applied = false;
                      bool commit_due = false;
                      {
                        std::lock_guard<std::mutex> lock(update_mu);
                        if (update_failed || update_cursor >= updates.size()) {
                          // No-op slot (latched tier / exhausted stream):
                          // nothing was applied, so nothing may land in the
                          // update-latency histogram.
                          ++updates_dropped;
                        } else {
                          const Status status =
                              tier->Apply(updates[update_cursor]);
                          if (!status.ok()) {
                            std::fprintf(stderr,
                                         "stindex_server: update: %s\n",
                                         status.ToString().c_str());
                            update_failed = true;
                          } else {
                            ++update_cursor;
                            applied = true;
                            commit_due =
                                ++updates_applied % kCommitEvery == 0;
                            if (flags.pack_at > 0 && !pack_done &&
                                updates_applied >= flags.pack_at) {
                              // Freeze the historical tree into a zero-copy
                              // snapshot layer mid-stream; queries keep
                              // running concurrently (PackHistorical takes
                              // the tier's writer lock itself).
                              pack_done = true;
                              const Status packed = tier->PackHistorical(
                                  args.db_path +
                                  "/stindex_server_hist.stsnap");
                              if (!packed.ok()) {
                                std::fprintf(stderr,
                                             "stindex_server: pack: %s\n",
                                             packed.ToString().c_str());
                                update_failed = true;
                              }
                            }
                          }
                        }
                      }
                      // Commit outside update_mu so concurrent committers
                      // coalesce through the group-commit leader instead of
                      // serializing on the apply lock.
                      if (applied && commit_due && !tier->Commit().ok()) {
                        std::lock_guard<std::mutex> lock(update_mu);
                        update_failed = true;
                      }
                      if (applied) {
                        const std::chrono::duration<double, std::milli> ms =
                            std::chrono::steady_clock::now() - start;
                        update_latency[chunk].Record(ms.count());
                      }
                    } else {
                      const STQuery& query = queries[i];
                      std::vector<ObjectId> results;
                      if (query.IsSnapshot()) {
                        tier->SnapshotQuery(query.area, query.range.start,
                                            &results);
                      } else {
                        tier->IntervalQuery(query.area, query.range, &results);
                      }
                      const std::chrono::duration<double, std::milli> ms =
                          std::chrono::steady_clock::now() - start;
                      query_latency[chunk].Record(ms.count());
                      chunk_results[chunk] += results.size();
                    }
                  }
                });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  if (update_failed) {
    std::fprintf(stderr, "stindex_server: update stream failed\n");
    std::exit(1);
  }
  const Status commit = tier->Commit();
  if (!commit.ok()) {
    std::fprintf(stderr, "stindex_server: final commit: %s\n",
                 commit.ToString().c_str());
    std::exit(1);
  }

  uint64_t result_rows = 0;
  for (size_t i = 0; i < chunks; ++i) result_rows += chunk_results[i];
  MetricRegistry& registry = MetricRegistry::Global();
  MergeShards(query_latency, registry.GetHistogram("io.query.latency_ms"));
  MergeShards(update_latency, registry.GetHistogram("live.update.latency_ms"));

  const double seconds = wall.count();
  const double qps =
      seconds > 0.0 ? static_cast<double>(stream_size) / seconds : 0.0;
  const double ups = seconds > 0.0
                         ? static_cast<double>(updates_applied) / seconds
                         : 0.0;
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  const HistogramSnapshot update_ms =
      registry.GetHistogram("live.update.latency_ms")->Value().Snapshot();
  PrintHeader("stindex_server: mixed update/query replay",
              "clients | qps        | updates/s  | q_p50_ms | u_p50_ms | "
              "segments | live | rows");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %10.0f | %10.0f | %8.3f | %8.3f | %8zu | %4zu | %zu",
                args.threads, qps, ups, latency.p50, update_ms.p50,
                tier->migrated_segments().size(), tier->live_objects(),
                static_cast<size_t>(result_rows));
  PrintRow(row);

  if (updates_dropped > 0) {
    std::printf("  (%zu update slots dropped: stream exhausted)\n",
                updates_dropped);
  }

  Report().SetParam("updates_applied", static_cast<int64_t>(updates_applied));
  Report().SetParam("updates_dropped",
                    static_cast<int64_t>(updates_dropped));
  Report().SetParam("wal_checkpoints",
                    static_cast<int64_t>(tier->checkpoint_seq()));
  Report().SetParam("migrated_segments",
                    static_cast<int64_t>(tier->migrated_segments().size()));
  Report().SetParam("live_objects",
                    static_cast<int64_t>(tier->live_objects()));
  Report().SetParam("wal_commits", static_cast<int64_t>(tier->wal_commits()));
  Report().SetParam("frozen_layers",
                    static_cast<int64_t>(tier->frozen_layers()));
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("updates_per_s", "overall", ups);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("update_latency_p50_ms", "overall", update_ms.p50);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(result_rows));

  DumpProm(flags, registry);
}

void Run(const BenchArgs& args, const ServerFlags& flags) {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  const size_t stream_size =
      flags.stream == 0 ? scale.query_count * 20 : flags.stream;
  const size_t buffer_pages = args.buffer_pages == 0 ? 64 : args.buffer_pages;
  std::printf("stindex_server (scale=%s, clients=%d, backend=%s): %zu-query "
              "mixed stream over a %zu-object PPR-tree, one shared "
              "%zu-page pool.\n",
              scale.name.c_str(), args.threads,
              args.backend.empty() ? "store" : args.backend.c_str(),
              stream_size, n, buffer_pages);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records =
      SplitWithLaGreedy(objects, 150, args.threads);
  const std::unique_ptr<PprTree> tree = BuildPprTree(records);
  AttachBenchBackend(tree.get(), args, "server");
  const std::vector<STQuery> stream = MakeRequestStream(scale, stream_size);

  const std::unique_ptr<SharedBufferPool> pool =
      tree->NewSharedQueryPool(buffer_pages);
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(args.threads));
  Report().SetParam("stream", static_cast<int64_t>(stream_size));
  Report().SetParam("effective_buffer_pages",
                    static_cast<int64_t>(pool->capacity()));
  Report().SetParam("pool_shards", static_cast<int64_t>(pool->shard_count()));

  const size_t chunks = ParallelChunks(args.threads, stream.size());
  std::vector<IoStats> chunk_stats(chunks);
  std::vector<Histogram> latency_shards(chunks);
  std::vector<uint64_t> chunk_results(chunks, 0);
  const auto wall_start = std::chrono::steady_clock::now();
  {
    TraceSpan span("bench", "server_replay");
    span.Arg("requests", static_cast<int64_t>(stream.size()))
        .Arg("clients", static_cast<int64_t>(args.threads));
    ParallelFor(args.threads, stream.size(),
                [&](size_t chunk, size_t begin, size_t end) {
                  // Pass-through session: no per-query reset, stats
                  // mirror the shared pool's real hits and misses.
                  SharedBufferPool::Session session(pool.get(), 0);
                  Histogram& latency = latency_shards[chunk];
                  for (size_t q = begin; q < end; ++q) {
                    const STQuery& query = stream[q];
                    std::vector<PprDataId> results;
                    const auto start = std::chrono::steady_clock::now();
                    if (query.IsSnapshot()) {
                      tree->SnapshotQuery(query.area, query.range.start,
                                          &session, &results);
                    } else {
                      tree->IntervalQuery(query.area, query.range, &session,
                                          &results);
                    }
                    const std::chrono::duration<double, std::milli> elapsed =
                        std::chrono::steady_clock::now() - start;
                    latency.Record(elapsed.count());
                    chunk_results[chunk] += results.size();
                  }
                  chunk_stats[chunk] = session.stats();
                });
  }
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;

  IoStats total;
  uint64_t result_rows = 0;
  for (size_t i = 0; i < chunks; ++i) {
    total.accesses += chunk_stats[i].accesses;
    total.misses += chunk_stats[i].misses;
    result_rows += chunk_results[i];
  }
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("io.query.accesses")->Add(total.accesses);
  registry.GetCounter("io.query.misses")->Add(total.misses);
  MergeShards(latency_shards, registry.GetHistogram("io.query.latency_ms"));
  pool->PublishStats();

  const double seconds = wall.count();
  const double qps =
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0;
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  PrintHeader("stindex_server: shared-pool replay",
              "clients | qps        | p50_ms  | p95_ms  | p99_ms  | "
              "miss_rate | rows");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %10.0f | %7.3f | %7.3f | %7.3f | %9.4f | %zu",
                args.threads, qps, latency.p50, latency.p95, latency.p99,
                total.accesses == 0
                    ? 0.0
                    : static_cast<double>(total.misses) /
                          static_cast<double>(total.accesses),
                static_cast<size_t>(result_rows));
  PrintRow(row);
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(result_rows));

  DumpProm(flags, registry);
}

// --- soak mode (--soak) --------------------------------------------------
//
// A wall-clock-bounded endurance run for the telemetry plane: worker
// threads loop a mixed update/query workload over the live tier until
// the deadline while the exposition server serves /metrics, /healthz and
// /statusz live. Latencies record straight into the registry histograms
// (no determinism requirement here — soak output is wall-clock-shaped by
// definition), which is exactly what makes the sliding-window series
// move between scrapes. Queries at or above --slow-query-ms are captured
// with their full EXPLAIN profile into the slow-query ring.
void RunSoak(const BenchArgs& args, ServerFlags flags) {
  constexpr size_t kCommitEvery = 32;
  if (flags.update_frac == 0.0) flags.update_frac = 0.2;
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes.front();
  std::printf(
      "stindex_server --soak (scale=%s, clients=%d, backend=%s): %llds "
      "mixed workload at update-frac %.2f over a live tier of %zu "
      "objects.\n",
      scale.name.c_str(), args.threads,
      args.backend.empty() ? "store" : args.backend.c_str(),
      static_cast<long long>(flags.duration_s), flags.update_frac, n);

  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<LiveObservation> updates = MakeObservationStream(objects);
  const std::vector<STQuery> queries =
      MakeRequestStream(scale, scale.query_count * 4);

  std::unique_ptr<PageBackend> wal;
  if (args.backend == "file") {
    Result<std::unique_ptr<FilePageBackend>> file =
        FilePageBackend::Create(args.db_path + "/stindex_server_wal.stpages");
    if (!file.ok()) {
      std::fprintf(stderr, "stindex_server: %s\n",
                   file.status().ToString().c_str());
      std::exit(1);
    }
    wal = std::move(file).value();
  } else {
    wal = std::make_unique<MemoryPageBackend>();
  }

  LiveTierOptions options;
  options.index.capacity = 32;
  options.query_pool_pages = args.buffer_pages;
  options.group_commit = flags.group_commit;
  options.commit_interval_us = flags.commit_interval_us;
  options.checkpoint_every_pages = flags.checkpoint_every;
  Result<std::unique_ptr<LiveTier>> opened =
      LiveTier::Open(options, std::move(wal));
  if (!opened.ok()) {
    std::fprintf(stderr, "stindex_server: %s\n",
                 opened.status().ToString().c_str());
    std::exit(1);
  }
  LiveTier* tier = opened.value().get();

  SlowQueryLog slow_log(
      flags.slow_query_ms >= 0.0 ? flags.slow_query_ms : 0.0);
  const bool capture_slow = flags.slow_query_ms >= 0.0;
  if (capture_slow && !flags.slow_log_path.empty() &&
      !slow_log.OpenJsonlSink(flags.slow_log_path)) {
    std::fprintf(stderr, "stindex_server: cannot open slow log '%s'\n",
                 flags.slow_log_path.c_str());
    std::exit(1);
  }

  // The telemetry plane: healthz tracks the tier's WAL latch, statusz
  // carries the tier telemetry, pool occupancy and the slow-query ring.
  HttpExpositionServer exposition{[&flags] {
    HttpExpositionOptions opt;
    opt.port = static_cast<uint16_t>(
        flags.metrics_port < 0 ? 0 : flags.metrics_port);
    opt.epoch_seconds = 1.0;  // fine-grained window for short soaks
    opt.window_epochs = 30;
    return opt;
  }()};
  const bool serve = flags.metrics_port >= 0;
  if (serve) {
    exposition.set_health_check([tier](std::string* detail) {
      if (tier->latched()) {
        *detail = "live tier latched on a WAL I/O failure";
        return false;
      }
      return true;
    });
    exposition.set_status_source([tier, &slow_log](JsonWriter* json) {
      const LiveTier::Telemetry t = tier->GetTelemetry();
      json->Key("live").BeginObject();
      json->Key("latched").Bool(t.latched);
      json->Key("finished").Bool(t.finished);
      json->Key("objects").Uint(t.live_objects);
      json->Key("buffered_instants").Uint(t.buffered_instants);
      json->Key("pending_events").Uint(t.pending_events);
      json->Key("frozen_layers").Uint(t.frozen_layers);
      json->Key("watermark").Int(t.watermark);
      json->Key("last_time").Int(t.last_time);
      json->Key("watermark_lag").Int(t.last_time - t.watermark);
      json->Key("wal").BeginObject();
      json->Key("records").Uint(t.wal_records);
      json->Key("pages").Uint(t.wal_pages);
      json->Key("tail_pages").Uint(t.wal_tail_pages);
      json->Key("commits").Uint(t.wal_commits);
      json->Key("checkpoint_seq").Uint(t.checkpoint_seq);
      json->Key("seconds_since_checkpoint")
          .Double(t.seconds_since_checkpoint);
      json->EndObject();
      json->Key("pool_shards").BeginArray();
      for (const auto& shard : t.pool_shards) {
        json->BeginObject();
        json->Key("capacity").Uint(shard.capacity);
        json->Key("cached").Uint(shard.cached);
        json->Key("pinned").Uint(shard.pinned);
        json->Key("dirty").Uint(shard.dirty);
        json->EndObject();
      }
      json->EndArray();
      json->EndObject();
      json->Key("slow_queries");
      slow_log.RenderStatusz(json);
    });
    const Status started = exposition.Start();
    if (!started.ok()) {
      std::fprintf(stderr, "stindex_server: exposition: %s\n",
                   started.ToString().c_str());
      std::exit(1);
    }
    std::printf("  telemetry: http://127.0.0.1:%u/metrics (healthz, "
                "statusz)\n",
                exposition.port());
    if (!flags.port_file.empty()) {
      std::ofstream out(flags.port_file);
      out << exposition.port() << "\n";
      if (!out.good()) {
        std::fprintf(stderr, "stindex_server: write to '%s' failed\n",
                     flags.port_file.c_str());
        std::exit(1);
      }
    }
  }

  MetricRegistry& registry = MetricRegistry::Global();
  HistogramMetric* query_latency = registry.GetHistogram("io.query.latency_ms");
  HistogramMetric* update_latency =
      registry.GetHistogram("live.update.latency_ms");
  Counter* soak_queries = registry.GetCounter("soak.queries");
  Counter* soak_updates = registry.GetCounter("soak.updates");
  Counter* soak_slow = registry.GetCounter("soak.slow_queries");

  const auto wall_start = std::chrono::steady_clock::now();
  const auto deadline =
      wall_start + std::chrono::seconds(flags.duration_s);
  std::atomic<size_t> request_counter{0};
  std::atomic<uint64_t> result_rows{0};
  std::mutex update_mu;
  size_t update_cursor = 0;
  size_t updates_applied = 0;
  bool update_failed = false;

  const int workers = args.threads < 1 ? 1 : args.threads;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (std::chrono::steady_clock::now() < deadline) {
        const size_t i =
            request_counter.fetch_add(1, std::memory_order_relaxed);
        // The same Bresenham slotting as RunMixed: request i is an
        // update when the accumulator crosses an integer.
        const bool is_update =
            static_cast<size_t>(static_cast<double>(i + 1) *
                                flags.update_frac) >
            static_cast<size_t>(static_cast<double>(i) * flags.update_frac);
        const auto start = std::chrono::steady_clock::now();
        if (is_update) {
          bool applied = false;
          bool commit_due = false;
          {
            std::lock_guard<std::mutex> lock(update_mu);
            // The observation stream is finite and must apply in time
            // order; once exhausted (or failed) update slots fall
            // through to queries below.
            if (!update_failed && update_cursor < updates.size()) {
              const Status status = tier->Apply(updates[update_cursor]);
              if (!status.ok()) {
                std::fprintf(stderr, "stindex_server: update: %s\n",
                             status.ToString().c_str());
                update_failed = true;
              } else {
                ++update_cursor;
                applied = true;
                commit_due = ++updates_applied % kCommitEvery == 0;
              }
            }
          }
          if (applied && commit_due && !tier->Commit().ok()) {
            std::lock_guard<std::mutex> lock(update_mu);
            update_failed = true;
          }
          if (applied) {
            const std::chrono::duration<double, std::milli> ms =
                std::chrono::steady_clock::now() - start;
            update_latency->Record(ms.count());
            soak_updates->Increment();
            continue;
          }
        }
        const STQuery& query = queries[i % queries.size()];
        std::vector<ObjectId> results;
        QueryProfile profile;
        QueryProfile* profile_ptr = capture_slow ? &profile : nullptr;
        if (query.IsSnapshot()) {
          tier->SnapshotQuery(query.area, query.range.start, &results,
                              profile_ptr);
        } else {
          tier->IntervalQuery(query.area, query.range, &results, profile_ptr);
        }
        const std::chrono::duration<double, std::milli> ms =
            std::chrono::steady_clock::now() - start;
        query_latency->Record(ms.count());
        soak_queries->Increment();
        result_rows.fetch_add(results.size(), std::memory_order_relaxed);
        if (capture_slow &&
            slow_log.MaybeRecord(ms.count(), query.IsSnapshot(), query.area,
                                 query.range, results.size(), profile)) {
          soak_slow->Increment();
        }
      }
    });
  }

  // The main thread is the publisher: every interval it pushes the
  // tier's state gauges into the registry (so scrapes see fresh values)
  // and prints one progress line of interval deltas.
  uint64_t last_queries = 0;
  uint64_t last_updates = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const auto interval_end =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(flags.publish_interval_s));
    std::this_thread::sleep_until(std::min(interval_end, deadline));
    tier->PublishGauges();
    const uint64_t q = soak_queries->Value();
    const uint64_t u = soak_updates->Value();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - wall_start;
    std::printf(
        "  t=%6.1fs  +%llu queries  +%llu updates  scrapes=%llu  slow=%llu\n",
        elapsed.count(), static_cast<unsigned long long>(q - last_queries),
        static_cast<unsigned long long>(u - last_updates),
        static_cast<unsigned long long>(exposition.scrapes()),
        static_cast<unsigned long long>(slow_log.captured()));
    std::fflush(stdout);
    last_queries = q;
    last_updates = u;
  }
  for (std::thread& worker : pool) worker.join();

  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start;
  if (update_failed) {
    std::fprintf(stderr, "stindex_server: update stream failed\n");
    std::exit(1);
  }
  const Status commit = tier->Commit();
  if (!commit.ok()) {
    std::fprintf(stderr, "stindex_server: final commit: %s\n",
                 commit.ToString().c_str());
    std::exit(1);
  }
  tier->PublishGauges();

  const double seconds = wall.count();
  const uint64_t total_queries = soak_queries->Value();
  const uint64_t total_updates = soak_updates->Value();
  const double qps =
      seconds > 0.0 ? static_cast<double>(total_queries) / seconds : 0.0;
  const double ups =
      seconds > 0.0 ? static_cast<double>(total_updates) / seconds : 0.0;
  const HistogramSnapshot latency = query_latency->Value().Snapshot();
  PrintHeader("stindex_server: soak",
              "clients | seconds | qps        | updates/s  | q_p50_ms | "
              "q_p99_ms | scrapes | slow");
  char row[256];
  std::snprintf(row, sizeof(row),
                "%7d | %7.1f | %10.0f | %10.0f | %8.3f | %8.3f | %7llu | %llu",
                workers, seconds, qps, ups, latency.p50, latency.p99,
                static_cast<unsigned long long>(exposition.scrapes()),
                static_cast<unsigned long long>(slow_log.captured()));
  PrintRow(row);

  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("clients", static_cast<int64_t>(workers));
  Report().SetParam("backend", args.backend.empty() ? "store" : args.backend);
  Report().SetParam("update_frac", flags.update_frac);
  Report().SetParam("duration_s", flags.duration_s);
  Report().SetParam("soak_queries", static_cast<int64_t>(total_queries));
  Report().SetParam("soak_updates", static_cast<int64_t>(total_updates));
  Report().SetParam("scrapes", static_cast<int64_t>(exposition.scrapes()));
  Report().SetParam("slow_queries",
                    static_cast<int64_t>(slow_log.captured()));
  Report().SetParam("wal_checkpoints",
                    static_cast<int64_t>(tier->checkpoint_seq()));
  Report().SetParam("wal_commits", static_cast<int64_t>(tier->wal_commits()));
  Report().AddSample("qps", "overall", qps);
  Report().AddSample("updates_per_s", "overall", ups);
  Report().AddSample("latency_p50_ms", "overall", latency.p50);
  Report().AddSample("latency_p95_ms", "overall", latency.p95);
  Report().AddSample("latency_p99_ms", "overall", latency.p99);
  Report().AddSample("result_rows", "overall",
                     static_cast<double>(
                         result_rows.load(std::memory_order_relaxed)));

  DumpProm(flags, registry);
  if (serve) exposition.Stop();
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  stindex::bench::ServerFlags flags =
      stindex::bench::ExtractServerFlags(&argc, argv);
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "stindex_server", /*accept_backend=*/true);
  if (flags.soak) {
    stindex::bench::RunSoak(args, flags);
  } else if (flags.update_frac > 0.0) {
    stindex::bench::RunMixed(args, flags);
  } else {
    stindex::bench::Run(args, flags);
  }
  stindex::bench::FinishReport(args);
  return 0;
}
