// Robustness appendix: the headline comparison (PPR with 150% LAGreedy
// splits vs R* with 1%) on a heavily skewed Gaussian-cluster workload —
// a third dataset family beyond the paper's uniform and railway data.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "datagen/clustered_dataset.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Clustered (Gaussian hot-spot) datasets (scale=%s): avg disk "
              "accesses.\n",
              scale.name.c_str());
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  PrintHeader("Clustered: PPR(150%) vs R*(1%)",
              "objects | ppr_snap   | rstar_snap | ppr_range  | "
              "rstar_range");
  for (size_t n : scale.dataset_sizes) {
    ClusteredDatasetConfig config;
    config.num_objects = n;
    const std::vector<Trajectory> objects =
        GenerateClusteredDataset(config);

    const std::vector<SegmentRecord> ppr_records =
        SplitWithLaGreedy(objects, 150);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(ppr_records);
    const std::vector<SegmentRecord> rstar_records =
        SplitWithLaGreedy(objects, 1);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(rstar_records, 1000);

    const double ppr_snap = AveragePprIo(*ppr, snaps);
    const double rstar_snap = AverageRStarIo(*rstar, snaps, 1000);
    const double ppr_range = AveragePprIo(*ppr, ranges);
    const double rstar_range = AverageRStarIo(*rstar, ranges, 1000);
    char row[160];
    std::snprintf(row, sizeof(row),
                  "%7zu | %10.2f | %10.2f | %10.2f | %11.2f", n, ppr_snap,
                  rstar_snap, ppr_range, rstar_range);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("ppr_snapshot_io", x, ppr_snap);
    Report().AddSample("rstar_snapshot_io", x, rstar_snap);
    Report().AddSample("ppr_range_io", x, ppr_range);
    Report().AddSample("rstar_range_io", x, rstar_range);
  }
  std::printf("\nExpected shape: the PPR-tree's advantage persists under "
              "heavy spatial skew, matching the uniform and railway "
              "results.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_clustered_io");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
