#ifndef STINDEX_BENCH_BENCH_COMMON_H_
#define STINDEX_BENCH_BENCH_COMMON_H_

// Shared infrastructure for the experiment harnesses. One binary per
// paper table/figure; each prints the same rows/series the paper reports.
//
// Scale control: the paper's datasets (10k-80k objects) and 1000-query
// sets take a while on one core, especially for the dynamic programming
// algorithms (the paper itself reports ~a day of CPU for DPSplit on the
// large sets). Set STINDEX_SCALE=small (default), medium, or paper.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bench_report.h"
#include "core/query_profile.h"
#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "datagen/railway.h"
#include "datagen/random_dataset.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {
namespace bench {

struct BenchScale {
  std::string name;
  // Dataset sizes for the index/query experiments (paper: 10k-80k).
  std::vector<size_t> dataset_sizes;
  // Smaller sizes for experiments that run the quadratic DP algorithms
  // over every object.
  std::vector<size_t> dp_dataset_sizes;
  // Queries evaluated per query set (paper: 1000).
  size_t query_count = 200;
};

// Reads STINDEX_SCALE (small | medium | paper).
BenchScale GetScale();

// Command-line parsing (--threads, --json) lives in bench_report.h; the
// thread count resolves through util/threads.h exactly like stindex_cli
// (`--threads=N` > STINDEX_THREADS > 1, validated). All parallel paths
// are deterministic, so any value reproduces the serial numbers.

// Paper-configured random dataset of n moving rectangles (Table I row).
std::vector<Trajectory> MakeRandomDataset(size_t n, uint64_t seed = 42);

// Random dataset with a compressed time domain so that the alive density
// (objects per instant) matches the paper's large datasets even when n is
// small. Used by the I/O experiments that must also run the quadratic
// optimal algorithms. Returns the dataset and sets *time_domain.
std::vector<Trajectory> MakeDenseRandomDataset(size_t n, Time* time_domain,
                                               uint64_t seed = 42);

// Paper-configured railway dataset of n trains.
std::vector<Trajectory> MakeRailwayDataset(size_t n, uint64_t seed = 7);

// Splits the dataset with LAGreedy at `percent`% of the object count
// (MergeSplit curves) and returns the segment records. percent == 0 means
// the unsplit single-MBR representation. num_threads > 1 parallelizes the
// curve computation and segment materialization (identical output).
std::vector<SegmentRecord> SplitWithLaGreedy(
    const std::vector<Trajectory>& objects, int percent, int num_threads = 1);

// Builds an R*-tree over the records (time axis scaled to unit range).
std::unique_ptr<RStarTree> BuildRStar(const std::vector<SegmentRecord>& records,
                                      Time time_domain);

// Average disk accesses (buffer misses, buffer reset per query) over the
// query set.
//
// All workers share ONE sharded SharedBufferPool of `buffer_pages` total
// frames (0 = the tree's configured default, the paper's 10-page setup) —
// `--buffer-pages` means total resident capacity regardless of
// --threads. Each worker runs its contiguous chunk through a private
// SharedBufferPool::Session whose simulated LRU (same capacity as the
// pool) implements the paper's measurement protocol: reset before every
// query, so per-query miss counts are partition-independent and the
// aggregate equals the serial run exactly at any thread count. Page
// bytes come from the shared pool, so with a backend attached the real
// read count reflects the shared capacity (reads <= protocol misses).
// Per-worker protocol IoStats are summed into *aggregate when non-null;
// the pool's total capacity is recorded as report param
// "effective_buffer_pages".
//
// When `refiner` is non-null every query's candidates are re-checked
// against the exact trajectory geometry and the rejects are published to
// the io.query.false_hits counter (the paper's empty-space effect as a
// number). When `profile` is non-null, per-chunk QueryProfile shards are
// collected and merged into it in ascending chunk order (integer counts,
// so totals are thread-count independent).
double AveragePprIo(const PprTree& tree, const std::vector<STQuery>& queries,
                    int num_threads = 1, IoStats* aggregate = nullptr,
                    const FalseHitRefiner* refiner = nullptr,
                    QueryProfile* profile = nullptr, size_t buffer_pages = 0);
double AverageRStarIo(const RStarTree& tree,
                      const std::vector<STQuery>& queries, Time time_domain,
                      int num_threads = 1, IoStats* aggregate = nullptr,
                      const FalseHitRefiner* refiner = nullptr,
                      QueryProfile* profile = nullptr, size_t buffer_pages = 0);

// Persists `tree` through the storage backend selected by --backend/--db
// (no-op for the default in-memory store) and records the choice as
// report param "backend" ("store" | "memory" | "file"). After this the
// tree's query buffers read real pages, so the io.query.* misses the
// drivers report are actual backend reads. `tag` distinguishes the page
// files of multiple trees in one run. Failures print and exit(1).
void AttachBenchBackend(RStarTree* tree, const BenchArgs& args,
                        const std::string& tag);
void AttachBenchBackend(PprTree* tree, const BenchArgs& args,
                        const std::string& tag);

// A query set from Table II, truncated to `count` queries.
std::vector<STQuery> MakeQueries(const QuerySetConfig& config, size_t count);

// Formatted output helpers: pipe-separated table rows.
void PrintHeader(const std::string& title, const std::string& columns);
void PrintRow(const std::string& cells);

}  // namespace bench
}  // namespace stindex

#endif  // STINDEX_BENCH_BENCH_COMMON_H_
