// Ablation: overlapping vs multiversion partial persistence. The paper's
// introduction contrasts the two ways of making a 2-D structure
// partially persistent: overlapping trees ([17], [29]) are "easy to
// implement [but create] a logarithmic overhead on the index storage
// requirements", while the multiversion approach ([14], [25]) keeps
// storage linear in the number of changes. This harness pits the HR-tree
// against the PPR-tree on identical split datasets.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "hrtree/hr_tree.h"

namespace stindex {
namespace bench {
namespace {

double AverageHrIo(const HrTree& tree, const std::vector<STQuery>& queries) {
  uint64_t misses = 0;
  std::vector<HrDataId> results;
  for (const STQuery& query : queries) {
    tree.ResetQueryState();
    if (query.IsSnapshot()) {
      tree.SnapshotQuery(query.area, query.range.start, &results);
    } else {
      tree.IntervalQuery(query.area, query.range, &results);
    }
    misses += tree.stats().misses;
  }
  return static_cast<double>(misses) / static_cast<double>(queries.size());
}

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Overlapping (HR-tree) vs multiversion (PPR-tree) ablation "
              "(scale=%s): LAGreedy 150%% splits.\n",
              scale.name.c_str());
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  const std::vector<STQuery> small_ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  const std::vector<STQuery> medium_ranges =
      MakeQueries(MediumRangeSet(), scale.query_count);

  PrintHeader("HR vs PPR: avg disk accesses and pages",
              "objects | structure | snap   | small_rng | medium_rng | "
              "pages");
  for (size_t n : {scale.dataset_sizes[0], scale.dataset_sizes[2]}) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, 150);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    const std::unique_ptr<HrTree> hr = BuildHrTree(records);
    const double ppr_snap = AveragePprIo(*ppr, snaps);
    const double ppr_small = AveragePprIo(*ppr, small_ranges);
    const double ppr_medium = AveragePprIo(*ppr, medium_ranges);
    const double hr_snap = AverageHrIo(*hr, snaps);
    const double hr_small = AverageHrIo(*hr, small_ranges);
    const double hr_medium = AverageHrIo(*hr, medium_ranges);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%7zu | %-9s | %6.2f | %9.2f | %10.2f | %6zu", n, "ppr",
                  ppr_snap, ppr_small, ppr_medium, ppr->PageCount());
    PrintRow(line);
    std::snprintf(line, sizeof(line),
                  "%7zu | %-9s | %6.2f | %9.2f | %10.2f | %6zu", n, "hr",
                  hr_snap, hr_small, hr_medium, hr->PageCount());
    PrintRow(line);
    const double x = static_cast<double>(n);
    Report().AddSample("ppr_snapshot_io", x, ppr_snap);
    Report().AddSample("ppr_small_range_io", x, ppr_small);
    Report().AddSample("ppr_medium_range_io", x, ppr_medium);
    Report().AddSample("ppr_pages", x, static_cast<double>(ppr->PageCount()));
    Report().AddSample("hr_snapshot_io", x, hr_snap);
    Report().AddSample("hr_small_range_io", x, hr_small);
    Report().AddSample("hr_medium_range_io", x, hr_medium);
    Report().AddSample("hr_pages", x, static_cast<double>(hr->PageCount()));
  }
  std::printf("\nExpected shape: snapshot I/O comparable (both behave like "
              "an ephemeral R-tree), but the HR-tree needs several times "
              "the space and degrades sharply on longer interval queries — "
              "the paper's stated reason to build on the multiversion "
              "approach.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_ablation_overlapping");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
