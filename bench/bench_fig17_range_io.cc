// Figure 17: average disk accesses for small range queries across random
// dataset sizes: PPR-tree with 150% LAGreedy splits vs R*-tree with 1%
// splits vs R*-tree over piecewise-split data ([21]-style). Shape to
// reproduce: the split PPR-tree is clearly best; piecewise is worst.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/piecewise_split.h"
#include "core/query_profile.h"

namespace stindex {
namespace bench {
namespace {

void Run(const BenchArgs& args) {
  const int num_threads = args.threads;
  const BenchScale scale = GetScale();
  std::printf("Figure 17 reproduction (scale=%s, threads=%d, backend=%s): "
              "avg disk accesses, small range queries.\n",
              scale.name.c_str(), num_threads,
              args.backend.empty() ? "store" : args.backend.c_str());
  const std::vector<STQuery> queries =
      MakeQueries(SmallRangeSet(), scale.query_count);
  PrintHeader("Fig 17: small range queries across dataset sizes",
              "objects | ppr150_io  | rstar1_io  | piecewise_io | "
              "piecewise_splits%%");
  for (size_t n : scale.dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);

    const std::vector<SegmentRecord> ppr_records =
        SplitWithLaGreedy(objects, 150, num_threads);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(ppr_records);
    AttachBenchBackend(ppr.get(), args, "ppr150");

    const std::vector<SegmentRecord> rstar_records =
        SplitWithLaGreedy(objects, 1, num_threads);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(rstar_records, 1000);
    AttachBenchBackend(rstar.get(), args, "rstar1");

    int64_t piecewise_splits = 0;
    const std::vector<SegmentRecord> piecewise_records =
        PiecewiseSplitAll(objects, &piecewise_splits);
    const std::unique_ptr<RStarTree> piecewise =
        BuildRStar(piecewise_records, 1000);
    AttachBenchBackend(piecewise.get(), args, "piecewise");

    // Refine the PPR candidates against exact trajectories so the report
    // carries the false-hit totals (io.query.false_hits).
    const FalseHitRefiner refiner(objects, ppr_records);
    QueryProfile ppr_profile;
    const double ppr_io =
        AveragePprIo(*ppr, queries, num_threads, /*aggregate=*/nullptr,
                     &refiner, &ppr_profile, args.buffer_pages);
    const double rstar_io =
        AverageRStarIo(*rstar, queries, 1000, num_threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    const double piecewise_io =
        AverageRStarIo(*piecewise, queries, 1000, num_threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %10.2f | %10.2f | %12.2f | %8.0f%%", n, ppr_io,
                  rstar_io, piecewise_io,
                  100.0 * static_cast<double>(piecewise_splits) /
                      static_cast<double>(n));
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("ppr150_io", x, ppr_io);
    Report().AddSample("rstar1_io", x, rstar_io);
    Report().AddSample("piecewise_io", x, piecewise_io);
    Report().AddSample("ppr150_false_hits_per_query", x,
                       static_cast<double>(ppr_profile.false_hits) /
                           static_cast<double>(queries.size()));
  }
  std::printf("\nExpected shape: ppr150_io lowest at every size; the "
              "piecewise R*-tree is by far the worst (paper Figure 17; "
              "piecewise uses ~300-400%% splits).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "bench_fig17_range_io", /*accept_backend=*/true);
  stindex::bench::Run(args);
  stindex::bench::FinishReport(args);
  return 0;
}
