// Table II: the snapshot and range query sets.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void PrintQuerySet(const QuerySetConfig& config, size_t count) {
  const std::vector<STQuery> queries = MakeQueries(config, count);
  double min_w = 1.0, max_w = 0.0;
  Time min_d = 1 << 20, max_d = 0;
  for (const STQuery& query : queries) {
    min_w = std::min({min_w, query.area.Width(), query.area.Height()});
    max_w = std::max({max_w, query.area.Width(), query.area.Height()});
    min_d = std::min(min_d, query.range.Duration());
    max_d = std::max(max_d, query.range.Duration());
  }
  char row[256];
  std::snprintf(row, sizeof(row),
                "%-14s | %6zu | %6.3f%%-%6.3f%% | %3lld-%3lld",
                config.name.c_str(), queries.size(), min_w * 100.0,
                max_w * 100.0, static_cast<long long>(min_d),
                static_cast<long long>(max_d));
  PrintRow(row);
  Report().AddSample("count", config.name,
                     static_cast<double>(queries.size()));
  Report().AddSample("min_extent_pct", config.name, min_w * 100.0);
  Report().AddSample("max_extent_pct", config.name, max_w * 100.0);
  Report().AddSample("min_duration", config.name, static_cast<double>(min_d));
  Report().AddSample("max_duration", config.name, static_cast<double>(max_d));
}

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Table II reproduction (scale=%s): cardinality, generated "
              "extents (%% of space side), duration (instants).\n",
              scale.name.c_str());
  PrintHeader("Table II: query sets",
              "set            | count  | extents          | duration");
  for (const QuerySetConfig& config :
       {TinySnapshotSet(), SmallSnapshotSet(), MixedSnapshotSet(),
        LargeSnapshotSet(), SmallRangeSet(), MediumRangeSet()}) {
    PrintQuerySet(config, scale.query_count);
  }
  std::printf("\nPaper values: tiny 0.01-0.1%%, small 0.1-1%%, mixed "
              "0.1-5%%, large 1-5%%; snapshots last 1 instant, small range "
              "1-10, medium range 10-50.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_table2_queries");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
