// Figure 12: total volume after optimally distributing 50% splits, with
// per-object volume curves computed by DPSplit vs MergeSplit. The shape
// to reproduce: MergeSplit yields nearly the same total volume as the
// optimal DPSplit.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/distribute.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Figure 12 reproduction (scale=%s): total volume after "
              "optimally distributing 50%% splits over curves from DPSplit "
              "vs MergeSplit.\n",
              scale.name.c_str());
  PrintHeader("Fig 12: total volume, DPSplit vs MergeSplit curves",
              "objects | unsplit_vol | dp_vol      | merge_vol   | merge/dp");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    const int64_t budget = static_cast<int64_t>(n) / 2;  // 50% splits

    const std::vector<VolumeCurve> dp_curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kDp);
    const std::vector<VolumeCurve> merge_curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);

    const double unsplit = UnsplitVolume(dp_curves);
    const double dp_volume = DistributeOptimal(dp_curves, budget).total_volume;
    const double merge_volume =
        DistributeOptimal(merge_curves, budget).total_volume;

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %11.4f | %11.4f | %11.4f | %7.4f", n, unsplit,
                  dp_volume, merge_volume, merge_volume / dp_volume);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("unsplit_volume", x, unsplit);
    Report().AddSample("dp_volume", x, dp_volume);
    Report().AddSample("merge_volume", x, merge_volume);
  }
  std::printf("\nExpected shape: merge/dp ratio close to 1.0 (MergeSplit "
              "produces near-optimal splits, paper Figure 12).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_fig12_split_volume");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
