// Validation of the Section IV analytical cost models: for each query
// set, compare the model-predicted node accesses against the I/O actually
// measured on the built index. The split advisor is only as good as these
// predictions, so the trends (ordering across query sets, response to
// splitting) must agree even where absolute values drift.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "model/ppr_cost_model.h"
#include "model/rtree_cost_model.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  std::printf("Cost-model validation (scale=%s): %zu-object random "
              "dataset.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  Report().SetParam("objects", static_cast<int64_t>(n));

  for (const int percent : {0, 150}) {
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, percent);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(records, 1000);
    const PprCostModel ppr_model =
        PprCostModel::FromSegments(records, 1000, 30.0);
    const RTreeCostModel rstar_model = RTreeCostModel::FromBoxes(
        SegmentsToBoxes(records, 0, 1000), 35.0);

    char title[96];
    std::snprintf(title, sizeof(title),
                  "Model vs measured, %d%% splits", percent);
    PrintHeader(title,
                "query set      | ppr_pred | ppr_meas | rstar_pred | "
                "rstar_meas");
    for (const QuerySetConfig& config :
         {SmallSnapshotSet(), MixedSnapshotSet(), SmallRangeSet(),
          MediumRangeSet()}) {
      const std::vector<STQuery> queries =
          MakeQueries(config, scale.query_count);
      double ppr_predicted = 0.0;
      double rstar_predicted = 0.0;
      for (const STQuery& query : queries) {
        ppr_predicted += ppr_model.ExpectedNodeAccesses(
            query.area.Width(), query.area.Height(),
            query.range.Duration());
        rstar_predicted += rstar_model.ExpectedNodeAccesses(
            {query.area.Width(), query.area.Height(),
             static_cast<double>(query.range.Duration()) / 1000.0});
      }
      ppr_predicted /= static_cast<double>(queries.size());
      rstar_predicted /= static_cast<double>(queries.size());
      const double ppr_measured = AveragePprIo(*ppr, queries);
      const double rstar_measured = AverageRStarIo(*rstar, queries, 1000);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%-14s | %8.2f | %8.2f | %10.2f | %10.2f",
                    config.name.c_str(), ppr_predicted, ppr_measured,
                    rstar_predicted, rstar_measured);
      PrintRow(line);
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "pct%d.", percent);
      Report().AddSample(std::string(prefix) + "ppr_predicted", config.name,
                         ppr_predicted);
      Report().AddSample(std::string(prefix) + "ppr_measured", config.name,
                         ppr_measured);
      Report().AddSample(std::string(prefix) + "rstar_predicted", config.name,
                         rstar_predicted);
      Report().AddSample(std::string(prefix) + "rstar_measured", config.name,
                         rstar_measured);
    }
  }
  std::printf("\nExpected shape: predictions track the measured ordering "
              "across query sets and capture the drop in PPR cost after "
              "splitting; absolute values agree within a small factor "
              "(analytical models assume uniformity).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_model_validation");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
