// Section V-D (railway results; figures omitted in the paper for space):
// the PPR-tree with 150% splits vs the R*-tree with 1% splits on the
// skewed railway datasets, for snapshot and small range queries. Shape to
// reproduce: "for the railway datasets we observe that the PPR-tree is
// again superior in all cases".
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Railway experiments (scale=%s): avg disk accesses on the "
              "skewed train datasets.\n",
              scale.name.c_str());
  const std::vector<STQuery> snapshots =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  PrintHeader("Railway: PPR(150%) vs R*(1%)",
              "trains  | ppr_snap   | rstar_snap | ppr_range  | rstar_range");
  for (size_t n : scale.dataset_sizes) {
    const std::vector<Trajectory> trains = MakeRailwayDataset(n);

    const std::vector<SegmentRecord> ppr_records =
        SplitWithLaGreedy(trains, 150);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(ppr_records);

    const std::vector<SegmentRecord> rstar_records =
        SplitWithLaGreedy(trains, 1);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(rstar_records, 1000);

    const double ppr_snap = AveragePprIo(*ppr, snapshots);
    const double rstar_snap = AverageRStarIo(*rstar, snapshots, 1000);
    const double ppr_range = AveragePprIo(*ppr, ranges);
    const double rstar_range = AverageRStarIo(*rstar, ranges, 1000);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %10.2f | %10.2f | %10.2f | %11.2f", n, ppr_snap,
                  rstar_snap, ppr_range, rstar_range);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("ppr_snapshot_io", x, ppr_snap);
    Report().AddSample("rstar_snapshot_io", x, rstar_snap);
    Report().AddSample("ppr_range_io", x, ppr_range);
    Report().AddSample("rstar_range_io", x, rstar_range);
  }
  std::printf("\nExpected shape: PPR-tree superior on both query types at "
              "every size (paper Section V-D).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_railway_io");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
