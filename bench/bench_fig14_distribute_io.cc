// Figure 14: average disk accesses for mixed snapshot queries on PPR-trees
// built from data split with the Optimal, Greedy and LAGreedy
// distribution algorithms (150% splits). Shape to reproduce: LAGreedy
// matches Optimal; plain Greedy is inferior.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/distribute.h"
#include "util/random.h"

namespace stindex {
namespace bench {
namespace {

// Adversarial dataset for the non-monotone case of Figure 4: half the
// objects perform a V-shaped out-and-back excursion, for which ONE split
// yields (almost) no volume gain but TWO splits yield a large one —
// exactly the objects plain Greedy starves.
std::vector<Trajectory> MakeVShapeDataset(size_t n, Time domain) {
  Rng rng(99);
  std::vector<Trajectory> objects;
  for (size_t i = 0; i < n; ++i) {
    const Time life = rng.UniformInt(20, 60);
    const Time start = rng.UniformInt(0, domain - life);
    const double extent = 0.005;
    std::vector<MovementTuple> tuples;
    if (i % 3 != 0) {
      // Out and back: x sweeps distance d and returns.
      const double x0 = rng.UniformDouble(0.1, 0.5);
      const double y0 = rng.UniformDouble(0.1, 0.9);
      const double d = rng.UniformDouble(0.2, 0.4);
      const Time half = life / 2;
      MovementTuple out;
      out.interval = TimeInterval(start, start + half);
      out.center_x = Polynomial::Linear(x0, d / static_cast<double>(half));
      out.center_y = Polynomial::Constant(y0);
      out.extent_x = Polynomial::Constant(extent);
      out.extent_y = Polynomial::Constant(extent);
      MovementTuple back;
      back.interval = TimeInterval(start + half, start + life);
      back.center_x = Polynomial::Linear(
          x0 + d, -d / static_cast<double>(life - half));
      back.center_y = Polynomial::Constant(y0);
      back.extent_x = Polynomial::Constant(extent);
      back.extent_y = Polynomial::Constant(extent);
      tuples = {out, back};
    } else {
      // A steady drifter with ordinary, concave gains.
      const double x0 = rng.UniformDouble(0.1, 0.8);
      const double y0 = rng.UniformDouble(0.1, 0.8);
      MovementTuple drift;
      drift.interval = TimeInterval(start, start + life);
      drift.center_x =
          Polynomial::Linear(x0, 0.03 / static_cast<double>(life));
      drift.center_y =
          Polynomial::Linear(y0, 0.03 / static_cast<double>(life));
      drift.extent_x = Polynomial::Constant(extent);
      drift.extent_y = Polynomial::Constant(extent);
      tuples = {drift};
    }
    objects.emplace_back(static_cast<ObjectId>(i), std::move(tuples));
  }
  return objects;
}

void Run(const BenchArgs& args) {
  const BenchScale scale = GetScale();
  std::printf("Figure 14 reproduction (scale=%s): avg disk accesses, mixed "
              "snapshot queries, PPR-tree over 150%% splits distributed "
              "three ways.\n",
              scale.name.c_str());
  for (const int percent : {150, 25}) {
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Fig 14: mixed snapshot queries, %d%% splits", percent);
    PrintHeader(title,
                "objects | optimal_io | greedy_io  | lagreedy_io | "
                "optimal_vol | greedy_vol  | lagreedy_vol");
    for (size_t n : scale.dp_dataset_sizes) {
      // Dense datasets: the distribution quality only shows when the
      // ephemeral alive tree spans multiple nodes.
      Time domain = 0;
      const std::vector<Trajectory> objects =
          MakeDenseRandomDataset(n, &domain);
      QuerySetConfig query_config = MixedSnapshotSet();
      query_config.time_domain = domain;
      const std::vector<STQuery> queries =
          MakeQueries(query_config, scale.query_count);
      const std::vector<VolumeCurve> curves =
          ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);
      const int64_t budget = static_cast<int64_t>(n) * percent / 100;

      double io[3] = {0, 0, 0};
      double volume[3] = {0, 0, 0};
      int which = 0;
      for (const Distribution& dist :
           {DistributeOptimal(curves, budget),
            DistributeGreedy(curves, budget),
            DistributeLAGreedy(curves, budget)}) {
        const std::vector<SegmentRecord> records =
            BuildSegments(objects, dist.splits, SplitMethod::kMerge);
        const std::unique_ptr<PprTree> tree = BuildPprTree(records);
        io[which] = AveragePprIo(*tree, queries, args.threads,
                                 /*aggregate=*/nullptr, /*refiner=*/nullptr,
                                 /*profile=*/nullptr, args.buffer_pages);
        volume[which] = dist.total_volume;
        ++which;
      }

      char row[256];
      std::snprintf(row, sizeof(row),
                    "%7zu | %10.2f | %10.2f | %11.2f | %11.4f | %11.4f | "
                    "%11.4f",
                    n, io[0], io[1], io[2], volume[0], volume[1], volume[2]);
      PrintRow(row);
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "pct%d.", percent);
      const double x = static_cast<double>(n);
      Report().AddSample(std::string(prefix) + "optimal_io", x, io[0]);
      Report().AddSample(std::string(prefix) + "greedy_io", x, io[1]);
      Report().AddSample(std::string(prefix) + "lagreedy_io", x, io[2]);
    }
  }
  // The non-monotone workload (paper Figure 4): half the objects gain
  // almost nothing from their first split; Greedy starves them.
  PrintHeader("Fig 14 (adversarial): non-monotone V-shape dataset, 50% "
              "splits",
              "objects | optimal_vol | greedy_vol  | lagreedy_vol | "
              "greedy/opt | lagreedy/opt");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeVShapeDataset(n, 1000);
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);
    const int64_t budget = static_cast<int64_t>(n) / 2;
    const double optimal = DistributeOptimal(curves, budget).total_volume;
    const double greedy = DistributeGreedy(curves, budget).total_volume;
    const double lagreedy = DistributeLAGreedy(curves, budget).total_volume;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %11.4f | %11.4f | %12.4f | %10.3f | %12.3f", n,
                  optimal, greedy, lagreedy, greedy / optimal,
                  lagreedy / optimal);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("vshape.greedy_over_optimal", x, greedy / optimal);
    Report().AddSample("vshape.lagreedy_over_optimal", x,
                       lagreedy / optimal);
  }
  std::printf("\nExpected shape: lagreedy tracks optimal closely in both "
              "I/O and volume; greedy is never better, and clearly worse "
              "on the non-monotone workload (paper Figures 4 and 14).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_fig14_distribute_io");
  stindex::bench::Run(args);
  stindex::bench::FinishReport(args);
  return 0;
}
