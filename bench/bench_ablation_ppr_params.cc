// Ablation: PPR-tree parameters. The paper fixes P_version = 0.22,
// P_svo = 0.8, P_svu = 0.4 and a 10-page LRU buffer; this harness sweeps
// each knob to show how the choice trades query I/O against space.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[1];
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("splits_percent", static_cast<int64_t>(150));
  std::printf("PPR parameter ablation (scale=%s): %zu-object random "
              "dataset, LAGreedy 150%% splits, mixed snapshot + small "
              "range queries.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 150);
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);

  struct Variant {
    const char* name;
    double p_version;
    double p_svu;
    double p_svo;
    size_t buffer_pages;
  };
  PrintHeader("PPR parameters: avg disk accesses and pages",
              "variant               | mixed_snap | small_range | pages | "
              "eras");
  for (const Variant& variant : {
           Variant{"paper (.22/.4/.8)", 0.22, 0.4, 0.8, 10},
           Variant{"lax alive (.10)", 0.10, 0.3, 0.8, 10},
           Variant{"strict alive (.35)", 0.35, 0.5, 0.8, 10},
           Variant{"narrow window", 0.22, 0.45, 0.55, 10},
           Variant{"buffer 1 page", 0.22, 0.4, 0.8, 1},
           Variant{"buffer 50 pages", 0.22, 0.4, 0.8, 50},
       }) {
    PprConfig config;
    config.p_version = variant.p_version;
    config.p_svu = variant.p_svu;
    config.p_svo = variant.p_svo;
    config.buffer_pages = variant.buffer_pages;
    const std::unique_ptr<PprTree> tree = BuildPprTree(records, config);
    const double snap_io = AveragePprIo(*tree, snaps);
    const double range_io = AveragePprIo(*tree, ranges);
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%-21s | %10.2f | %11.2f | %5zu | %4zu", variant.name,
                  snap_io, range_io, tree->PageCount(), tree->NumRoots());
    PrintRow(line);
    Report().AddSample("mixed_snapshot_io", variant.name, snap_io);
    Report().AddSample("small_range_io", variant.name, range_io);
    Report().AddSample("pages", variant.name,
                       static_cast<double>(tree->PageCount()));
  }
  std::printf("\nExpected shape: stricter alive bounds buy fewer disk "
              "accesses at the cost of more version copies (pages); a "
              "bigger buffer helps interval queries most.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_ablation_ppr_params");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
