// Ablation: packed R-trees. The paper chose not to pack its R*-tree:
// "packing algorithms tend to cluster together objects that might be
// consecutive in order even though they may correspond to large and small
// intervals. This leads to more overlapping and empty space" (Section V).
// This harness builds STR- and Hilbert-packed trees over the same segment
// records and compares query I/O against the incremental R*-tree and the
// PPR-tree.
#include <cstdio>

#include "bench_common.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  std::printf("Packing ablation (scale=%s): %zu-object random dataset, "
              "LAGreedy 50%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);

  const std::unique_ptr<RStarTree> incremental = BuildRStar(records, 1000);
  const std::unique_ptr<RStarTree> str =
      RStarTree::BulkLoad(boxes, PackingMethod::kStr);
  const std::unique_ptr<RStarTree> hilbert =
      RStarTree::BulkLoad(boxes, PackingMethod::kHilbert);
  const std::unique_ptr<PprTree> ppr = BuildPprTree(records);

  PrintHeader("Packing ablation: avg disk accesses and pages",
              "structure   | small_range | mixed_snap | pages");
  struct Row {
    const char* name;
    const RStarTree* tree;
  };
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  for (const Row& row : {Row{"rstar", incremental.get()},
                         Row{"rstar+str", str.get()},
                         Row{"rstar+hilb", hilbert.get()}}) {
    char line[160];
    std::snprintf(line, sizeof(line), "%-11s | %11.2f | %10.2f | %5zu",
                  row.name, AverageRStarIo(*row.tree, ranges, 1000),
                  AverageRStarIo(*row.tree, snaps, 1000),
                  row.tree->PageCount());
    PrintRow(line);
  }
  char line[160];
  std::snprintf(line, sizeof(line), "%-11s | %11.2f | %10.2f | %5zu", "ppr",
                AveragePprIo(*ppr, ranges), AveragePprIo(*ppr, snaps),
                ppr->PageCount());
  PrintRow(line);
  std::printf("\nExpected shape: packing shrinks the R*-tree (higher fill) "
              "but does not close the gap to the PPR-tree — the paper's "
              "reason for not bothering with packed trees.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main() {
  stindex::bench::Run();
  return 0;
}
