// Ablation: packed R-trees. The paper chose not to pack its R*-tree:
// "packing algorithms tend to cluster together objects that might be
// consecutive in order even though they may correspond to large and small
// intervals. This leads to more overlapping and empty space" (Section V).
// This harness builds STR- and Hilbert-packed trees over the same segment
// records and compares query I/O against the incremental R*-tree and the
// PPR-tree.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run(const BenchArgs& args) {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("splits_percent", static_cast<int64_t>(50));
  std::printf("Packing ablation (scale=%s): %zu-object random dataset, "
              "LAGreedy 50%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);

  const std::unique_ptr<RStarTree> incremental = BuildRStar(records, 1000);
  const std::unique_ptr<RStarTree> str =
      RStarTree::BulkLoad(boxes, PackingMethod::kStr);
  const std::unique_ptr<RStarTree> hilbert =
      RStarTree::BulkLoad(boxes, PackingMethod::kHilbert);
  const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
  AttachBenchBackend(incremental.get(), args, "rstar");
  AttachBenchBackend(str.get(), args, "rstar_str");
  AttachBenchBackend(hilbert.get(), args, "rstar_hilb");
  AttachBenchBackend(ppr.get(), args, "ppr");

  PrintHeader("Packing ablation: avg disk accesses and pages",
              "structure   | small_range | mixed_snap | pages");
  struct Row {
    const char* name;
    const RStarTree* tree;
  };
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  for (const Row& row : {Row{"rstar", incremental.get()},
                         Row{"rstar+str", str.get()},
                         Row{"rstar+hilb", hilbert.get()}}) {
    const double range_io =
        AverageRStarIo(*row.tree, ranges, 1000, args.threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    const double snap_io =
        AverageRStarIo(*row.tree, snaps, 1000, args.threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    char line[160];
    std::snprintf(line, sizeof(line), "%-11s | %11.2f | %10.2f | %5zu",
                  row.name, range_io, snap_io, row.tree->PageCount());
    PrintRow(line);
    Report().AddSample("small_range_io", row.name, range_io);
    Report().AddSample("mixed_snapshot_io", row.name, snap_io);
    Report().AddSample("pages", row.name,
                       static_cast<double>(row.tree->PageCount()));
  }
  const double ppr_range_io =
      AveragePprIo(*ppr, ranges, args.threads, /*aggregate=*/nullptr,
                   /*refiner=*/nullptr, /*profile=*/nullptr,
                   args.buffer_pages);
  const double ppr_snap_io =
      AveragePprIo(*ppr, snaps, args.threads, /*aggregate=*/nullptr,
                   /*refiner=*/nullptr, /*profile=*/nullptr,
                   args.buffer_pages);
  char line[160];
  std::snprintf(line, sizeof(line), "%-11s | %11.2f | %10.2f | %5zu", "ppr",
                ppr_range_io, ppr_snap_io, ppr->PageCount());
  PrintRow(line);
  Report().AddSample("small_range_io", "ppr", ppr_range_io);
  Report().AddSample("mixed_snapshot_io", "ppr", ppr_snap_io);
  Report().AddSample("pages", "ppr", static_cast<double>(ppr->PageCount()));
  std::printf("\nExpected shape: packing shrinks the R*-tree (higher fill) "
              "but does not close the gap to the PPR-tree — the paper's "
              "reason for not bothering with packed trees.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "bench_ablation_packing", /*accept_backend=*/true);
  stindex::bench::Run(args);
  stindex::bench::FinishReport(args);
  return 0;
}
