// Figure 11: CPU time of the single-object splitting algorithms (DPSplit
// vs MergeSplit), computing the best splits for every object in the
// random datasets. The paper plots seconds on a log axis; the shape to
// reproduce is DPSplit being orders of magnitude slower.
//
// --threads=N (or STINDEX_THREADS) chunks the per-object curve
// computations over the shared thread pool; per-object volumes land in
// pre-sized slots and are reduced serially, so the printed volumes are
// identical at any thread count.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/dp_split.h"
#include "core/merge_split.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace stindex {
namespace bench {
namespace {

// Computes the full volume curve of every object with `algo` and returns
// the serial (index-order) sum of the fully split volumes.
template <typename Algo>
double CurvePass(const std::vector<std::vector<Rect2D>>& samples,
                 int num_threads, const Algo& algo) {
  std::vector<double> final_volumes(samples.size());
  ParallelFor(num_threads, samples.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  final_volumes[i] = algo(samples[i]);
                }
              });
  double total = 0.0;
  for (double v : final_volumes) total += v;
  return total;
}

void Run(int num_threads) {
  const BenchScale scale = GetScale();
  std::printf("Figure 11 reproduction (scale=%s, threads=%d): CPU seconds "
              "to compute full volume curves (all split counts) for every "
              "object.\n",
              scale.name.c_str(), num_threads);
  PrintHeader("Fig 11: single-object split CPU time",
              "objects | dpsplit_s   | mergesplit_s | ratio");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    std::vector<std::vector<Rect2D>> samples;
    samples.reserve(objects.size());
    for (const Trajectory& object : objects) samples.push_back(object.Sample());

    Stopwatch dp_watch;
    const double dp_volume =
        CurvePass(samples, num_threads, [](const std::vector<Rect2D>& rects) {
          return DpVolumeCurve(rects, static_cast<int>(rects.size())).back();
        });
    const double dp_seconds = dp_watch.ElapsedSeconds();

    Stopwatch merge_watch;
    const double merge_volume =
        CurvePass(samples, num_threads, [](const std::vector<Rect2D>& rects) {
          return MergeVolumeCurve(rects, static_cast<int>(rects.size()))
              .back();
        });
    const double merge_seconds = merge_watch.ElapsedSeconds();

    char row[256];
    std::snprintf(row, sizeof(row), "%7zu | %11.4f | %12.4f | %6.1fx", n,
                  dp_seconds, merge_seconds,
                  merge_seconds > 0 ? dp_seconds / merge_seconds : 0.0);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("dpsplit_seconds", x, dp_seconds);
    Report().AddSample("mergesplit_seconds", x, merge_seconds);
    (void)dp_volume;
    (void)merge_volume;
  }
  std::printf("\nExpected shape: DPSplit is orders of magnitude slower than "
              "MergeSplit and the gap widens with dataset size (paper: ~a "
              "day vs minutes at 80k objects). Both passes scale with "
              "--threads=N since objects split independently.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_fig11_split_cpu");
  stindex::bench::Run(args.threads);
  stindex::bench::FinishReport(args);
  return 0;
}
