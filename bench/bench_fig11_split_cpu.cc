// Figure 11: CPU time of the single-object splitting algorithms (DPSplit
// vs MergeSplit), computing the best splits for every object in the
// random datasets. The paper plots seconds on a log axis; the shape to
// reproduce is DPSplit being orders of magnitude slower.
#include <cstdio>

#include "bench_common.h"
#include "core/dp_split.h"
#include "core/merge_split.h"
#include "util/stopwatch.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Figure 11 reproduction (scale=%s): CPU seconds to compute "
              "full volume curves (all split counts) for every object.\n",
              scale.name.c_str());
  PrintHeader("Fig 11: single-object split CPU time",
              "objects | dpsplit_s   | mergesplit_s | ratio");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    std::vector<std::vector<Rect2D>> samples;
    samples.reserve(objects.size());
    for (const Trajectory& object : objects) samples.push_back(object.Sample());

    Stopwatch dp_watch;
    double dp_volume = 0.0;
    for (const auto& rects : samples) {
      dp_volume += DpVolumeCurve(rects, static_cast<int>(rects.size())).back();
    }
    const double dp_seconds = dp_watch.ElapsedSeconds();

    Stopwatch merge_watch;
    double merge_volume = 0.0;
    for (const auto& rects : samples) {
      merge_volume +=
          MergeVolumeCurve(rects, static_cast<int>(rects.size())).back();
    }
    const double merge_seconds = merge_watch.ElapsedSeconds();

    char row[256];
    std::snprintf(row, sizeof(row), "%7zu | %11.4f | %12.4f | %6.1fx", n,
                  dp_seconds, merge_seconds,
                  merge_seconds > 0 ? dp_seconds / merge_seconds : 0.0);
    PrintRow(row);
    (void)dp_volume;
    (void)merge_volume;
  }
  std::printf("\nExpected shape: DPSplit is orders of magnitude slower than "
              "MergeSplit and the gap widens with dataset size (paper: ~a "
              "day vs minutes at 80k objects).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main() {
  stindex::bench::Run();
  return 0;
}
