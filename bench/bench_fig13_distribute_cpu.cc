// Figure 13: CPU time of the split distribution algorithms (Optimal DP vs
// Greedy vs LAGreedy), distributing 50% splits on the random datasets.
// Shape to reproduce: the optimal DP is orders of magnitude slower;
// LAGreedy is only ~10% slower than Greedy.
#include <cstdio>

#include "bench_common.h"
#include "core/distribute.h"
#include "util/stopwatch.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Figure 13 reproduction (scale=%s): CPU seconds to "
              "distribute 50%% splits (curves precomputed with "
              "MergeSplit).\n",
              scale.name.c_str());
  PrintHeader(
      "Fig 13: split distribution CPU time",
      "objects | optimal_s   | greedy_s   | lagreedy_s | la/greedy");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kMerge);
    const int64_t budget = static_cast<int64_t>(n) / 2;

    Stopwatch optimal_watch;
    const Distribution optimal = DistributeOptimal(curves, budget);
    const double optimal_seconds = optimal_watch.ElapsedSeconds();

    // The greedy passes are fast; repeat them to get a stable reading.
    const int repeats = 10;
    Stopwatch greedy_watch;
    Distribution greedy;
    for (int r = 0; r < repeats; ++r) greedy = DistributeGreedy(curves, budget);
    const double greedy_seconds = greedy_watch.ElapsedSeconds() / repeats;

    Stopwatch lagreedy_watch;
    Distribution lagreedy;
    for (int r = 0; r < repeats; ++r) {
      lagreedy = DistributeLAGreedy(curves, budget);
    }
    const double lagreedy_seconds =
        lagreedy_watch.ElapsedSeconds() / repeats;

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %11.4f | %10.6f | %10.6f | %8.2f", n,
                  optimal_seconds, greedy_seconds, lagreedy_seconds,
                  greedy_seconds > 0 ? lagreedy_seconds / greedy_seconds
                                     : 0.0);
    PrintRow(row);
    (void)optimal;
  }
  std::printf("\nExpected shape: optimal is orders of magnitude slower; "
              "LAGreedy within ~1.1x of Greedy (paper Figure 13).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main() {
  stindex::bench::Run();
  return 0;
}
