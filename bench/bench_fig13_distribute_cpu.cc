// Figure 13: CPU time of the split distribution algorithms (Optimal DP vs
// Greedy vs LAGreedy), distributing 50% splits on the random datasets.
// Shape to reproduce: the optimal DP is orders of magnitude slower;
// LAGreedy is only ~10% slower than Greedy.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/distribute.h"
#include "util/stopwatch.h"

namespace stindex {
namespace bench {
namespace {

void Run(int num_threads) {
  const BenchScale scale = GetScale();
  std::printf("Figure 13 reproduction (scale=%s, threads=%d): CPU seconds "
              "to distribute 50%% splits (curves precomputed with "
              "MergeSplit).\n",
              scale.name.c_str(), num_threads);
  PrintHeader(
      "Fig 13: split distribution CPU time",
      "objects | optimal_s   | greedy_s   | lagreedy_s | la/greedy");
  for (size_t n : scale.dp_dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);
    // The curve precompute (not timed here — Figure 11's subject) is the
    // parallel phase; the timed distribution passes below only
    // parallelize their marginal-gain seeding.
    const std::vector<VolumeCurve> curves =
        ComputeVolumeCurves(objects, 128, SplitMethod::kMerge, num_threads);
    const int64_t budget = static_cast<int64_t>(n) / 2;

    Stopwatch optimal_watch;
    const Distribution optimal = DistributeOptimal(curves, budget);
    const double optimal_seconds = optimal_watch.ElapsedSeconds();

    // The greedy passes are fast; repeat them to get a stable reading.
    const int repeats = 10;
    Stopwatch greedy_watch;
    Distribution greedy;
    for (int r = 0; r < repeats; ++r) {
      greedy = DistributeGreedy(curves, budget, num_threads);
    }
    const double greedy_seconds = greedy_watch.ElapsedSeconds() / repeats;

    Stopwatch lagreedy_watch;
    Distribution lagreedy;
    for (int r = 0; r < repeats; ++r) {
      lagreedy = DistributeLAGreedy(curves, budget, num_threads);
    }
    const double lagreedy_seconds =
        lagreedy_watch.ElapsedSeconds() / repeats;

    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %11.4f | %10.6f | %10.6f | %8.2f", n,
                  optimal_seconds, greedy_seconds, lagreedy_seconds,
                  greedy_seconds > 0 ? lagreedy_seconds / greedy_seconds
                                     : 0.0);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("optimal_seconds", x, optimal_seconds);
    Report().AddSample("greedy_seconds", x, greedy_seconds);
    Report().AddSample("lagreedy_seconds", x, lagreedy_seconds);
    (void)optimal;
  }
  std::printf("\nExpected shape: optimal is orders of magnitude slower; "
              "LAGreedy within ~1.1x of Greedy (paper Figure 13).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_fig13_distribute_cpu");
  stindex::bench::Run(args.threads);
  stindex::bench::FinishReport(args);
  return 0;
}
