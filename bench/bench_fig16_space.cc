// Figure 16: index disk space (pages) as the number of splits grows,
// PPR-tree vs 3-D R*-tree, on the 50k random dataset (third size of the
// active scale). Shape to reproduce: the PPR-tree needs roughly twice the
// space of the R*-tree, both growing with the number of splits.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  Report().SetParam("objects", static_cast<int64_t>(n));
  std::printf("Figure 16 reproduction (scale=%s): index pages vs splits, "
              "%zu-object random dataset.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);

  PrintHeader("Fig 16: disk space vs number of splits",
              "splits%% | ppr_pages  | rstar_pages | ppr/rstar | records");
  for (int percent : {0, 1, 5, 10, 25, 50, 100, 150}) {
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, percent);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(records, 1000);
    char row[256];
    std::snprintf(row, sizeof(row), "%6d%% | %10zu | %11zu | %9.2f | %7zu",
                  percent, ppr->PageCount(), rstar->PageCount(),
                  static_cast<double>(ppr->PageCount()) /
                      static_cast<double>(rstar->PageCount()),
                  records.size());
    PrintRow(row);
    Report().AddSample("ppr_pages", percent,
                       static_cast<double>(ppr->PageCount()));
    Report().AddSample("rstar_pages", percent,
                       static_cast<double>(rstar->PageCount()));
  }
  std::printf("\nExpected shape: both grow with splits; ppr/rstar around "
              "2x (paper Figure 16: \"almost twice as much space\").\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_fig16_space");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
