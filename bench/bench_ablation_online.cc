// Ablation: the on-line splitter (paper Section VII names the on-line
// version of the problem as future work). Compares the streaming
// threshold splitter against the clairvoyant offline algorithms at the
// split counts the online policy chooses, in total volume and in
// PPR-tree query I/O.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/dp_split.h"
#include "core/merge_split.h"
#include "core/online_split.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dp_dataset_sizes.back();
  std::printf("Online splitting ablation (scale=%s): %zu-object random "
              "dataset.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  Report().SetParam("objects", static_cast<int64_t>(n));

  PrintHeader("Online vs offline volumes per threshold",
              "threshold | splits  | online_vol | merge_vol  | dp_vol     | "
              "online/dp");
  for (double threshold : {2.0, 8.0, 32.0, 128.0}) {
    OnlineSplitter::Options options;
    options.waste_threshold = threshold;
    double online_volume = 0.0;
    double merge_volume = 0.0;
    double dp_volume = 0.0;
    int64_t total_splits = 0;
    for (const Trajectory& object : objects) {
      const std::vector<Rect2D> rects = object.Sample();
      const SplitResult online = OnlineSplit(rects, options);
      online_volume += online.total_volume;
      total_splits += online.NumSplits();
      merge_volume += MergeSplit(rects, online.NumSplits()).total_volume;
      dp_volume += DpSplit(rects, online.NumSplits()).total_volume;
    }
    char line[192];
    std::snprintf(line, sizeof(line),
                  "%9.1f | %7lld | %10.4f | %10.4f | %10.4f | %8.3f",
                  threshold, static_cast<long long>(total_splits),
                  online_volume, merge_volume, dp_volume,
                  online_volume / dp_volume);
    PrintRow(line);
    Report().AddSample("online_splits", threshold,
                       static_cast<double>(total_splits));
    Report().AddSample("online_volume", threshold, online_volume);
    Report().AddSample("merge_volume", threshold, merge_volume);
    Report().AddSample("dp_volume", threshold, dp_volume);
  }

  // End-to-end: index the online-split segments and measure query I/O
  // against the offline LAGreedy pipeline at a matched budget.
  const std::vector<STQuery> queries =
      MakeQueries(SmallRangeSet(), scale.query_count);
  OnlineSplitter::Options options;
  options.waste_threshold = 2.0;
  std::vector<SegmentRecord> online_records;
  int64_t online_splits = 0;
  for (const Trajectory& object : objects) {
    const std::vector<Rect2D> rects = object.Sample();
    const SplitResult split = OnlineSplit(rects, options);
    online_splits += split.NumSplits();
    std::vector<SegmentRecord> pieces =
        ApplySplits(object.id(), rects, object.Lifetime().start, split.cuts);
    online_records.insert(online_records.end(), pieces.begin(),
                          pieces.end());
  }
  const int percent = static_cast<int>(
      100 * online_splits / static_cast<int64_t>(objects.size()));
  const std::vector<SegmentRecord> offline_records =
      SplitWithLaGreedy(objects, percent);
  const std::unique_ptr<PprTree> online_tree = BuildPprTree(online_records);
  const std::unique_ptr<PprTree> offline_tree =
      BuildPprTree(offline_records);

  PrintHeader("PPR query I/O at matched split budget",
              "pipeline         | splits  | records | avg_io");
  const double online_io = AveragePprIo(*online_tree, queries);
  const double offline_io = AveragePprIo(*offline_tree, queries);
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s | %7lld | %7zu | %6.2f",
                "online (th=2)", static_cast<long long>(online_splits),
                online_records.size(), online_io);
  PrintRow(line);
  std::snprintf(line, sizeof(line), "%-16s | %7lld | %7zu | %6.2f",
                "offline lagreedy",
                static_cast<long long>(percent) *
                    static_cast<long long>(objects.size()) / 100,
                offline_records.size(), offline_io);
  PrintRow(line);
  Report().AddSample("avg_io", "online_th2", online_io);
  Report().AddSample("avg_io", "offline_lagreedy", offline_io);
  std::printf("\nExpected shape: the streaming policy stays within a small "
              "factor of the clairvoyant DP in volume and within ~20%% of "
              "the offline pipeline in query I/O — the on-line version of "
              "the problem is tractable with one-pass heuristics.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_ablation_online");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
