// Table I: statistics of the random and railway datasets.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void PrintStatsRow(const char* family,
                   const std::vector<Trajectory>& objects, Time domain) {
  const DatasetStats stats = ComputeDatasetStats(objects, domain);
  char row[256];
  std::snprintf(row, sizeof(row), "%-8s | %6zu | %12.2f | %10zu | %8.2f",
                family, stats.total_objects, stats.avg_objects_per_instant,
                stats.total_segments, stats.avg_lifetime);
  PrintRow(row);
  const double n = static_cast<double>(stats.total_objects);
  const std::string prefix = family;
  Report().AddSample(prefix + ".objs_per_instant", n,
                     stats.avg_objects_per_instant);
  Report().AddSample(prefix + ".segments", n,
                     static_cast<double>(stats.total_segments));
  Report().AddSample(prefix + ".avg_lifetime", n, stats.avg_lifetime);
}

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Table I reproduction (scale=%s). Paper columns: total "
              "objects, avg objects per instant, total segments, avg "
              "lifetime.\n",
              scale.name.c_str());
  PrintHeader("Table I: random datasets",
              "family   | objects | objs/instant | segments  | lifetime");
  for (size_t n : scale.dataset_sizes) {
    PrintStatsRow("random", MakeRandomDataset(n), 1000);
  }
  PrintHeader("Table I: railway datasets",
              "family   | objects | objs/instant | segments  | lifetime");
  for (size_t n : scale.dataset_sizes) {
    PrintStatsRow("railway", MakeRailwayDataset(n), 1000);
  }
  std::printf(
      "\nExpected shape: railway lifetimes (~18 at paper scale) are much "
      "shorter than random (~50); segments scale ~linearly with objects.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_table1_datasets");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
