// Table I: statistics of the random and railway datasets.
#include <cstdio>

#include "bench_common.h"

namespace stindex {
namespace bench {
namespace {

void PrintStatsRow(const char* family,
                   const std::vector<Trajectory>& objects, Time domain) {
  const DatasetStats stats = ComputeDatasetStats(objects, domain);
  char row[256];
  std::snprintf(row, sizeof(row), "%-8s | %6zu | %12.2f | %10zu | %8.2f",
                family, stats.total_objects, stats.avg_objects_per_instant,
                stats.total_segments, stats.avg_lifetime);
  PrintRow(row);
}

void Run() {
  const BenchScale scale = GetScale();
  std::printf("Table I reproduction (scale=%s). Paper columns: total "
              "objects, avg objects per instant, total segments, avg "
              "lifetime.\n",
              scale.name.c_str());
  PrintHeader("Table I: random datasets",
              "family   | objects | objs/instant | segments  | lifetime");
  for (size_t n : scale.dataset_sizes) {
    PrintStatsRow("random", MakeRandomDataset(n), 1000);
  }
  PrintHeader("Table I: railway datasets",
              "family   | objects | objs/instant | segments  | lifetime");
  for (size_t n : scale.dataset_sizes) {
    PrintStatsRow("railway", MakeRailwayDataset(n), 1000);
  }
  std::printf(
      "\nExpected shape: railway lifetimes (~18 at paper scale) are much "
      "shorter than random (~50); segments scale ~linearly with objects.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main() {
  stindex::bench::Run();
  return 0;
}
