// Figure 18: average disk accesses for mixed snapshot queries across
// random dataset sizes: PPR-tree (150% LAGreedy splits) vs R*-tree (1%
// splits) vs R*-tree over piecewise data vs R*-tree with no splits.
// Shape to reproduce: PPR best by 20-50%; piecewise much worse than even
// the unsplit R*-tree.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/piecewise_split.h"
#include "core/query_profile.h"

namespace stindex {
namespace bench {
namespace {

void Run(const BenchArgs& args) {
  const int num_threads = args.threads;
  const BenchScale scale = GetScale();
  std::printf("Figure 18 reproduction (scale=%s, threads=%d, backend=%s): "
              "avg disk accesses, mixed snapshot queries.\n",
              scale.name.c_str(), num_threads,
              args.backend.empty() ? "store" : args.backend.c_str());
  const std::vector<STQuery> queries =
      MakeQueries(MixedSnapshotSet(), scale.query_count);
  PrintHeader("Fig 18: mixed snapshot queries across dataset sizes",
              "objects | ppr150_io  | rstar1_io  | rstar0_io  | "
              "piecewise_io");
  for (size_t n : scale.dataset_sizes) {
    const std::vector<Trajectory> objects = MakeRandomDataset(n);

    const std::vector<SegmentRecord> ppr_records =
        SplitWithLaGreedy(objects, 150, num_threads);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(ppr_records);
    AttachBenchBackend(ppr.get(), args, "ppr150");

    const std::vector<SegmentRecord> rstar1_records =
        SplitWithLaGreedy(objects, 1, num_threads);
    const std::unique_ptr<RStarTree> rstar1 = BuildRStar(rstar1_records, 1000);
    AttachBenchBackend(rstar1.get(), args, "rstar1");

    const std::vector<SegmentRecord> unsplit_records =
        BuildUnsplitSegments(objects, num_threads);
    const std::unique_ptr<RStarTree> rstar0 =
        BuildRStar(unsplit_records, 1000);
    AttachBenchBackend(rstar0.get(), args, "rstar0");

    int64_t piecewise_splits = 0;
    const std::vector<SegmentRecord> piecewise_records =
        PiecewiseSplitAll(objects, &piecewise_splits);
    const std::unique_ptr<RStarTree> piecewise =
        BuildRStar(piecewise_records, 1000);
    AttachBenchBackend(piecewise.get(), args, "piecewise");

    const FalseHitRefiner refiner(objects, ppr_records);
    QueryProfile ppr_profile;
    const double ppr_io =
        AveragePprIo(*ppr, queries, num_threads, /*aggregate=*/nullptr,
                     &refiner, &ppr_profile, args.buffer_pages);
    const double rstar1_io =
        AverageRStarIo(*rstar1, queries, 1000, num_threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    const double rstar0_io =
        AverageRStarIo(*rstar0, queries, 1000, num_threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    const double piecewise_io =
        AverageRStarIo(*piecewise, queries, 1000, num_threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    char row[256];
    std::snprintf(row, sizeof(row),
                  "%7zu | %10.2f | %10.2f | %10.2f | %12.2f", n, ppr_io,
                  rstar1_io, rstar0_io, piecewise_io);
    PrintRow(row);
    const double x = static_cast<double>(n);
    Report().AddSample("ppr150_io", x, ppr_io);
    Report().AddSample("rstar1_io", x, rstar1_io);
    Report().AddSample("rstar0_io", x, rstar0_io);
    Report().AddSample("piecewise_io", x, piecewise_io);
    Report().AddSample("ppr150_false_hits_per_query", x,
                       static_cast<double>(ppr_profile.false_hits) /
                           static_cast<double>(queries.size()));
  }
  std::printf("\nExpected shape: ppr150_io lowest (paper: 20%% better for "
              "small interval queries, >50%% for snapshots); piecewise_io "
              "worse than the no-splits rstar0_io (paper Figure 18).\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "bench_fig18_snapshot_io", /*accept_backend=*/true);
  stindex::bench::Run(args);
  stindex::bench::FinishReport(args);
  return 0;
}
