// The paper's introduction explains WHY splits help the PPR-tree but not
// the 3-D R*-tree through Pagel's cost determinants: total node volume,
// total surface, and node count. This harness computes those aggregates
// directly on the built structures across split budgets — the argument's
// numbers, not just its conclusion.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "model/pagel_metrics.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  std::printf("Pagel cost determinants (scale=%s): %zu-object random "
              "dataset, LAGreedy splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<Time> probes = {100, 300, 500, 700, 900};
  Report().SetParam("objects", static_cast<int64_t>(n));

  PrintHeader("R*-tree (3-D boxes): volume down, node count up",
              "splits%% | nodes   | volume    | surface   | leaf_fill");
  for (int percent : {0, 25, 50, 100, 150}) {
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, percent);
    const std::unique_ptr<RStarTree> rstar = BuildRStar(records, 1000);
    const PagelMetrics metrics = AnalyzeRStar(*rstar);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%6d%% | %7zu | %9.4f | %9.2f | %9.1f", percent,
                  metrics.node_count, metrics.total_volume,
                  metrics.total_surface, metrics.avg_leaf_fill);
    PrintRow(line);
    Report().AddSample("rstar_nodes", percent,
                       static_cast<double>(metrics.node_count));
    Report().AddSample("rstar_volume", percent, metrics.total_volume);
    Report().AddSample("rstar_surface", percent, metrics.total_surface);
  }

  PrintHeader("PPR-tree (ephemeral 2-D view, averaged over 5 instants): "
              "volume down, node count ~flat",
              "splits%% | nodes   | area      | surface   | leaf_alive");
  for (int percent : {0, 25, 50, 100, 150}) {
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, percent);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    const PagelMetrics metrics = AnalyzePprAverage(*ppr, probes);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%6d%% | %7zu | %9.6f | %9.4f | %10.1f", percent,
                  metrics.node_count, metrics.total_volume,
                  metrics.total_surface, metrics.avg_leaf_fill);
    PrintRow(line);
    Report().AddSample("ppr_nodes", percent,
                       static_cast<double>(metrics.node_count));
    Report().AddSample("ppr_area", percent, metrics.total_volume);
    Report().AddSample("ppr_surface", percent, metrics.total_surface);
  }
  std::printf("\nExpected shape (paper Section I): for the R*-tree the "
              "shrinking volume is paid for with more nodes; for the "
              "PPR-tree the per-instant node count barely moves while the "
              "alive extents shrink — which is why Figure 15 shows only "
              "the PPR-tree improving.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_pagel_analysis");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
