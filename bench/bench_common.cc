#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/distribute.h"
#include "util/check.h"

namespace stindex {
namespace bench {

BenchScale GetScale() {
  const char* env = std::getenv("STINDEX_SCALE");
  const std::string scale = env == nullptr ? "small" : env;
  if (scale == "paper") {
    return BenchScale{"paper",
                      {10000, 30000, 50000, 80000},
                      {10000, 30000, 50000, 80000},
                      1000};
  }
  if (scale == "medium") {
    return BenchScale{"medium",
                      {2500, 5000, 10000, 20000},
                      {500, 1000, 2000, 4000},
                      500};
  }
  STINDEX_CHECK_MSG(scale == "small", "STINDEX_SCALE: small|medium|paper");
  return BenchScale{
      "small", {1000, 2000, 4000, 8000}, {100, 200, 400, 800}, 200};
}

std::vector<Trajectory> MakeRandomDataset(size_t n, uint64_t seed) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  return GenerateRandomDataset(config);
}

std::vector<Trajectory> MakeDenseRandomDataset(size_t n, Time* time_domain,
                                               uint64_t seed) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  // Aim for ~300 alive objects per instant (paper 10k dataset: ~550).
  const Time domain =
      std::max<Time>(60, static_cast<Time>(n) * 25 / 300);
  config.time_domain = domain;
  config.max_lifetime = std::min<Time>(100, domain / 2);
  *time_domain = domain;
  return GenerateRandomDataset(config);
}

std::vector<Trajectory> MakeRailwayDataset(size_t n, uint64_t seed) {
  RailwayDatasetConfig config;
  config.num_trains = n;
  config.seed = seed;
  return GenerateRailwayDataset(config);
}

std::vector<SegmentRecord> SplitWithLaGreedy(
    const std::vector<Trajectory>& objects, int percent) {
  if (percent == 0) return BuildUnsplitSegments(objects);
  const std::vector<VolumeCurve> curves =
      ComputeVolumeCurves(objects, /*k_max=*/128, SplitMethod::kMerge);
  const int64_t budget =
      static_cast<int64_t>(objects.size()) * percent / 100;
  const Distribution dist = DistributeLAGreedy(curves, budget);
  return BuildSegments(objects, dist.splits, SplitMethod::kMerge);
}

std::unique_ptr<RStarTree> BuildRStar(
    const std::vector<SegmentRecord>& records, Time time_domain) {
  auto tree = std::make_unique<RStarTree>();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, time_domain);
  for (size_t i = 0; i < boxes.size(); ++i) {
    tree->Insert(boxes[i], static_cast<DataId>(i));
  }
  return tree;
}

double AveragePprIo(const PprTree& tree,
                    const std::vector<STQuery>& queries) {
  uint64_t misses = 0;
  std::vector<PprDataId> results;
  for (const STQuery& query : queries) {
    tree.ResetQueryState();
    if (query.IsSnapshot()) {
      tree.SnapshotQuery(query.area, query.range.start, &results);
    } else {
      tree.IntervalQuery(query.area, query.range, &results);
    }
    misses += tree.stats().misses;
  }
  return static_cast<double>(misses) / static_cast<double>(queries.size());
}

double AverageRStarIo(const RStarTree& tree,
                      const std::vector<STQuery>& queries,
                      Time time_domain) {
  uint64_t misses = 0;
  std::vector<DataId> results;
  for (const STQuery& query : queries) {
    tree.ResetQueryState();
    tree.Search(QueryToBox(query, 0, time_domain), &results);
    misses += tree.stats().misses;
  }
  return static_cast<double>(misses) / static_cast<double>(queries.size());
}

std::vector<STQuery> MakeQueries(const QuerySetConfig& config, size_t count) {
  QuerySetConfig adjusted = config;
  adjusted.count = count;
  return GenerateQuerySet(adjusted);
}

void PrintHeader(const std::string& title, const std::string& columns) {
  std::printf("\n== %s ==\n%s\n", title.c_str(), columns.c_str());
}

void PrintRow(const std::string& cells) {
  std::printf("%s\n", cells.c_str());
}

}  // namespace bench
}  // namespace stindex
