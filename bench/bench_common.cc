#include "bench_common.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include <string>

#include "core/distribute.h"
#include "storage/file_backend.h"
#include "storage/shared_buffer_pool.h"
#include "storage/snapshot_file.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {
namespace bench {

BenchScale GetScale() {
  const char* env = std::getenv("STINDEX_SCALE");
  const std::string scale = env == nullptr ? "small" : env;
  if (scale == "paper") {
    return BenchScale{"paper",
                      {10000, 30000, 50000, 80000},
                      {10000, 30000, 50000, 80000},
                      1000};
  }
  if (scale == "medium") {
    return BenchScale{"medium",
                      {2500, 5000, 10000, 20000},
                      {500, 1000, 2000, 4000},
                      500};
  }
  STINDEX_CHECK_MSG(scale == "small", "STINDEX_SCALE: small|medium|paper");
  return BenchScale{
      "small", {1000, 2000, 4000, 8000}, {100, 200, 400, 800}, 200};
}

std::vector<Trajectory> MakeRandomDataset(size_t n, uint64_t seed) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  return GenerateRandomDataset(config);
}

std::vector<Trajectory> MakeDenseRandomDataset(size_t n, Time* time_domain,
                                               uint64_t seed) {
  RandomDatasetConfig config;
  config.num_objects = n;
  config.seed = seed;
  // Aim for ~300 alive objects per instant (paper 10k dataset: ~550).
  const Time domain =
      std::max<Time>(60, static_cast<Time>(n) * 25 / 300);
  config.time_domain = domain;
  config.max_lifetime = std::min<Time>(100, domain / 2);
  *time_domain = domain;
  return GenerateRandomDataset(config);
}

std::vector<Trajectory> MakeRailwayDataset(size_t n, uint64_t seed) {
  RailwayDatasetConfig config;
  config.num_trains = n;
  config.seed = seed;
  return GenerateRailwayDataset(config);
}

std::vector<SegmentRecord> SplitWithLaGreedy(
    const std::vector<Trajectory>& objects, int percent, int num_threads) {
  if (percent == 0) return BuildUnsplitSegments(objects, num_threads);
  const std::vector<VolumeCurve> curves = ComputeVolumeCurves(
      objects, /*k_max=*/128, SplitMethod::kMerge, num_threads);
  const int64_t budget =
      static_cast<int64_t>(objects.size()) * percent / 100;
  const Distribution dist = DistributeLAGreedy(curves, budget, num_threads);
  return BuildSegments(objects, dist.splits, SplitMethod::kMerge, num_threads);
}

std::unique_ptr<RStarTree> BuildRStar(
    const std::vector<SegmentRecord>& records, Time time_domain) {
  auto tree = std::make_unique<RStarTree>();
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, time_domain);
  for (size_t i = 0; i < boxes.size(); ++i) {
    tree->Insert(boxes[i], static_cast<DataId>(i));
  }
  return tree;
}

namespace {

// Shared shape of the two multi-threaded query drivers: every worker
// shares one sharded SharedBufferPool (total capacity, thread-safe pins)
// and runs its chunk through a private Session implementing the paper's
// per-query-reset LRU accounting, so the reported miss counts are
// byte-identical at any thread count while resident capacity stays
// fixed. Per-chunk IoStats are summed in chunk order afterwards.
//
// The drivers feed the structured reports: totals go to the
// io.query.accesses/misses counters, and per-query wall times are
// recorded into per-chunk Histogram shards merged in ascending chunk
// order into io.query.latency_ms (the determinism contract from
// util/metrics.h — the I/O numbers stay byte-identical at any thread
// count; wall times are inherently noisy but their collection order is
// fixed).
template <typename MakePool, typename RunQuery>
double AverageIoParallel(const std::vector<STQuery>& queries, int num_threads,
                         IoStats* aggregate, const FalseHitRefiner* refiner,
                         QueryProfile* profile_out, const MakePool& make_pool,
                         const RunQuery& run_query) {
  TraceSpan span("bench", "query_driver");
  span.Arg("queries", static_cast<int64_t>(queries.size()))
      .Arg("threads", static_cast<int64_t>(num_threads));
  const bool profiling = refiner != nullptr || profile_out != nullptr;
  const size_t chunks = ParallelChunks(num_threads, queries.size());
  std::vector<IoStats> chunk_stats(chunks);
  std::vector<Histogram> latency_shards(chunks);
  std::vector<QueryProfile> profile_shards(profiling ? chunks : 0);
  std::unique_ptr<SharedBufferPool> pool = make_pool();
  // The Sessions' simulated LRU runs the paper protocol at the pool's
  // full capacity, so the miss counts match a serial private pool of the
  // same size while the frames stay shared across workers.
  const size_t protocol_pages = pool->capacity();
  span.Arg("buffer_pages", static_cast<int64_t>(protocol_pages));
  Report().SetParam("effective_buffer_pages",
                    static_cast<int64_t>(protocol_pages));
  ParallelFor(num_threads, queries.size(),
              [&](size_t chunk, size_t begin, size_t end) {
                SharedBufferPool::Session session(pool.get(), protocol_pages);
                IoStats& stats = chunk_stats[chunk];
                Histogram& latency = latency_shards[chunk];
                QueryProfile* profile =
                    profiling ? &profile_shards[chunk] : nullptr;
                for (size_t q = begin; q < end; ++q) {
                  session.ResetCache();
                  session.ResetStats();
                  const auto start = std::chrono::steady_clock::now();
                  run_query(queries[q], &session, profile);
                  const std::chrono::duration<double, std::milli> elapsed =
                      std::chrono::steady_clock::now() - start;
                  latency.Record(elapsed.count());
                  stats.accesses += session.stats().accesses;
                  stats.misses += session.stats().misses;
                }
              });
  pool->PublishStats();
  IoStats total;
  for (const IoStats& stats : chunk_stats) {
    total.accesses += stats.accesses;
    total.misses += stats.misses;
  }
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("io.query.accesses")->Add(total.accesses);
  registry.GetCounter("io.query.misses")->Add(total.misses);
  MergeShards(latency_shards, registry.GetHistogram("io.query.latency_ms"));
  if (profiling) {
    QueryProfile merged;
    for (const QueryProfile& shard : profile_shards) merged.Merge(shard);
    if (refiner != nullptr) {
      registry.GetCounter("io.query.false_hits")->Add(merged.false_hits);
    }
    if (profile_out != nullptr) profile_out->Merge(merged);
  }
  if (aggregate != nullptr) *aggregate = total;
  return static_cast<double>(total.misses) /
         static_cast<double>(queries.size());
}

}  // namespace

double AveragePprIo(const PprTree& tree, const std::vector<STQuery>& queries,
                    int num_threads, IoStats* aggregate,
                    const FalseHitRefiner* refiner, QueryProfile* profile,
                    size_t buffer_pages) {
  return AverageIoParallel(
      queries, num_threads, aggregate, refiner, profile,
      [&tree, buffer_pages] { return tree.NewSharedQueryPool(buffer_pages); },
      [&tree, refiner](const STQuery& query, PageCache* buffer,
                       QueryProfile* query_profile) {
        std::vector<PprDataId> results;
        if (query.IsSnapshot()) {
          tree.SnapshotQuery(query.area, query.range.start, buffer, &results,
                             query_profile);
        } else {
          tree.IntervalQuery(query.area, query.range, buffer, &results,
                             query_profile);
        }
        if (refiner != nullptr) {
          refiner->CountFalseHits(results, query, query_profile);
        }
      });
}

double AverageRStarIo(const RStarTree& tree,
                      const std::vector<STQuery>& queries, Time time_domain,
                      int num_threads, IoStats* aggregate,
                      const FalseHitRefiner* refiner, QueryProfile* profile,
                      size_t buffer_pages) {
  return AverageIoParallel(
      queries, num_threads, aggregate, refiner, profile,
      [&tree, buffer_pages] { return tree.NewSharedQueryPool(buffer_pages); },
      [&tree, time_domain, refiner](const STQuery& query, PageCache* buffer,
                                    QueryProfile* query_profile) {
        std::vector<DataId> results;
        tree.Search(QueryToBox(query, 0, time_domain), buffer, &results,
                    query_profile);
        if (refiner != nullptr) {
          refiner->CountFalseHits(results, query, query_profile);
        }
      });
}

namespace {

std::unique_ptr<PageBackend> MakeBenchBackend(const BenchArgs& args,
                                              const std::string& tag) {
  if (args.backend == "memory") return std::make_unique<MemoryPageBackend>();
  // One page file per attached tree; the counter keeps names unique when
  // a harness reuses a tag across dataset sizes.
  static int file_counter = 0;
  const std::string path = args.db_path + "/" + args.bench_name + "_" + tag +
                           "_" + std::to_string(file_counter++) + ".stpages";
  Result<std::unique_ptr<FilePageBackend>> backend =
      FilePageBackend::Create(path);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s: %s\n", args.bench_name.c_str(),
                 backend.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(backend).value();
}

template <typename TreeT>
void AttachBenchBackendImpl(TreeT* tree, const BenchArgs& args,
                            const std::string& tag) {
  Report().SetParam("backend", args.backend.empty() ? "store" : args.backend);
  if (args.backend.empty()) return;
  Status status;
  if (args.backend == "mmap") {
    // Pack into a read-only snapshot and serve it zero-copy. The id
    // remap is a bijection, so protocol-mode miss counts stay identical
    // to every other backend's.
    static int snap_counter = 0;
    const std::string path = args.db_path + "/" + args.bench_name + "_" + tag +
                             "_" + std::to_string(snap_counter++) + ".stsnap";
    status = tree->PackSnapshot(path);
    if (status.ok()) {
      Report().SetParam(
          "mmap_fallback",
          static_cast<const MmapSnapshotBackend*>(tree->backend())
                  ->file()
                  .mapped()
              ? "no"
              : "pread");
    }
  } else {
    status = tree->AttachBackend(MakeBenchBackend(args, tag));
  }
  if (!status.ok()) {
    std::fprintf(stderr, "%s: attaching %s backend for '%s': %s\n",
                 args.bench_name.c_str(), args.backend.c_str(), tag.c_str(),
                 status.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

void AttachBenchBackend(RStarTree* tree, const BenchArgs& args,
                        const std::string& tag) {
  AttachBenchBackendImpl(tree, args, tag);
}

void AttachBenchBackend(PprTree* tree, const BenchArgs& args,
                        const std::string& tag) {
  AttachBenchBackendImpl(tree, args, tag);
}

std::vector<STQuery> MakeQueries(const QuerySetConfig& config, size_t count) {
  QuerySetConfig adjusted = config;
  adjusted.count = count;
  return GenerateQuerySet(adjusted);
}

void PrintHeader(const std::string& title, const std::string& columns) {
  std::printf("\n== %s ==\n%s\n", title.c_str(), columns.c_str());
}

void PrintRow(const std::string& cells) {
  std::printf("%s\n", cells.c_str());
}

}  // namespace bench
}  // namespace stindex
