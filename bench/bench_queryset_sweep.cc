// Query-set sweep: all six Table II query sets against the PPR-tree
// (150% splits) and the R*-tree (1% splits). The paper states that "for
// all datasets and any number of splits we observed that the PPR-tree is
// consistently better than the R*-tree approaches for small, large and
// mixed snapshot queries" — this harness verifies the claim across the
// full workload spectrum, including the medium range set no headline
// figure shows.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  Report().SetParam("objects", static_cast<int64_t>(n));
  std::printf("Query-set sweep (scale=%s): %zu-object random dataset, "
              "PPR(150%%) vs R*(1%%).\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> ppr_records =
      SplitWithLaGreedy(objects, 150);
  const std::vector<SegmentRecord> rstar_records =
      SplitWithLaGreedy(objects, 1);
  const std::unique_ptr<PprTree> ppr = BuildPprTree(ppr_records);
  const std::unique_ptr<RStarTree> rstar = BuildRStar(rstar_records, 1000);

  PrintHeader("All Table II query sets",
              "query set      | ppr_io     | rstar_io   | ppr/rstar");
  for (const QuerySetConfig& config :
       {TinySnapshotSet(), SmallSnapshotSet(), MixedSnapshotSet(),
        LargeSnapshotSet(), SmallRangeSet(), MediumRangeSet()}) {
    const std::vector<STQuery> queries =
        MakeQueries(config, scale.query_count);
    const double ppr_io = AveragePprIo(*ppr, queries);
    const double rstar_io = AverageRStarIo(*rstar, queries, 1000);
    char line[160];
    std::snprintf(line, sizeof(line), "%-14s | %10.2f | %10.2f | %9.2f",
                  config.name.c_str(), ppr_io, rstar_io, ppr_io / rstar_io);
    PrintRow(line);
    Report().AddSample("ppr_io", config.name, ppr_io);
    Report().AddSample("rstar_io", config.name, rstar_io);
  }
  std::printf("\nExpected shape: PPR wins every snapshot set and the small "
              "range set; the gap narrows as query duration grows "
              "(medium-range), since long intervals play against a "
              "time-sliced structure.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_queryset_sweep");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
