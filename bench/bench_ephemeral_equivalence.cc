// Section II-B's core promise, measured: a partially persistent R-tree
// answering a snapshot query at time t "behaves as if an 'ephemeral'
// structure was present for time t, indexing the alive objects at t".
// For sampled instants this harness builds an actual fresh 2-D R-tree
// over exactly the records alive at t and compares its query I/O with the
// PPR-tree queried at t.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "hrtree/hr_tree.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("splits_percent", static_cast<int64_t>(150));
  std::printf("Ephemeral equivalence (scale=%s): %zu-object random "
              "dataset, LAGreedy 150%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 150);
  const std::unique_ptr<PprTree> ppr = BuildPprTree(records);

  const std::vector<STQuery> queries =
      MakeQueries(MixedSnapshotSet(), scale.query_count);

  PrintHeader("Snapshot I/O: PPR at t vs fresh 2-D R-tree of alive(t)",
              "instant | alive  | ppr_io  | ephemeral_io | ratio");
  for (Time t : {100, 300, 500, 700, 900}) {
    // The ephemeral structure: a plain 2-D R-tree over records alive at
    // t (an HR-tree fed only inserts is exactly that).
    HrTree ephemeral;
    size_t alive = 0;
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].box.interval.Contains(t)) {
        ephemeral.Insert(records[i].box.rect, 0, i);
        ++alive;
      }
    }
    uint64_t ppr_io = 0;
    uint64_t ephemeral_io = 0;
    std::vector<PprDataId> a;
    std::vector<HrDataId> b;
    for (const STQuery& query : queries) {
      ppr->ResetQueryState();
      ppr->SnapshotQuery(query.area, t, &a);
      ppr_io += ppr->stats().misses;
      ephemeral.ResetQueryState();
      ephemeral.SnapshotQuery(query.area, 0, &b);
      ephemeral_io += ephemeral.stats().misses;
      STINDEX_CHECK(a.size() == b.size());
    }
    const double ppr_avg =
        static_cast<double>(ppr_io) / static_cast<double>(queries.size());
    const double ephemeral_avg = static_cast<double>(ephemeral_io) /
                                 static_cast<double>(queries.size());
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%7lld | %6zu | %7.2f | %12.2f | %5.2f",
                  static_cast<long long>(t), alive, ppr_avg, ephemeral_avg,
                  ppr_avg / ephemeral_avg);
    PrintRow(line);
    const double x = static_cast<double>(t);
    Report().AddSample("alive", x, static_cast<double>(alive));
    Report().AddSample("ppr_io", x, ppr_avg);
    Report().AddSample("ephemeral_io", x, ephemeral_avg);
  }
  std::printf("\nExpected shape: PPR snapshot I/O on par with (in practice "
              "even below) a freshly insert-built 2-D R-tree over the alive "
              "set — its R*-style key splits and strong-version fill bounds "
              "produce tighter nodes than plain quadratic insertion, while "
              "needing linear (not per-instant) storage.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_ephemeral_equivalence");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
