// Micro-benchmarks (google-benchmark) of the core operations: the
// single-object splitters, the distribution algorithms, index
// construction and query execution. Complements the figure harnesses with
// stable per-operation timings.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/distribute.h"
#include "core/dp_split.h"
#include "core/merge_split.h"

namespace stindex {
namespace bench {
namespace {

const std::vector<Trajectory>& SharedObjects() {
  static const std::vector<Trajectory>* objects =
      new std::vector<Trajectory>(MakeRandomDataset(512));
  return *objects;
}

std::vector<Rect2D> ObjectOfLifetime(int64_t instants) {
  for (const Trajectory& object : SharedObjects()) {
    if (object.NumInstants() >= instants) {
      std::vector<Rect2D> rects = object.Sample();
      rects.resize(static_cast<size_t>(instants));
      return rects;
    }
  }
  // Fall back to the longest available object.
  return SharedObjects().front().Sample();
}

void BM_DpSplit(benchmark::State& state) {
  const std::vector<Rect2D> rects = ObjectOfLifetime(state.range(0));
  const int k = static_cast<int>(rects.size()) / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DpSplit(rects, k).total_volume);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DpSplit)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Complexity();

void BM_MergeSplit(benchmark::State& state) {
  const std::vector<Rect2D> rects = ObjectOfLifetime(state.range(0));
  const int k = static_cast<int>(rects.size()) / 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MergeSplit(rects, k).total_volume);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MergeSplit)->Arg(16)->Arg(32)->Arg(64)->Arg(96)->Complexity();

void BM_DpVolumeCurve(benchmark::State& state) {
  const std::vector<Rect2D> rects = ObjectOfLifetime(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DpVolumeCurve(rects, static_cast<int>(rects.size())).back());
  }
}
BENCHMARK(BM_DpVolumeCurve)->Arg(32)->Arg(64)->Arg(96);

void BM_MergeVolumeCurve(benchmark::State& state) {
  const std::vector<Rect2D> rects = ObjectOfLifetime(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MergeVolumeCurve(rects, static_cast<int>(rects.size())).back());
  }
}
BENCHMARK(BM_MergeVolumeCurve)->Arg(32)->Arg(64)->Arg(96);

const std::vector<VolumeCurve>& SharedCurves() {
  static const std::vector<VolumeCurve>* curves = new std::vector<VolumeCurve>(
      ComputeVolumeCurves(SharedObjects(), 128, SplitMethod::kMerge));
  return *curves;
}

void BM_DistributeGreedy(benchmark::State& state) {
  const auto& curves = SharedCurves();
  const int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistributeGreedy(curves, budget).total_volume);
  }
}
BENCHMARK(BM_DistributeGreedy)->Arg(128)->Arg(512)->Arg(768);

void BM_DistributeLAGreedy(benchmark::State& state) {
  const auto& curves = SharedCurves();
  const int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        DistributeLAGreedy(curves, budget).total_volume);
  }
}
BENCHMARK(BM_DistributeLAGreedy)->Arg(128)->Arg(512)->Arg(768);

void BM_DistributeOptimal(benchmark::State& state) {
  const auto& curves = SharedCurves();
  const int64_t budget = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(DistributeOptimal(curves, budget).total_volume);
  }
}
BENCHMARK(BM_DistributeOptimal)->Arg(128)->Arg(256);

void BM_PprBuild(benchmark::State& state) {
  const std::vector<Trajectory> objects =
      MakeRandomDataset(static_cast<size_t>(state.range(0)));
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildPprTree(records)->PageCount());
  }
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_PprBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_RStarBuild(benchmark::State& state) {
  const std::vector<Trajectory> objects =
      MakeRandomDataset(static_cast<size_t>(state.range(0)));
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildRStar(records, 1000)->PageCount());
  }
  state.counters["records"] = static_cast<double>(records.size());
}
BENCHMARK(BM_RStarBuild)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_PprSnapshotQuery(benchmark::State& state) {
  static const std::unique_ptr<PprTree>* tree = [] {
    const std::vector<Trajectory> objects = MakeRandomDataset(2000);
    auto* t = new std::unique_ptr<PprTree>(
        BuildPprTree(SplitWithLaGreedy(objects, 150)));
    return t;
  }();
  const std::vector<STQuery> queries = MakeQueries(MixedSnapshotSet(), 64);
  std::vector<PprDataId> results;
  size_t q = 0;
  for (auto _ : state) {
    const STQuery& query = queries[q++ % queries.size()];
    (*tree)->SnapshotQuery(query.area, query.range.start, &results);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_PprSnapshotQuery);

void BM_RStarRangeQuery(benchmark::State& state) {
  static const std::unique_ptr<RStarTree>* tree = [] {
    const std::vector<Trajectory> objects = MakeRandomDataset(2000);
    auto* t = new std::unique_ptr<RStarTree>(
        BuildRStar(SplitWithLaGreedy(objects, 1), 1000));
    return t;
  }();
  const std::vector<STQuery> queries = MakeQueries(SmallRangeSet(), 64);
  std::vector<DataId> results;
  size_t q = 0;
  for (auto _ : state) {
    (*tree)->Search(QueryToBox(queries[q++ % queries.size()], 0, 1000),
                    &results);
    benchmark::DoNotOptimize(results.size());
  }
}
BENCHMARK(BM_RStarRangeQuery);

}  // namespace
}  // namespace bench
}  // namespace stindex

BENCHMARK_MAIN();
