// MV3R-style hybrid (the paper's reference [25], its "best previous
// alternative"): a multiversion tree for short queries plus an auxiliary
// 3-D R-tree for long intervals. This harness shows where the hybrid
// pays off relative to its members across query durations.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "hybrid/mv3r_index.h"
#include "util/random.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  std::printf("MV3R hybrid (scale=%s): %zu-object random dataset, LAGreedy "
              "150%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 150);
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("splits_percent", static_cast<int64_t>(150));
  Mv3rIndex hybrid(records, 1000);
  const std::unique_ptr<RStarTree> rstar = BuildRStar(records, 1000);

  PrintHeader("I/O by query duration: hybrid vs members",
              "duration | hybrid_io | ppr_io    | rstar_io  | routed_to");
  Rng rng(7);
  for (Time duration : {1, 4, 16, 64, 200}) {
    uint64_t hybrid_io = 0, ppr_io = 0, rstar_io = 0;
    std::vector<uint64_t> results;
    std::vector<PprDataId> ppr_results;
    std::vector<DataId> rstar_results;
    bool routed_aux = false;
    const size_t count = scale.query_count;
    for (size_t q = 0; q < count; ++q) {
      STQuery query;
      const double x = rng.UniformDouble(0, 0.99);
      const double y = rng.UniformDouble(0, 0.99);
      query.area = Rect2D(x, y, x + 0.01, y + 0.01);
      const Time start = rng.UniformInt(0, 999 - duration);
      query.range = TimeInterval(start, start + duration);

      hybrid.Query(query, &results);
      hybrid_io += hybrid.LastQueryMisses();
      routed_aux = hybrid.RoutesToAuxiliary(query);

      hybrid.ppr().ResetQueryState();
      if (query.IsSnapshot()) {
        hybrid.ppr().SnapshotQuery(query.area, query.range.start,
                                   &ppr_results);
      } else {
        hybrid.ppr().IntervalQuery(query.area, query.range, &ppr_results);
      }
      ppr_io += hybrid.ppr().stats().misses;

      rstar->ResetQueryState();
      rstar->Search(QueryToBox(query, 0, 1000), &rstar_results);
      rstar_io += rstar->stats().misses;
    }
    const double hybrid_avg =
        static_cast<double>(hybrid_io) / static_cast<double>(count);
    const double ppr_avg =
        static_cast<double>(ppr_io) / static_cast<double>(count);
    const double rstar_avg =
        static_cast<double>(rstar_io) / static_cast<double>(count);
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%8lld | %9.2f | %9.2f | %9.2f | %s",
                  static_cast<long long>(duration), hybrid_avg, ppr_avg,
                  rstar_avg, routed_aux ? "auxiliary" : "mvr");
    PrintRow(line);
    const double x = static_cast<double>(duration);
    Report().AddSample("hybrid_io", x, hybrid_avg);
    Report().AddSample("ppr_io", x, ppr_avg);
    Report().AddSample("rstar_io", x, rstar_avg);
  }
  std::printf("\npages: hybrid=%zu (mvr %zu + auxiliary %zu), plain "
              "rstar=%zu\n",
              hybrid.PageCount(), hybrid.ppr().PageCount(),
              hybrid.auxiliary().PageCount(), rstar->PageCount());
  Report().AddSample("pages", "hybrid",
                     static_cast<double>(hybrid.PageCount()));
  Report().AddSample("pages", "rstar",
                     static_cast<double>(rstar->PageCount()));
  std::printf("\nExpected shape: the hybrid matches the PPR-tree on short "
              "queries and the 3-D tree on long ones — never the worst of "
              "either, at the cost of storing both structures.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_mv3r");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
