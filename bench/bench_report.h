#ifndef STINDEX_BENCH_BENCH_REPORT_H_
#define STINDEX_BENCH_BENCH_REPORT_H_

// Structured reporting for the experiment harnesses. Every bench main
// parses its command line with ParseBenchArgs, feeds the numbers it
// prints into the process-global Report(), and ends with FinishReport().
// With `--json=PATH` the run additionally writes one schema-stable JSON
// document:
//
//   {
//     "schema_version": 2,
//     "bench": "<name>",           // harness name
//     "scale": "<small|medium|paper>",
//     "threads": N,
//     "params": { ... },           // harness-specific knobs, insertion order
//     "series": [                  // the plotted/tabulated numbers
//       {"name": "...", "points": [{"x": ..., "y": ...} |
//                                  {"label": "...", "y": ...}]}
//     ],
//     "io": {"accesses": N, "misses": N, "hits": N,
//            "false_hits": N},     // query-time totals; false_hits is 0
//                                  // unless the harness ran a refiner
//     "latency_ms": {"count": N, "p50": ..., "p90": ..., "p95": ...,
//                    "p99": ..., "max": ...},  // per-query wall times
//     "metrics": { "counters": {...}, "gauges": {...},
//                  "histograms": {name:
//                      {count,sum,min,max,p50,p90,p95,p99}} }
//   }
//
// Schema history: v2 added io.false_hits and the p95 percentile fields.
//
// The io and latency sections are fed by the shared query drivers in
// bench_common (registry metrics io.query.*); metrics is the full
// MetricRegistry snapshot in sorted name order.

#include <cstdint>
#include <string>
#include <vector>

namespace stindex {
namespace bench {

// Shared command-line surface of every bench binary:
//   --threads=N | --threads N    worker threads (else STINDEX_THREADS, else 1)
//   --json=PATH | --json PATH    write the structured report to PATH
//   --trace=PATH | --trace PATH  capture a Chrome trace of the whole run
//                                (tracing starts inside ParseBenchArgs and
//                                FinishReport stops it and writes the file)
//   --buffer-pages=N             *total* query-buffer capacity in pages,
//                                shared by all worker threads (0: the
//                                tree's configured default, the paper's
//                                10-page protocol)
// Harnesses that can run against a real storage backend (fig15/17/18)
// additionally accept:
//   --backend=memory|file|mmap   persist indexes through a PageBackend and
//                                query through it (default: the in-memory
//                                store, no serialization). "mmap" packs
//                                each tree into a read-only snapshot file
//                                and serves it zero-copy.
//   --db=DIR                     directory for the page/snapshot files
//                                (required for --backend=file|mmap)
// Unknown arguments and invalid thread counts print a message and
// exit(2); thread resolution shares util/threads.h with stindex_cli.
struct BenchArgs {
  std::string bench_name;
  int threads = 1;
  std::string json_path;   // empty: no report file
  std::string trace_path;  // empty: no Chrome trace capture
  std::string backend;     // "", "memory", "file" or "mmap"
  std::string db_path;     // --backend=file|mmap: directory for page files
  size_t buffer_pages = 0;  // total pool pages across all threads; 0 =
                            // the tree's configured default
};

BenchArgs ParseBenchArgs(int argc, char** argv, const std::string& bench_name,
                         bool accept_backend = false);

// Accumulates the report body for the current process.
class BenchReport {
 public:
  // Harness-specific parameters, reported in insertion order (setting the
  // same name again overwrites in place).
  void SetParam(const std::string& name, const std::string& value);
  void SetParam(const std::string& name, int64_t value);
  void SetParam(const std::string& name, double value);

  // One data point of a named series; series appear in first-use order
  // and points in insertion order, mirroring the printed rows.
  void AddSample(const std::string& series, double x, double y);
  void AddSample(const std::string& series, const std::string& label,
                 double y);

  // The finished JSON document (also what FinishReport writes).
  std::string ToJson(const std::string& bench_name, int threads) const;

  // Drops all accumulated params/series (tests only).
  void ResetForTest();

 private:
  struct Point {
    bool labeled = false;
    std::string label;
    double x = 0.0;
    double y = 0.0;
  };
  struct Series {
    std::string name;
    std::vector<Point> points;
  };
  enum class ParamKind { kString, kInt, kDouble };
  struct Param {
    std::string name;
    ParamKind kind = ParamKind::kString;
    std::string string_value;
    int64_t int_value = 0;
    double double_value = 0.0;
  };

  Param* FindOrAddParam(const std::string& name);
  Series& FindOrAddSeries(const std::string& name);

  std::vector<Param> params_;
  std::vector<Series> series_;
};

// The process-global report every harness feeds.
BenchReport& Report();

// Writes the report to args.json_path when set (a message to stderr on
// I/O failure exits with status 1); no-op otherwise.
void FinishReport(const BenchArgs& args);

}  // namespace bench
}  // namespace stindex

#endif  // STINDEX_BENCH_BENCH_REPORT_H_
