// Figure 15: average disk accesses for small range queries as the number
// of splits grows (LAGreedy distribution), PPR-tree vs 3-D R*-tree, on
// the 50k random dataset (third size of the active scale). Shape to
// reproduce: PPR I/O falls substantially with splits while the R*-tree
// gets no benefit (or degrades). Candidates are also refined against the
// exact trajectories: splitting tightens the stored MBRs, so the
// per-query false-hit count must fall monotonically with the budget.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"
#include "core/query_profile.h"

namespace stindex {
namespace bench {
namespace {

void Run(const BenchArgs& args) {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[2];
  Report().SetParam("objects", static_cast<int64_t>(n));
  std::printf("Figure 15 reproduction (scale=%s, backend=%s): avg disk "
              "accesses vs splits, small range queries, %zu-object random "
              "dataset.\n",
              scale.name.c_str(),
              args.backend.empty() ? "store" : args.backend.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<STQuery> queries =
      MakeQueries(SmallRangeSet(), scale.query_count);

  PrintHeader("Fig 15: small range queries vs number of splits",
              "splits%% | ppr_io     | rstar_io   | false/query | records");
  for (int percent : {0, 1, 5, 10, 25, 50, 100, 150}) {
    const std::vector<SegmentRecord> records =
        SplitWithLaGreedy(objects, percent);
    const FalseHitRefiner refiner(objects, records);
    const std::unique_ptr<PprTree> ppr = BuildPprTree(records);
    AttachBenchBackend(ppr.get(), args, "ppr");
    const std::unique_ptr<RStarTree> rstar = BuildRStar(records, 1000);
    AttachBenchBackend(rstar.get(), args, "rstar");
    // Per-budget profile (the registry counter is cumulative across the
    // loop; the series wants this budget's false hits alone).
    QueryProfile ppr_profile;
    const double ppr_io = AveragePprIo(*ppr, queries, args.threads,
                                       /*aggregate=*/nullptr, &refiner,
                                       &ppr_profile, args.buffer_pages);
    const double rstar_io =
        AverageRStarIo(*rstar, queries, 1000, args.threads,
                       /*aggregate=*/nullptr, /*refiner=*/nullptr,
                       /*profile=*/nullptr, args.buffer_pages);
    const double false_per_query =
        static_cast<double>(ppr_profile.false_hits) /
        static_cast<double>(queries.size());
    char row[256];
    std::snprintf(row, sizeof(row), "%6d%% | %10.2f | %10.2f | %11.2f | %7zu",
                  percent, ppr_io, rstar_io, false_per_query, records.size());
    PrintRow(row);
    Report().AddSample("ppr_io", percent, ppr_io);
    Report().AddSample("rstar_io", percent, rstar_io);
    Report().AddSample("ppr_false_hits_per_query", percent, false_per_query);
    Report().AddSample("records", percent,
                       static_cast<double>(records.size()));
  }
  std::printf("\nExpected shape: ppr_io decreases substantially as splits "
              "increase; rstar_io is flat or degrades (paper Figure 15, "
              "75 vs 110 I/Os at paper scale); false hits per query fall "
              "monotonically as splits tighten the MBRs.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args = stindex::bench::ParseBenchArgs(
      argc, argv, "bench_fig15_splits_io", /*accept_backend=*/true);
  stindex::bench::Run(args);
  stindex::bench::FinishReport(args);
  return 0;
}
