// Ablation: R-tree construction heuristics. The paper uses the R*-tree
// [3] as its baseline ("an R-Tree [8] or its variants"); this harness
// quantifies how much the R* heuristics (margin split, min-overlap
// distribution, forced reinsertion) matter on spatiotemporal segment
// data, versus Guttman's quadratic and linear splits.
#include <cstdio>

#include "bench_common.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[1];
  std::printf("R-tree heuristic ablation (scale=%s): %zu-object random "
              "dataset, LAGreedy 50%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);

  struct Variant {
    const char* name;
    SplitStrategy split;
    bool reinsert;
  };
  PrintHeader("R-tree variants: avg disk accesses and pages",
              "variant          | small_range | mixed_snap | pages");
  for (const Variant& variant :
       {Variant{"rstar+reinsert", SplitStrategy::kRStar, true},
        Variant{"rstar", SplitStrategy::kRStar, false},
        Variant{"quadratic", SplitStrategy::kQuadratic, false},
        Variant{"linear", SplitStrategy::kLinear, false}}) {
    RStarConfig config;
    config.split = variant.split;
    config.forced_reinsert = variant.reinsert;
    RStarTree tree(config);
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree.Insert(boxes[i], static_cast<DataId>(i));
    }
    char line[160];
    std::snprintf(line, sizeof(line), "%-16s | %11.2f | %10.2f | %5zu",
                  variant.name, AverageRStarIo(tree, ranges, 1000),
                  AverageRStarIo(tree, snaps, 1000), tree.PageCount());
    PrintRow(line);
  }
  std::printf("\nExpected shape: linear split is clearly the worst; R* and "
              "quadratic are the contenders (on near-uniform segment data "
              "quadratic can edge out R*, whose overlap heuristics pay off "
              "more on clustered data). None of the variants changes the "
              "conclusion against the PPR-tree.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main() {
  stindex::bench::Run();
  return 0;
}
