// Ablation: R-tree construction heuristics. The paper uses the R*-tree
// [3] as its baseline ("an R-Tree [8] or its variants"); this harness
// quantifies how much the R* heuristics (margin split, min-overlap
// distribution, forced reinsertion) matter on spatiotemporal segment
// data, versus Guttman's quadratic and linear splits.
#include <cstdio>

#include "bench_common.h"
#include "bench_report.h"

namespace stindex {
namespace bench {
namespace {

void Run() {
  const BenchScale scale = GetScale();
  const size_t n = scale.dataset_sizes[1];
  Report().SetParam("objects", static_cast<int64_t>(n));
  Report().SetParam("splits_percent", static_cast<int64_t>(50));
  std::printf("R-tree heuristic ablation (scale=%s): %zu-object random "
              "dataset, LAGreedy 50%% splits.\n",
              scale.name.c_str(), n);
  const std::vector<Trajectory> objects = MakeRandomDataset(n);
  const std::vector<SegmentRecord> records = SplitWithLaGreedy(objects, 50);
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, 1000);
  const std::vector<STQuery> ranges =
      MakeQueries(SmallRangeSet(), scale.query_count);
  const std::vector<STQuery> snaps =
      MakeQueries(MixedSnapshotSet(), scale.query_count);

  struct Variant {
    const char* name;
    SplitStrategy split;
    bool reinsert;
  };
  PrintHeader("R-tree variants: avg disk accesses and pages",
              "variant          | small_range | mixed_snap | pages");
  for (const Variant& variant :
       {Variant{"rstar+reinsert", SplitStrategy::kRStar, true},
        Variant{"rstar", SplitStrategy::kRStar, false},
        Variant{"quadratic", SplitStrategy::kQuadratic, false},
        Variant{"linear", SplitStrategy::kLinear, false}}) {
    RStarConfig config;
    config.split = variant.split;
    config.forced_reinsert = variant.reinsert;
    RStarTree tree(config);
    for (size_t i = 0; i < boxes.size(); ++i) {
      tree.Insert(boxes[i], static_cast<DataId>(i));
    }
    const double range_io = AverageRStarIo(tree, ranges, 1000);
    const double snap_io = AverageRStarIo(tree, snaps, 1000);
    char line[160];
    std::snprintf(line, sizeof(line), "%-16s | %11.2f | %10.2f | %5zu",
                  variant.name, range_io, snap_io, tree.PageCount());
    PrintRow(line);
    Report().AddSample("small_range_io", variant.name, range_io);
    Report().AddSample("mixed_snapshot_io", variant.name, snap_io);
    Report().AddSample("pages", variant.name,
                       static_cast<double>(tree.PageCount()));
  }
  std::printf("\nExpected shape: linear split is clearly the worst; R* and "
              "quadratic are the contenders (on near-uniform segment data "
              "quadratic can edge out R*, whose overlap heuristics pay off "
              "more on clustered data). None of the variants changes the "
              "conclusion against the PPR-tree.\n");
}

}  // namespace
}  // namespace bench
}  // namespace stindex

int main(int argc, char** argv) {
  const stindex::bench::BenchArgs args =
      stindex::bench::ParseBenchArgs(argc, argv, "bench_ablation_rstar");
  stindex::bench::Run();
  stindex::bench::FinishReport(args);
  return 0;
}
