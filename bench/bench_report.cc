#include "bench_report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_common.h"
#include "util/json_writer.h"
#include "util/metrics.h"
#include "util/status.h"
#include "util/threads.h"
#include "util/trace.h"

namespace stindex {
namespace bench {

BenchArgs ParseBenchArgs(int argc, char** argv, const std::string& bench_name,
                         bool accept_backend) {
  BenchArgs args;
  args.bench_name = bench_name;
  std::string threads_flag;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      threads_flag = arg.substr(10);
    } else if (arg == "--threads" && i + 1 < argc) {
      threads_flag = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(7);
    } else if (arg == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace_path = arg.substr(8);
    } else if (arg == "--trace" && i + 1 < argc) {
      args.trace_path = argv[++i];
    } else if (arg.rfind("--buffer-pages=", 0) == 0 ||
               (arg == "--buffer-pages" && i + 1 < argc)) {
      const std::string value =
          arg == "--buffer-pages" ? argv[++i] : arg.substr(15);
      char* end = nullptr;
      const long pages = std::strtol(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' || pages < 0) {
        std::fprintf(stderr,
                     "%s: --buffer-pages expects a non-negative page "
                     "count, got '%s'\n",
                     bench_name.c_str(), value.c_str());
        std::exit(2);
      }
      args.buffer_pages = static_cast<size_t>(pages);
    } else if (accept_backend && arg.rfind("--backend=", 0) == 0) {
      args.backend = arg.substr(10);
    } else if (accept_backend && arg == "--backend" && i + 1 < argc) {
      args.backend = argv[++i];
    } else if (accept_backend && arg.rfind("--db=", 0) == 0) {
      args.db_path = arg.substr(5);
    } else if (accept_backend && arg == "--db" && i + 1 < argc) {
      args.db_path = argv[++i];
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (--threads=N, "
                   "--json=PATH, --trace=PATH, --buffer-pages=N%s)\n",
                   bench_name.c_str(), arg.c_str(),
                   accept_backend ? ", --backend=memory|file|mmap, --db=DIR"
                                  : "");
      std::exit(2);
    }
  }
  if (!args.backend.empty() && args.backend != "memory" &&
      args.backend != "file" && args.backend != "mmap") {
    std::fprintf(stderr,
                 "%s: --backend must be 'memory', 'file' or 'mmap', got '%s'\n",
                 bench_name.c_str(), args.backend.c_str());
    std::exit(2);
  }
  if ((args.backend == "file" || args.backend == "mmap") &&
      args.db_path.empty()) {
    std::fprintf(stderr, "%s: --backend=%s requires --db=DIR\n",
                 bench_name.c_str(), args.backend.c_str());
    std::exit(2);
  }
  const Result<int> threads = ResolveThreadCount(threads_flag);
  if (!threads.ok()) {
    std::fprintf(stderr, "%s: %s\n", bench_name.c_str(),
                 threads.status().ToString().c_str());
    std::exit(2);
  }
  args.threads = threads.value();
  // Start tracing here so index builds and the query phases all land in
  // the capture; FinishReport stops the session and writes the file.
  if (!args.trace_path.empty()) TraceSession::Start();
  return args;
}

BenchReport::Param* BenchReport::FindOrAddParam(const std::string& name) {
  for (Param& param : params_) {
    if (param.name == name) return &param;
  }
  params_.push_back(Param{});
  params_.back().name = name;
  return &params_.back();
}

BenchReport::Series& BenchReport::FindOrAddSeries(const std::string& name) {
  for (Series& series : series_) {
    if (series.name == name) return series;
  }
  series_.push_back(Series{});
  series_.back().name = name;
  return series_.back();
}

void BenchReport::SetParam(const std::string& name, const std::string& value) {
  Param* param = FindOrAddParam(name);
  param->kind = ParamKind::kString;
  param->string_value = value;
}

void BenchReport::SetParam(const std::string& name, int64_t value) {
  Param* param = FindOrAddParam(name);
  param->kind = ParamKind::kInt;
  param->int_value = value;
}

void BenchReport::SetParam(const std::string& name, double value) {
  Param* param = FindOrAddParam(name);
  param->kind = ParamKind::kDouble;
  param->double_value = value;
}

void BenchReport::AddSample(const std::string& series, double x, double y) {
  Point point;
  point.x = x;
  point.y = y;
  FindOrAddSeries(series).points.push_back(point);
}

void BenchReport::AddSample(const std::string& series,
                            const std::string& label, double y) {
  Point point;
  point.labeled = true;
  point.label = label;
  point.y = y;
  FindOrAddSeries(series).points.push_back(point);
}

void BenchReport::ResetForTest() {
  params_.clear();
  series_.clear();
}

namespace {

void WriteHistogramSnapshot(JsonWriter& json,
                            const HistogramSnapshot& snapshot) {
  json.BeginObject()
      .Key("count")
      .Uint(snapshot.count)
      .Key("sum")
      .Double(snapshot.sum)
      .Key("min")
      .Double(snapshot.min)
      .Key("max")
      .Double(snapshot.max)
      .Key("p50")
      .Double(snapshot.p50)
      .Key("p90")
      .Double(snapshot.p90)
      .Key("p95")
      .Double(snapshot.p95)
      .Key("p99")
      .Double(snapshot.p99)
      .EndObject();
}

}  // namespace

std::string BenchReport::ToJson(const std::string& bench_name,
                                int threads) const {
  MetricRegistry& registry = MetricRegistry::Global();
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(2);
  json.Key("bench").String(bench_name);
  json.Key("scale").String(GetScale().name);
  json.Key("threads").Int(threads);

  json.Key("params").BeginObject();
  for (const Param& param : params_) {
    json.Key(param.name);
    switch (param.kind) {
      case ParamKind::kString:
        json.String(param.string_value);
        break;
      case ParamKind::kInt:
        json.Int(param.int_value);
        break;
      case ParamKind::kDouble:
        json.Double(param.double_value);
        break;
    }
  }
  json.EndObject();

  json.Key("series").BeginArray();
  for (const Series& series : series_) {
    json.BeginObject().Key("name").String(series.name);
    json.Key("points").BeginArray();
    for (const Point& point : series.points) {
      json.BeginObject();
      if (point.labeled) {
        json.Key("label").String(point.label);
      } else {
        json.Key("x").Double(point.x);
      }
      json.Key("y").Double(point.y).EndObject();
    }
    json.EndArray().EndObject();
  }
  json.EndArray();

  // Query-time I/O totals, fed by the shared drivers in bench_common.
  const uint64_t accesses =
      registry.GetCounter("io.query.accesses")->Value();
  const uint64_t misses = registry.GetCounter("io.query.misses")->Value();
  json.Key("io")
      .BeginObject()
      .Key("accesses")
      .Uint(accesses)
      .Key("misses")
      .Uint(misses)
      .Key("hits")
      .Uint(accesses - misses)
      .Key("false_hits")
      .Uint(registry.GetCounter("io.query.false_hits")->Value())
      .EndObject();

  json.Key("latency_ms");
  const HistogramSnapshot latency =
      registry.GetHistogram("io.query.latency_ms")->Value().Snapshot();
  json.BeginObject()
      .Key("count")
      .Uint(latency.count)
      .Key("p50")
      .Double(latency.p50)
      .Key("p90")
      .Double(latency.p90)
      .Key("p95")
      .Double(latency.p95)
      .Key("p99")
      .Double(latency.p99)
      .Key("max")
      .Double(latency.max)
      .EndObject();

  const MetricsSnapshot metrics = registry.Snapshot();
  json.Key("metrics").BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, value] : metrics.counters) {
    json.Key(name).Uint(value);
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : metrics.gauges) {
    json.Key(name).Int(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, snapshot] : metrics.histograms) {
    json.Key(name);
    WriteHistogramSnapshot(json, snapshot);
  }
  json.EndObject();
  json.EndObject();  // metrics

  json.EndObject();
  return json.str();
}

BenchReport& Report() {
  static BenchReport* report = new BenchReport();
  return *report;
}

void FinishReport(const BenchArgs& args) {
  if (!args.trace_path.empty()) {
    TraceSession::Stop();
    const Status status = TraceSession::WriteChromeTrace(args.trace_path);
    if (!status.ok()) {
      std::fprintf(stderr, "%s: %s\n", args.bench_name.c_str(),
                   status.ToString().c_str());
      std::exit(1);
    }
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 TraceSession::CollectedEvents().size(),
                 args.trace_path.c_str());
  }
  if (args.json_path.empty()) return;
  const std::string document =
      Report().ToJson(args.bench_name, args.threads);
  std::ofstream out(args.json_path);
  if (!out) {
    std::fprintf(stderr, "%s: cannot open '%s' for writing\n",
                 args.bench_name.c_str(), args.json_path.c_str());
    std::exit(1);
  }
  out << document << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "%s: write to '%s' failed\n",
                 args.bench_name.c_str(), args.json_path.c_str());
    std::exit(1);
  }
  std::fprintf(stderr, "wrote %s\n", args.json_path.c_str());
}

}  // namespace bench
}  // namespace stindex
