#ifndef STINDEX_HYBRID_MV3R_INDEX_H_
#define STINDEX_HYBRID_MV3R_INDEX_H_

#include <memory>
#include <vector>

#include "core/segment.h"
#include "datagen/query_gen.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {

struct Mv3rConfig {
  // Queries spanning at least this many instants go to the 3-D R-tree;
  // shorter ones (and snapshots) go to the multiversion tree. Tao &
  // Papadias route "timestamp and short interval" queries to the MVR-tree
  // and long intervals to the auxiliary 3-D tree. On the paper-style
  // datasets the crossover sits around several dozen instants.
  Time long_query_threshold = 64;
  PprConfig ppr;
  RStarConfig rstar;
  // Build the auxiliary tree packed (STR) instead of by insertion. Off by
  // default: on moving-object segments packing hurts query I/O (see
  // bench_ablation_packing and the paper's Section V remark).
  bool pack_auxiliary = false;
};

// An MV3R-style hybrid (Tao & Papadias, VLDB 2001 — the paper's reference
// [25] and its strongest prior alternative): a multiversion R-tree for
// snapshot/short-interval queries plus an auxiliary 3-D R-tree over the
// same records for long-interval queries, where a time-sliced structure
// must open many version trees but a single 3-D structure pays once.
//
// Both members index the same segment records; a query is answered by
// exactly one of them, chosen by duration.
class Mv3rIndex {
 public:
  // Builds both structures over `records` (time domain needed to scale
  // the auxiliary tree's time axis).
  Mv3rIndex(const std::vector<SegmentRecord>& records, Time time_domain,
            Mv3rConfig config = Mv3rConfig());

  Mv3rIndex(const Mv3rIndex&) = delete;
  Mv3rIndex& operator=(const Mv3rIndex&) = delete;

  // Answers a snapshot or interval query; results are record indexes.
  void Query(const STQuery& query, std::vector<uint64_t>* results) const;

  // Which member would answer this query (test/inspection hook).
  bool RoutesToAuxiliary(const STQuery& query) const {
    return query.range.Duration() >= config_.long_query_threshold;
  }

  // Disk accesses of the last query (the member that ran it).
  uint64_t LastQueryMisses() const { return last_misses_; }

  size_t PageCount() const {
    return ppr_->PageCount() + auxiliary_->PageCount();
  }

  const PprTree& ppr() const { return *ppr_; }
  const RStarTree& auxiliary() const { return *auxiliary_; }

 private:
  Mv3rConfig config_;
  Time time_domain_;
  std::unique_ptr<PprTree> ppr_;
  std::unique_ptr<RStarTree> auxiliary_;
  mutable uint64_t last_misses_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_HYBRID_MV3R_INDEX_H_
