#include "hybrid/mv3r_index.h"

#include "core/split_pipeline.h"
#include "util/check.h"

namespace stindex {

Mv3rIndex::Mv3rIndex(const std::vector<SegmentRecord>& records,
                     Time time_domain, Mv3rConfig config)
    : config_(config), time_domain_(time_domain) {
  STINDEX_CHECK(time_domain > 0);
  ppr_ = BuildPprTree(records, config_.ppr);
  const std::vector<Box3D> boxes = SegmentsToBoxes(records, 0, time_domain);
  if (config_.pack_auxiliary) {
    auxiliary_ =
        RStarTree::BulkLoad(boxes, PackingMethod::kStr, config_.rstar);
  } else {
    auxiliary_ = std::make_unique<RStarTree>(config_.rstar);
    for (size_t i = 0; i < boxes.size(); ++i) {
      auxiliary_->Insert(boxes[i], static_cast<DataId>(i));
    }
  }
}

void Mv3rIndex::Query(const STQuery& query,
                      std::vector<uint64_t>* results) const {
  results->clear();
  if (RoutesToAuxiliary(query)) {
    auxiliary_->ResetQueryState();
    std::vector<DataId> hits;
    auxiliary_->Search(QueryToBox(query, 0, time_domain_), &hits);
    last_misses_ = auxiliary_->stats().misses;
    results->assign(hits.begin(), hits.end());
    return;
  }
  ppr_->ResetQueryState();
  std::vector<PprDataId> hits;
  if (query.IsSnapshot()) {
    ppr_->SnapshotQuery(query.area, query.range.start, &hits);
  } else {
    ppr_->IntervalQuery(query.area, query.range, &hits);
  }
  last_misses_ = ppr_->stats().misses;
  results->assign(hits.begin(), hits.end());
}

}  // namespace stindex
