#include "trajectory/polynomial.h"

#include <cstdio>

namespace stindex {

Polynomial::Polynomial(std::vector<double> coefficients)
    : coefficients_(std::move(coefficients)) {
  while (coefficients_.size() > 1 && coefficients_.back() == 0.0) {
    coefficients_.pop_back();
  }
}

Polynomial Polynomial::Constant(double c) { return Polynomial({c}); }

Polynomial Polynomial::Linear(double c0, double c1) {
  return Polynomial({c0, c1});
}

int Polynomial::Degree() const {
  return coefficients_.empty()
             ? 0
             : static_cast<int>(coefficients_.size()) - 1;
}

double Polynomial::Evaluate(double t) const {
  double value = 0.0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    value = value * t + coefficients_[i];
  }
  return value;
}

Polynomial Polynomial::Derivative() const {
  if (coefficients_.size() <= 1) return Polynomial::Constant(0.0);
  std::vector<double> derived(coefficients_.size() - 1);
  for (size_t i = 1; i < coefficients_.size(); ++i) {
    derived[i - 1] = coefficients_[i] * static_cast<double>(i);
  }
  return Polynomial(std::move(derived));
}

std::string Polynomial::ToString() const {
  if (coefficients_.empty()) return "0";
  std::string out;
  char buf[64];
  for (size_t i = 0; i < coefficients_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), i == 0 ? "%g" : " + %g*t^%zu",
                  coefficients_[i], i);
    out += buf;
  }
  return out;
}

}  // namespace stindex
