#include "trajectory/prefix_mbr.h"

#include "util/check.h"

namespace stindex {

MbrVolumeTable::MbrVolumeTable(const std::vector<Rect2D>& rects)
    : rects_(&rects) {
  STINDEX_CHECK_MSG(!rects.empty(), "empty rectangle sequence");
}

Rect2D MbrVolumeTable::MbrOver(size_t j, size_t i) const {
  STINDEX_CHECK(j <= i && i < rects_->size());
  Rect2D mbr = (*rects_)[j];
  for (size_t p = j + 1; p <= i; ++p) mbr.ExpandToInclude((*rects_)[p]);
  return mbr;
}

double MbrVolumeTable::RunVolume(size_t j, size_t i) const {
  return MbrOver(j, i).Area() * static_cast<double>(i - j + 1);
}

void MbrVolumeTable::RunVolumesEndingAt(size_t i,
                                        std::vector<double>* row) const {
  STINDEX_CHECK(i < rects_->size());
  row->resize(i + 1);
  Rect2D mbr = (*rects_)[i];
  (*row)[i] = mbr.Area();
  for (size_t j = i; j-- > 0;) {
    mbr.ExpandToInclude((*rects_)[j]);
    (*row)[j] = mbr.Area() * static_cast<double>(i - j + 1);
  }
}

}  // namespace stindex
