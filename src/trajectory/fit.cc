#include "trajectory/fit.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stindex {
namespace {

// Solves the (d+1)x(d+1) normal equations by Gaussian elimination with
// partial pivoting. Small systems only (d <= 3).
std::vector<double> SolveNormalEquations(std::vector<std::vector<double>> a,
                                         std::vector<double> b) {
  const size_t n = b.size();
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    for (size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    if (std::abs(a[col][col]) < 1e-30) continue;  // singular: leave zero
    for (size_t row = col + 1; row < n; ++row) {
      const double factor = a[row][col] / a[col][col];
      for (size_t k = col; k < n; ++k) a[row][k] -= factor * a[col][k];
      b[row] -= factor * b[col];
    }
  }
  std::vector<double> x(n, 0.0);
  for (size_t row = n; row-- > 0;) {
    double sum = b[row];
    for (size_t k = row + 1; k < n; ++k) sum -= a[row][k] * x[k];
    x[row] = std::abs(a[row][row]) < 1e-30 ? 0.0 : sum / a[row][row];
  }
  return x;
}

}  // namespace

Polynomial FitPolynomial(const std::vector<double>& values, int degree) {
  STINDEX_CHECK(!values.empty());
  STINDEX_CHECK(degree >= 0);
  const int n = static_cast<int>(values.size());
  // Cannot determine more coefficients than samples.
  const int d = std::min(degree, n - 1);

  // Normal equations: sum over s of s^(i+j) * c_j = sum of s^i * y_s.
  std::vector<std::vector<double>> a(
      static_cast<size_t>(d) + 1, std::vector<double>(static_cast<size_t>(d) + 1, 0.0));
  std::vector<double> b(static_cast<size_t>(d) + 1, 0.0);
  for (int s = 0; s < n; ++s) {
    double power_i = 1.0;
    for (int i = 0; i <= d; ++i) {
      double power_ij = power_i;
      for (int j = 0; j <= d; ++j) {
        a[static_cast<size_t>(i)][static_cast<size_t>(j)] += power_ij;
        power_ij *= static_cast<double>(s);
      }
      b[static_cast<size_t>(i)] += power_i * values[static_cast<size_t>(s)];
      power_i *= static_cast<double>(s);
    }
  }
  return Polynomial(SolveNormalEquations(std::move(a), std::move(b)));
}

namespace {

// Max |poly(s) - values[s]| over the sample range.
double MaxDeviation(const Polynomial& poly,
                    const std::vector<double>& values) {
  double worst = 0.0;
  for (size_t s = 0; s < values.size(); ++s) {
    worst = std::max(worst, std::abs(poly.Evaluate(static_cast<double>(s)) -
                                     values[s]));
  }
  return worst;
}

// Fits one axis of a candidate tuple; true when within the error bound.
bool TryFitAxis(const std::vector<double>& values, int degree,
                double max_error, Polynomial* out) {
  *out = FitPolynomial(values, degree);
  return MaxDeviation(*out, values) <= max_error;
}

}  // namespace

Result<Trajectory> FitTrajectory(ObjectId id,
                                 const std::vector<RawObservation>& obs,
                                 const FitOptions& options) {
  if (obs.empty()) {
    return Status::InvalidArgument("no observations");
  }
  if (options.max_degree < 0 || options.max_extent_degree < 0 ||
      options.max_error < 0.0) {
    return Status::InvalidArgument("invalid fit options");
  }
  for (size_t i = 1; i < obs.size(); ++i) {
    if (obs[i].t != obs[i - 1].t + 1) {
      return Status::InvalidArgument(
          "observations must be contiguous per-instant samples");
    }
  }

  std::vector<MovementTuple> tuples;
  size_t start = 0;
  while (start < obs.size()) {
    // Grow the segment greedily: largest end such that all four axes fit
    // within the bound. Extending one instant at a time keeps behavior
    // predictable; each refit is O(len).
    size_t end = start + 1;  // exclusive
    MovementTuple best;
    auto fit_segment = [&](size_t hi, MovementTuple* tuple) {
      std::vector<double> cx, cy, ex, ey;
      for (size_t i = start; i < hi; ++i) {
        cx.push_back(obs[i].center.x);
        cy.push_back(obs[i].center.y);
        ex.push_back(obs[i].extent_x);
        ey.push_back(obs[i].extent_y);
      }
      return TryFitAxis(cx, options.max_degree, options.max_error,
                        &tuple->center_x) &&
             TryFitAxis(cy, options.max_degree, options.max_error,
                        &tuple->center_y) &&
             TryFitAxis(ex, options.max_extent_degree, options.max_error,
                        &tuple->extent_x) &&
             TryFitAxis(ey, options.max_extent_degree, options.max_error,
                        &tuple->extent_y);
    };
    // A single instant always fits exactly.
    STINDEX_CHECK(fit_segment(end, &best));
    while (end < obs.size()) {
      MovementTuple candidate;
      if (!fit_segment(end + 1, &candidate)) break;
      best = candidate;
      ++end;
    }
    best.interval = TimeInterval(obs[start].t, obs[end - 1].t + 1);
    tuples.push_back(std::move(best));
    start = end;
  }

  Trajectory trajectory(id, std::move(tuples));
  const Status status = trajectory.Validate();
  if (!status.ok()) return status;
  return trajectory;
}

}  // namespace stindex
