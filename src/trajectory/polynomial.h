#ifndef STINDEX_TRAJECTORY_POLYNOMIAL_H_
#define STINDEX_TRAJECTORY_POLYNOMIAL_H_

#include <cstddef>
#include <string>
#include <vector>

namespace stindex {

// A univariate polynomial c0 + c1*t + c2*t^2 + ... used to describe object
// movement and extent change along one axis (paper Section II-A). The
// paper bounds the degree so that a few tuples approximate most common
// movements; generators here use degree <= 2.
class Polynomial {
 public:
  Polynomial() = default;
  // `coefficients[i]` multiplies t^i. Trailing zeros are trimmed.
  explicit Polynomial(std::vector<double> coefficients);

  // The zero polynomial and a constant.
  static Polynomial Constant(double c);
  // c0 + c1 * t.
  static Polynomial Linear(double c0, double c1);

  // Degree of the trimmed polynomial; the zero polynomial has degree 0.
  int Degree() const;

  // Horner evaluation at time t.
  double Evaluate(double t) const;

  const std::vector<double>& coefficients() const { return coefficients_; }

  Polynomial Derivative() const;

  std::string ToString() const;

  friend bool operator==(const Polynomial&, const Polynomial&) = default;

 private:
  std::vector<double> coefficients_;
};

}  // namespace stindex

#endif  // STINDEX_TRAJECTORY_POLYNOMIAL_H_
