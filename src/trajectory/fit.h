#ifndef STINDEX_TRAJECTORY_FIT_H_
#define STINDEX_TRAJECTORY_FIT_H_

#include <vector>

#include "geometry/point.h"
#include "trajectory/trajectory.h"
#include "util/status.h"

namespace stindex {

// One raw observation of an object (e.g. a GPS fix plus measured size) at
// a discrete instant. Observations of an object must be per-instant and
// contiguous in time.
struct RawObservation {
  Time t = 0;
  Point2D center;
  double extent_x = 0.0;
  double extent_y = 0.0;
};

struct FitOptions {
  // Maximum degree of the fitted center polynomials (paper Section II-A:
  // bounding the degree keeps the representation compact while most
  // common movements are approximated well).
  int max_degree = 2;
  // Maximum degree for the extent polynomials.
  int max_extent_degree = 1;
  // Maximum absolute deviation, per axis and instant, between the fitted
  // tuple and the observations.
  double max_error = 0.005;
};

// Fits a piecewise-polynomial Trajectory to raw observations: a greedy
// scan extends the current movement tuple instant by instant, refitting
// by least squares, and starts a new tuple when the error bound breaks —
// the representation the paper assumes as input ("objects move/change
// with general motions", approximated by a few polynomial tuples).
//
// The fitted trajectory covers exactly [obs.front().t, obs.back().t + 1)
// and deviates from every observation by at most max_error per axis
// (centers and extents).
Result<Trajectory> FitTrajectory(ObjectId id,
                                 const std::vector<RawObservation>& obs,
                                 const FitOptions& options = FitOptions());

// Least-squares polynomial fit of degree <= `degree` to values sampled at
// local times 0..n-1. Exposed for tests and reuse.
Polynomial FitPolynomial(const std::vector<double>& values, int degree);

}  // namespace stindex

#endif  // STINDEX_TRAJECTORY_FIT_H_
