#ifndef STINDEX_TRAJECTORY_PREFIX_MBR_H_
#define STINDEX_TRAJECTORY_PREFIX_MBR_H_

#include <vector>

#include "geometry/rect.h"

namespace stindex {

// Volume bookkeeping over a per-instant rectangle sequence. "Volume" of a
// run of instants [j, i] is area(MBR of rects j..i) * (i - j + 1): each
// discrete instant contributes one time unit (paper Section III).
//
// The dynamic program of Theorem 1 needs, for a fixed i, the volumes
// V[j, i] for every j <= i. RunVolumesEndingAt fills one such row in O(n)
// by expanding an MBR backwards from i, which is exactly the precompute
// the theorem's proof relies on.
class MbrVolumeTable {
 public:
  // Keeps a reference to `rects`; the caller must keep it alive.
  explicit MbrVolumeTable(const std::vector<Rect2D>& rects);

  size_t size() const { return rects_->size(); }

  // MBR covering instants j..i (inclusive). Requires j <= i < size().
  Rect2D MbrOver(size_t j, size_t i) const;

  // Volume of the single box covering instants j..i.
  double RunVolume(size_t j, size_t i) const;

  // Fills row[j] = RunVolume(j, i) for all 0 <= j <= i; row is resized to
  // i + 1. O(i) time.
  void RunVolumesEndingAt(size_t i, std::vector<double>* row) const;

 private:
  const std::vector<Rect2D>* rects_;
};

}  // namespace stindex

#endif  // STINDEX_TRAJECTORY_PREFIX_MBR_H_
