#include "trajectory/trajectory.h"

#include <algorithm>

namespace stindex {

Rect2D MovementTuple::RectAt(Time t) const {
  STINDEX_DCHECK(interval.Contains(t));
  const double s = static_cast<double>(t - interval.start);
  const double cx = center_x.Evaluate(s);
  const double cy = center_y.Evaluate(s);
  // Negative evaluated extents are treated as degenerate (point) extents.
  const double ex = std::max(0.0, extent_x.Evaluate(s));
  const double ey = std::max(0.0, extent_y.Evaluate(s));
  return Rect2D(cx - ex / 2.0, cy - ey / 2.0, cx + ex / 2.0, cy + ey / 2.0);
}

Trajectory::Trajectory(ObjectId id, std::vector<MovementTuple> tuples)
    : id_(id), tuples_(std::move(tuples)) {}

Status Trajectory::Validate() const {
  if (tuples_.empty()) {
    return Status::InvalidArgument("trajectory has no movement tuples");
  }
  for (size_t i = 0; i < tuples_.size(); ++i) {
    if (!tuples_[i].interval.IsValid()) {
      return Status::InvalidArgument("movement tuple has empty interval");
    }
    if (i > 0 && tuples_[i].interval.start != tuples_[i - 1].interval.end) {
      return Status::InvalidArgument(
          "movement tuples are not contiguous in time");
    }
  }
  return Status::OK();
}

TimeInterval Trajectory::Lifetime() const {
  STINDEX_CHECK(!tuples_.empty());
  return TimeInterval(tuples_.front().interval.start,
                      tuples_.back().interval.end);
}

Rect2D Trajectory::RectAt(Time t) const {
  STINDEX_CHECK(!tuples_.empty());
  STINDEX_CHECK_MSG(Lifetime().Contains(t), "instant outside lifetime");
  // Binary search for the tuple whose interval contains t.
  auto it = std::upper_bound(
      tuples_.begin(), tuples_.end(), t,
      [](Time value, const MovementTuple& tuple) {
        return value < tuple.interval.start;
      });
  STINDEX_DCHECK(it != tuples_.begin());
  --it;
  return it->RectAt(t);
}

std::vector<Rect2D> Trajectory::Sample() const {
  STINDEX_CHECK(!tuples_.empty());
  std::vector<Rect2D> rects;
  rects.reserve(static_cast<size_t>(NumInstants()));
  for (const MovementTuple& tuple : tuples_) {
    for (Time t = tuple.interval.start; t < tuple.interval.end; ++t) {
      rects.push_back(tuple.RectAt(t));
    }
  }
  return rects;
}

Rect2D Trajectory::MbrOver(const TimeInterval& range) const {
  Rect2D mbr = Rect2D::Empty();
  for (const MovementTuple& tuple : tuples_) {
    if (!tuple.interval.Intersects(range)) continue;
    const TimeInterval common = tuple.interval.Intersection(range);
    for (Time t = common.start; t < common.end; ++t) {
      mbr.ExpandToInclude(tuple.RectAt(t));
    }
  }
  return mbr;
}

STBox Trajectory::FullBox() const {
  const TimeInterval life = Lifetime();
  return STBox(MbrOver(life), life);
}

std::vector<Time> Trajectory::ChangePoints() const {
  std::vector<Time> points;
  for (size_t i = 1; i < tuples_.size(); ++i) {
    points.push_back(tuples_[i].interval.start);
  }
  return points;
}

}  // namespace stindex
