#ifndef STINDEX_TRAJECTORY_TRAJECTORY_H_
#define STINDEX_TRAJECTORY_TRAJECTORY_H_

#include <cstdint>
#include <vector>

#include "geometry/box.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "trajectory/polynomial.h"
#include "util/status.h"

namespace stindex {

// Identifier of a spatiotemporal object within a dataset.
using ObjectId = uint32_t;

// One movement tuple ([t_a, t_b), F_x(t), F_y(t)) of the paper, extended
// with extent polynomials so objects may also grow/shrink (Figure 6).
// Polynomials are evaluated at *local* time s = t - interval.start, which
// keeps generated coefficients small and evaluation well conditioned.
struct MovementTuple {
  TimeInterval interval;
  Polynomial center_x;
  Polynomial center_y;
  // Full extents (width/height) of the object; constants for rigid
  // objects, zero for moving points.
  Polynomial extent_x;
  Polynomial extent_y;

  // Spatial MBR of the object at instant t (must lie in `interval`).
  Rect2D RectAt(Time t) const;
};

// A spatiotemporal object: a contiguous sequence of movement tuples
// covering the object's lifetime [t_start, t_end). This is the generator-
// facing representation; the splitting algorithms consume the per-instant
// rectangle sequence produced by Sample().
class Trajectory {
 public:
  Trajectory() = default;
  Trajectory(ObjectId id, std::vector<MovementTuple> tuples);

  // Verifies tuples are non-empty, valid and contiguous in time.
  Status Validate() const;

  ObjectId id() const { return id_; }
  const std::vector<MovementTuple>& tuples() const { return tuples_; }

  // Lifetime [t_start, t_end); the object is alive at t_start..t_end-1.
  TimeInterval Lifetime() const;

  // Number of discrete instants the object is alive.
  int64_t NumInstants() const { return Lifetime().Duration(); }

  // Spatial MBR at instant t. t must be within the lifetime.
  Rect2D RectAt(Time t) const;

  // One spatial rectangle per alive instant, in time order. This is the
  // "sequence of n spatial objects" the splitting algorithms operate on.
  std::vector<Rect2D> Sample() const;

  // Spatial MBR over all alive instants in [range.start, range.end).
  Rect2D MbrOver(const TimeInterval& range) const;

  // The single spatiotemporal bounding box of the whole trajectory — the
  // naive (no splits) representation.
  STBox FullBox() const;

  // Times where the movement changes characteristics (interior tuple
  // boundaries). Splitting at exactly these points is the "piecewise"
  // baseline of Section V.
  std::vector<Time> ChangePoints() const;

 private:
  ObjectId id_ = 0;
  std::vector<MovementTuple> tuples_;
};

}  // namespace stindex

#endif  // STINDEX_TRAJECTORY_TRAJECTORY_H_
