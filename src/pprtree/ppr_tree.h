#ifndef STINDEX_PPRTREE_PPR_TREE_H_
#define STINDEX_PPRTREE_PPR_TREE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/segment.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "storage/buffer_pool.h"
#include "storage/page_backend.h"
#include "storage/page_store.h"
#include "storage/snapshot_file.h"
#include "util/bytes.h"
#include "util/status.h"

namespace stindex {

struct QueryProfile;
class SharedBufferPool;

// Payload of a PPR-tree data record (a segment-record index in the
// experiments).
using PprDataId = uint64_t;

// PPR-tree parameters; defaults are the paper's experimental setup
// (Section V): page capacity 50, P_version = 0.22, P_svo = 0.8,
// P_svu = 0.4, 10-page LRU buffer.
struct PprConfig {
  // Maximum entries per node (page capacity B).
  size_t max_entries = 50;
  // A non-root node must keep at least ceil(p_version * B) alive entries;
  // fewer triggers a version split (weak version underflow).
  double p_version = 0.22;
  // A node created by a version split may hold at most p_svo * B alive
  // entries; more triggers a key (spatial) split.
  double p_svo = 0.8;
  // ... and at least p_svu * B alive entries; fewer triggers a merge with
  // a sibling's alive entries.
  double p_svu = 0.4;
  // LRU buffer pages used when answering queries.
  size_t buffer_pages = 10;
};

// The partially persistent R-tree ([14], [25]; paper Section II-B). It
// records the evolution of an "ephemeral" 2-D R-tree under insertions and
// deletions of spatial records, using storage linear in the number of
// changes, and answers historical queries as if the R-tree state at the
// query time were still available.
//
// Structure: a DAG of nodes (pages). Data and index entries carry a
// lifetime [insertion-time, deletion-time). A non-root node must contain
// at least D alive entries at every instant it is alive; restructuring
// happens through version splits (copy alive entries to a fresh node),
// followed by a key split or a sibling merge when the copy violates the
// strong-version bounds. Consecutive eras of the evolution are owned by a
// root journal.
//
// Updates must be fed in non-decreasing time order (the paper's off-line
// setting: the full evolution is known and replayed).
class PprTree {
 public:
  explicit PprTree(PprConfig config = PprConfig());
  ~PprTree();

  PprTree(const PprTree&) = delete;
  PprTree& operator=(const PprTree&) = delete;

  // Starts the life of record `data` with spatial key `rect` at time `t`.
  // `data` must not be currently alive; t must not precede prior updates.
  void Insert(const Rect2D& rect, Time t, PprDataId data);

  // Ends the life of record `data` at time `t` (the record exists at
  // instants < t). The record must be alive.
  void Delete(PprDataId data, Time t);

  // All records alive at instant `t` whose rect intersects `area`.
  void SnapshotQuery(const Rect2D& area, Time t,
                     std::vector<PprDataId>* results) const;

  // All records alive at any instant in [range.start, range.end) whose
  // rect intersects `area`. Results are de-duplicated.
  void IntervalQuery(const Rect2D& area, const TimeInterval& range,
                     std::vector<PprDataId>* results) const;

  // Query variants reading through a caller-owned page cache. Queries
  // never mutate the structure, so concurrent threads may query with one
  // PageCache each: a private BufferPool (see NewQueryBuffer) or a
  // per-worker Session of one SharedBufferPool (see NewSharedQueryPool).
  // When `profile` is non-null, per-level node visits, buffer hit/miss
  // deltas, leaf entries scanned and candidate counts are accumulated
  // into it (see core/query_profile.h); nullptr skips all profiling
  // work.
  void SnapshotQuery(const Rect2D& area, Time t, PageCache* buffer,
                     std::vector<PprDataId>* results,
                     QueryProfile* profile = nullptr) const;
  void IntervalQuery(const Rect2D& area, const TimeInterval& range,
                     PageCache* buffer, std::vector<PprDataId>* results,
                     QueryProfile* profile = nullptr) const;

  // A fresh LRU buffer over this tree's pages (`pages` = 0 uses the
  // configured default). After AttachBackend the buffer reads (and
  // decodes) real pages from the backend; before, it fronts the
  // in-memory store.
  std::unique_ptr<BufferPool> NewQueryBuffer(size_t pages = 0) const;

  // A sharded thread-safe pool over this tree's pages whose `pages`
  // frames (0 = the configured default) are shared by every worker —
  // total capacity, unlike one NewQueryBuffer per worker. Workers query
  // through per-worker SharedBufferPool::Sessions. Pin overflow is
  // enabled: queries hold one transient pin each, and a hashed pile-up
  // on one shard must not fail a query.
  std::unique_ptr<SharedBufferPool> NewSharedQueryPool(size_t pages = 0) const;

  // Serializes every node into `backend` through a pinning write-back
  // buffer pool (dirty evictions perform real page writes), then serves
  // all subsequent queries from the backend: buffer misses become actual
  // backend reads. The tree is frozen afterwards — Insert/Delete become
  // checked errors. Page ids are preserved, so query I/O counts are
  // identical to the in-memory tree's.
  Status AttachBackend(std::unique_ptr<PageBackend> backend);

  // Packs the structure into a read-only snapshot file at `path` and
  // serves all subsequent queries from its mmap'd pages (zero-copy;
  // pread fallback per `options`). Node ids are remapped to a dense
  // bottom-up layout — all leaves first, then each directory level in
  // one contiguous extent. The remap is a bijection of the page-id
  // access sequence, so per-query LRU miss counts are byte-identical to
  // the unpacked tree's. The tree is frozen afterwards, like
  // AttachBackend.
  Status PackSnapshot(const std::string& path,
                      const SnapshotFile::Options& options = {});

  // Nullptr until AttachBackend/PackSnapshot succeeds.
  const PageBackend* backend() const { return backend_.get(); }

  // COUNT(*) of a snapshot query, without materializing ids — the
  // aggregation a monitoring dashboard runs per tick.
  size_t SnapshotCount(const Rect2D& area, Time t) const;
  size_t SnapshotCount(const Rect2D& area, Time t, PageCache* buffer) const;

  // Per-instant occupancy of `area` over [range.start, range.end):
  // element i is the count at instant range.start + i.
  std::vector<size_t> OccupancyHistogram(const Rect2D& area,
                                         const TimeInterval& range) const;

  // Number of logical records ever inserted.
  size_t Size() const { return size_; }

  // Number of records currently alive.
  size_t AliveCount() const { return alive_location_.size(); }

  // Disk footprint in pages.
  size_t PageCount() const { return store_.PageCount(); }

  // Number of eras in the root journal.
  size_t NumRoots() const;

  // Query I/O statistics; misses are "disk accesses".
  const IoStats& stats() const { return buffer_->stats(); }
  void ResetQueryState() const;

  // Validates structural invariants at sampled time instants (alive-entry
  // bounds, lifetime nesting, MBR containment). Test hook.
  void CheckInvariants() const;

  // Introspection: one summary per node of the *ephemeral* tree at
  // instant t (only entries alive at t, with their alive MBR), for the
  // Pagel-style cost analyses in src/model/pagel_metrics.h.
  struct AliveNodeSummary {
    int level = 0;
    Rect2D rect;
    size_t alive = 0;
  };
  std::vector<AliveNodeSummary> CollectAliveSummaries(Time t) const;

  // Persists the whole structure (nodes, root journal, configuration) to
  // a binary file, and restores it. A loaded tree answers queries
  // identically and accepts further updates.
  Status Save(const std::string& path) const;
  static Result<std::unique_ptr<PprTree>> Load(const std::string& path);

  // --- live-tier checkpoint hooks ---------------------------------------
  // A live tree (before AttachBackend) round-trips through checkpoint
  // metadata plus one sealed kPprNode page per node: node ids are
  // contiguous 0..NodeCount()-1 (the tree never frees a node), the page
  // encoding is position-independent, and the meta carries the root
  // journal and counters.

  // Nodes a checkpoint must persist: ids 0..NodeCount()-1.
  size_t NodeCount() const { return store_.AllocatedCount(); }

  // Serializes the non-node state (size, clock, root journal).
  void EncodeCheckpointMeta(ByteSink* out) const;
  // Restores it into a freshly constructed tree of the same config.
  Status DecodeCheckpointMeta(ByteSource* in);

  // Writes node i to backend slot `slots[i]` (slots.size() must be
  // NodeCount()) through a write-back BufferPool — dirty evictions
  // perform real page writes, the same path AttachBackend persists
  // through. Does not sync.
  Status PersistNodesForCheckpoint(PageBackend* backend,
                                   const std::vector<PageId>& slots) const;

  // Installs node `id` from a sealed kPprNode page image; ids must
  // arrive 0, 1, 2, ... on a tree holding exactly `id` nodes. Rebuilds
  // the alive-record and alive-parent maps.
  Status InstallCheckpointNode(PageId id, const uint8_t* page);

 private:
  class Node;
  class NodeCodec;
  struct Entry;
  struct Frame;
  struct RootEra;

  Node* GetNode(PageId id) const;

  // Writes every live node to backend_ via a write-back pool.
  Status PersistAllNodes();

  size_t WeakMin() const;    // D
  size_t StrongMax() const;  // p_svo * B
  size_t StrongMin() const;  // p_svu * B

  PageId CurrentRoot() const;
  void StartNewEra(PageId root, Time t);

  // Path (root..leaf) for inserting `rect` at `now`, choosing among alive
  // directory entries by least area enlargement.
  std::vector<Frame> DescendForInsert(const Rect2D& rect) const;

  // Path (root..leaf) to the given alive leaf, reconstructed through the
  // parent links maintained for alive nodes.
  std::vector<Frame> PathToAliveLeaf(PageId leaf) const;

  // Grows ancestor directory-entry rects so the path covers `rect`.
  void ExpandPathRects(const std::vector<Frame>& path,
                       const Rect2D& rect) const;

  // Version split of path.back() at time `now`, folding `pending` entries
  // (same level as the node) into the copy. Handles key split, sibling
  // merge, parent updates and root-era changes; may recurse up the path.
  void Restructure(std::vector<Frame> path, std::vector<Entry> pending,
                   Time now);

  // Appends `adds` to the node at path.back(), restructuring it first if
  // they do not fit, and handles a resulting weak version underflow.
  void AddEntries(std::vector<Frame> path, std::vector<Entry> adds,
                  Time now);

  // Splits `entries` spatially into two groups (R*-style axis/margin
  // heuristic on the 2-D rects).
  void KeySplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                std::vector<Entry>* right) const;

  // Creates a node at `level` holding `entries`, maintains parent/alive
  // bookkeeping, and returns its id.
  PageId MakeNode(int level, std::vector<Entry> entries, Time now);

  // Installs `root` as the root for instants >= now, collapsing directory
  // roots with a single alive child (so no non-root node can be starved of
  // merge siblings) and closing the era when nothing is alive.
  void FinalizeRoot(PageId root, Time now);

  void CollectSubtree(PageId root, std::vector<PageId>* out) const;

  PprConfig config_;
  mutable PageStore store_;
  // Declared before buffer_ so every pool dies before the backend and
  // codec it borrows.
  std::unique_ptr<PageBackend> backend_;
  std::unique_ptr<PageCodec> codec_;
  std::unique_ptr<BufferPool> buffer_;
  std::vector<RootEra> roots_;
  size_t size_ = 0;
  Time current_time_ = 0;

  // data id -> leaf currently holding its alive entry.
  std::unordered_map<PprDataId, PageId> alive_location_;
  // alive node -> its alive parent (roots absent).
  std::unordered_map<PageId, PageId> parent_of_;
};

// Replays a segment-record collection (insert at interval.start, delete at
// interval.end) into a fresh PPR-tree. Record i gets PprDataId i.
std::unique_ptr<PprTree> BuildPprTree(const std::vector<SegmentRecord>& records,
                                      PprConfig config = PprConfig());

}  // namespace stindex

#endif  // STINDEX_PPRTREE_PPR_TREE_H_
