#include "pprtree/ppr_tree.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <optional>
#include <unordered_set>

#include "core/query_profile.h"
#include "storage/page_codec.h"
#include "storage/shared_buffer_pool.h"

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {

// An index or data record inside a node. Alive entries have an open
// deletion time (kTimeInfinity).
struct PprTree::Entry {
  Rect2D rect;
  TimeInterval lifetime;
  PageId child = kInvalidPage;  // directory entries
  PprDataId data = 0;           // leaf entries

  bool IsAlive() const { return lifetime.end == kTimeInfinity; }
};

// One step of a root-to-leaf path: `slot` is the index of the directory
// entry in the *previous* path node that leads here (unused for the root).
struct PprTree::Frame {
  PageId node = kInvalidPage;
  size_t slot = SIZE_MAX;
};

// One era of the evolution: `root` owns queries at instants in
// [start, next era's start). An invalid root marks an era where the
// structure is empty.
struct PprTree::RootEra {
  Time start = 0;
  PageId root = kInvalidPage;
};

class PprTree::Node : public Page {
 public:
  Node(int level, Time created) : level_(level), created_(created) {}

  int level() const { return level_; }
  bool IsLeaf() const { return level_ == 0; }
  Time created() const { return created_; }

  // Time the node stopped being current (kTimeInfinity while current).
  Time closed() const { return closed_; }
  void Close(Time t) { closed_ = t; }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  size_t AliveCount() const {
    size_t count = 0;
    for (const Entry& entry : entries_) count += entry.IsAlive() ? 1 : 0;
    return count;
  }

  Rect2D AliveMbr() const {
    Rect2D mbr = Rect2D::Empty();
    for (const Entry& entry : entries_) {
      if (entry.IsAlive()) mbr.ExpandToInclude(entry.rect);
    }
    return mbr;
  }

 private:
  int level_;
  Time created_;
  Time closed_ = kTimeInfinity;
  std::vector<Entry> entries_;
};

// Serializes nodes to sealed pages. Payload layout (little-endian):
//   int32   level
//   Time    created, closed
//   uint64  entry count (encode CHECKs the fanout bound; Load tolerates
//           max_entries + 1 for transient states, the codec matches)
//   entries: Rect2D (32 bytes), TimeInterval (16 bytes), PageId, PprDataId
class PprTree::NodeCodec : public PageCodec {
 public:
  explicit NodeCodec(size_t max_entries) : max_entries_(max_entries) {}

  void Encode(const Page& page, uint8_t* out) const override {
    const Node& node = static_cast<const Node&>(page);
    STINDEX_CHECK_MSG(node.entries().size() <= max_entries_ + 1,
                      "PPR-tree node exceeds the configured fanout");
    PageWriter writer = PayloadWriter(out);
    writer.Write(static_cast<int32_t>(node.level()));
    writer.Write(node.created());
    writer.Write(node.closed());
    writer.Write(static_cast<uint64_t>(node.entries().size()));
    for (const Entry& entry : node.entries()) {
      writer.Write(entry.rect);
      writer.Write(entry.lifetime);
      writer.Write(entry.child);
      writer.Write(entry.data);
    }
    SealPage(out, PageKind::kPprNode);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kPprNode, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    int32_t level = 0;
    Time created = 0;
    Time closed = 0;
    uint64_t count = 0;
    if (!reader.Read(&level) || !reader.Read(&created) ||
        !reader.Read(&closed) || !reader.Read(&count)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short PPR-tree node header");
    }
    if (level < 0 || count > max_entries_ + 1) {
      return Status::InvalidArgument(
          "page " + std::to_string(id) + ": implausible PPR-tree node (level " +
          std::to_string(level) + ", " + std::to_string(count) + " entries)");
    }
    auto node = std::make_unique<Node>(static_cast<int>(level), created);
    if (closed != kTimeInfinity) node->Close(closed);
    node->entries().resize(static_cast<size_t>(count));
    for (Entry& entry : node->entries()) {
      if (!reader.Read(&entry.rect) || !reader.Read(&entry.lifetime) ||
          !reader.Read(&entry.child) || !reader.Read(&entry.data)) {
        return Status::InvalidArgument("page " + std::to_string(id) +
                                       ": truncated PPR-tree node entries");
      }
    }
    return std::unique_ptr<Page>(std::move(node));
  }

 private:
  size_t max_entries_;
};

PprTree::PprTree(PprConfig config) : config_(config) {
  STINDEX_CHECK(config_.max_entries >= 4);
  STINDEX_CHECK(config_.p_version > 0.0 && config_.p_version < 1.0);
  STINDEX_CHECK(config_.p_svu > config_.p_version);
  STINDEX_CHECK(config_.p_svo > config_.p_svu && config_.p_svo <= 1.0);
  store_.SetMetricScope("ppr");
  buffer_ = std::make_unique<BufferPool>(&store_, config_.buffer_pages, "ppr");
  // The strong-version window must leave room to insert into a fresh node.
  STINDEX_CHECK(StrongMax() < config_.max_entries);
  STINDEX_CHECK(WeakMin() >= 1);
}

PprTree::~PprTree() {
  if (!roots_.empty()) {
    MetricRegistry::Global().GetGauge("ppr.root_eras")->SetMax(roots_.size());
  }
}

size_t PprTree::WeakMin() const {
  return static_cast<size_t>(
      std::ceil(config_.p_version * static_cast<double>(config_.max_entries)));
}

size_t PprTree::StrongMax() const {
  return static_cast<size_t>(
      config_.p_svo * static_cast<double>(config_.max_entries));
}

size_t PprTree::StrongMin() const {
  return static_cast<size_t>(
      std::ceil(config_.p_svu * static_cast<double>(config_.max_entries)));
}

PprTree::Node* PprTree::GetNode(PageId id) const {
  return static_cast<Node*>(store_.Get(id));
}

std::unique_ptr<BufferPool> PprTree::NewQueryBuffer(size_t pages) const {
  const size_t capacity = pages == 0 ? config_.buffer_pages : pages;
  if (backend_ != nullptr) {
    return std::make_unique<BufferPool>(backend_.get(), codec_.get(), capacity,
                                        "ppr");
  }
  return std::make_unique<BufferPool>(&store_, capacity, "ppr");
}

std::unique_ptr<SharedBufferPool> PprTree::NewSharedQueryPool(
    size_t pages) const {
  SharedBufferPoolOptions options;
  options.capacity = pages == 0 ? config_.buffer_pages : pages;
  options.pin_overflow = true;
  options.metric_scope = "ppr.shared";
  if (backend_ != nullptr) {
    return std::make_unique<SharedBufferPool>(backend_.get(), codec_.get(),
                                              options);
  }
  return std::make_unique<SharedBufferPool>(&store_, options);
}

Status PprTree::PersistAllNodes() {
  // A write-back pool sized like the query buffer: with more nodes than
  // frames, dirty evictions stream pages to the backend while the tail is
  // flushed explicitly — the real write path, not a bulk memcpy.
  BufferPool writer(backend_.get(), codec_.get(), config_.buffer_pages, "ppr");
  for (PageId id = 0; id < store_.AllocatedCount(); ++id) {
    if (!store_.IsLive(id)) continue;
    const Node* node = GetNode(id);
    auto clone = std::make_unique<Node>(node->level(), node->created());
    if (node->closed() != kTimeInfinity) clone->Close(node->closed());
    clone->entries() = node->entries();
    Status status = writer.Put(id, std::move(clone));
    if (!status.ok()) return status;
  }
  return writer.FlushAll();
}

Status PprTree::AttachBackend(std::unique_ptr<PageBackend> backend) {
  STINDEX_CHECK_MSG(backend_ == nullptr, "backend already attached");
  STINDEX_CHECK(backend != nullptr);
  TraceSpan span("ppr", "attach_backend");
  span.Arg("pages", static_cast<int64_t>(store_.PageCount()));
  backend_ = std::move(backend);
  codec_ = std::make_unique<NodeCodec>(config_.max_entries);
  Status status = PersistAllNodes();
  if (status.ok()) status = backend_->Sync();
  if (!status.ok()) {
    codec_.reset();
    backend_.reset();
    return status;
  }
  buffer_ = std::make_unique<BufferPool>(backend_.get(), codec_.get(),
                                         config_.buffer_pages, "ppr");
  return Status::OK();
}

Status PprTree::PackSnapshot(const std::string& path,
                             const SnapshotFile::Options& options) {
  STINDEX_CHECK_MSG(backend_ == nullptr, "backend already attached");
  TraceSpan span("ppr", "pack_snapshot");
  span.Arg("pages", static_cast<int64_t>(store_.PageCount()));
  const size_t count = store_.AllocatedCount();
  // The PPR-tree never frees nodes, so ids are dense already; the packed
  // order sorts them bottom-up (level, then id) so every level occupies
  // one contiguous extent of the snapshot.
  std::vector<PageId> order(count);
  for (PageId id = 0; id < count; ++id) order[id] = id;
  std::stable_sort(order.begin(), order.end(), [this](PageId a, PageId b) {
    return GetNode(a)->level() < GetNode(b)->level();
  });
  std::vector<PageId> remap(count, kInvalidPage);
  for (size_t slot = 0; slot < order.size(); ++slot) {
    remap[order[slot]] = static_cast<PageId>(slot);
  }
  // Rewrite the whole in-memory graph through the bijection first, so the
  // tree stays consistent (and still queryable from the store) even if
  // writing the snapshot fails below.
  for (PageId id = 0; id < count; ++id) {
    Node* node = GetNode(id);
    if (node->IsLeaf()) continue;
    for (Entry& entry : node->entries()) {
      if (entry.child != kInvalidPage) entry.child = remap[entry.child];
    }
  }
  for (RootEra& era : roots_) {
    if (era.root != kInvalidPage) era.root = remap[era.root];
  }
  for (auto& [data, leaf] : alive_location_) leaf = remap[leaf];
  std::unordered_map<PageId, PageId> parents;
  parents.reserve(parent_of_.size());
  for (const auto& [child, parent] : parent_of_) {
    parents[remap[child]] = remap[parent];
  }
  parent_of_ = std::move(parents);
  store_.Reindex(remap);

  Result<std::unique_ptr<SnapshotWriter>> writer = SnapshotWriter::Create(path);
  if (!writer.ok()) return writer.status();
  const NodeCodec codec(config_.max_entries);
  uint8_t page[kPageSize];
  for (PageId slot = 0; slot < count; ++slot) {
    const Node* node = GetNode(slot);
    codec.Encode(*node, page);
    Status status =
        writer.value()->Append(static_cast<uint32_t>(node->level()), page);
    if (!status.ok()) return status;
  }
  Status status = writer.value()->Finish();
  if (!status.ok()) return status;
  Result<std::unique_ptr<MmapSnapshotBackend>> backend =
      MmapSnapshotBackend::Open(path, options);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).value();
  codec_ = std::make_unique<NodeCodec>(config_.max_entries);
  buffer_ = std::make_unique<BufferPool>(backend_.get(), codec_.get(),
                                         config_.buffer_pages, "ppr");
  return Status::OK();
}

size_t PprTree::NumRoots() const { return roots_.size(); }

PageId PprTree::CurrentRoot() const {
  return roots_.empty() ? kInvalidPage : roots_.back().root;
}

void PprTree::StartNewEra(PageId root, Time t) {
  if (!roots_.empty() && roots_.back().start == t) {
    roots_.back().root = root;  // same-instant restructure: collapse eras
    return;
  }
  STINDEX_CHECK(roots_.empty() || roots_.back().start < t);
  roots_.push_back(RootEra{t, root});
}

void PprTree::ResetQueryState() const {
  buffer_->ResetCache();
  buffer_->ResetStats();
}

PageId PprTree::MakeNode(int level, std::vector<Entry> entries, Time now) {
  auto node = std::make_unique<Node>(level, now);
  node->entries() = std::move(entries);
  Node* raw = node.get();
  const PageId id = store_.Allocate(std::move(node));
  for (const Entry& entry : raw->entries()) {
    STINDEX_DCHECK(entry.IsAlive());
    if (level == 0) {
      alive_location_[entry.data] = id;
    } else {
      parent_of_[entry.child] = id;
    }
  }
  return id;
}

std::vector<PprTree::Frame> PprTree::DescendForInsert(
    const Rect2D& rect) const {
  std::vector<Frame> path;
  PageId current = CurrentRoot();
  STINDEX_CHECK(current != kInvalidPage);
  path.push_back(Frame{current, SIZE_MAX});
  Node* node = GetNode(current);
  while (!node->IsLeaf()) {
    // Least area enlargement among alive entries, ties by smallest area.
    size_t best = SIZE_MAX;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    const std::vector<Entry>& entries = node->entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].IsAlive()) continue;
      const double enlargement = entries[i].rect.Enlargement(rect);
      const double area = entries[i].rect.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    STINDEX_CHECK_MSG(best != SIZE_MAX,
                      "directory node without alive entries on insert path");
    current = entries[best].child;
    path.push_back(Frame{current, best});
    node = GetNode(current);
  }
  return path;
}

std::vector<PprTree::Frame> PprTree::PathToAliveLeaf(PageId leaf) const {
  // Climb the alive-parent links, then resolve entry slots downward.
  std::vector<PageId> chain = {leaf};
  while (true) {
    auto it = parent_of_.find(chain.back());
    if (it == parent_of_.end()) break;
    chain.push_back(it->second);
  }
  STINDEX_CHECK_MSG(chain.back() == CurrentRoot(),
                    "alive leaf is not reachable from the current root");
  std::vector<Frame> path;
  path.push_back(Frame{chain.back(), SIZE_MAX});
  for (size_t i = chain.size() - 1; i-- > 0;) {
    const Node* parent = GetNode(chain[i + 1]);
    size_t slot = SIZE_MAX;
    for (size_t s = 0; s < parent->entries().size(); ++s) {
      const Entry& entry = parent->entries()[s];
      if (entry.IsAlive() && entry.child == chain[i]) {
        slot = s;
        break;
      }
    }
    STINDEX_CHECK_MSG(slot != SIZE_MAX, "stale parent link");
    path.push_back(Frame{chain[i], slot});
  }
  return path;
}

void PprTree::ExpandPathRects(const std::vector<Frame>& path,
                              const Rect2D& rect) const {
  for (size_t i = 1; i < path.size(); ++i) {
    Node* parent = GetNode(path[i - 1].node);
    parent->entries()[path[i].slot].rect.ExpandToInclude(rect);
  }
}

void PprTree::Insert(const Rect2D& rect, Time t, PprDataId data) {
  STINDEX_CHECK_MSG(backend_ == nullptr,
                    "PprTree is frozen after AttachBackend");
  STINDEX_CHECK_MSG(rect.IsValid(), "inserting an invalid rect");
  STINDEX_CHECK_MSG(t >= current_time_, "updates must be fed in time order");
  STINDEX_CHECK_MSG(alive_location_.find(data) == alive_location_.end(),
                    "record is already alive");
  current_time_ = t;
  ++size_;

  Entry entry;
  entry.rect = rect;
  entry.lifetime = TimeInterval(t, kTimeInfinity);
  entry.data = data;

  if (CurrentRoot() == kInvalidPage) {
    const PageId root = MakeNode(0, {entry}, t);
    StartNewEra(root, t);
    return;
  }

  std::vector<Frame> path = DescendForInsert(rect);
  ExpandPathRects(path, rect);
  Node* leaf = GetNode(path.back().node);
  if (leaf->entries().size() >= config_.max_entries) {
    Restructure(std::move(path), {entry}, t);
    return;
  }
  leaf->entries().push_back(entry);
  alive_location_[data] = path.back().node;
}

void PprTree::Delete(PprDataId data, Time t) {
  STINDEX_CHECK_MSG(backend_ == nullptr,
                    "PprTree is frozen after AttachBackend");
  STINDEX_CHECK_MSG(t >= current_time_, "updates must be fed in time order");
  current_time_ = t;
  auto it = alive_location_.find(data);
  STINDEX_CHECK_MSG(it != alive_location_.end(), "record is not alive");
  const PageId leaf_id = it->second;
  alive_location_.erase(it);

  std::vector<Frame> path = PathToAliveLeaf(leaf_id);
  Node* leaf = GetNode(leaf_id);
  bool found = false;
  std::vector<Entry>& entries = leaf->entries();
  for (size_t i = 0; i < entries.size(); ++i) {
    Entry& entry = entries[i];
    if (entry.IsAlive() && entry.data == data) {
      if (entry.lifetime.start == t) {
        // Inserted and deleted at the same instant: never visible.
        entries.erase(entries.begin() + static_cast<long>(i));
      } else {
        entry.lifetime.end = t;
      }
      found = true;
      break;
    }
  }
  STINDEX_CHECK_MSG(found, "alive record missing from its leaf");

  if (path.size() == 1) {
    // Root leaf: exempt from the weak-version bound, but close the era
    // when nothing is left alive.
    FinalizeRoot(leaf_id, t);
    return;
  }
  if (leaf->AliveCount() < WeakMin()) {
    Restructure(std::move(path), {}, t);  // weak version underflow
  }
}

namespace {

double CenterDistance2(const Rect2D& a, const Rect2D& b) {
  const Point2D ca = a.Center();
  const Point2D cb = b.Center();
  const double dx = ca.x - cb.x;
  const double dy = ca.y - cb.y;
  return dx * dx + dy * dy;
}

}  // namespace

void PprTree::Restructure(std::vector<Frame> path, std::vector<Entry> pending,
                          Time now) {
  Node* node = GetNode(path.back().node);
  const int level = node->level();
  const bool is_root = path.size() == 1;
  static Counter* const version_splits =
      MetricRegistry::Global().GetCounter("ppr.version_splits");
  version_splits->Increment();

  auto truncate_alive = [now](Node* victim, std::vector<Entry>* copies) {
    std::vector<Entry>& entries = victim->entries();
    for (size_t i = 0; i < entries.size();) {
      Entry& entry = entries[i];
      if (entry.IsAlive()) {
        Entry copy = entry;
        copy.lifetime = TimeInterval(now, kTimeInfinity);
        copies->push_back(copy);
        if (entry.lifetime.start == now) {
          entries.erase(entries.begin() + static_cast<long>(i));
          continue;
        }
        entry.lifetime.end = now;
      }
      ++i;
    }
    victim->Close(now);
  };

  std::vector<Entry> copies;
  truncate_alive(node, &copies);
  for (Entry& entry : pending) {
    STINDEX_DCHECK(entry.lifetime.start == now && entry.IsAlive());
    copies.push_back(entry);
  }

  // Strong version underflow: merge with the nearest alive sibling.
  std::optional<size_t> sibling_slot;
  if (!is_root && copies.size() < StrongMin()) {
    Node* parent = GetNode(path[path.size() - 2].node);
    const Rect2D our_mbr = [&copies]() {
      Rect2D mbr = Rect2D::Empty();
      for (const Entry& entry : copies) mbr.ExpandToInclude(entry.rect);
      return mbr;
    }();
    double best_distance = std::numeric_limits<double>::infinity();
    const std::vector<Entry>& siblings = parent->entries();
    for (size_t s = 0; s < siblings.size(); ++s) {
      if (s == path.back().slot || !siblings[s].IsAlive()) continue;
      const double distance =
          copies.empty() ? 0.0 : CenterDistance2(our_mbr, siblings[s].rect);
      if (distance < best_distance) {
        best_distance = distance;
        sibling_slot = s;
      }
    }
    if (sibling_slot.has_value()) {
      Node* sibling = GetNode(siblings[*sibling_slot].child);
      truncate_alive(sibling, &copies);
      static Counter* const sibling_merges =
          MetricRegistry::Global().GetCounter("ppr.sibling_merges");
      sibling_merges->Increment();
    }
  }

  // Partition the surviving alive set into one or two new nodes.
  std::vector<std::vector<Entry>> groups;
  if (copies.size() > StrongMax()) {
    static Counter* const key_splits =
        MetricRegistry::Global().GetCounter("ppr.key_splits");
    key_splits->Increment();
    std::vector<Entry> left;
    std::vector<Entry> right;
    KeySplit(&copies, &left, &right);
    groups.push_back(std::move(left));
    groups.push_back(std::move(right));
  } else if (!copies.empty()) {
    groups.push_back(std::move(copies));
  }

  std::vector<PageId> new_nodes;
  std::vector<Entry> adds;
  for (std::vector<Entry>& group : groups) {
    const PageId id = MakeNode(level, std::move(group), now);
    new_nodes.push_back(id);
    Entry dir;
    dir.rect = GetNode(id)->AliveMbr();
    dir.lifetime = TimeInterval(now, kTimeInfinity);
    dir.child = id;
    adds.push_back(dir);
  }

  if (is_root) {
    if (new_nodes.empty()) {
      StartNewEra(kInvalidPage, now);
    } else if (new_nodes.size() == 1) {
      FinalizeRoot(new_nodes[0], now);
    } else {
      const PageId new_root = MakeNode(level + 1, std::move(adds), now);
      FinalizeRoot(new_root, now);
    }
    return;
  }

  // Kill the consumed parent entries (highest slot first: killing may
  // erase same-instant entries and shift indices).
  std::vector<Frame> parent_path(path.begin(), path.end() - 1);
  Node* parent = GetNode(parent_path.back().node);
  std::vector<size_t> kill_slots = {path.back().slot};
  if (sibling_slot.has_value()) kill_slots.push_back(*sibling_slot);
  std::sort(kill_slots.rbegin(), kill_slots.rend());
  for (size_t slot : kill_slots) {
    Entry& entry = parent->entries()[slot];
    STINDEX_CHECK(entry.IsAlive());
    if (entry.lifetime.start == now) {
      parent->entries().erase(parent->entries().begin() +
                              static_cast<long>(slot));
    } else {
      entry.lifetime.end = now;
    }
  }

  AddEntries(std::move(parent_path), std::move(adds), now);
}

void PprTree::AddEntries(std::vector<Frame> path, std::vector<Entry> adds,
                         Time now) {
  Node* node = GetNode(path.back().node);
  STINDEX_CHECK(!node->IsLeaf());

  if (!adds.empty() &&
      node->entries().size() + adds.size() > config_.max_entries) {
    Restructure(std::move(path), std::move(adds), now);
    return;
  }
  for (Entry& entry : adds) {
    parent_of_[entry.child] = path.back().node;
    ExpandPathRects(path, entry.rect);
    node->entries().push_back(std::move(entry));
  }

  const size_t alive = node->AliveCount();
  if (path.size() == 1) {
    FinalizeRoot(path.back().node, now);
    return;
  }
  if (alive < WeakMin()) {
    Restructure(std::move(path), {}, now);
  }
}

void PprTree::FinalizeRoot(PageId root, Time now) {
  // Collapse directory roots with a single alive child: otherwise that
  // child would be a non-root node with no sibling to merge with, and the
  // weak-version invariant could not be maintained.
  while (root != kInvalidPage) {
    Node* node = GetNode(root);
    const size_t alive = node->AliveCount();
    if (alive == 0) {
      node->Close(now);
      root = kInvalidPage;
      break;
    }
    if (node->IsLeaf() || alive > 1) break;
    // Promote the only alive child.
    PageId child = kInvalidPage;
    std::vector<Entry>& entries = node->entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].IsAlive()) continue;
      child = entries[i].child;
      if (entries[i].lifetime.start == now) {
        entries.erase(entries.begin() + static_cast<long>(i));
      } else {
        entries[i].lifetime.end = now;
      }
      break;
    }
    node->Close(now);
    parent_of_.erase(child);
    root = child;
  }
  if (root != CurrentRoot()) StartNewEra(root, now);
}

void PprTree::KeySplit(std::vector<Entry>* entries, std::vector<Entry>* left,
                       std::vector<Entry>* right) const {
  const size_t total = entries->size();
  STINDEX_CHECK(total >= 2);
  // Minimum fill per side: the strong-version lower bound when possible.
  const size_t min_fill = std::min(StrongMin(), total / 2);

  auto sort_entries = [entries](int axis, bool by_upper) {
    std::stable_sort(
        entries->begin(), entries->end(),
        [axis, by_upper](const Entry& a, const Entry& b) {
          const double ka = axis == 0 ? (by_upper ? a.rect.xhi : a.rect.xlo)
                                      : (by_upper ? a.rect.yhi : a.rect.ylo);
          const double kb = axis == 0 ? (by_upper ? b.rect.xhi : b.rect.xlo)
                                      : (by_upper ? b.rect.yhi : b.rect.ylo);
          return ka < kb;
        });
  };

  std::vector<Rect2D> prefix(total), suffix(total);
  auto compute_group_mbrs = [&]() {
    Rect2D acc = Rect2D::Empty();
    for (size_t i = 0; i < total; ++i) {
      acc.ExpandToInclude((*entries)[i].rect);
      prefix[i] = acc;
    }
    acc = Rect2D::Empty();
    for (size_t i = total; i-- > 0;) {
      acc.ExpandToInclude((*entries)[i].rect);
      suffix[i] = acc;
    }
  };

  // Choose the split axis by minimum total margin, then the distribution
  // by minimum overlap (ties: minimum total area) — the R* heuristic in
  // two dimensions, applied to the alive set.
  int best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < 2; ++axis) {
    double margin_sum = 0.0;
    for (bool by_upper : {false, true}) {
      sort_entries(axis, by_upper);
      compute_group_mbrs();
      for (size_t k = min_fill; k <= total - min_fill; ++k) {
        if (k == 0 || k == total) continue;
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
    }
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      best_axis = axis;
    }
  }

  bool best_by_upper = false;
  size_t best_split = total / 2;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (bool by_upper : {false, true}) {
    sort_entries(best_axis, by_upper);
    compute_group_mbrs();
    for (size_t k = min_fill; k <= total - min_fill; ++k) {
      if (k == 0 || k == total) continue;
      const double overlap = prefix[k - 1].OverlapArea(suffix[k]);
      const double area = prefix[k - 1].Area() + suffix[k].Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_by_upper = by_upper;
        best_split = k;
      }
    }
  }

  sort_entries(best_axis, best_by_upper);
  left->assign(entries->begin(),
               entries->begin() + static_cast<long>(best_split));
  right->assign(entries->begin() + static_cast<long>(best_split),
                entries->end());
  entries->clear();
}

void PprTree::SnapshotQuery(const Rect2D& area, Time t,
                            std::vector<PprDataId>* results) const {
  SnapshotQuery(area, t, buffer_.get(), results);
}

void PprTree::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                            std::vector<PprDataId>* results) const {
  IntervalQuery(area, range, buffer_.get(), results);
}

void PprTree::SnapshotQuery(const Rect2D& area, Time t, PageCache* buffer,
                            std::vector<PprDataId>* results,
                            QueryProfile* profile) const {
  results->clear();
  // Find the era owning instant t: the last era starting at or before t.
  auto it = std::upper_bound(roots_.begin(), roots_.end(), t,
                             [](Time value, const RootEra& era) {
                               return value < era.start;
                             });
  if (it == roots_.begin()) return;  // before the first insertion
  --it;
  if (it->root == kInvalidPage) return;

  TraceSpan span("ppr", "snapshot_query");
  const IoStats before = buffer->stats();
  std::vector<PageId> stack = {it->root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    // Pinned for the loop body: the node pointer must survive any
    // evictions a deeper Fetch could cause in backend mode.
    const PageRef ref = buffer->FetchPinned(id);
    const Node* node = static_cast<const Node*>(ref.get());
    if (profile != nullptr) {
      profile->CountNode(node->level());
      if (node->IsLeaf()) {
        profile->leaf_entries_scanned += node->entries().size();
      }
    }
    for (const Entry& entry : node->entries()) {
      if (!entry.lifetime.Contains(t)) continue;
      if (!entry.rect.Intersects(area)) continue;
      if (node->IsLeaf()) {
        results->push_back(entry.data);
      } else {
        stack.push_back(entry.child);
      }
    }
  }
  if (profile != nullptr) {
    profile->candidates += results->size();
    const IoStats after = buffer->stats();
    profile->pages_missed += after.misses - before.misses;
    profile->pages_hit +=
        (after.accesses - before.accesses) - (after.misses - before.misses);
  }
  span.Arg("results", static_cast<int64_t>(results->size()));
}

void PprTree::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                            PageCache* buffer,
                            std::vector<PprDataId>* results,
                            QueryProfile* profile) const {
  results->clear();
  if (!range.IsValid()) return;
  TraceSpan span("ppr", "interval_query");
  const IoStats before = buffer->stats();
  std::unordered_set<PprDataId> seen;
  for (size_t e = 0; e < roots_.size(); ++e) {
    const TimeInterval era(roots_[e].start, e + 1 < roots_.size()
                                                ? roots_[e + 1].start
                                                : kTimeInfinity);
    if (!era.Intersects(range)) continue;
    if (roots_[e].root == kInvalidPage) continue;
    std::vector<PageId> stack = {roots_[e].root};
    while (!stack.empty()) {
      const PageId id = stack.back();
      stack.pop_back();
      const PageRef ref = buffer->FetchPinned(id);
      const Node* node = static_cast<const Node*>(ref.get());
      if (profile != nullptr) {
        profile->CountNode(node->level());
        if (node->IsLeaf()) {
          profile->leaf_entries_scanned += node->entries().size();
        }
      }
      for (const Entry& entry : node->entries()) {
        if (!entry.lifetime.Intersects(range)) continue;
        if (!entry.rect.Intersects(area)) continue;
        if (node->IsLeaf()) {
          // The same logical record may have physical copies in several
          // nodes (version splits) and eras; report it once.
          if (seen.insert(entry.data).second) results->push_back(entry.data);
        } else {
          stack.push_back(entry.child);
        }
      }
    }
  }
  if (profile != nullptr) {
    profile->candidates += results->size();
    const IoStats after = buffer->stats();
    profile->pages_missed += after.misses - before.misses;
    profile->pages_hit +=
        (after.accesses - before.accesses) - (after.misses - before.misses);
  }
  span.Arg("results", static_cast<int64_t>(results->size()));
}

std::vector<PprTree::AliveNodeSummary> PprTree::CollectAliveSummaries(
    Time t) const {
  std::vector<AliveNodeSummary> summaries;
  auto it = std::upper_bound(roots_.begin(), roots_.end(), t,
                             [](Time value, const RootEra& era) {
                               return value < era.start;
                             });
  if (it == roots_.begin()) return summaries;
  --it;
  if (it->root == kInvalidPage) return summaries;
  std::vector<PageId> stack = {it->root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const Node* node = GetNode(id);
    AliveNodeSummary summary;
    summary.level = node->level();
    summary.rect = Rect2D::Empty();
    for (const Entry& entry : node->entries()) {
      if (!entry.lifetime.Contains(t)) continue;
      ++summary.alive;
      summary.rect.ExpandToInclude(entry.rect);
      if (!node->IsLeaf()) stack.push_back(entry.child);
    }
    if (summary.alive > 0) summaries.push_back(summary);
  }
  return summaries;
}

size_t PprTree::SnapshotCount(const Rect2D& area, Time t) const {
  return SnapshotCount(area, t, buffer_.get());
}

size_t PprTree::SnapshotCount(const Rect2D& area, Time t,
                              PageCache* buffer) const {
  auto it = std::upper_bound(roots_.begin(), roots_.end(), t,
                             [](Time value, const RootEra& era) {
                               return value < era.start;
                             });
  if (it == roots_.begin()) return 0;
  --it;
  if (it->root == kInvalidPage) return 0;
  size_t count = 0;
  std::vector<PageId> stack = {it->root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const PageRef ref = buffer->FetchPinned(id);
    const Node* node = static_cast<const Node*>(ref.get());
    for (const Entry& entry : node->entries()) {
      if (!entry.lifetime.Contains(t)) continue;
      if (!entry.rect.Intersects(area)) continue;
      if (node->IsLeaf()) {
        ++count;
      } else {
        stack.push_back(entry.child);
      }
    }
  }
  return count;
}

std::vector<size_t> PprTree::OccupancyHistogram(
    const Rect2D& area, const TimeInterval& range) const {
  STINDEX_CHECK(range.IsValid());
  std::vector<size_t> histogram;
  histogram.reserve(static_cast<size_t>(range.Duration()));
  for (Time t = range.start; t < range.end; ++t) {
    histogram.push_back(SnapshotCount(area, t));
  }
  return histogram;
}

void PprTree::CollectSubtree(PageId root, std::vector<PageId>* out) const {
  std::vector<PageId> stack = {root};
  std::unordered_set<PageId> visited;
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    if (!visited.insert(id).second) continue;
    out->push_back(id);
    const Node* node = GetNode(id);
    if (node->IsLeaf()) continue;
    for (const Entry& entry : node->entries()) stack.push_back(entry.child);
  }
}

void PprTree::CheckInvariants() const {
  // Structural checks over every reachable node.
  std::vector<PageId> nodes;
  std::unordered_set<PageId> unique;
  for (const RootEra& era : roots_) {
    if (era.root == kInvalidPage) continue;
    std::vector<PageId> subtree;
    CollectSubtree(era.root, &subtree);
    for (PageId id : subtree) {
      if (unique.insert(id).second) nodes.push_back(id);
    }
  }
  for (PageId id : nodes) {
    const Node* node = GetNode(id);
    STINDEX_CHECK(node->entries().size() <= config_.max_entries);
    for (const Entry& entry : node->entries()) {
      STINDEX_CHECK(entry.lifetime.start < entry.lifetime.end);
      STINDEX_CHECK(entry.lifetime.start >= node->created());
      STINDEX_CHECK(entry.lifetime.end <= node->closed());
      STINDEX_CHECK(entry.rect.IsValid());
      if (!node->IsLeaf()) {
        const Node* child = GetNode(entry.child);
        STINDEX_CHECK(child->level() == node->level() - 1);
      }
    }
  }

  // Per-instant checks at era boundaries and a few interior instants:
  // visited non-root nodes satisfy the weak-version bound, and every data
  // rect alive at t is covered by every ancestor directory rect on its
  // path (checked via the running intersection of covers). Directory
  // entry rects themselves may exceed a *historical* parent's rect:
  // in-place MBR expansion rewrites intermediate rects anachronistically,
  // which inflates traversal slightly but cannot cause false dismissals —
  // data rects are immutable and were covered when inserted.
  for (size_t e = 0; e < roots_.size(); ++e) {
    if (roots_[e].root == kInvalidPage) continue;
    const Time era_start = roots_[e].start;
    const Time era_end =
        e + 1 < roots_.size() ? roots_[e + 1].start : current_time_ + 1;
    std::vector<Time> samples = {era_start, era_end - 1,
                                 era_start + (era_end - era_start) / 2};
    for (Time t : samples) {
      if (t < era_start || t >= era_end) continue;
      // (node, is_root, intersection of ancestor covers)
      const Rect2D everything(-1e300, -1e300, 1e300, 1e300);
      std::vector<std::pair<PageId, std::pair<bool, Rect2D>>> stack;
      stack.push_back({roots_[e].root, {true, everything}});
      while (!stack.empty()) {
        auto [id, info] = stack.back();
        stack.pop_back();
        const auto& [is_root, cover] = info;
        const Node* node = GetNode(id);
        size_t alive = 0;
        for (const Entry& entry : node->entries()) {
          if (!entry.lifetime.Contains(t)) continue;
          ++alive;
          if (node->IsLeaf()) {
            STINDEX_CHECK_MSG(cover.Contains(entry.rect),
                              "ancestor rects do not cover alive data");
          } else {
            stack.push_back(
                {entry.child, {false, cover.Intersection(entry.rect)}});
          }
        }
        if (!is_root) {
          STINDEX_CHECK_MSG(alive >= WeakMin(),
                            "weak version bound violated");
        }
      }
    }
  }
}

namespace {

// On-disk layout (all pages exactly kPageSize bytes):
//   page 0            header: magic, config, size, time, era/page counts
//   journal pages     packed (start, root) era records
//   one page per node level, created, closed, entry count, entries
constexpr char kPprMagic[8] = {'P', 'P', 'R', 'T', '0', '0', '0', '2'};
constexpr size_t kEraBytes = sizeof(Time) + sizeof(PageId);

bool WritePage(std::ostream& out, const std::array<uint8_t, kPageSize>& page) {
  out.write(reinterpret_cast<const char*>(page.data()), kPageSize);
  return static_cast<bool>(out);
}

bool ReadPage(std::istream& in, std::array<uint8_t, kPageSize>* page) {
  in.read(reinterpret_cast<char*>(page->data()), kPageSize);
  return static_cast<bool>(in);
}

}  // namespace

Status PprTree::Save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");

  std::array<uint8_t, kPageSize> page{};
  {
    PageWriter header(page.data(), kPageSize);
    header.WriteBytes(kPprMagic, sizeof(kPprMagic));
    header.Write(config_.max_entries);
    header.Write(config_.p_version);
    header.Write(config_.p_svo);
    header.Write(config_.p_svu);
    header.Write(config_.buffer_pages);
    header.Write(size_);
    header.Write(current_time_);
    header.Write(roots_.size());
    header.Write(store_.AllocatedCount());
    if (!WritePage(out, page)) {
      return Status::InvalidArgument("write failed for '" + path + "'");
    }
  }

  // Root journal, packed across pages.
  {
    const size_t eras_per_page = kPageSize / kEraBytes;
    size_t cursor = 0;
    while (cursor < roots_.size()) {
      page.fill(0);
      PageWriter writer(page.data(), kPageSize);
      for (size_t i = 0; i < eras_per_page && cursor < roots_.size();
           ++i, ++cursor) {
        writer.Write(roots_[cursor].start);
        writer.Write(roots_[cursor].root);
      }
      if (!WritePage(out, page)) {
        return Status::InvalidArgument("write failed for '" + path + "'");
      }
    }
  }

  // One page per node.
  for (PageId id = 0; id < store_.AllocatedCount(); ++id) {
    const Node* node = GetNode(id);
    page.fill(0);
    PageWriter writer(page.data(), kPageSize);
    writer.Write(node->level());
    writer.Write(node->created());
    writer.Write(node->closed());
    writer.Write(node->entries().size());
    for (const Entry& entry : node->entries()) {
      writer.Write(entry.rect);
      writer.Write(entry.lifetime);
      writer.Write(entry.child);
      writer.Write(entry.data);
    }
    if (!WritePage(out, page)) {
      return Status::InvalidArgument("write failed for '" + path + "'");
    }
  }
  out.flush();
  if (!out) return Status::InvalidArgument("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::unique_ptr<PprTree>> PprTree::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");

  std::array<uint8_t, kPageSize> page{};
  if (!ReadPage(in, &page)) {
    return Status::InvalidArgument("truncated PPR-tree header");
  }
  PageReader header(page.data(), kPageSize);
  char magic[8];
  if (!header.ReadBytes(magic, sizeof(magic)) ||
      std::memcmp(magic, kPprMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a PPR-tree file");
  }
  PprConfig config;
  size_t root_count = 0;
  size_t pages = 0;
  std::unique_ptr<PprTree> tree;
  size_t size = 0;
  Time current_time = 0;
  if (!header.Read(&config.max_entries) || !header.Read(&config.p_version) ||
      !header.Read(&config.p_svo) || !header.Read(&config.p_svu) ||
      !header.Read(&config.buffer_pages) || !header.Read(&size) ||
      !header.Read(&current_time) || !header.Read(&root_count) ||
      !header.Read(&pages)) {
    return Status::InvalidArgument("truncated PPR-tree header");
  }
  if (config.max_entries == 0 || config.max_entries > 4096 ||
      config.p_version <= 0.0 || config.p_version >= 1.0) {
    return Status::InvalidArgument("implausible PPR-tree configuration");
  }
  tree = std::make_unique<PprTree>(config);
  tree->size_ = size;
  tree->current_time_ = current_time;

  // Root journal.
  const size_t eras_per_page = kPageSize / kEraBytes;
  for (size_t cursor = 0; cursor < root_count;) {
    if (!ReadPage(in, &page)) {
      return Status::InvalidArgument("truncated root journal");
    }
    PageReader reader(page.data(), kPageSize);
    for (size_t i = 0; i < eras_per_page && cursor < root_count;
         ++i, ++cursor) {
      RootEra era;
      if (!reader.Read(&era.start) || !reader.Read(&era.root)) {
        return Status::InvalidArgument("truncated root journal");
      }
      tree->roots_.push_back(era);
    }
  }

  // Nodes, one page each.
  for (PageId id = 0; id < pages; ++id) {
    if (!ReadPage(in, &page)) {
      return Status::InvalidArgument("truncated node page");
    }
    PageReader reader(page.data(), kPageSize);
    int level = 0;
    Time created = 0, closed = 0;
    size_t entry_count = 0;
    if (!reader.Read(&level) || !reader.Read(&created) ||
        !reader.Read(&closed) || !reader.Read(&entry_count) ||
        entry_count > config.max_entries + 1) {
      return Status::InvalidArgument("corrupt node page");
    }
    auto node = std::make_unique<Node>(level, created);
    if (closed != kTimeInfinity) node->Close(closed);
    node->entries().resize(entry_count);
    for (Entry& entry : node->entries()) {
      if (!reader.Read(&entry.rect) || !reader.Read(&entry.lifetime) ||
          !reader.Read(&entry.child) || !reader.Read(&entry.data)) {
        return Status::InvalidArgument("corrupt node page");
      }
      // Rebuild the alive-record and alive-parent maps.
      if (entry.IsAlive()) {
        if (level == 0) {
          tree->alive_location_[entry.data] = id;
        } else {
          tree->parent_of_[entry.child] = id;
        }
      }
    }
    const PageId allocated = tree->store_.Allocate(std::move(node));
    STINDEX_CHECK(allocated == id);
  }
  return tree;
}

void PprTree::EncodeCheckpointMeta(ByteSink* out) const {
  out->Write(static_cast<uint64_t>(size_));
  out->Write(current_time_);
  out->Write(static_cast<uint64_t>(roots_.size()));
  for (const RootEra& era : roots_) {
    out->Write(era.start);
    out->Write(era.root);
  }
}

Status PprTree::DecodeCheckpointMeta(ByteSource* in) {
  STINDEX_CHECK_MSG(roots_.empty() && store_.AllocatedCount() == 0,
                    "checkpoint restore into a non-empty tree");
  uint64_t size = 0;
  uint64_t root_count = 0;
  if (!in->Read(&size) || !in->Read(&current_time_) || !in->Read(&root_count)) {
    return Status::InvalidArgument("checkpoint: truncated PPR-tree meta");
  }
  size_ = static_cast<size_t>(size);
  roots_.reserve(static_cast<size_t>(root_count));
  for (uint64_t i = 0; i < root_count; ++i) {
    RootEra era;
    if (!in->Read(&era.start) || !in->Read(&era.root)) {
      return Status::InvalidArgument("checkpoint: truncated root journal");
    }
    roots_.push_back(era);
  }
  return Status::OK();
}

Status PprTree::PersistNodesForCheckpoint(
    PageBackend* backend, const std::vector<PageId>& slots) const {
  // Works for live trees and for frozen packed layers alike: the store
  // keeps every node in memory even after PackSnapshot attaches a
  // read-only backend, and ids stay contiguous 0..NodeCount()-1.
  STINDEX_CHECK(slots.size() == store_.AllocatedCount());
  const NodeCodec codec(config_.max_entries);
  // Write-back pool sized like the query buffer: dirty evictions stream
  // pages out while the tail is flushed explicitly — the same real write
  // path AttachBackend persists through.
  BufferPool writer(backend, &codec, config_.buffer_pages);
  for (PageId id = 0; id < store_.AllocatedCount(); ++id) {
    if (!store_.IsLive(id)) continue;
    const Node* node = GetNode(id);
    auto clone = std::make_unique<Node>(node->level(), node->created());
    if (node->closed() != kTimeInfinity) clone->Close(node->closed());
    clone->entries() = node->entries();
    Status status = writer.Put(slots[id], std::move(clone));
    if (!status.ok()) {
      writer.DiscardAll();  // the shadow slots are garbage; do not flush
      return status;
    }
  }
  Status status = writer.FlushAll();
  if (!status.ok()) writer.DiscardAll();
  return status;
}

Status PprTree::InstallCheckpointNode(PageId id, const uint8_t* page) {
  STINDEX_CHECK_MSG(backend_ == nullptr,
                    "checkpoint restore into an attached tree");
  STINDEX_CHECK(store_.AllocatedCount() == id);
  const NodeCodec codec(config_.max_entries);
  Result<std::unique_ptr<Page>> decoded = codec.Decode(page, id);
  if (!decoded.ok()) return decoded.status();
  auto node = std::unique_ptr<Node>(static_cast<Node*>(decoded.value().release()));
  for (const Entry& entry : node->entries()) {
    if (entry.IsAlive()) {
      if (node->IsLeaf()) {
        alive_location_[entry.data] = id;
      } else {
        parent_of_[entry.child] = id;
      }
    }
  }
  const PageId allocated = store_.Allocate(std::move(node));
  STINDEX_CHECK(allocated == id);
  return Status::OK();
}

std::unique_ptr<PprTree> BuildPprTree(
    const std::vector<SegmentRecord>& records, PprConfig config) {
  auto tree = std::make_unique<PprTree>(config);
  TraceSpan span("ppr", "build");
  span.Arg("records", static_cast<int64_t>(records.size()));

  // Replay the evolution: one insert and one delete event per record,
  // deletes first at equal timestamps (a record with lifetime [a, b) is
  // gone at instant b).
  struct Event {
    Time time;
    bool is_insert;
    uint64_t record;
  };
  std::vector<Event> events;
  events.reserve(records.size() * 2);
  for (uint64_t i = 0; i < records.size(); ++i) {
    events.push_back(Event{records[i].box.interval.start, true, i});
    events.push_back(Event{records[i].box.interval.end, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_insert != b.is_insert) return !a.is_insert;  // deletes first
    return a.record < b.record;
  });
  for (const Event& event : events) {
    const SegmentRecord& record = records[event.record];
    if (event.is_insert) {
      tree->Insert(record.box.rect, record.box.interval.start, event.record);
    } else {
      tree->Delete(event.record, record.box.interval.end);
    }
  }
  return tree;
}

}  // namespace stindex
