#include "io/csv.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace stindex {
namespace {

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string FormatPolynomial(const Polynomial& poly) {
  std::string out;
  const std::vector<double>& coefficients = poly.coefficients();
  if (coefficients.empty()) return "0";
  for (size_t i = 0; i < coefficients.size(); ++i) {
    if (i > 0) out += ':';
    out += FormatDouble(coefficients[i]);
  }
  return out;
}

// Splits `line` on `delimiter`, keeping empty fields.
std::vector<std::string> SplitFields(const std::string& line,
                                     char delimiter) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream stream(line);
  while (std::getline(stream, field, delimiter)) fields.push_back(field);
  if (!line.empty() && line.back() == delimiter) fields.push_back("");
  return fields;
}

}  // namespace

Status ParseDouble(const std::string& text, double* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed number: '" + text + "'");
  }
  // strtod sets ERANGE for subnormal underflow as well as overflow, but
  // only overflow (±HUGE_VAL) loses the value — denormals written with
  // %.17g must round-trip.
  if (errno == ERANGE && (*out == HUGE_VAL || *out == -HUGE_VAL)) {
    return Status::OutOfRange("number out of range: '" + text + "'");
  }
  return Status::OK();
}

Status ParseTime(const std::string& text, Time* out) {
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("malformed time: '" + text + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("time out of range: '" + text + "'");
  }
  *out = static_cast<Time>(value);
  return Status::OK();
}

namespace {

Status ParsePolynomial(const std::string& text, Polynomial* out) {
  std::vector<double> coefficients;
  for (const std::string& field : SplitFields(text, ':')) {
    double value = 0.0;
    const Status status = ParseDouble(field, &value);
    if (!status.ok()) return status;
    coefficients.push_back(value);
  }
  if (coefficients.empty()) {
    return Status::InvalidArgument("empty polynomial field");
  }
  *out = Polynomial(std::move(coefficients));
  return Status::OK();
}

// Iterates data lines of a CSV file, skipping comments/blanks. Calls
// `handler(line_number, line)`; stops at the first error.
template <typename Handler>
Status ForEachLine(const std::string& path, Handler&& handler) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::string line;
  size_t number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty() || line[0] == '#') continue;
    Status status = handler(number, line);
    if (!status.ok()) {
      return Status(status.code(), path + ":" + std::to_string(number) +
                                       ": " + status.message());
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteTrajectoriesCsv(const std::string& path,
                            const std::vector<Trajectory>& objects) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << "# object_id,t_start,t_end,cx,cy,ex,ey\n";
  for (const Trajectory& object : objects) {
    for (const MovementTuple& tuple : object.tuples()) {
      out << object.id() << ',' << tuple.interval.start << ','
          << tuple.interval.end << ',' << FormatPolynomial(tuple.center_x)
          << ',' << FormatPolynomial(tuple.center_y) << ','
          << FormatPolynomial(tuple.extent_x) << ','
          << FormatPolynomial(tuple.extent_y) << '\n';
    }
  }
  out.flush();
  if (!out) return Status::InvalidArgument("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::vector<Trajectory>> ReadTrajectoriesCsv(const std::string& path) {
  std::vector<Trajectory> objects;
  ObjectId current_id = 0;
  std::vector<MovementTuple> current;
  bool have_current = false;

  auto flush = [&]() -> Status {
    if (!have_current) return Status::OK();
    Trajectory trajectory(current_id, std::move(current));
    Status status = trajectory.Validate();
    if (!status.ok()) return status;
    objects.push_back(std::move(trajectory));
    current.clear();
    have_current = false;
    return Status::OK();
  };

  Status status = ForEachLine(
      path, [&](size_t, const std::string& line) -> Status {
        const std::vector<std::string> fields = SplitFields(line, ',');
        if (fields.size() != 7) {
          return Status::InvalidArgument("expected 7 fields");
        }
        Time start = 0, end = 0;
        Status parse = ParseTime(fields[1], &start);
        if (!parse.ok()) return parse;
        parse = ParseTime(fields[2], &end);
        if (!parse.ok()) return parse;
        MovementTuple tuple;
        tuple.interval = TimeInterval(start, end);
        parse = ParsePolynomial(fields[3], &tuple.center_x);
        if (!parse.ok()) return parse;
        parse = ParsePolynomial(fields[4], &tuple.center_y);
        if (!parse.ok()) return parse;
        parse = ParsePolynomial(fields[5], &tuple.extent_x);
        if (!parse.ok()) return parse;
        parse = ParsePolynomial(fields[6], &tuple.extent_y);
        if (!parse.ok()) return parse;

        const ObjectId id =
            static_cast<ObjectId>(std::strtoul(fields[0].c_str(), nullptr, 10));
        if (!have_current || id != current_id) {
          Status flushed = flush();
          if (!flushed.ok()) return flushed;
          current_id = id;
          have_current = true;
        }
        current.push_back(std::move(tuple));
        return Status::OK();
      });
  if (!status.ok()) return status;
  status = flush();
  if (!status.ok()) return status;
  return objects;
}

Status WriteSegmentsCsv(const std::string& path,
                        const std::vector<SegmentRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << "# object_id,t_start,t_end,xlo,ylo,xhi,yhi\n";
  for (const SegmentRecord& record : records) {
    out << record.object << ',' << record.box.interval.start << ','
        << record.box.interval.end << ',' << FormatDouble(record.box.rect.xlo)
        << ',' << FormatDouble(record.box.rect.ylo) << ','
        << FormatDouble(record.box.rect.xhi) << ','
        << FormatDouble(record.box.rect.yhi) << '\n';
  }
  out.flush();
  if (!out) return Status::InvalidArgument("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::vector<SegmentRecord>> ReadSegmentsCsv(const std::string& path) {
  std::vector<SegmentRecord> records;
  Status status = ForEachLine(
      path, [&](size_t, const std::string& line) -> Status {
        const std::vector<std::string> fields = SplitFields(line, ',');
        if (fields.size() != 7) {
          return Status::InvalidArgument("expected 7 fields");
        }
        SegmentRecord record;
        record.object =
            static_cast<ObjectId>(std::strtoul(fields[0].c_str(), nullptr, 10));
        Time start = 0, end = 0;
        Status parse = ParseTime(fields[1], &start);
        if (!parse.ok()) return parse;
        parse = ParseTime(fields[2], &end);
        if (!parse.ok()) return parse;
        record.box.interval = TimeInterval(start, end);
        double values[4];
        for (int i = 0; i < 4; ++i) {
          parse = ParseDouble(fields[static_cast<size_t>(i) + 3], &values[i]);
          if (!parse.ok()) return parse;
        }
        record.box.rect = Rect2D(values[0], values[1], values[2], values[3]);
        if (!record.box.IsValid()) {
          return Status::InvalidArgument("invalid segment box");
        }
        records.push_back(record);
        return Status::OK();
      });
  if (!status.ok()) return status;
  return records;
}

Status WriteQueriesCsv(const std::string& path,
                       const std::vector<STQuery>& queries) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write '" + path + "'");
  out << "# t_start,t_end,xlo,ylo,xhi,yhi\n";
  for (const STQuery& query : queries) {
    out << query.range.start << ',' << query.range.end << ','
        << FormatDouble(query.area.xlo) << ',' << FormatDouble(query.area.ylo)
        << ',' << FormatDouble(query.area.xhi) << ','
        << FormatDouble(query.area.yhi) << '\n';
  }
  out.flush();
  if (!out) return Status::InvalidArgument("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::vector<STQuery>> ReadQueriesCsv(const std::string& path) {
  std::vector<STQuery> queries;
  Status status = ForEachLine(
      path, [&](size_t, const std::string& line) -> Status {
        const std::vector<std::string> fields = SplitFields(line, ',');
        if (fields.size() != 6) {
          return Status::InvalidArgument("expected 6 fields");
        }
        STQuery query;
        Time start = 0, end = 0;
        Status parse = ParseTime(fields[0], &start);
        if (!parse.ok()) return parse;
        parse = ParseTime(fields[1], &end);
        if (!parse.ok()) return parse;
        query.range = TimeInterval(start, end);
        double values[4];
        for (int i = 0; i < 4; ++i) {
          parse = ParseDouble(fields[static_cast<size_t>(i) + 2], &values[i]);
          if (!parse.ok()) return parse;
        }
        query.area = Rect2D(values[0], values[1], values[2], values[3]);
        if (!query.range.IsValid() || !query.area.IsValid()) {
          return Status::InvalidArgument("invalid query");
        }
        queries.push_back(query);
        return Status::OK();
      });
  if (!status.ok()) return status;
  return queries;
}

}  // namespace stindex
