#ifndef STINDEX_IO_CSV_H_
#define STINDEX_IO_CSV_H_

#include <string>
#include <vector>

#include "core/segment.h"
#include "datagen/query_gen.h"
#include "trajectory/trajectory.h"
#include "util/status.h"

namespace stindex {

// Plain-text persistence for datasets, segment collections and query
// sets, so experiments are reproducible outside this process (and so the
// CLI can pipeline generate -> split -> index -> query).
//
// Formats (one record per line, '#' comments and blank lines ignored):
//
//  * Trajectories — one line per movement tuple:
//      object_id,t_start,t_end,cx,cy,ex,ey
//    where each polynomial field is its coefficients joined by ':'
//    (constant term first), e.g. "0.5:0.01" for 0.5 + 0.01 t.
//    Tuples of one object must be contiguous and in time order.
//
//  * Segments:
//      object_id,t_start,t_end,xlo,ylo,xhi,yhi
//
//  * Queries:
//      t_start,t_end,xlo,ylo,xhi,yhi

// Field-level parsers used by the readers below, exposed for direct use
// and testing. ParseDouble accepts everything strtod does — including
// denormals, which underflow to a subnormal without losing the value —
// and rejects only syntax errors (InvalidArgument) and genuine overflow
// to ±HUGE_VAL (OutOfRange). ParseTime parses a base-10 integer into
// Time with the same syntax/overflow split.
Status ParseDouble(const std::string& text, double* out);
Status ParseTime(const std::string& text, Time* out);

Status WriteTrajectoriesCsv(const std::string& path,
                            const std::vector<Trajectory>& objects);
Result<std::vector<Trajectory>> ReadTrajectoriesCsv(const std::string& path);

Status WriteSegmentsCsv(const std::string& path,
                        const std::vector<SegmentRecord>& records);
Result<std::vector<SegmentRecord>> ReadSegmentsCsv(const std::string& path);

Status WriteQueriesCsv(const std::string& path,
                       const std::vector<STQuery>& queries);
Result<std::vector<STQuery>> ReadQueriesCsv(const std::string& path);

}  // namespace stindex

#endif  // STINDEX_IO_CSV_H_
