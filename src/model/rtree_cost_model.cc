#include "model/rtree_cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stindex {

RTreeCostModel::RTreeCostModel(std::vector<double> avg_extents,
                               size_t num_boxes, double fanout)
    : avg_extents_(std::move(avg_extents)),
      num_boxes_(num_boxes),
      fanout_(fanout) {
  STINDEX_CHECK(!avg_extents_.empty());
  STINDEX_CHECK(num_boxes_ > 0);
  STINDEX_CHECK(fanout_ > 1.0);
  for (double extent : avg_extents_) STINDEX_CHECK(extent >= 0.0);

  const double d = static_cast<double>(avg_extents_.size());
  const double n = static_cast<double>(num_boxes_);
  // Height: levels of nodes above the data (leaf level is j = 1).
  levels_ = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::log(n) / std::log(fanout_)) - 0.0));

  double base_volume = 1.0;
  for (double extent : avg_extents_) base_volume *= extent;
  double density = n * base_volume;

  for (size_t j = 1; j <= levels_; ++j) {
    // Density of nodes one level up (Theodoridis-Sellis recurrence).
    const double root_d = 1.0 / d;
    density = std::pow(
        1.0 + (std::pow(std::max(density, 1e-12), root_d) - 1.0) /
                  std::pow(fanout_, root_d),
        d);
    const double nodes =
        std::max(1.0, n / std::pow(fanout_, static_cast<double>(j)));
    // Anisotropy-preserving node extents: scale the data extents so their
    // product matches the level's density.
    const double target_volume = density / nodes;
    double scale = 1.0;
    if (base_volume > 0.0) {
      scale = std::pow(target_volume / base_volume, root_d);
    } else {
      scale = std::pow(target_volume, root_d);
    }
    std::vector<double> extents(avg_extents_.size());
    for (size_t i = 0; i < extents.size(); ++i) {
      extents[i] = base_volume > 0.0
                       ? std::min(1.0, avg_extents_[i] * scale)
                       : std::min(1.0, scale);
    }
    level_nodes_.push_back(nodes);
    level_extents_.push_back(std::move(extents));
    if (nodes <= 1.0) {
      levels_ = j;
      break;
    }
  }
}

double RTreeCostModel::ExpectedNodeAccesses(
    const std::vector<double>& query_extents) const {
  STINDEX_CHECK(query_extents.size() == avg_extents_.size());
  double accesses = 1.0;  // the root
  for (size_t j = 0; j < level_nodes_.size(); ++j) {
    double probability = 1.0;
    for (size_t i = 0; i < query_extents.size(); ++i) {
      probability *= std::min(1.0, level_extents_[j][i] + query_extents[i]);
    }
    accesses += level_nodes_[j] * probability;
  }
  return accesses;
}

double RTreeCostModel::AverageNodeAccesses(
    const std::vector<std::vector<double>>& query_extent_set) const {
  STINDEX_CHECK(!query_extent_set.empty());
  double total = 0.0;
  for (const std::vector<double>& extents : query_extent_set) {
    total += ExpectedNodeAccesses(extents);
  }
  return total / static_cast<double>(query_extent_set.size());
}

RTreeCostModel RTreeCostModel::FromBoxes(const std::vector<Box3D>& boxes,
                                         double fanout) {
  STINDEX_CHECK(!boxes.empty());
  std::vector<double> extents(3, 0.0);
  for (const Box3D& box : boxes) {
    for (int d = 0; d < 3; ++d) extents[static_cast<size_t>(d)] +=
        box.Extent(d);
  }
  for (double& extent : extents) {
    extent /= static_cast<double>(boxes.size());
  }
  return RTreeCostModel(std::move(extents), boxes.size(), fanout);
}

}  // namespace stindex
