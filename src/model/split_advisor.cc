#include "model/split_advisor.h"

#include <algorithm>
#include <limits>

#include "model/ppr_cost_model.h"
#include "model/rtree_cost_model.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"
#include "util/check.h"
#include "util/random.h"

namespace stindex {
namespace {

double AnalyticalCost(const std::vector<SegmentRecord>& records,
                      const std::vector<STQuery>& workload, IndexKind kind,
                      const SplitAdvisorOptions& options) {
  double cost = 0.0;
  if (kind == IndexKind::kPprTree) {
    const PprCostModel model = PprCostModel::FromSegments(
        records, options.time_domain, options.ppr_alive_fanout);
    for (const STQuery& query : workload) {
      cost += model.ExpectedNodeAccesses(query.area.Width(),
                                         query.area.Height(),
                                         query.range.Duration());
    }
    cost /= static_cast<double>(workload.size());
    cost += options.space_weight * static_cast<double>(records.size()) /
            options.ppr_alive_fanout;
  } else {
    const std::vector<Box3D> boxes =
        SegmentsToBoxes(records, 0, options.time_domain);
    const RTreeCostModel model =
        RTreeCostModel::FromBoxes(boxes, options.rstar_fanout);
    const double time_scale = 1.0 / static_cast<double>(options.time_domain);
    std::vector<std::vector<double>> query_extents;
    query_extents.reserve(workload.size());
    for (const STQuery& query : workload) {
      query_extents.push_back(
          {query.area.Width(), query.area.Height(),
           static_cast<double>(query.range.Duration()) * time_scale});
    }
    cost = model.AverageNodeAccesses(query_extents);
    cost += options.space_weight * static_cast<double>(records.size()) /
            options.rstar_fanout;
  }
  return cost;
}

double MeasuredCost(const std::vector<SegmentRecord>& records,
                    const std::vector<STQuery>& workload, size_t max_queries,
                    IndexKind kind, const SplitAdvisorOptions& options) {
  const size_t count = std::min(max_queries, workload.size());
  STINDEX_CHECK(count > 0);
  if (kind == IndexKind::kPprTree) {
    std::unique_ptr<PprTree> tree = BuildPprTree(records);
    uint64_t misses = 0;
    std::vector<PprDataId> results;
    for (size_t q = 0; q < count; ++q) {
      tree->ResetQueryState();
      const STQuery& query = workload[q];
      if (query.IsSnapshot()) {
        tree->SnapshotQuery(query.area, query.range.start, &results);
      } else {
        tree->IntervalQuery(query.area, query.range, &results);
      }
      misses += tree->stats().misses;
    }
    return static_cast<double>(misses) / static_cast<double>(count) +
           options.space_weight * static_cast<double>(tree->PageCount());
  }
  RStarTree tree;
  const std::vector<Box3D> boxes =
      SegmentsToBoxes(records, 0, options.time_domain);
  for (size_t i = 0; i < boxes.size(); ++i) {
    tree.Insert(boxes[i], static_cast<DataId>(i));
  }
  uint64_t misses = 0;
  std::vector<DataId> results;
  for (size_t q = 0; q < count; ++q) {
    tree.ResetQueryState();
    tree.Search(QueryToBox(workload[q], 0, options.time_domain), &results);
    misses += tree.stats().misses;
  }
  return static_cast<double>(misses) / static_cast<double>(count) +
         options.space_weight * static_cast<double>(tree.PageCount());
}

}  // namespace

SplitAdvice SplitAdvisor::ChooseAnalytical(
    const std::vector<Trajectory>& objects,
    const std::vector<VolumeCurve>& curves,
    const std::vector<int64_t>& candidate_budgets,
    const std::vector<STQuery>& workload, IndexKind kind,
    const SplitAdvisorOptions& options) {
  STINDEX_CHECK(!candidate_budgets.empty());
  STINDEX_CHECK(!workload.empty());
  STINDEX_CHECK(objects.size() == curves.size());

  SplitAdvice advice;
  advice.estimated_cost = std::numeric_limits<double>::infinity();
  for (int64_t budget : candidate_budgets) {
    const Distribution dist = DistributeLAGreedy(curves, budget);
    const std::vector<SegmentRecord> records =
        BuildSegments(objects, dist.splits, SplitMethod::kMerge);
    const double cost = AnalyticalCost(records, workload, kind, options);
    advice.evaluated.emplace_back(budget, cost);
    if (cost < advice.estimated_cost) {
      advice.estimated_cost = cost;
      advice.num_splits = budget;
    }
  }
  return advice;
}

SplitAdvice SplitAdvisor::ChooseBySampling(
    const std::vector<Trajectory>& objects,
    const std::vector<int64_t>& candidate_budgets, double sample_fraction,
    const std::vector<STQuery>& workload, size_t max_queries, IndexKind kind,
    const SplitAdvisorOptions& options, uint64_t seed) {
  STINDEX_CHECK(!candidate_budgets.empty());
  STINDEX_CHECK(!workload.empty());
  STINDEX_CHECK(sample_fraction > 0.0 && sample_fraction <= 1.0);

  // Draw the object sample once; all candidates are evaluated on it.
  Rng rng(seed);
  std::vector<Trajectory> sample;
  for (const Trajectory& object : objects) {
    if (rng.Bernoulli(sample_fraction)) sample.push_back(object);
  }
  if (sample.empty()) sample.push_back(objects.front());
  const double effective_fraction = static_cast<double>(sample.size()) /
                                    static_cast<double>(objects.size());

  const std::vector<VolumeCurve> curves = ComputeVolumeCurves(
      sample, /*k_max=*/256, SplitMethod::kMerge);

  SplitAdvice advice;
  advice.estimated_cost = std::numeric_limits<double>::infinity();
  for (int64_t budget : candidate_budgets) {
    // Normalize the budget to the sample size.
    const int64_t sample_budget = static_cast<int64_t>(
        static_cast<double>(budget) * effective_fraction + 0.5);
    const Distribution dist = DistributeLAGreedy(curves, sample_budget);
    const std::vector<SegmentRecord> records =
        BuildSegments(sample, dist.splits, SplitMethod::kMerge);
    const double cost =
        MeasuredCost(records, workload, max_queries, kind, options);
    advice.evaluated.emplace_back(budget, cost);
    if (cost < advice.estimated_cost) {
      advice.estimated_cost = cost;
      advice.num_splits = budget;
    }
  }
  return advice;
}

}  // namespace stindex
