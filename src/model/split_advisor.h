#ifndef STINDEX_MODEL_SPLIT_ADVISOR_H_
#define STINDEX_MODEL_SPLIT_ADVISOR_H_

#include <cstdint>
#include <vector>

#include "core/split_pipeline.h"
#include "datagen/query_gen.h"
#include "trajectory/trajectory.h"

namespace stindex {

// Which index structure the advisor optimizes for.
enum class IndexKind {
  kPprTree,
  kRStarTree,
};

// Outcome of the advisor: the chosen budget plus the whole evaluated
// cost curve for inspection.
struct SplitAdvice {
  int64_t num_splits = 0;
  double estimated_cost = 0.0;
  // (candidate budget, estimated average query cost) pairs.
  std::vector<std::pair<int64_t, double>> evaluated;
};

// Knobs shared by both advisor modes.
struct SplitAdvisorOptions {
  Time time_domain = 1000;
  // Effective alive fanout of a PPR-tree node (between P_svu*B and
  // P_svo*B).
  double ppr_alive_fanout = 30.0;
  // Average fanout of an R*-tree node (~70% utilization of B=50).
  double rstar_fanout = 35.0;
  // Optional space term: cost += space_weight * (records / fanout), giving
  // the query-time/space trade-off knob of Section IV.
  double space_weight = 0.0;
};

// Chooser for the number of splits (paper Section IV). Both methods
// evaluate a list of candidate budgets and return the cheapest.
class SplitAdvisor {
 public:
  // Analytical mode: for every candidate budget, distribute the splits
  // (LAGreedy over MergeSplit curves), recompute dataset statistics, and
  // predict the average query cost with the index's analytical model.
  static SplitAdvice ChooseAnalytical(
      const std::vector<Trajectory>& objects,
      const std::vector<VolumeCurve>& curves,
      const std::vector<int64_t>& candidate_budgets,
      const std::vector<STQuery>& workload, IndexKind kind,
      const SplitAdvisorOptions& options);

  // Sampling mode: build a real (small) index over a random object sample
  // with the budget scaled by the sampling fraction, measure average disk
  // accesses on a query subset, and pick the best candidate.
  static SplitAdvice ChooseBySampling(
      const std::vector<Trajectory>& objects,
      const std::vector<int64_t>& candidate_budgets, double sample_fraction,
      const std::vector<STQuery>& workload, size_t max_queries,
      IndexKind kind, const SplitAdvisorOptions& options, uint64_t seed);
};

}  // namespace stindex

#endif  // STINDEX_MODEL_SPLIT_ADVISOR_H_
