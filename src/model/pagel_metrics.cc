#include "model/pagel_metrics.h"

#include <cstdio>

#include "util/check.h"

namespace stindex {

std::string PagelMetrics::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "nodes=%zu leaves=%zu volume=%.6f surface=%.4f fill=%.1f",
                node_count, leaf_count, total_volume, total_surface,
                avg_leaf_fill);
  return buf;
}

PagelMetrics AnalyzeRStar(const RStarTree& tree) {
  PagelMetrics metrics;
  size_t leaf_entries = 0;
  for (const RStarTree::NodeSummary& node : tree.CollectNodeSummaries()) {
    ++metrics.node_count;
    metrics.total_volume += node.box.Volume();
    metrics.total_surface += node.box.Margin();
    if (node.level == 0) {
      ++metrics.leaf_count;
      leaf_entries += node.entries;
    }
  }
  if (metrics.leaf_count > 0) {
    metrics.avg_leaf_fill = static_cast<double>(leaf_entries) /
                            static_cast<double>(metrics.leaf_count);
  }
  return metrics;
}

PagelMetrics AnalyzePprAt(const PprTree& tree, Time t) {
  PagelMetrics metrics;
  size_t leaf_alive = 0;
  for (const PprTree::AliveNodeSummary& node :
       tree.CollectAliveSummaries(t)) {
    ++metrics.node_count;
    metrics.total_volume += node.rect.Area();
    metrics.total_surface += node.rect.Margin();
    if (node.level == 0) {
      ++metrics.leaf_count;
      leaf_alive += node.alive;
    }
  }
  if (metrics.leaf_count > 0) {
    metrics.avg_leaf_fill = static_cast<double>(leaf_alive) /
                            static_cast<double>(metrics.leaf_count);
  }
  return metrics;
}

PagelMetrics AnalyzePprAverage(const PprTree& tree,
                               const std::vector<Time>& instants) {
  STINDEX_CHECK(!instants.empty());
  PagelMetrics average;
  for (Time t : instants) {
    const PagelMetrics at = AnalyzePprAt(tree, t);
    average.node_count += at.node_count;
    average.leaf_count += at.leaf_count;
    average.total_volume += at.total_volume;
    average.total_surface += at.total_surface;
    average.avg_leaf_fill += at.avg_leaf_fill;
  }
  const double n = static_cast<double>(instants.size());
  average.node_count = static_cast<size_t>(
      static_cast<double>(average.node_count) / n + 0.5);
  average.leaf_count = static_cast<size_t>(
      static_cast<double>(average.leaf_count) / n + 0.5);
  average.total_volume /= n;
  average.total_surface /= n;
  average.avg_leaf_fill /= n;
  return average;
}

}  // namespace stindex
