#ifndef STINDEX_MODEL_RTREE_COST_MODEL_H_
#define STINDEX_MODEL_RTREE_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "geometry/box.h"

namespace stindex {

// Analytical R-tree query-cost model after Theodoridis & Sellis (PODS
// 1996), used by the split advisor (paper Section IV) to predict the
// average number of node accesses of a window query without building the
// index.
//
// For a d-dimensional query window q, the expected node accesses are
//
//   NA(q) = sum_{level j=1..h} (N / f^j) * prod_i (s_{j,i} + q_i)
//
// where f is the average fanout and s_{j,i} the average node extent at
// level j along dimension i, estimated from the data density:
//
//   D_0     = N * prod_i s_{0,i}            (data density)
//   D_j     = (1 + (D_{j-1}^{1/d} - 1) / f^{1/d})^d
//   s_{j,i} = c_j * s_{0,i} with prod_i s_{j,i} = D_j * f^j / N,
//
// i.e. node extents keep the data's anisotropy (important here: the time
// axis behaves very differently from the spatial axes).
class RTreeCostModel {
 public:
  // `avg_extents[i]`: average data-box extent along dimension i (in a
  // unit-normalized space). `num_boxes` > 0, `fanout` > 1.
  RTreeCostModel(std::vector<double> avg_extents, size_t num_boxes,
                 double fanout);

  // Expected node accesses for one query window with the given extents.
  double ExpectedNodeAccesses(const std::vector<double>& query_extents) const;

  // Convenience: average over a set of query windows.
  double AverageNodeAccesses(
      const std::vector<std::vector<double>>& query_extent_set) const;

  size_t num_levels() const { return levels_; }

  // Builds a 3-D model from concrete boxes (time axis already scaled).
  static RTreeCostModel FromBoxes(const std::vector<Box3D>& boxes,
                                  double fanout);

 private:
  std::vector<double> avg_extents_;
  size_t num_boxes_;
  double fanout_;
  size_t levels_;
  // Per level: node count and per-dimension average node extents.
  std::vector<double> level_nodes_;
  std::vector<std::vector<double>> level_extents_;
};

}  // namespace stindex

#endif  // STINDEX_MODEL_RTREE_COST_MODEL_H_
