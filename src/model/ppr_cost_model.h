#ifndef STINDEX_MODEL_PPR_COST_MODEL_H_
#define STINDEX_MODEL_PPR_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "core/segment.h"
#include "geometry/interval.h"

namespace stindex {

// Analytical cost model for the PPR-tree, in the spirit of Tao &
// Papadias' cost models for multiversion structures (ICDE 2002), used by
// the split advisor (paper Section IV).
//
// Key observation (paper Section I): a partially persistent structure
// answers a snapshot query at t like an *ephemeral* 2-D R-tree over the
// records alive at t. Splitting leaves the alive count unchanged but
// shrinks the alive records' spatial extents, so the predicted cost is the
// 2-D Theodoridis-Sellis cost of that ephemeral tree:
//
//   NA(q) = 1 + sum_{j=1..h} (N_alive / f_a^j) * prod_i (s_{j,i} + q_i)
//
// with f_a the *alive* fanout of a multiversion node (between P_svu*B and
// P_svo*B; their midpoint by default). Interval queries additionally pay
// for the versions created inside the interval: roughly one extra leaf per
// f_a alive-record replacements.
class PprCostModel {
 public:
  // `avg_alive`: average number of records alive at an instant.
  // `avg_extents`: duration-weighted average spatial extents (x, y) of the
  // records. `changes_per_instant`: average record insertions+deletions
  // per instant (drives interval-query cost). `alive_fanout` > 1.
  PprCostModel(double avg_alive, double avg_extent_x, double avg_extent_y,
               double changes_per_instant, double alive_fanout);

  // Expected node accesses for a query of the given spatial extents and
  // duration (1 = snapshot).
  double ExpectedNodeAccesses(double query_extent_x, double query_extent_y,
                              Time duration) const;

  // Builds the model from a segment-record collection and the PPR-tree
  // node parameters.
  static PprCostModel FromSegments(const std::vector<SegmentRecord>& records,
                                   Time time_domain, double alive_fanout);

 private:
  double avg_alive_;
  double extents_[2];
  double changes_per_instant_;
  double alive_fanout_;
};

}  // namespace stindex

#endif  // STINDEX_MODEL_PPR_COST_MODEL_H_
