#ifndef STINDEX_MODEL_PAGEL_METRICS_H_
#define STINDEX_MODEL_PAGEL_METRICS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "geometry/interval.h"
#include "pprtree/ppr_tree.h"
#include "rstar/rstar_tree.h"

namespace stindex {

// Pagel et al.'s query-cost determinants ([19], quoted in the paper's
// introduction): "the query performance of any bounding box based index
// structure depends on the total (spatial) volume, the total surface and
// the total number of data nodes." These aggregates make the paper's
// central argument quantitative:
//
//  * splitting shrinks the R*-tree's total volume but GROWS its node
//    count — the two effects cancel, so the 3-D tree gains little;
//  * in the PPR-tree the number of nodes alive at any instant stays the
//    same while their spatial extents shrink — pure win.
struct PagelMetrics {
  // Number of nodes (for the PPR-tree: nodes with alive entries at the
  // probed instant).
  size_t node_count = 0;
  size_t leaf_count = 0;
  // Sum of node MBR volumes (3-D tree) or areas (ephemeral 2-D view).
  double total_volume = 0.0;
  // Sum of node MBR margins (surface measure).
  double total_surface = 0.0;
  // Average entries per leaf (fill).
  double avg_leaf_fill = 0.0;

  std::string ToString() const;
};

// Aggregates over every node of a 3-D R*-tree.
PagelMetrics AnalyzeRStar(const RStarTree& tree);

// Aggregates over the ephemeral tree the PPR-tree exposes at instant t.
PagelMetrics AnalyzePprAt(const PprTree& tree, Time t);

// Average of AnalyzePprAt over several probe instants.
PagelMetrics AnalyzePprAverage(const PprTree& tree,
                               const std::vector<Time>& instants);

}  // namespace stindex

#endif  // STINDEX_MODEL_PAGEL_METRICS_H_
