#include "model/ppr_cost_model.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace stindex {

PprCostModel::PprCostModel(double avg_alive, double avg_extent_x,
                           double avg_extent_y, double changes_per_instant,
                           double alive_fanout)
    : avg_alive_(avg_alive),
      changes_per_instant_(changes_per_instant),
      alive_fanout_(alive_fanout) {
  STINDEX_CHECK(avg_alive > 0.0);
  STINDEX_CHECK(avg_extent_x >= 0.0 && avg_extent_y >= 0.0);
  STINDEX_CHECK(changes_per_instant >= 0.0);
  STINDEX_CHECK(alive_fanout > 1.0);
  extents_[0] = avg_extent_x;
  extents_[1] = avg_extent_y;
}

double PprCostModel::ExpectedNodeAccesses(double query_extent_x,
                                          double query_extent_y,
                                          Time duration) const {
  STINDEX_CHECK(duration >= 1);
  const double query[2] = {query_extent_x, query_extent_y};

  // 2-D Theodoridis-Sellis over the ephemeral tree of alive records.
  const double d = 2.0;
  const double root_d = 1.0 / d;
  const size_t levels = std::max<size_t>(
      1, static_cast<size_t>(std::ceil(std::log(std::max(avg_alive_, 2.0)) /
                                       std::log(alive_fanout_))));
  double base_volume = extents_[0] * extents_[1];
  double density = avg_alive_ * base_volume;
  double accesses = 1.0;  // the era root
  for (size_t j = 1; j <= levels; ++j) {
    density = std::pow(
        1.0 + (std::pow(std::max(density, 1e-12), root_d) - 1.0) /
                  std::pow(alive_fanout_, root_d),
        d);
    const double nodes = std::max(
        1.0, avg_alive_ / std::pow(alive_fanout_, static_cast<double>(j)));
    const double target_volume = density / nodes;
    double probability = 1.0;
    for (int i = 0; i < 2; ++i) {
      double node_extent;
      if (base_volume > 0.0) {
        node_extent = extents_[i] * std::pow(target_volume / base_volume,
                                             root_d);
      } else {
        node_extent = std::pow(target_volume, root_d);
      }
      probability *= std::min(1.0, node_extent + query[i]);
    }
    accesses += nodes * probability;
    if (nodes <= 1.0) break;
  }

  // Interval queries also touch the leaves created by version changes
  // inside the interval, scaled by the spatial selectivity of the query.
  if (duration > 1) {
    const double spatial_selectivity =
        std::min(1.0, (extents_[0] + query[0]) * (extents_[1] + query[1]));
    const double extra_records = changes_per_instant_ *
                                 static_cast<double>(duration - 1) *
                                 spatial_selectivity;
    accesses += extra_records / alive_fanout_;
  }
  return accesses;
}

PprCostModel PprCostModel::FromSegments(
    const std::vector<SegmentRecord>& records, Time time_domain,
    double alive_fanout) {
  STINDEX_CHECK(!records.empty());
  STINDEX_CHECK(time_domain > 0);
  double alive_instants = 0.0;
  double weighted_extent_x = 0.0;
  double weighted_extent_y = 0.0;
  for (const SegmentRecord& record : records) {
    const double duration =
        static_cast<double>(record.box.interval.Duration());
    alive_instants += duration;
    weighted_extent_x += record.box.rect.Width() * duration;
    weighted_extent_y += record.box.rect.Height() * duration;
  }
  const double avg_alive =
      alive_instants / static_cast<double>(time_domain);
  // Two changes (one insert, one delete) per record over the evolution.
  const double changes_per_instant =
      2.0 * static_cast<double>(records.size()) /
      static_cast<double>(time_domain);
  return PprCostModel(avg_alive, weighted_extent_x / alive_instants,
                      weighted_extent_y / alive_instants,
                      changes_per_instant, alive_fanout);
}

}  // namespace stindex
