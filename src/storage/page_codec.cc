#include "storage/page_codec.h"

#include <array>
#include <string>

namespace stindex {
namespace {

// Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

void StoreU16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v & 0xff);
  p[1] = static_cast<uint8_t>(v >> 8);
}

void StoreU32(uint8_t* p, uint32_t v) {
  p[0] = static_cast<uint8_t>(v & 0xff);
  p[1] = static_cast<uint8_t>((v >> 8) & 0xff);
  p[2] = static_cast<uint8_t>((v >> 16) & 0xff);
  p[3] = static_cast<uint8_t>((v >> 24) & 0xff);
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xffu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void SealPage(uint8_t* page, PageKind kind) {
  StoreU16(page + 4, static_cast<uint16_t>(kind));
  StoreU16(page + 6, kPageCodecVersion);
  StoreU32(page, Crc32(page + 4, kPageSize - 4));
}

Result<PageReader> OpenPagePayload(const uint8_t* page, PageKind kind,
                                   PageId id) {
  const uint32_t stored_crc = LoadU32(page);
  const uint32_t actual_crc = Crc32(page + 4, kPageSize - 4);
  if (stored_crc != actual_crc) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": checksum mismatch (corrupt page)");
  }
  const uint16_t stored_kind = LoadU16(page + 4);
  if (stored_kind != static_cast<uint16_t>(kind)) {
    return Status::InvalidArgument(
        "page " + std::to_string(id) + ": kind mismatch (got " +
        std::to_string(stored_kind) + ", want " +
        std::to_string(static_cast<uint16_t>(kind)) + ")");
  }
  const uint16_t version = LoadU16(page + 6);
  if (version != kPageCodecVersion) {
    return Status::InvalidArgument(
        "page " + std::to_string(id) + ": unsupported codec version " +
        std::to_string(version) + " (supported: " +
        std::to_string(kPageCodecVersion) + ")");
  }
  return PageReader(page + kPageEnvelopeBytes, kPagePayloadBytes);
}

}  // namespace stindex
