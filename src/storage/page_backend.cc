#include "storage/page_backend.h"

#include <cstring>

namespace stindex {

Status MemoryPageBackend::Read(PageId id, uint8_t* out) const {
  if (id >= slots_.size() || slots_[id] == nullptr) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": read of unallocated page");
  }
  std::memcpy(out, slots_[id].get(), kPageSize);
  return Status::OK();
}

Status MemoryPageBackend::Write(PageId id, const uint8_t* data) {
  if (id == kInvalidPage) {
    return Status::InvalidArgument("write to kInvalidPage");
  }
  if (id >= slots_.size()) slots_.resize(id + 1);
  if (slots_[id] == nullptr) {
    slots_[id] = std::make_unique<uint8_t[]>(kPageSize);
    ++live_count_;
  }
  std::memcpy(slots_[id].get(), data, kPageSize);
  return Status::OK();
}

Status MemoryPageBackend::Free(PageId id) {
  if (id >= slots_.size() || slots_[id] == nullptr) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": free of unallocated page");
  }
  slots_[id].reset();
  --live_count_;
  return Status::OK();
}

bool MemoryPageBackend::IsAllocated(PageId id) const {
  return id < slots_.size() && slots_[id] != nullptr;
}

}  // namespace stindex
