#ifndef STINDEX_STORAGE_FAULT_BACKEND_H_
#define STINDEX_STORAGE_FAULT_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page_backend.h"
#include "util/status.h"

namespace stindex {

// Test-only PageBackend wrapper that injects deterministic faults into a
// wrapped backend (fail the Nth read/write, deliver a short read, flip a
// bit in delivered data). Used by tests/storage_fault_test.cc to prove
// every I/O error surfaces as a Status or CHECK naming the page id —
// never as silent corruption.
//
// Counters are 1-based: `fail_read_at = 3` makes the third Read fail.
// 0 disables that fault. Faults fire once and then disarm, so a test can
// also verify recovery behaviour after the faulty call — except the
// crash trigger, which by design never disarms.
class FaultInjectingBackend : public PageBackend {
 public:
  struct Faults {
    // Fail the Nth Read with IoError (1-based; 0 = never).
    uint64_t fail_read_at = 0;
    // Fail the Nth Write with IoError.
    uint64_t fail_write_at = 0;
    // Crash at the Nth *mutating* call — Write, Sync and Free share one
    // 1-based counter (see mutations()). That call fails with IoError
    // and, unlike the one-shot faults above, the backend stays dead:
    // every subsequent call (reads included) also fails, simulating
    // process death at that write site. The crash-point recovery
    // harness sweeps this over every mutation of a run.
    uint64_t crash_at_write = 0;
    // On the Nth Read, deliver only the first half of the page
    // (simulates a short read of a truncated file) and report IoError.
    uint64_t short_read_at = 0;
    // On the Nth Read, flip one bit in the delivered page but report
    // success — the checksum layer must catch it.
    uint64_t corrupt_read_at = 0;
    // Which bit to flip (byte_index * 8 + bit_index into the page).
    uint64_t corrupt_bit = 0;
  };

  FaultInjectingBackend(std::unique_ptr<PageBackend> wrapped, Faults faults)
      : wrapped_(std::move(wrapped)), faults_(faults) {}

  size_t page_size() const override { return wrapped_->page_size(); }
  Status Read(PageId id, uint8_t* out) const override;
  Status Write(PageId id, const uint8_t* data) override;
  Status Free(PageId id) override;
  bool IsAllocated(PageId id) const override {
    return wrapped_->IsAllocated(id);
  }
  size_t SlotCount() const override { return wrapped_->SlotCount(); }
  size_t LivePageCount() const override { return wrapped_->LivePageCount(); }
  Status Sync() override;
  std::string Name() const override {
    return "fault(" + wrapped_->Name() + ")";
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }
  // Mutating calls observed so far (Write + Sync + Free) — the counter
  // `crash_at_write` indexes into.
  uint64_t mutations() const { return mutations_; }
  // True once the crash trigger fired; everything fails from then on.
  bool crashed() const { return crashed_; }

  // The wrapped backend, e.g. to Abandon() a FilePageBackend after a
  // simulated crash so its destructor does not quietly sync the file the
  // "dead process" never wrote.
  PageBackend* wrapped() { return wrapped_.get(); }

 private:
  // Advances the mutation counter and fires/latches the crash trigger.
  // Returns non-OK when the backend is (now) dead.
  Status CheckMutation(const char* op, PageId id);

  std::unique_ptr<PageBackend> wrapped_;
  mutable Faults faults_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  uint64_t mutations_ = 0;
  mutable bool crashed_ = false;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_FAULT_BACKEND_H_
