#ifndef STINDEX_STORAGE_FAULT_BACKEND_H_
#define STINDEX_STORAGE_FAULT_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/page_backend.h"
#include "util/status.h"

namespace stindex {

// Test-only PageBackend wrapper that injects deterministic faults into a
// wrapped backend (fail the Nth read/write, deliver a short read, flip a
// bit in delivered data). Used by tests/storage_fault_test.cc to prove
// every I/O error surfaces as a Status or CHECK naming the page id —
// never as silent corruption.
//
// Counters are 1-based: `fail_read_at = 3` makes the third Read fail.
// 0 disables that fault. Faults fire once and then disarm, so a test can
// also verify recovery behaviour after the faulty call.
class FaultInjectingBackend : public PageBackend {
 public:
  struct Faults {
    // Fail the Nth Read with IoError (1-based; 0 = never).
    uint64_t fail_read_at = 0;
    // Fail the Nth Write with IoError.
    uint64_t fail_write_at = 0;
    // On the Nth Read, deliver only the first half of the page
    // (simulates a short read of a truncated file) and report IoError.
    uint64_t short_read_at = 0;
    // On the Nth Read, flip one bit in the delivered page but report
    // success — the checksum layer must catch it.
    uint64_t corrupt_read_at = 0;
    // Which bit to flip (byte_index * 8 + bit_index into the page).
    uint64_t corrupt_bit = 0;
  };

  FaultInjectingBackend(std::unique_ptr<PageBackend> wrapped, Faults faults)
      : wrapped_(std::move(wrapped)), faults_(faults) {}

  size_t page_size() const override { return wrapped_->page_size(); }
  Status Read(PageId id, uint8_t* out) const override;
  Status Write(PageId id, const uint8_t* data) override;
  Status Free(PageId id) override { return wrapped_->Free(id); }
  bool IsAllocated(PageId id) const override {
    return wrapped_->IsAllocated(id);
  }
  size_t SlotCount() const override { return wrapped_->SlotCount(); }
  size_t LivePageCount() const override { return wrapped_->LivePageCount(); }
  Status Sync() override { return wrapped_->Sync(); }
  std::string Name() const override {
    return "fault(" + wrapped_->Name() + ")";
  }

  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

 private:
  std::unique_ptr<PageBackend> wrapped_;
  mutable Faults faults_;
  mutable uint64_t reads_ = 0;
  uint64_t writes_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_FAULT_BACKEND_H_
