#include "storage/buffer_pool.h"

namespace stindex {

BufferPool::BufferPool(const PageStore* store, size_t capacity)
    : store_(store), capacity_(capacity) {
  STINDEX_CHECK(store != nullptr);
  STINDEX_CHECK(capacity > 0);
}

const Page* BufferPool::Fetch(PageId id) {
  ++stats_.accesses;
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return store_->Get(id);
  }
  // Miss: one disk access; evict LRU page if full.
  ++stats_.misses;
  if (lru_.size() == capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  index_[id] = lru_.begin();
  return store_->Get(id);
}

void BufferPool::ResetCache() {
  lru_.clear();
  index_.clear();
}

}  // namespace stindex
