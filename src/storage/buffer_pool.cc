#include "storage/buffer_pool.h"

#include <utility>

#include "util/metrics.h"

namespace stindex {

BufferPool::BufferPool(const PageStore* store, size_t capacity,
                       std::string metric_scope)
    : store_(store),
      capacity_(capacity),
      metric_scope_(std::move(metric_scope)) {
  STINDEX_CHECK(store != nullptr);
  STINDEX_CHECK(capacity > 0);
}

BufferPool::~BufferPool() {
  if (metric_scope_.empty() || lifetime_stats_.accesses == 0) return;
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetCounter("bufferpool." + metric_scope_ + ".accesses")
      ->Add(lifetime_stats_.accesses);
  registry.GetCounter("bufferpool." + metric_scope_ + ".misses")
      ->Add(lifetime_stats_.misses);
}

const Page* BufferPool::Fetch(PageId id) {
  STINDEX_CHECK_MSG(store_->IsLive(id),
                    "BufferPool::Fetch of a freed or out-of-range PageId");
  ++stats_.accesses;
  ++lifetime_stats_.accesses;
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Hit: move to MRU position.
    lru_.splice(lru_.begin(), lru_, it->second);
    return store_->Get(id);
  }
  // Miss: one disk access; evict LRU page if full.
  ++stats_.misses;
  ++lifetime_stats_.misses;
  if (lru_.size() == capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(id);
  index_[id] = lru_.begin();
  return store_->Get(id);
}

void BufferPool::ResetCache() {
  lru_.clear();
  index_.clear();
}

}  // namespace stindex
