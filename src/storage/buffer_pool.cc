#include "storage/buffer_pool.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {

PageRef& PageRef::operator=(PageRef&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    page_ = other.page_;
    other.pool_ = nullptr;
    other.id_ = kInvalidPage;
    other.page_ = nullptr;
  }
  return *this;
}

PageRef::~PageRef() { Release(); }

void PageRef::Release() {
  if (pool_ != nullptr) {
    pool_->Unpin(id_);
  }
  pool_ = nullptr;
  id_ = kInvalidPage;
  page_ = nullptr;
}

BufferPool::BufferPool(const PageStore* store, size_t capacity,
                       std::string metric_scope)
    : store_(store),
      capacity_(capacity),
      metric_scope_(std::move(metric_scope)) {
  STINDEX_CHECK(store != nullptr);
  STINDEX_CHECK(capacity > 0);
}

BufferPool::BufferPool(PageBackend* backend, const PageCodec* codec,
                       size_t capacity, std::string metric_scope)
    : backend_(backend),
      codec_(codec),
      capacity_(capacity),
      metric_scope_(std::move(metric_scope)) {
  STINDEX_CHECK(backend != nullptr);
  STINDEX_CHECK(codec != nullptr);
  STINDEX_CHECK(capacity > 0);
}

BufferPool::~BufferPool() {
  if (dirty_count_ > 0) {
    // Flush-on-destruction: a dirty frame must never be dropped silently,
    // and a destructor has no Status channel, so a failure here is fatal.
    const Status status = FlushAll();
    STINDEX_CHECK_MSG(status.ok(), status.ToString().c_str());
  }
  PublishStats();
}

void BufferPool::PublishStats() {
  if (metric_scope_.empty()) return;
  MetricRegistry& registry = MetricRegistry::Global();
  const uint64_t accesses = lifetime_stats_.accesses - published_stats_.accesses;
  const uint64_t misses = lifetime_stats_.misses - published_stats_.misses;
  const uint64_t evictions = lifetime_evictions_ - published_evictions_;
  if (accesses > 0) {
    registry.GetCounter("bufferpool." + metric_scope_ + ".accesses")
        ->Add(accesses);
    registry.GetCounter("bufferpool." + metric_scope_ + ".misses")->Add(misses);
  }
  if (evictions > 0) {
    registry.GetCounter("bufferpool." + metric_scope_ + ".evictions")
        ->Add(evictions);
  }
  published_stats_ = lifetime_stats_;
  published_evictions_ = lifetime_evictions_;
}

BufferPool::Frame* BufferPool::FindResident(PageId id) {
  auto it = frames_.find(id);
  return it == frames_.end() ? nullptr : &it->second;
}

BufferPool::Frame& BufferPool::InsertFrame(PageId id, Frame frame) {
  auto [it, inserted] = frames_.emplace(id, std::move(frame));
  STINDEX_CHECK(inserted);
  lru_.push_front(id);
  it->second.lru = lru_.begin();
  return it->second;
}

Status BufferPool::WriteBack(PageId id, Frame& frame) {
  uint8_t buffer[kPageSize];
  codec_->Encode(*frame.page, buffer);
  Status status = backend_->Write(id, buffer);
  if (!status.ok()) {
    return Status(status.code(), "write-back of page " + std::to_string(id) +
                                     " failed: " + status.message());
  }
  frame.dirty = false;
  --dirty_count_;
  return Status::OK();
}

Status BufferPool::EvictIfFull() {
  if (frames_.size() < capacity_) return Status::OK();
  // Victim = least-recently-used unpinned frame. With nothing pinned this
  // is exactly lru_.back(), matching the historical policy (and the
  // store-mode miss counts the differential tests compare against).
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const PageId victim = *it;
    Frame& frame = frames_.at(victim);
    if (frame.pins > 0) continue;
    TraceSpan span("storage", "evict");
    span.Arg("page", static_cast<int64_t>(victim))
        .Arg("dirty", static_cast<int64_t>(frame.dirty ? 1 : 0));
    if (frame.dirty) {
      Status status = WriteBack(victim, frame);
      if (!status.ok()) return status;
    }
    lru_.erase(frame.lru);
    frames_.erase(victim);
    ++lifetime_evictions_;
    return Status::OK();
  }
  STINDEX_CHECK_MSG(false,
                    "BufferPool: every frame is pinned, cannot evict");
  return Status::OK();  // unreachable
}

BufferPool::Frame BufferPool::LoadFrame(PageId id) {
  Frame frame;
  if (store_ != nullptr) {
    frame.page = store_->Get(id);
    return frame;
  }
  // Zero-copy path: an immutable backend (the mmap snapshot) lends its
  // pages, so decode straight from the mapping instead of bouncing the
  // bytes through a stack buffer.
  const uint8_t* borrowed = backend_->BorrowPage(id);
  uint8_t buffer[kPageSize];
  if (borrowed == nullptr) {
    Status status = backend_->Read(id, buffer);
    if (!status.ok()) {
      const std::string msg = "BufferPool: read of page " + std::to_string(id) +
                              " failed: " + status.ToString();
      STINDEX_CHECK_MSG(false, msg.c_str());
    }
  }
  Result<std::unique_ptr<Page>> decoded =
      codec_->Decode(borrowed != nullptr ? borrowed : buffer, id);
  if (!decoded.ok()) {
    const std::string msg = "BufferPool: decode of page " +
                            std::to_string(id) +
                            " failed: " + decoded.status().ToString();
    STINDEX_CHECK_MSG(false, msg.c_str());
  }
  frame.owned = std::move(decoded).value();
  frame.page = frame.owned.get();
  return frame;
}

const Page* BufferPool::Fetch(PageId id) {
  const bool live = store_ != nullptr ? store_->IsLive(id)
                                      : backend_->IsAllocated(id);
  if (!live) {
    const std::string msg =
        "BufferPool::Fetch of a freed or out-of-range PageId (page " +
        std::to_string(id) + ")";
    STINDEX_CHECK_MSG(false, msg.c_str());
  }
  ++stats_.accesses;
  ++lifetime_stats_.accesses;
  if (Frame* frame = FindResident(id)) {
    // Hit: move to MRU position. In store mode re-resolve the pointer so
    // a slot freed and reused between queries is never served stale.
    lru_.splice(lru_.begin(), lru_, frame->lru);
    frame->lru = lru_.begin();
    if (store_ != nullptr) frame->page = store_->Get(id);
    return frame->page;
  }
  // Miss: one disk access (a real one in backend mode).
  ++stats_.misses;
  ++lifetime_stats_.misses;
  TraceSpan span("storage", "fetch_miss");
  span.Arg("page", static_cast<int64_t>(id));
  Status status = EvictIfFull();
  if (!status.ok()) {
    // Fetch has no Status channel; an eviction write-back failure while
    // reading is fatal rather than silently dropped.
    STINDEX_CHECK_MSG(false, status.ToString().c_str());
  }
  Frame& frame = InsertFrame(id, LoadFrame(id));
  return frame.page;
}

PageRef BufferPool::FetchPinned(PageId id) {
  const Page* page = Fetch(id);
  Frame* frame = FindResident(id);
  STINDEX_CHECK(frame != nullptr);
  if (frame->pins == 0) ++pinned_count_;
  ++frame->pins;
  return MakeRef(id, page);
}

void BufferPool::Unpin(PageId id) {
  Frame* frame = FindResident(id);
  STINDEX_CHECK_MSG(frame != nullptr, "Unpin of a non-resident page");
  STINDEX_CHECK_MSG(frame->pins > 0, "Unpin of an unpinned page");
  --frame->pins;
  if (frame->pins == 0) --pinned_count_;
}

Status BufferPool::Put(PageId id, std::unique_ptr<Page> page) {
  STINDEX_CHECK_MSG(backend_ != nullptr,
                    "BufferPool::Put requires backend mode");
  STINDEX_CHECK(page != nullptr);
  STINDEX_CHECK(id != kInvalidPage);
  if (Frame* frame = FindResident(id)) {
    frame->owned = std::move(page);
    frame->page = frame->owned.get();
    if (!frame->dirty) {
      frame->dirty = true;
      ++dirty_count_;
    }
    lru_.splice(lru_.begin(), lru_, frame->lru);
    frame->lru = lru_.begin();
    return Status::OK();
  }
  Status status = EvictIfFull();
  if (!status.ok()) return status;
  Frame frame;
  frame.owned = std::move(page);
  frame.page = frame.owned.get();
  frame.dirty = true;
  ++dirty_count_;
  InsertFrame(id, std::move(frame));
  return Status::OK();
}

Status BufferPool::FlushAll() {
  if (dirty_count_ == 0) return Status::OK();
  STINDEX_CHECK(backend_ != nullptr);
  TraceSpan span("storage", "flush_all");
  span.Arg("dirty", static_cast<int64_t>(dirty_count_));
  // Ascending page id, so flush I/O order is deterministic.
  std::vector<PageId> dirty;
  dirty.reserve(dirty_count_);
  for (const auto& [id, frame] : frames_) {
    if (frame.dirty) dirty.push_back(id);
  }
  std::sort(dirty.begin(), dirty.end());
  for (const PageId id : dirty) {
    Status status = WriteBack(id, frames_.at(id));
    if (!status.ok()) return status;
  }
  return Status::OK();
}

void BufferPool::DiscardAll() {
  STINDEX_CHECK_MSG(pinned_count_ == 0,
                    "BufferPool::DiscardAll with pinned pages");
  dirty_count_ = 0;
  lru_.clear();
  frames_.clear();
}

void BufferPool::ResetCache() {
  STINDEX_CHECK_MSG(pinned_count_ == 0,
                    "BufferPool::ResetCache with pinned pages");
  STINDEX_CHECK_MSG(dirty_count_ == 0,
                    "BufferPool::ResetCache with dirty pages; FlushAll first");
  lru_.clear();
  frames_.clear();
}

}  // namespace stindex
