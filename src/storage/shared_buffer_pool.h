#ifndef STINDEX_STORAGE_SHARED_BUFFER_POOL_H_
#define STINDEX_STORAGE_SHARED_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace stindex {

struct SharedBufferPoolOptions {
  // Total page frames across all shards (> 0). This is what
  // --buffer-pages means: the whole process shares this many frames,
  // regardless of how many threads query through the pool.
  size_t capacity = 64;
  // Number of shards (a power of two); 0 picks the largest power of two
  // <= min(16, capacity).
  size_t shards = 0;
  // When false, a Pin/Put that needs a frame in a shard whose frames are
  // all pinned fails with FailedPrecondition (strictly bounded memory).
  // When true the shard grows past its slice transiently — at most one
  // extra frame per concurrent pin — and trims back to capacity as soon
  // as unpinned victims exist. Query drivers enable this: page ids hash
  // to shards, so short pin pile-ups on one shard are expected and must
  // not fail a query.
  bool pin_overflow = false;
  // When non-empty, lifetime totals are published to the MetricRegistry
  // counters bufferpool.<scope>.{accesses,misses,evictions} by
  // PublishStats() and on destruction.
  std::string metric_scope;
};

// A thread-safe sharded LRU page cache shared by every query worker.
//
// The per-worker private BufferPools this replaces made total resident
// capacity scale with the thread count — a measurement bug for the
// paper's buffer-miss metric. Here the capacity is split across shards
// (shard = hash of the PageId), each shard has its own mutex, LRU list
// and frame table, and eviction skips pinned frames exactly like
// BufferPool, so `capacity` bounds the whole process no matter how many
// threads pin concurrently.
//
// Workers do not fetch through the pool directly: each opens a Session
// (one per worker, single-threaded like BufferPool), which implements
// the PageCache interface for the tree query paths and keeps the
// deterministic per-worker accounting the paper's measurement protocol
// needs. Pin/Unpin/Put/FlushAll are safe to call from any thread.
class SharedBufferPool {
 public:
  class Session;

  // Store mode: fronts a read-only PageStore (the simulated disk).
  SharedBufferPool(const PageStore* store,
                   const SharedBufferPoolOptions& options);

  // Backend mode: fronts a PageBackend through a PageCodec; a miss is an
  // actual backend read + decode. `backend` and `codec` are borrowed and
  // must outlive the pool.
  SharedBufferPool(PageBackend* backend, const PageCodec* codec,
                   const SharedBufferPoolOptions& options);

  // Flushes dirty frames (a failure is a checked error — destructors
  // cannot report Status) and publishes the remaining stats.
  ~SharedBufferPool();

  SharedBufferPool(const SharedBufferPool&) = delete;
  SharedBufferPool& operator=(const SharedBufferPool&) = delete;

  // Pins `id`, loading it on a miss (a real backend read in backend
  // mode); `*missed` reports whether this call loaded the page. The
  // returned page stays resident until the matching Unpin. Fails with
  // FailedPrecondition iff the target shard is full of pinned frames and
  // pin_overflow is off; pinning a freed/undecodable page is a checked
  // error, as in BufferPool. Prefer a Session over calling this
  // directly.
  Result<const Page*> Pin(PageId id, bool* missed);

  // Drops one pin taken by Pin. Unpinning a page that is not resident or
  // not pinned is a checked error.
  void Unpin(PageId id);

  // Backend mode only: inserts `page` as a dirty frame for `id`,
  // evicting (with write-back) if needed. Replacing a currently pinned
  // frame fails with FailedPrecondition — a pinner may be reading it.
  Status Put(PageId id, std::unique_ptr<Page> page);

  // Encodes and writes every dirty frame, shard by shard in index order
  // and ascending page id within each shard, leaving them cached and
  // clean. No-op in store mode.
  Status FlushAll();

  // Publishes the lifetime-total deltas accumulated since the last
  // publish to the bufferpool.<scope>.* counters (no-op without a metric
  // scope). Callable any time from any thread — e.g. a long-running
  // server's stats endpoint — without double-counting; destruction
  // publishes whatever remains.
  void PublishStats();

  // Lifetime totals summed across shards. Real traffic: in a warm run
  // misses here are (far) fewer than the per-worker protocol misses the
  // Sessions report, because residency is shared.
  IoStats AggregateStats() const;
  uint64_t Evictions() const;

  size_t capacity() const { return capacity_; }
  size_t shard_count() const { return shards_.size(); }
  size_t CachedPages() const;
  size_t PinnedPages() const;
  size_t DirtyPages() const;
  bool backend_mode() const { return backend_ != nullptr; }

  // Point-in-time occupancy of one shard (telemetry: the /statusz pool
  // section). Pinned/dirty count frames, all <= cached <= capacity
  // (cached may transiently exceed capacity under pin_overflow).
  struct ShardOccupancy {
    size_t capacity = 0;
    size_t cached = 0;
    size_t pinned = 0;
    size_t dirty = 0;
  };
  std::vector<ShardOccupancy> ShardOccupancies() const;

 private:
  struct Frame {
    const Page* page = nullptr;
    std::unique_ptr<Page> owned;  // backend mode: decoded node
    uint32_t pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru;
  };

  // One lock domain. Shards never interact, so there is no lock order.
  struct Shard {
    mutable std::mutex mutex;
    size_t capacity = 0;  // this shard's slice of the total
    IoStats stats;        // lifetime, guarded by mutex
    uint64_t evictions = 0;
    size_t pinned = 0;  // frames with pins > 0
    size_t dirty = 0;
    std::list<PageId> lru;  // MRU at front
    std::unordered_map<PageId, Frame> frames;
  };

  void InitShards(const SharedBufferPoolOptions& options);
  size_t ShardOf(PageId id) const;
  // Evicts until the shard is under its slice or no unpinned victim
  // remains (then: OK under pin_overflow, FailedPrecondition otherwise).
  // Caller holds the shard mutex.
  Status MakeRoom(Shard& shard);
  Status WriteBack(PageId id, Frame& frame, Shard& shard);
  // Drops clean unpinned frames until the shard is back under its slice
  // after transient pin_overflow growth. Dirty overage is left for the
  // next MakeRoom/FlushAll — Unpin has no way to report a write-back
  // failure. Caller holds the shard mutex.
  void TrimOverflowLocked(Shard& shard);

  const PageStore* store_ = nullptr;
  PageBackend* backend_ = nullptr;
  const PageCodec* codec_ = nullptr;
  size_t capacity_ = 0;
  bool pin_overflow_ = false;
  std::string metric_scope_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::mutex publish_mutex_;
  IoStats published_stats_;
  uint64_t published_evictions_ = 0;
};

// A per-worker view of a SharedBufferPool, implementing PageCache for
// the tree query paths. Page bytes always come from the shared pool
// through short-lived pins; what varies is the accounting stats()
// reports:
//
//  * Protocol mode (protocol_pages > 0): simulates the paper's private
//    LRU of `protocol_pages` frames over this session's own access
//    stream (ids only, nothing stored). Per-query miss counts are then
//    identical to a private BufferPool of that capacity — at any thread
//    count and regardless of what other sessions do — while the real
//    reads underneath are deduplicated pool-wide. ResetCache() restarts
//    the simulated LRU before each measured query, per the paper's
//    protocol.
//
//  * Pass-through mode (protocol_pages == 0): every access reports the
//    shared pool's real hit/miss outcome — what a warm server run
//    observes.
//
// A Session is single-threaded (one per worker); the pool it views is
// shared.
class SharedBufferPool::Session : public PageCache {
 public:
  explicit Session(SharedBufferPool* pool, size_t protocol_pages = 0);

  PageRef FetchPinned(PageId id) override;
  const IoStats& stats() const override { return stats_; }
  const IoStats& lifetime_stats() const { return lifetime_stats_; }

  // Restarts the simulated protocol LRU (no effect on the shared pool's
  // residency). No-op in pass-through mode.
  void ResetCache();
  void ResetStats() { stats_.Reset(); }
  size_t protocol_pages() const { return protocol_pages_; }

 protected:
  void Unpin(PageId id) override;

 private:
  SharedBufferPool* pool_;
  size_t protocol_pages_;
  // The simulated LRU: ids only, MRU at front.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> resident_;
  IoStats stats_;
  IoStats lifetime_stats_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_SHARED_BUFFER_POOL_H_
