#ifndef STINDEX_STORAGE_PAGE_STORE_H_
#define STINDEX_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/check.h"

namespace stindex {

// Identifier of a disk page. Every index node occupies exactly one page.
using PageId = uint32_t;

inline constexpr PageId kInvalidPage = UINT32_MAX;

// Base class for anything stored as a disk page (index nodes of the
// R*-tree and the PPR-tree).
class Page {
 public:
  virtual ~Page() = default;
};

// A simulated disk: an append-mostly collection of pages addressed by
// PageId. The store itself performs no I/O accounting — query-time page
// accesses go through a BufferPool, which models the cache the paper uses
// (10-page LRU) and counts misses as disk accesses.
class PageStore {
 public:
  PageStore() = default;

  PageStore(const PageStore&) = delete;
  PageStore& operator=(const PageStore&) = delete;

  // Takes ownership of `page` and returns its id. Freed slots are reused
  // lowest-id-first before the backing vector grows, so long-running
  // insert/delete workloads keep a bounded id space (and a bounded file,
  // once pages are persisted through a backend).
  PageId Allocate(std::unique_ptr<Page> page);

  // Direct access without cache accounting (used while building indexes;
  // the paper measures query I/O only).
  Page* Get(PageId id);
  const Page* Get(PageId id) const;

  // Releases the page; its slot becomes available for reuse.
  void Free(PageId id);

  // Rewrites the id space through a bijection: live page `old_id` moves to
  // `remap[old_id]`. The remap must cover every live page exactly once with
  // targets forming the dense range [0, PageCount()); freed slots vanish
  // (the store compacts, free list cleared). Used when packing a frozen
  // tree into a snapshot whose slots are dense by construction.
  void Reindex(const std::vector<PageId>& remap);

  // Number of live pages — the index's disk footprint in pages.
  size_t PageCount() const { return live_count_; }

  // Highest number of simultaneously live pages ever observed.
  size_t PeakPageCount() const { return peak_live_count_; }

  // Size of the id space (live + free slots) — the footprint a backend
  // file needs. Stays flat when freed slots are recycled.
  size_t AllocatedCount() const { return pages_.size(); }

  // Total Allocate() calls over the store's lifetime (reuse included).
  size_t TotalAllocations() const { return total_allocations_; }

  bool IsLive(PageId id) const {
    return id < pages_.size() && pages_[id] != nullptr;
  }

  // Names the index this store backs ("ppr", "rstar", "hr"). When set,
  // the destructor publishes `pagestore.<scope>.live_pages` and
  // `pagestore.<scope>.peak_pages` gauges (SetMax — order-independent)
  // and adds TotalAllocations() to `pagestore.<scope>.allocations`.
  void SetMetricScope(std::string scope) { metric_scope_ = std::move(scope); }

  ~PageStore();

 private:
  std::vector<std::unique_ptr<Page>> pages_;
  // Min-heap of freed slot ids; Allocate pops the lowest so id reuse is
  // deterministic for a given operation sequence.
  std::vector<PageId> free_slots_;
  size_t live_count_ = 0;
  size_t peak_live_count_ = 0;
  size_t total_allocations_ = 0;
  std::string metric_scope_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_PAGE_STORE_H_
