#include "storage/file_backend.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "storage/page_codec.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Full-buffer pread/pwrite: POSIX may return short counts, loop until the
// whole page moved or the call fails. A short read at EOF is reported as
// such (truncated file), not padded with zeros.
Status PReadFull(int fd, uint8_t* buf, size_t size, off_t offset,
                 const std::string& what) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, buf + done, size - done,
                              offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno(what));
    }
    if (n == 0) {
      return Status::IoError(what + ": short read (" + std::to_string(done) +
                             " of " + std::to_string(size) +
                             " bytes; truncated file?)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const uint8_t* buf, size_t size, off_t offset,
                  const std::string& what) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd, buf + done, size - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno(what));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

struct FileMetrics {
  Counter* reads;
  Counter* writes;
  Counter* bytes_read;
  Counter* bytes_written;
};

const FileMetrics& Metrics() {
  static const FileMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return FileMetrics{r.GetCounter("backend.file.reads"),
                       r.GetCounter("backend.file.writes"),
                       r.GetCounter("backend.file.bytes_read"),
                       r.GetCounter("backend.file.bytes_written")};
  }();
  return m;
}

}  // namespace

FilePageBackend::FilePageBackend(std::string path, int fd, size_t bitmap_pages)
    : path_(std::move(path)),
      fd_(fd),
      bitmap_pages_(bitmap_pages),
      bitmap_(bitmap_pages * kPageSize, 0) {}

Result<std::unique_ptr<FilePageBackend>> FilePageBackend::Create(
    const std::string& path) {
  return Create(path, Options());
}

Result<std::unique_ptr<FilePageBackend>> FilePageBackend::Create(
    const std::string& path, const Options& options) {
  if (options.bitmap_pages == 0) {
    return Status::InvalidArgument("bitmap_pages must be > 0");
  }
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("open(" + path + ")"));
  }
  std::unique_ptr<FilePageBackend> backend(
      new FilePageBackend(path, fd, options.bitmap_pages));
  backend->meta_dirty_ = true;
  Status status = backend->WriteMetadata();
  if (!status.ok()) return status;
  return backend;
}

Result<std::unique_ptr<FilePageBackend>> FilePageBackend::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) {
    return Status::IoError(Errno("open(" + path + ")"));
  }
  uint8_t header[kPageSize];
  Status status =
      PReadFull(fd, header, kPageSize, 0, "read header of " + path);
  if (!status.ok()) {
    ::close(fd);
    if (status.code() == StatusCode::kIoError &&
        status.message().find("short read") != std::string::npos) {
      // A file too small for even the header page is malformed input,
      // not an environment failure.
      return Status::InvalidArgument(path + ": truncated page file (" +
                                     status.message() + ")");
    }
    return status;
  }
  // Check the magic before the checksum so "this is not a page file at
  // all" beats "this page file is corrupt".
  uint64_t magic = 0;
  std::memcpy(&magic, header + kPageEnvelopeBytes, sizeof(magic));
  if (magic != kFilePageMagic) {
    ::close(fd);
    return Status::InvalidArgument(path + ": not a stindex page file (bad magic)");
  }
  Result<PageReader> payload =
      OpenPagePayload(header, PageKind::kFileHeader, /*id=*/0);
  if (!payload.ok()) {
    ::close(fd);
    return Status::InvalidArgument(path + ": corrupt header (" +
                                   payload.status().message() + ")");
  }
  PageReader reader = payload.value();
  uint32_t format_version = 0;
  uint64_t page_size = 0;
  uint64_t bitmap_pages = 0;
  uint64_t slot_count = 0;
  uint64_t live_count = 0;
  bool parsed = reader.Read(&magic) && reader.Read(&format_version) &&
                reader.Read(&page_size) && reader.Read(&bitmap_pages) &&
                reader.Read(&slot_count) && reader.Read(&live_count);
  if (!parsed) {
    ::close(fd);
    return Status::InvalidArgument(path + ": corrupt header (short payload)");
  }
  if (format_version != kFileFormatVersion) {
    ::close(fd);
    return Status::InvalidArgument(
        path + ": unsupported format version " +
        std::to_string(format_version) + " (supported: " +
        std::to_string(kFileFormatVersion) + ")");
  }
  if (page_size != kPageSize) {
    ::close(fd);
    return Status::InvalidArgument(
        path + ": page size " + std::to_string(page_size) +
        " does not match compiled kPageSize " + std::to_string(kPageSize));
  }
  if (bitmap_pages == 0 || slot_count > bitmap_pages * kPageSize * 8) {
    ::close(fd);
    return Status::InvalidArgument(path + ": corrupt header (bitmap bounds)");
  }
  std::unique_ptr<FilePageBackend> backend(
      new FilePageBackend(path, fd, static_cast<size_t>(bitmap_pages)));
  backend->slot_count_ = static_cast<size_t>(slot_count);
  backend->live_count_ = static_cast<size_t>(live_count);
  status = PReadFull(fd, backend->bitmap_.data(), backend->bitmap_.size(),
                     static_cast<off_t>(kPageSize),
                     "read bitmap of " + path);
  if (!status.ok()) {
    if (status.message().find("short read") != std::string::npos) {
      return Status::InvalidArgument(path + ": truncated page file (" +
                                     status.message() + ")");
    }
    return status;
  }
  // The file must be large enough to hold every allocated data page.
  const off_t end = ::lseek(fd, 0, SEEK_END);
  if (end < 0) return Status::IoError(Errno("lseek(" + path + ")"));
  const off_t needed =
      static_cast<off_t>((1 + bitmap_pages + slot_count) * kPageSize);
  if (end < needed) {
    return Status::InvalidArgument(
        path + ": truncated page file (" + std::to_string(end) +
        " bytes, header implies at least " + std::to_string(needed) + ")");
  }
  return backend;
}

FilePageBackend::~FilePageBackend() {
  if (fd_ >= 0) {
    // The destructor is a sync backstop, not the durability contract:
    // callers that need to observe sync failures call Sync() themselves
    // (recovery depends on seeing kIoError, so this must never CHECK).
    const Status status = Sync();
    if (!status.ok()) {
      std::fprintf(stderr, "FilePageBackend(%s): close-time sync failed: %s\n",
                   path_.c_str(), status.ToString().c_str());
    }
    ::close(fd_);
  }
}

void FilePageBackend::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  meta_dirty_ = false;
}

Status FilePageBackend::Read(PageId id, uint8_t* out) const {
  if (id >= slot_count_ || !BitmapGet(id)) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": read of unallocated page");
  }
  TraceSpan span("storage", "pread");
  span.Arg("page", static_cast<int64_t>(id));
  Status status = PReadFull(fd_, out, kPageSize, DataOffset(id),
                            "read page " + std::to_string(id) + " of " + path_);
  if (!status.ok()) return status;
  const FileMetrics& m = Metrics();
  m.reads->Add(1);
  m.bytes_read->Add(kPageSize);
  return Status::OK();
}

Status FilePageBackend::Write(PageId id, const uint8_t* data) {
  if (id == kInvalidPage || id >= MaxSlots()) {
    return Status::IoError("page " + std::to_string(id) +
                           ": beyond bitmap capacity of " +
                           std::to_string(MaxSlots()) +
                           " slots (recreate with more bitmap_pages)");
  }
  TraceSpan span("storage", "pwrite");
  span.Arg("page", static_cast<int64_t>(id));
  Status status = PWriteFull(fd_, data, kPageSize, DataOffset(id),
                             "write page " + std::to_string(id) + " of " +
                                 path_);
  if (!status.ok()) return status;
  if (!BitmapGet(id)) {
    BitmapSet(id, true);
    ++live_count_;
  }
  if (id + 1 > slot_count_) slot_count_ = id + 1;
  meta_dirty_ = true;
  const FileMetrics& m = Metrics();
  m.writes->Add(1);
  m.bytes_written->Add(kPageSize);
  return Status::OK();
}

Status FilePageBackend::Free(PageId id) {
  if (id >= slot_count_ || !BitmapGet(id)) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": free of unallocated page");
  }
  BitmapSet(id, false);
  --live_count_;
  meta_dirty_ = true;
  return Status::OK();
}

bool FilePageBackend::IsAllocated(PageId id) const {
  return id < slot_count_ && BitmapGet(id);
}

Status FilePageBackend::Sync() {
  Status status = WriteMetadata();
  if (!status.ok()) return status;
  if (::fsync(fd_) < 0) {
    return Status::IoError(Errno("fsync(" + path_ + ")"));
  }
  return Status::OK();
}

Status FilePageBackend::WriteMetadata() {
  if (!meta_dirty_) return Status::OK();
  uint8_t header[kPageSize];
  PageWriter writer = PayloadWriter(header);
  writer.Write(kFilePageMagic);
  writer.Write(kFileFormatVersion);
  writer.Write(static_cast<uint64_t>(kPageSize));
  writer.Write(static_cast<uint64_t>(bitmap_pages_));
  writer.Write(static_cast<uint64_t>(slot_count_));
  writer.Write(static_cast<uint64_t>(live_count_));
  SealPage(header, PageKind::kFileHeader);
  Status status =
      PWriteFull(fd_, header, kPageSize, 0, "write header of " + path_);
  if (!status.ok()) return status;
  status = PWriteFull(fd_, bitmap_.data(), bitmap_.size(),
                      static_cast<off_t>(kPageSize),
                      "write bitmap of " + path_);
  if (!status.ok()) return status;
  meta_dirty_ = false;
  return Status::OK();
}

}  // namespace stindex
