#ifndef STINDEX_STORAGE_BUFFER_POOL_H_
#define STINDEX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

#include "storage/page_store.h"

namespace stindex {

// Counters for simulated disk traffic. "Disk accesses" in all experiments
// are buffer-pool misses, exactly the metric the paper plots.
struct IoStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  uint64_t Hits() const { return accesses - misses; }

  void Reset() { *this = IoStats(); }
};

// An LRU page cache in front of a PageStore. The paper uses a 10-page LRU
// buffer and resets it before every query; ResetCache() supports that
// protocol while keeping cumulative statistics if desired.
//
// A BufferPool only reads from the store, so multiple pools over the same
// store may be used concurrently (one per querying thread); a single pool
// is not itself thread-safe.
class BufferPool {
 public:
  // `capacity` is the number of pages held in the cache (> 0).
  // `metric_scope` names the index this pool serves ("ppr", "rstar",
  // "hr"); when non-empty the pool's lifetime totals are published to the
  // global MetricRegistry counters `bufferpool.<scope>.accesses` and
  // `bufferpool.<scope>.misses` on destruction. Counter sums are
  // order-independent, so per-worker pools keep instrumented runs
  // deterministic at any thread count.
  BufferPool(const PageStore* store, size_t capacity,
             std::string metric_scope = std::string());
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads a page through the cache; a miss counts as one disk access.
  // The page must be live: fetching a freed or never-allocated PageId is
  // a checked programming error (a crisp diagnostic, never UB) — an
  // index handing out a dangling page id is structurally corrupt.
  const Page* Fetch(PageId id);

  // Drops all cached pages (as before each measured query).
  void ResetCache();

  // Zeroes the per-query counters (lifetime totals keep accumulating).
  void ResetStats() { stats_.Reset(); }

  const IoStats& stats() const { return stats_; }
  // Totals since construction; unaffected by ResetStats/ResetCache.
  const IoStats& lifetime_stats() const { return lifetime_stats_; }
  size_t capacity() const { return capacity_; }
  size_t CachedPages() const { return lru_.size(); }

 private:
  const PageStore* store_;
  size_t capacity_;
  std::string metric_scope_;
  IoStats stats_;
  IoStats lifetime_stats_;
  // Most-recently-used at front. For the tiny capacities used here a
  // list+map LRU is ample.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_BUFFER_POOL_H_
