#ifndef STINDEX_STORAGE_BUFFER_POOL_H_
#define STINDEX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace stindex {

class PageRef;

// Counters for disk traffic. "Disk accesses" in all experiments are
// buffer-pool misses, exactly the metric the paper plots. In backend mode
// every miss is an actual backend read, not a simulated one.
struct IoStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  uint64_t Hits() const { return accesses - misses; }

  void Reset() { *this = IoStats(); }
};

// What the tree query paths read pages through: a pinning cache handing
// out PageRefs and counting accesses/misses. Implemented by BufferPool
// (one private cache per caller) and SharedBufferPool::Session (a
// per-worker view of one pool shared by all workers). Implementations
// are single-caller objects: one thread uses one PageCache at a time.
class PageCache {
 public:
  virtual ~PageCache() = default;

  // Fetch + pin: the page stays resident until the PageRef dies.
  virtual PageRef FetchPinned(PageId id) = 0;

  // Access/miss counters for this cache view (resettable by the
  // concrete type's ResetStats, where offered).
  virtual const IoStats& stats() const = 0;

 protected:
  friend class PageRef;

  // Drops one pin on `id` (called by PageRef on release/destruction).
  virtual void Unpin(PageId id) = 0;

  // PageRef's constructor is private; implementations mint refs here.
  PageRef MakeRef(PageId id, const Page* page);
};

// RAII pin on a buffered page. While a PageRef is live the frame cannot
// be evicted; destruction unpins. Move-only. A moved-from or released
// ref is fully reset (null page, kInvalidPage id) and Release() on it is
// a safe no-op.
class PageRef {
 public:
  PageRef() = default;
  PageRef(PageRef&& other) noexcept
      : pool_(other.pool_), id_(other.id_), page_(other.page_) {
    other.pool_ = nullptr;
    other.id_ = kInvalidPage;
    other.page_ = nullptr;
  }
  PageRef& operator=(PageRef&& other) noexcept;
  ~PageRef();

  PageRef(const PageRef&) = delete;
  PageRef& operator=(const PageRef&) = delete;

  const Page* get() const { return page_; }
  const Page* operator->() const { return page_; }
  PageId id() const { return id_; }
  explicit operator bool() const { return page_ != nullptr; }

  // Drops the pin early (idempotent, safe on moved-from refs).
  void Release();

 private:
  friend class PageCache;
  PageRef(PageCache* pool, PageId id, const Page* page)
      : pool_(pool), id_(id), page_(page) {}

  PageCache* pool_ = nullptr;
  PageId id_ = kInvalidPage;
  const Page* page_ = nullptr;
};

inline PageRef PageCache::MakeRef(PageId id, const Page* page) {
  return PageRef(this, id, page);
}

// A pinning write-back LRU page cache. Two modes:
//
//  * Store mode (the historical simulated disk): fronts a PageStore of
//    live node objects; a miss touches the store, nothing is serialized.
//  * Backend mode: fronts a PageBackend through a PageCodec. A miss is an
//    actual backend read + decode; Put() inserts dirty frames that are
//    encoded and written back when evicted, flushed, or at destruction.
//
// Eviction takes the least-recently-used *unpinned* frame; pinned frames
// (live PageRefs) are skipped. Both modes share one LRU/pin
// implementation, so miss counts are identical across modes for the same
// access sequence — the differential tests pin that property.
//
// The paper uses a 10-page LRU buffer reset before every query;
// ResetCache() supports that protocol while keeping cumulative
// statistics.
//
// A pool only reads from its store/backend during queries, so multiple
// pools over the same substrate may be used concurrently (one per
// querying thread); a single pool is not itself thread-safe. For one
// cache whose capacity is shared by all threads, see SharedBufferPool.
class BufferPool : public PageCache {
 public:
  // Store mode. `capacity` is the number of page frames (> 0).
  // `metric_scope` names the index this pool serves ("ppr", "rstar",
  // "hr"); when non-empty the pool's lifetime totals are published to the
  // global MetricRegistry counters `bufferpool.<scope>.accesses`,
  // `.misses` and `.evictions` — incrementally via PublishStats(), with
  // the remainder published on destruction. Counter sums are
  // order-independent, so per-worker pools keep instrumented runs
  // deterministic at any thread count.
  BufferPool(const PageStore* store, size_t capacity,
             std::string metric_scope = std::string());

  // Backend mode. `backend` and `codec` are borrowed and must outlive the
  // pool. Destruction flushes dirty frames (a flush failure there is a
  // checked error — destructors cannot report Status).
  BufferPool(PageBackend* backend, const PageCodec* codec, size_t capacity,
             std::string metric_scope = std::string());

  ~BufferPool() override;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads a page through the cache; a miss counts as one disk access (and
  // in backend mode performs one). The returned pointer is only valid
  // until the next pool operation that can evict — use FetchPinned when
  // the page must stay resident. Fetching a freed/never-written PageId,
  // or failing to read/decode it, is a checked error naming the page —
  // an index handing out a dangling page id is structurally corrupt.
  const Page* Fetch(PageId id);

  // Fetch + pin: the frame stays resident until the PageRef dies.
  PageRef FetchPinned(PageId id) override;

  // Backend mode only: inserts `page` as a dirty frame for `id`, evicting
  // (with write-back) if needed. An eviction write failure surfaces here.
  Status Put(PageId id, std::unique_ptr<Page> page);

  // Backend mode only: encodes and writes every dirty frame (ascending
  // page id, deterministic), leaving them cached and clean.
  Status FlushAll();

  // Drops all cached pages (as before each measured query). Requires no
  // pinned and no dirty frames.
  void ResetCache();

  // Drops every frame *including dirty ones* without writing them back.
  // For abandoning a failed shadow-write pass (a checkpoint that hit an
  // I/O error): the target slots are garbage anyway, and flushing on
  // destruction would turn the already-reported error into a crash.
  void DiscardAll();

  // Zeroes the per-query counters (lifetime totals keep accumulating).
  void ResetStats() { stats_.Reset(); }

  // Publishes the lifetime-total deltas accumulated since the last
  // publish to the bufferpool.<scope>.* counters (no-op without a
  // metric scope). The destructor publishes whatever remains, so calling
  // this any number of times — e.g. from a long-running server's stats
  // endpoint, which never reaches the destructor — never double-counts.
  void PublishStats();

  const IoStats& stats() const override { return stats_; }
  // Totals since construction; unaffected by ResetStats/ResetCache.
  const IoStats& lifetime_stats() const { return lifetime_stats_; }
  size_t capacity() const { return capacity_; }
  size_t CachedPages() const { return frames_.size(); }
  size_t PinnedPages() const { return pinned_count_; }
  size_t DirtyPages() const { return dirty_count_; }
  uint64_t Evictions() const { return lifetime_evictions_; }
  bool backend_mode() const { return backend_ != nullptr; }

 protected:
  void Unpin(PageId id) override;

 private:
  struct Frame {
    const Page* page = nullptr;      // what Fetch returns
    std::unique_ptr<Page> owned;     // backend mode: decoded node
    uint32_t pins = 0;
    bool dirty = false;
    std::list<PageId>::iterator lru;  // position in lru_
  };

  // Frees one frame slot if at capacity. Write-back failure of a dirty
  // victim is reported; all-frames-pinned is a checked error.
  Status EvictIfFull();
  Status WriteBack(PageId id, Frame& frame);
  // Loads the page on a miss (store read or backend read + decode).
  Frame LoadFrame(PageId id);
  Frame* FindResident(PageId id);
  Frame& InsertFrame(PageId id, Frame frame);

  const PageStore* store_ = nullptr;
  PageBackend* backend_ = nullptr;
  const PageCodec* codec_ = nullptr;
  size_t capacity_;
  std::string metric_scope_;
  IoStats stats_;
  IoStats lifetime_stats_;
  IoStats published_stats_;
  uint64_t lifetime_evictions_ = 0;
  uint64_t published_evictions_ = 0;
  size_t pinned_count_ = 0;  // frames with pins > 0
  size_t dirty_count_ = 0;
  // Most-recently-used at front; every resident frame is listed, pinned
  // frames are skipped during victim search.
  std::list<PageId> lru_;
  std::unordered_map<PageId, Frame> frames_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_BUFFER_POOL_H_
