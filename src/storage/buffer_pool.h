#ifndef STINDEX_STORAGE_BUFFER_POOL_H_
#define STINDEX_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>

#include "storage/page_store.h"

namespace stindex {

// Counters for simulated disk traffic. "Disk accesses" in all experiments
// are buffer-pool misses, exactly the metric the paper plots.
struct IoStats {
  uint64_t accesses = 0;
  uint64_t misses = 0;

  uint64_t Hits() const { return accesses - misses; }

  void Reset() { *this = IoStats(); }
};

// An LRU page cache in front of a PageStore. The paper uses a 10-page LRU
// buffer and resets it before every query; ResetCache() supports that
// protocol while keeping cumulative statistics if desired.
//
// A BufferPool only reads from the store, so multiple pools over the same
// store may be used concurrently (one per querying thread); a single pool
// is not itself thread-safe.
class BufferPool {
 public:
  // `capacity` is the number of pages held in the cache (> 0).
  BufferPool(const PageStore* store, size_t capacity);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  // Reads a page through the cache; a miss counts as one disk access.
  const Page* Fetch(PageId id);

  // Drops all cached pages (as before each measured query).
  void ResetCache();

  // Zeroes the counters.
  void ResetStats() { stats_.Reset(); }

  const IoStats& stats() const { return stats_; }
  size_t capacity() const { return capacity_; }
  size_t CachedPages() const { return lru_.size(); }

 private:
  const PageStore* store_;
  size_t capacity_;
  IoStats stats_;
  // Most-recently-used at front. For the tiny capacities used here a
  // list+map LRU is ample.
  std::list<PageId> lru_;
  std::unordered_map<PageId, std::list<PageId>::iterator> index_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_BUFFER_POOL_H_
