#include "storage/page_store.h"

#include <algorithm>
#include <functional>

#include "util/metrics.h"

namespace stindex {

PageStore::~PageStore() {
  if (metric_scope_.empty()) return;
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetGauge("pagestore." + metric_scope_ + ".live_pages")
      ->SetMax(live_count_);
  registry.GetGauge("pagestore." + metric_scope_ + ".peak_pages")
      ->SetMax(peak_live_count_);
  registry.GetCounter("pagestore." + metric_scope_ + ".allocations")
      ->Add(total_allocations_);
}

PageId PageStore::Allocate(std::unique_ptr<Page> page) {
  STINDEX_CHECK(page != nullptr);
  ++total_allocations_;
  ++live_count_;
  if (live_count_ > peak_live_count_) peak_live_count_ = live_count_;
  if (!free_slots_.empty()) {
    std::pop_heap(free_slots_.begin(), free_slots_.end(),
                  std::greater<PageId>());
    const PageId id = free_slots_.back();
    free_slots_.pop_back();
    pages_[id] = std::move(page);
    return id;
  }
  STINDEX_CHECK_MSG(pages_.size() < kInvalidPage, "page id space exhausted");
  pages_.push_back(std::move(page));
  return static_cast<PageId>(pages_.size() - 1);
}

Page* PageStore::Get(PageId id) {
  STINDEX_CHECK(id < pages_.size());
  Page* page = pages_[id].get();
  STINDEX_CHECK_MSG(page != nullptr, "access to freed page");
  return page;
}

const Page* PageStore::Get(PageId id) const {
  STINDEX_CHECK(id < pages_.size());
  const Page* page = pages_[id].get();
  STINDEX_CHECK_MSG(page != nullptr, "access to freed page");
  return page;
}

void PageStore::Reindex(const std::vector<PageId>& remap) {
  STINDEX_CHECK(remap.size() == pages_.size());
  std::vector<std::unique_ptr<Page>> packed(live_count_);
  for (PageId old_id = 0; old_id < pages_.size(); ++old_id) {
    if (pages_[old_id] == nullptr) continue;
    const PageId new_id = remap[old_id];
    STINDEX_CHECK_MSG(new_id < packed.size(), "Reindex: target out of range");
    STINDEX_CHECK_MSG(packed[new_id] == nullptr, "Reindex: target collision");
    packed[new_id] = std::move(pages_[old_id]);
  }
  pages_ = std::move(packed);
  free_slots_.clear();
}

void PageStore::Free(PageId id) {
  STINDEX_CHECK(id < pages_.size());
  STINDEX_CHECK_MSG(pages_[id] != nullptr, "double free of page");
  pages_[id].reset();
  --live_count_;
  free_slots_.push_back(id);
  std::push_heap(free_slots_.begin(), free_slots_.end(),
                 std::greater<PageId>());
}

}  // namespace stindex
