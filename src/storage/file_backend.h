#ifndef STINDEX_STORAGE_FILE_BACKEND_H_
#define STINDEX_STORAGE_FILE_BACKEND_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page_backend.h"
#include "util/status.h"

namespace stindex {

// Magic bytes at the start of the header page payload.
inline constexpr uint64_t kFilePageMagic = 0x53544e4458504701ull;  // "STNDXPG"+1
inline constexpr uint32_t kFileFormatVersion = 1;

// PageBackend storing fixed-size pages in one file via pread/pwrite.
//
// File layout (all pages are kPageSize bytes):
//   page 0                          header (sealed, PageKind::kFileHeader):
//                                     magic, format version, page size,
//                                     bitmap page count, slot count,
//                                     live page count
//   pages 1 .. bitmap_pages         free-slot bitmap, bit i = slot i in use
//   pages 1+bitmap_pages + id       data page for slot `id`
//
// The bitmap region is sized at Create time (default 4 pages ≈ 130k slots)
// and fixed for the file's lifetime; Create fails loudly if asked for
// fewer slots than a workload later needs (Write past the bitmap is
// IoError, not silent truncation).
//
// Metadata (header + bitmap) is written lazily: Sync() persists it, the
// destructor syncs as a backstop. Data pages hit the file on every Write.
// Concurrent Read calls are safe (pread is positionless); writes require
// external exclusion, matching the PageBackend contract.
class FilePageBackend : public PageBackend {
 public:
  struct Options {
    // Pages reserved for the free-slot bitmap; capacity is
    // bitmap_pages * kPageSize * 8 slots.
    size_t bitmap_pages = 4;
  };

  // Creates a new page file at `path` (truncating any existing file) and
  // writes a fresh header + empty bitmap.
  static Result<std::unique_ptr<FilePageBackend>> Create(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<FilePageBackend>> Create(
      const std::string& path);

  // Opens an existing page file, validating magic, checksum, format
  // version, page size and file-size consistency (a truncated file is
  // InvalidArgument, not a crash later).
  static Result<std::unique_ptr<FilePageBackend>> Open(
      const std::string& path);

  ~FilePageBackend() override;

  FilePageBackend(const FilePageBackend&) = delete;
  FilePageBackend& operator=(const FilePageBackend&) = delete;

  size_t page_size() const override { return kPageSize; }
  Status Read(PageId id, uint8_t* out) const override;
  Status Write(PageId id, const uint8_t* data) override;
  Status Free(PageId id) override;
  bool IsAllocated(PageId id) const override;
  size_t SlotCount() const override { return slot_count_; }
  size_t LivePageCount() const override { return live_count_; }
  Status Sync() override;
  std::string Name() const override { return "file"; }

  const std::string& path() const { return path_; }

  // Capacity implied by the bitmap region.
  size_t MaxSlots() const { return bitmap_.size() * 8; }

  // Closes the file WITHOUT syncing pending metadata — the on-disk state
  // stays exactly what previous Write/Sync calls produced, as if the
  // process had died here. Every later call on this object is IoError.
  // The crash-point recovery harness uses this so a simulated crash is
  // not quietly healed by the destructor's sync backstop.
  void Abandon();

 private:
  FilePageBackend(std::string path, int fd, size_t bitmap_pages);

  Status WriteMetadata();
  off_t DataOffset(PageId id) const {
    return static_cast<off_t>((1 + bitmap_pages_ + id) * kPageSize);
  }
  bool BitmapGet(PageId id) const {
    return (bitmap_[id / 8] >> (id % 8)) & 1u;
  }
  void BitmapSet(PageId id, bool on) {
    if (on) {
      bitmap_[id / 8] |= static_cast<uint8_t>(1u << (id % 8));
    } else {
      bitmap_[id / 8] &= static_cast<uint8_t>(~(1u << (id % 8)));
    }
  }

  std::string path_;
  int fd_;
  size_t bitmap_pages_;
  std::vector<uint8_t> bitmap_;  // bitmap_pages_ * kPageSize bytes
  size_t slot_count_ = 0;        // one past highest slot ever allocated
  size_t live_count_ = 0;
  bool meta_dirty_ = false;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_FILE_BACKEND_H_
