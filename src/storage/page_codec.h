#ifndef STINDEX_STORAGE_PAGE_CODEC_H_
#define STINDEX_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>

#include "storage/page_store.h"
#include "util/check.h"
#include "util/status.h"

namespace stindex {

// On-disk page size. An index node (50 entries of 56 bytes plus a small
// header) fits comfortably; serializers CHECK it.
inline constexpr size_t kPageSize = 4096;

// What a sealed page holds. Stored in the page envelope so a decoder can
// reject a page of the wrong kind before looking at the payload.
enum class PageKind : uint16_t {
  kFileHeader = 1,  // FilePageBackend metadata page
  kRStarNode = 2,   // serialized RStarTree::Node
  kPprNode = 3,     // serialized PprTree::Node
  kTest = 4,        // reserved for unit tests
  kWalPage = 5,     // live-tier write-ahead-log page (live/wal.h)
  kCheckpointHeader = 6,  // live-tier checkpoint commit record (live/checkpoint.h)
  kCheckpointPage = 7,    // live-tier checkpoint metadata chain page
  kSnapshotSuperblock = 8,  // read-only snapshot superblock (storage/snapshot_file.h)
  kSnapshotManifest = 9,    // snapshot per-page checksum manifest page
};

// Every on-disk page carries an 8-byte envelope:
//   [0, 4)  uint32 CRC-32 over bytes [4, kPageSize)
//   [4, 6)  uint16 PageKind
//   [6, 8)  uint16 codec version
// The payload starts at kPageEnvelopeBytes.
inline constexpr size_t kPageEnvelopeBytes = 8;
inline constexpr size_t kPagePayloadBytes = kPageSize - kPageEnvelopeBytes;
inline constexpr uint16_t kPageCodecVersion = 1;

// CRC-32 (IEEE 802.3 polynomial, reflected) over `size` bytes.
uint32_t Crc32(const uint8_t* data, size_t size);

// Stamps the envelope (kind, version, checksum) onto a kPageSize buffer
// whose payload bytes [kPageEnvelopeBytes, kPageSize) are already filled.
void SealPage(uint8_t* page, PageKind kind);

// Encodes/decodes one Page subclass to/from sealed kPageSize buffers.
// Implementations live next to the node types they serialize (the tree
// classes keep their node layouts private).
class PageCodec {
 public:
  virtual ~PageCodec() = default;

  // Serializes `page` into `out` (kPageSize bytes) and seals it.
  // Unencodable pages (fanout above the configured bound) are checked
  // programming errors: node capacities are chosen so nodes fit.
  virtual void Encode(const Page& page, uint8_t* out) const = 0;

  // Rebuilds a Page from a sealed buffer. Corruption is a runtime
  // condition: the error names the offending page id.
  virtual Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                               PageId id) const = 0;
};

// Bounds-checked sequential writer over a fixed-size buffer. Overflowing
// a page is a programming error (node capacities are chosen so nodes
// fit), hence CHECK rather than Status.
class PageWriter {
 public:
  PageWriter(uint8_t* buffer, size_t capacity)
      : buffer_(buffer), capacity_(capacity) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PageWriter requires trivially copyable types");
    WriteBytes(&value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    STINDEX_CHECK_MSG(used_ + size <= capacity_, "page overflow");
    std::memcpy(buffer_ + used_, data, size);
    used_ += size;
  }

  size_t used() const { return used_; }
  size_t remaining() const { return capacity_ - used_; }

 private:
  uint8_t* buffer_;
  size_t capacity_;
  size_t used_ = 0;
};

// Bounds-checked sequential reader. Reading past the end returns false
// (corrupt or truncated input is a runtime condition, not a bug).
class PageReader {
 public:
  // Empty reader (every read fails); lets Result<PageReader> default-
  // construct its value slot on the error path.
  PageReader() : PageReader(nullptr, 0) {}

  PageReader(const uint8_t* buffer, size_t capacity)
      : buffer_(buffer), capacity_(capacity) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PageReader requires trivially copyable types");
    return ReadBytes(out, sizeof(T));
  }

  bool ReadBytes(void* out, size_t size) {
    if (used_ + size > capacity_) return false;
    std::memcpy(out, buffer_ + used_, size);
    used_ += size;
    return true;
  }

  size_t used() const { return used_; }
  size_t remaining() const { return capacity_ - used_; }

 private:
  const uint8_t* buffer_;
  size_t capacity_;
  size_t used_ = 0;
};

// Writer positioned at the payload of a page buffer; pair with SealPage.
inline PageWriter PayloadWriter(uint8_t* page) {
  std::memset(page, 0, kPageSize);
  return PageWriter(page + kPageEnvelopeBytes, kPagePayloadBytes);
}

// Validates the envelope of a sealed kPageSize buffer and returns a
// reader positioned at the payload. Any mismatch — bad checksum, wrong
// kind, unknown version — is reported as InvalidArgument naming `id`.
Result<PageReader> OpenPagePayload(const uint8_t* page, PageKind kind,
                                   PageId id);

}  // namespace stindex

#endif  // STINDEX_STORAGE_PAGE_CODEC_H_
