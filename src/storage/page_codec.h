#ifndef STINDEX_STORAGE_PAGE_CODEC_H_
#define STINDEX_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/check.h"

namespace stindex {

// On-disk page size. An index node (50 entries of 56 bytes plus a small
// header) fits comfortably; serializers CHECK it.
inline constexpr size_t kPageSize = 4096;

// Bounds-checked sequential writer over a fixed-size buffer. Overflowing
// a page is a programming error (node capacities are chosen so nodes
// fit), hence CHECK rather than Status.
class PageWriter {
 public:
  PageWriter(uint8_t* buffer, size_t capacity)
      : buffer_(buffer), capacity_(capacity) {}

  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PageWriter requires trivially copyable types");
    WriteBytes(&value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    STINDEX_CHECK_MSG(used_ + size <= capacity_, "page overflow");
    std::memcpy(buffer_ + used_, data, size);
    used_ += size;
  }

  size_t used() const { return used_; }
  size_t remaining() const { return capacity_ - used_; }

 private:
  uint8_t* buffer_;
  size_t capacity_;
  size_t used_ = 0;
};

// Bounds-checked sequential reader. Reading past the end returns false
// (corrupt or truncated input is a runtime condition, not a bug).
class PageReader {
 public:
  PageReader(const uint8_t* buffer, size_t capacity)
      : buffer_(buffer), capacity_(capacity) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "PageReader requires trivially copyable types");
    return ReadBytes(out, sizeof(T));
  }

  bool ReadBytes(void* out, size_t size) {
    if (used_ + size > capacity_) return false;
    std::memcpy(out, buffer_ + used_, size);
    used_ += size;
    return true;
  }

  size_t used() const { return used_; }
  size_t remaining() const { return capacity_ - used_; }

 private:
  const uint8_t* buffer_;
  size_t capacity_;
  size_t used_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_PAGE_CODEC_H_
