#ifndef STINDEX_STORAGE_SNAPSHOT_FILE_H_
#define STINDEX_STORAGE_SNAPSHOT_FILE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page_backend.h"
#include "util/status.h"

namespace stindex {

// Magic bytes at the start of the superblock payload.
inline constexpr uint64_t kSnapshotMagic = 0x53544e445853501cull;  // "STNDXSP"
inline constexpr uint32_t kSnapshotFormatVersion = 1;

// One level of the packed tree: node slots [first_slot, first_slot+count).
struct SnapshotLevelExtent {
  uint32_t first_slot = 0;
  uint32_t count = 0;
};

// Read-only, page-aligned snapshot of a frozen index.
//
// File layout (all pages are kPageSize bytes):
//   page 0                superblock (sealed, PageKind::kSnapshotSuperblock):
//                           magic, format version, page size, node count,
//                           level count, manifest page count, manifest
//                           digest, per-level slot extents
//   pages 1 .. node_count data page for node slot `id` at file page 1+id —
//                           sealed tree-node pages, written bottom-up
//                           (all level-0 leaves first, then level 1, ...)
//   trailing pages        checksum manifest (sealed, kSnapshotManifest):
//                           one uint32 CRC-32 of the full kPageSize bytes
//                           of each data page, in slot order
//
// Node slots are dense by construction (the packer remaps ids), so the
// byte offset of slot `id` is (1 + id) * kPageSize — independent of the
// manifest, which trails the data so the writer can stream nodes without
// knowing their count up front. The superblock's manifest digest (CRC-32
// over the concatenated per-page checksums) ties the manifest to the
// superblock; every data page is verified against its manifest entry at
// open time, so the zero-copy path never re-validates on reads.
class SnapshotWriter {
 public:
  // Creates a new snapshot file at `path` (truncating any existing file).
  // Page 0 stays reserved until Finish() seals the superblock, so a crash
  // mid-pack leaves a file that never opens.
  static Result<std::unique_ptr<SnapshotWriter>> Create(
      const std::string& path);

  ~SnapshotWriter();

  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  // Appends the next node page (kPageSize bytes, already sealed by the
  // tree's codec) into the next dense slot. Pages must arrive bottom-up:
  // `level` starts at 0 and may only stay or step up by one.
  Status Append(uint32_t level, const uint8_t* page);

  // Number of pages appended so far — the slot id the next Append gets.
  size_t appended() const { return checksums_.size(); }

  // Writes the manifest and superblock, fsyncs and closes. No further
  // appends; the file is now immutable.
  Status Finish();

 private:
  SnapshotWriter(std::string path, int fd);

  std::string path_;
  int fd_;
  std::vector<uint32_t> checksums_;          // per data page, slot order
  std::vector<SnapshotLevelExtent> extents_;  // per level, bottom-up
  bool finished_ = false;
};

// An open snapshot: the whole file mapped PROT_READ (or a pread fallback
// when mapping is unavailable — forced by `Options::force_pread` or the
// STINDEX_SNAPSHOT_NO_MMAP environment variable, automatic if mmap
// fails). Open() validates the superblock, the manifest digest and every
// data page's checksum, so corruption fails at open time with a Status
// naming the offending page id.
class SnapshotFile {
 public:
  struct Options {
    // Skip mmap and serve every read through pread (for testing the
    // fallback and for platforms without usable mappings).
    bool force_pread = false;
  };

  static Result<std::unique_ptr<SnapshotFile>> Open(const std::string& path,
                                                    const Options& options);
  static Result<std::unique_ptr<SnapshotFile>> Open(const std::string& path);

  ~SnapshotFile();

  SnapshotFile(const SnapshotFile&) = delete;
  SnapshotFile& operator=(const SnapshotFile&) = delete;

  // Copies node slot `id` into `out` (kPageSize bytes).
  Status Read(PageId id, uint8_t* out) const;

  // Borrowed span of node slot `id`, stable for the file's lifetime, or
  // nullptr in pread-fallback mode (callers then copy via Read).
  const uint8_t* Borrow(PageId id) const;

  size_t node_count() const { return node_count_; }
  const std::vector<SnapshotLevelExtent>& extents() const { return extents_; }
  bool mapped() const { return map_ != nullptr; }
  const std::string& path() const { return path_; }

 private:
  SnapshotFile(std::string path, int fd);

  std::string path_;
  int fd_;
  const uint8_t* map_ = nullptr;  // nullptr in pread-fallback mode
  size_t map_bytes_ = 0;
  size_t node_count_ = 0;
  std::vector<SnapshotLevelExtent> extents_;
};

// PageBackend over a SnapshotFile: node slot `id` is page `id`. Read-only
// — Write/Free are FailedPrecondition. BorrowPage hands out the mapped
// span (nullptr in fallback mode), which the buffer pools decode from
// directly instead of bouncing through a copy.
class MmapSnapshotBackend : public PageBackend {
 public:
  // Opens the snapshot at `path`.
  static Result<std::unique_ptr<MmapSnapshotBackend>> Open(
      const std::string& path, const SnapshotFile::Options& options);
  static Result<std::unique_ptr<MmapSnapshotBackend>> Open(
      const std::string& path);

  explicit MmapSnapshotBackend(std::unique_ptr<SnapshotFile> file);

  size_t page_size() const override { return kPageSize; }
  Status Read(PageId id, uint8_t* out) const override;
  Status Write(PageId id, const uint8_t* data) override;
  Status Free(PageId id) override;
  bool IsAllocated(PageId id) const override {
    return static_cast<size_t>(id) < file_->node_count();
  }
  size_t SlotCount() const override { return file_->node_count(); }
  size_t LivePageCount() const override { return file_->node_count(); }
  Status Sync() override { return Status::OK(); }
  std::string Name() const override { return "mmap"; }
  const uint8_t* BorrowPage(PageId id) const override;

  const SnapshotFile& file() const { return *file_; }

 private:
  std::unique_ptr<SnapshotFile> file_;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_SNAPSHOT_FILE_H_
