#include "storage/snapshot_file.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "storage/page_codec.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Full-buffer pread/pwrite, same contract as the file backend: loop over
// short counts, report a short read at EOF as truncation.
Status PReadFull(int fd, uint8_t* buf, size_t size, off_t offset,
                 const std::string& what) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pread(fd, buf + done, size - done,
                              offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno(what));
    }
    if (n == 0) {
      return Status::IoError(what + ": short read (" + std::to_string(done) +
                             " of " + std::to_string(size) +
                             " bytes; truncated file?)");
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status PWriteFull(int fd, const uint8_t* buf, size_t size, off_t offset,
                  const std::string& what) {
  size_t done = 0;
  while (done < size) {
    const ssize_t n = ::pwrite(fd, buf + done, size - done,
                               offset + static_cast<off_t>(done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(Errno(what));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

struct MmapMetrics {
  Counter* reads;
  Counter* bytes_read;
  Counter* borrows;
  Counter* fallback_opens;
  Counter* packed_pages;
};

const MmapMetrics& Metrics() {
  static const MmapMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return MmapMetrics{r.GetCounter("backend.mmap.reads"),
                       r.GetCounter("backend.mmap.bytes_read"),
                       r.GetCounter("backend.mmap.borrows"),
                       r.GetCounter("backend.mmap.fallback_opens"),
                       r.GetCounter("backend.mmap.packed_pages")};
  }();
  return m;
}

// CRC entries per manifest page.
constexpr size_t kManifestEntriesPerPage = kPagePayloadBytes / sizeof(uint32_t);

size_t ManifestPagesFor(size_t node_count) {
  return (node_count + kManifestEntriesPerPage - 1) / kManifestEntriesPerPage;
}

off_t SlotOffset(size_t id) {
  return static_cast<off_t>((1 + id) * kPageSize);
}

uint32_t ManifestDigest(const std::vector<uint32_t>& checksums) {
  if (checksums.empty()) return 0;
  return Crc32(reinterpret_cast<const uint8_t*>(checksums.data()),
               checksums.size() * sizeof(uint32_t));
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

Result<std::unique_ptr<SnapshotWriter>> SnapshotWriter::Create(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(Errno("open(" + path + ")"));
  }
  // Reserve page 0: until Finish() seals a valid superblock over it, the
  // zeroed page fails Open's magic check and the half-packed file is inert.
  uint8_t zero[kPageSize];
  std::memset(zero, 0, sizeof(zero));
  Status status = PWriteFull(fd, zero, kPageSize, 0,
                             "write superblock reservation of " + path);
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  return std::unique_ptr<SnapshotWriter>(new SnapshotWriter(path, fd));
}

SnapshotWriter::~SnapshotWriter() {
  if (fd_ >= 0) ::close(fd_);
}

Status SnapshotWriter::Append(uint32_t level, const uint8_t* page) {
  STINDEX_CHECK_MSG(!finished_, "Append after Finish");
  // Bottom-up order: levels start at 0 and never step down or skip.
  if (extents_.empty()) {
    STINDEX_CHECK_MSG(level == 0, "snapshot pages must start at level 0");
    extents_.push_back(SnapshotLevelExtent{0, 0});
  } else if (level == extents_.size()) {
    extents_.push_back(SnapshotLevelExtent{
        static_cast<uint32_t>(checksums_.size()), 0});
  } else {
    STINDEX_CHECK_MSG(level + 1 == extents_.size(),
                      "snapshot pages must be appended bottom-up");
  }
  const size_t slot = checksums_.size();
  Status status = PWriteFull(fd_, page, kPageSize, SlotOffset(slot),
                             "write node page " + std::to_string(slot) +
                                 " of " + path_);
  if (!status.ok()) return status;
  checksums_.push_back(Crc32(page, kPageSize));
  ++extents_.back().count;
  return Status::OK();
}

Status SnapshotWriter::Finish() {
  STINDEX_CHECK_MSG(!finished_, "double Finish");
  TraceSpan span("storage", "snapshot_finish");
  span.Arg("pages", static_cast<int64_t>(checksums_.size()));
  const size_t manifest_pages = ManifestPagesFor(checksums_.size());
  uint8_t page[kPageSize];
  for (size_t m = 0; m < manifest_pages; ++m) {
    PageWriter writer = PayloadWriter(page);
    const size_t begin = m * kManifestEntriesPerPage;
    const size_t end =
        std::min(begin + kManifestEntriesPerPage, checksums_.size());
    for (size_t i = begin; i < end; ++i) writer.Write(checksums_[i]);
    SealPage(page, PageKind::kSnapshotManifest);
    Status status = PWriteFull(
        fd_, page, kPageSize, SlotOffset(checksums_.size() + m),
        "write manifest page " + std::to_string(m) + " of " + path_);
    if (!status.ok()) return status;
  }

  PageWriter writer = PayloadWriter(page);
  writer.Write(kSnapshotMagic);
  writer.Write(kSnapshotFormatVersion);
  writer.Write(static_cast<uint32_t>(kPageSize));
  writer.Write(static_cast<uint64_t>(checksums_.size()));
  writer.Write(static_cast<uint32_t>(extents_.size()));
  writer.Write(static_cast<uint32_t>(manifest_pages));
  writer.Write(ManifestDigest(checksums_));
  for (const SnapshotLevelExtent& extent : extents_) {
    writer.Write(extent.first_slot);
    writer.Write(extent.count);
  }
  SealPage(page, PageKind::kSnapshotSuperblock);
  // Data + manifest must be durable before the superblock makes the file
  // openable; the superblock is the commit point.
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync(" + path_ + ")"));
  Status status =
      PWriteFull(fd_, page, kPageSize, 0, "write superblock of " + path_);
  if (!status.ok()) return status;
  if (::fsync(fd_) != 0) return Status::IoError(Errno("fsync(" + path_ + ")"));
  ::close(fd_);
  fd_ = -1;
  finished_ = true;
  Metrics().packed_pages->Add(checksums_.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// SnapshotFile

SnapshotFile::SnapshotFile(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

SnapshotFile::~SnapshotFile() {
  if (map_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(map_), map_bytes_);
  }
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<SnapshotFile>> SnapshotFile::Open(
    const std::string& path) {
  return Open(path, Options());
}

Result<std::unique_ptr<SnapshotFile>> SnapshotFile::Open(
    const std::string& path, const Options& options) {
  TraceSpan span("storage", "snapshot_open");
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(Errno("open(" + path + ")"));
  }
  std::unique_ptr<SnapshotFile> file(new SnapshotFile(path, fd));

  uint8_t header[kPageSize];
  Status status =
      PReadFull(fd, header, kPageSize, 0, "read superblock of " + path);
  if (!status.ok()) {
    if (status.code() == StatusCode::kIoError &&
        status.message().find("short read") != std::string::npos) {
      return Status::InvalidArgument(path + ": truncated snapshot (" +
                                     status.message() + ")");
    }
    return status;
  }
  // Magic before checksum: "this is not a snapshot at all" beats "this
  // snapshot is corrupt".
  uint64_t magic = 0;
  std::memcpy(&magic, header + kPageEnvelopeBytes, sizeof(magic));
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument(path +
                                   ": not a stindex snapshot (bad magic)");
  }
  Result<PageReader> payload =
      OpenPagePayload(header, PageKind::kSnapshotSuperblock, /*id=*/0);
  if (!payload.ok()) {
    return Status::InvalidArgument(path + ": corrupt superblock (" +
                                   payload.status().message() + ")");
  }
  PageReader reader = payload.value();
  uint32_t format_version = 0;
  uint32_t page_size = 0;
  uint64_t node_count = 0;
  uint32_t level_count = 0;
  uint32_t manifest_pages = 0;
  uint32_t manifest_digest = 0;
  bool parsed = reader.Read(&magic) && reader.Read(&format_version) &&
                reader.Read(&page_size) && reader.Read(&node_count) &&
                reader.Read(&level_count) && reader.Read(&manifest_pages) &&
                reader.Read(&manifest_digest);
  if (!parsed) {
    return Status::InvalidArgument(path +
                                   ": corrupt superblock (short payload)");
  }
  if (format_version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        path + ": unsupported snapshot version " +
        std::to_string(format_version) + " (supported: " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  if (page_size != kPageSize) {
    return Status::InvalidArgument(
        path + ": page size " + std::to_string(page_size) +
        " does not match compiled kPageSize " + std::to_string(kPageSize));
  }
  if (manifest_pages != ManifestPagesFor(static_cast<size_t>(node_count))) {
    return Status::InvalidArgument(path + ": corrupt superblock (" +
                                   std::to_string(manifest_pages) +
                                   " manifest pages for " +
                                   std::to_string(node_count) + " nodes)");
  }
  // The extents must tile [0, node_count) bottom-up with no gaps.
  std::vector<SnapshotLevelExtent> extents(level_count);
  uint64_t covered = 0;
  for (SnapshotLevelExtent& extent : extents) {
    if (!reader.Read(&extent.first_slot) || !reader.Read(&extent.count)) {
      return Status::InvalidArgument(path +
                                     ": corrupt superblock (short extents)");
    }
    if (extent.first_slot != covered || extent.count == 0) {
      return Status::InvalidArgument(
          path + ": corrupt superblock (level extents do not tile slot " +
          std::to_string(covered) + ")");
    }
    covered += extent.count;
  }
  if (covered != node_count) {
    return Status::InvalidArgument(
        path + ": corrupt superblock (extents cover " +
        std::to_string(covered) + " of " + std::to_string(node_count) +
        " nodes)");
  }

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return Status::IoError(Errno("fstat(" + path + ")"));
  }
  const off_t expected =
      static_cast<off_t>((1 + node_count + manifest_pages) * kPageSize);
  if (st.st_size < expected) {
    return Status::InvalidArgument(
        path + ": truncated snapshot (" + std::to_string(st.st_size) +
        " bytes, superblock implies " + std::to_string(expected) + ")");
  }

  file->node_count_ = static_cast<size_t>(node_count);
  file->extents_ = std::move(extents);

  const bool force_pread =
      options.force_pread ||
      std::getenv("STINDEX_SNAPSHOT_NO_MMAP") != nullptr;
  if (!force_pread) {
    void* map = ::mmap(nullptr, static_cast<size_t>(expected), PROT_READ,
                       MAP_SHARED, fd, 0);
    if (map != MAP_FAILED) {
      file->map_ = static_cast<const uint8_t*>(map);
      file->map_bytes_ = static_cast<size_t>(expected);
    }
  }
  if (file->map_ == nullptr) Metrics().fallback_opens->Add(1);

  // Verify the manifest digest, then every data page against its manifest
  // entry — after this pass the zero-copy path serves pages unrechecked.
  std::vector<uint32_t> checksums;
  checksums.reserve(file->node_count_);
  uint8_t buffer[kPageSize];
  for (size_t m = 0; m < manifest_pages; ++m) {
    const size_t page_index = 1 + file->node_count_ + m;
    const uint8_t* page = file->map_ != nullptr
                              ? file->map_ + page_index * kPageSize
                              : buffer;
    if (file->map_ == nullptr) {
      status = PReadFull(fd, buffer, kPageSize,
                         static_cast<off_t>(page_index * kPageSize),
                         "read manifest page " + std::to_string(m) + " of " +
                             path);
      if (!status.ok()) return status;
    }
    Result<PageReader> manifest = OpenPagePayload(
        page, PageKind::kSnapshotManifest, static_cast<PageId>(page_index));
    if (!manifest.ok()) {
      return Status::InvalidArgument(path + ": corrupt manifest page " +
                                     std::to_string(m) + " (" +
                                     manifest.status().message() + ")");
    }
    PageReader entries = manifest.value();
    const size_t begin = m * kManifestEntriesPerPage;
    const size_t end =
        std::min(begin + kManifestEntriesPerPage, file->node_count_);
    for (size_t i = begin; i < end; ++i) {
      uint32_t crc = 0;
      if (!entries.Read(&crc)) {
        return Status::InvalidArgument(path + ": corrupt manifest page " +
                                       std::to_string(m) + " (short payload)");
      }
      checksums.push_back(crc);
    }
  }
  if (ManifestDigest(checksums) != manifest_digest) {
    return Status::InvalidArgument(
        path + ": manifest digest mismatch (superblock and manifest disagree)");
  }
  for (size_t id = 0; id < file->node_count_; ++id) {
    const uint8_t* page =
        file->map_ != nullptr ? file->map_ + (1 + id) * kPageSize : buffer;
    if (file->map_ == nullptr) {
      status = PReadFull(fd, buffer, kPageSize, SlotOffset(id),
                         "read node page " + std::to_string(id) + " of " +
                             path);
      if (!status.ok()) return status;
    }
    if (Crc32(page, kPageSize) != checksums[id]) {
      return Status::InvalidArgument(path + ": checksum mismatch on page " +
                                     std::to_string(id));
    }
  }
  span.Arg("pages", static_cast<int64_t>(file->node_count_));
  return file;
}

Status SnapshotFile::Read(PageId id, uint8_t* out) const {
  if (static_cast<size_t>(id) >= node_count_) {
    return Status::InvalidArgument("page " + std::to_string(id) +
                                   ": read of unallocated snapshot page");
  }
  if (map_ != nullptr) {
    std::memcpy(out, map_ + (1 + static_cast<size_t>(id)) * kPageSize,
                kPageSize);
    return Status::OK();
  }
  TraceSpan span("storage", "pread");
  span.Arg("page", static_cast<int64_t>(id));
  return PReadFull(fd_, out, kPageSize, SlotOffset(id),
                   "read page " + std::to_string(id) + " of " + path_);
}

const uint8_t* SnapshotFile::Borrow(PageId id) const {
  if (map_ == nullptr || static_cast<size_t>(id) >= node_count_) {
    return nullptr;
  }
  return map_ + (1 + static_cast<size_t>(id)) * kPageSize;
}

// ---------------------------------------------------------------------------
// MmapSnapshotBackend

MmapSnapshotBackend::MmapSnapshotBackend(std::unique_ptr<SnapshotFile> file)
    : file_(std::move(file)) {
  STINDEX_CHECK(file_ != nullptr);
}

Result<std::unique_ptr<MmapSnapshotBackend>> MmapSnapshotBackend::Open(
    const std::string& path) {
  return Open(path, SnapshotFile::Options());
}

Result<std::unique_ptr<MmapSnapshotBackend>> MmapSnapshotBackend::Open(
    const std::string& path, const SnapshotFile::Options& options) {
  Result<std::unique_ptr<SnapshotFile>> file = SnapshotFile::Open(path, options);
  if (!file.ok()) return file.status();
  return std::make_unique<MmapSnapshotBackend>(std::move(file).value());
}

Status MmapSnapshotBackend::Read(PageId id, uint8_t* out) const {
  Status status = file_->Read(id, out);
  if (status.ok()) {
    Metrics().reads->Add(1);
    Metrics().bytes_read->Add(kPageSize);
  }
  return status;
}

const uint8_t* MmapSnapshotBackend::BorrowPage(PageId id) const {
  const uint8_t* page = file_->Borrow(id);
  if (page != nullptr) Metrics().borrows->Add(1);
  return page;
}

Status MmapSnapshotBackend::Write(PageId id, const uint8_t* data) {
  (void)data;
  return Status::FailedPrecondition("snapshot backend is read-only (write of page " +
                                    std::to_string(id) + ")");
}

Status MmapSnapshotBackend::Free(PageId id) {
  return Status::FailedPrecondition("snapshot backend is read-only (free of page " +
                                    std::to_string(id) + ")");
}

}  // namespace stindex
