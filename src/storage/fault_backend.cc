#include "storage/fault_backend.h"

#include <cstring>

namespace stindex {

namespace {
std::string OpTarget(const char* op, PageId id) {
  if (id == kInvalidPage) return op;
  return "page " + std::to_string(id) + ": " + op;
}
}  // namespace

Status FaultInjectingBackend::CheckMutation(const char* op, PageId id) {
  if (crashed_) {
    return Status::IoError(OpTarget(op, id) + " after injected crash");
  }
  ++mutations_;
  if (faults_.crash_at_write != 0 && mutations_ == faults_.crash_at_write) {
    crashed_ = true;
    return Status::IoError(OpTarget(op, id) +
                           " hit injected crash point (mutation " +
                           std::to_string(mutations_) + ")");
  }
  return Status::OK();
}

Status FaultInjectingBackend::Read(PageId id, uint8_t* out) const {
  if (crashed_) {
    return Status::IoError("page " + std::to_string(id) +
                           ": read after injected crash");
  }
  ++reads_;
  if (faults_.fail_read_at != 0 && reads_ == faults_.fail_read_at) {
    faults_.fail_read_at = 0;
    return Status::IoError("page " + std::to_string(id) +
                           ": injected read failure");
  }
  if (faults_.short_read_at != 0 && reads_ == faults_.short_read_at) {
    faults_.short_read_at = 0;
    // Deliver half the page, then report the failure the way a real
    // backend reports hitting EOF mid-page.
    Status status = wrapped_->Read(id, out);
    if (!status.ok()) return status;
    std::memset(out + page_size() / 2, 0, page_size() - page_size() / 2);
    return Status::IoError("page " + std::to_string(id) +
                           ": injected short read (" +
                           std::to_string(page_size() / 2) + " of " +
                           std::to_string(page_size()) + " bytes)");
  }
  if (faults_.corrupt_read_at != 0 && reads_ == faults_.corrupt_read_at) {
    faults_.corrupt_read_at = 0;
    Status status = wrapped_->Read(id, out);
    if (!status.ok()) return status;
    const uint64_t bit = faults_.corrupt_bit % (page_size() * 8);
    out[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    return Status::OK();  // silent corruption: the checksum must catch it
  }
  return wrapped_->Read(id, out);
}

Status FaultInjectingBackend::Write(PageId id, const uint8_t* data) {
  Status alive = CheckMutation("write", id);
  if (!alive.ok()) return alive;
  ++writes_;
  if (faults_.fail_write_at != 0 && writes_ == faults_.fail_write_at) {
    faults_.fail_write_at = 0;
    return Status::IoError("page " + std::to_string(id) +
                           ": injected write failure");
  }
  return wrapped_->Write(id, data);
}

Status FaultInjectingBackend::Free(PageId id) {
  Status alive = CheckMutation("free", id);
  if (!alive.ok()) return alive;
  return wrapped_->Free(id);
}

Status FaultInjectingBackend::Sync() {
  Status alive = CheckMutation("sync", kInvalidPage);
  if (!alive.ok()) return alive;
  return wrapped_->Sync();
}

}  // namespace stindex
