#include "storage/shared_buffer_pool.h"

#include <algorithm>
#include <utility>

#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {

namespace {

// splitmix64 finalizer: page ids are dense and tree traversals touch
// correlated runs of them, so shard selection needs real mixing — plain
// masking would funnel whole subtrees into one shard.
uint64_t MixPageId(PageId id) {
  uint64_t x = static_cast<uint64_t>(id);
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

SharedBufferPool::SharedBufferPool(const PageStore* store,
                                   const SharedBufferPoolOptions& options)
    : store_(store) {
  STINDEX_CHECK(store != nullptr);
  InitShards(options);
}

SharedBufferPool::SharedBufferPool(PageBackend* backend, const PageCodec* codec,
                                   const SharedBufferPoolOptions& options)
    : backend_(backend), codec_(codec) {
  STINDEX_CHECK(backend != nullptr);
  STINDEX_CHECK(codec != nullptr);
  InitShards(options);
}

SharedBufferPool::~SharedBufferPool() {
  const Status status = FlushAll();
  STINDEX_CHECK_MSG(status.ok(), status.ToString().c_str());
  PublishStats();
}

void SharedBufferPool::InitShards(const SharedBufferPoolOptions& options) {
  STINDEX_CHECK_MSG(options.capacity > 0,
                    "SharedBufferPool: capacity must be > 0");
  capacity_ = options.capacity;
  pin_overflow_ = options.pin_overflow;
  metric_scope_ = options.metric_scope;
  size_t shards = options.shards;
  if (shards == 0) {
    shards = 1;
    while (shards * 2 <= std::min<size_t>(16, capacity_)) shards *= 2;
  }
  STINDEX_CHECK_MSG((shards & (shards - 1)) == 0 && shards > 0,
                    "SharedBufferPool: shard count must be a power of two");
  STINDEX_CHECK_MSG(shards <= capacity_,
                    "SharedBufferPool: more shards than page frames");
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // Split the total capacity across shards; the first capacity % shards
    // shards take the remainder, one frame each.
    shard->capacity = capacity_ / shards + (i < capacity_ % shards ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

size_t SharedBufferPool::ShardOf(PageId id) const {
  return static_cast<size_t>(MixPageId(id) & (shards_.size() - 1));
}

Status SharedBufferPool::WriteBack(PageId id, Frame& frame, Shard& shard) {
  uint8_t buffer[kPageSize];
  codec_->Encode(*frame.page, buffer);
  Status status = backend_->Write(id, buffer);
  if (!status.ok()) {
    return Status(status.code(), "write-back of page " + std::to_string(id) +
                                     " failed: " + status.message());
  }
  frame.dirty = false;
  --shard.dirty;
  return Status::OK();
}

Status SharedBufferPool::MakeRoom(Shard& shard) {
  while (shard.frames.size() >= shard.capacity) {
    PageId victim = kInvalidPage;
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      if (shard.frames.at(*it).pins == 0) {
        victim = *it;
        break;
      }
    }
    if (victim == kInvalidPage) {
      // Every frame in this shard is pinned right now.
      if (pin_overflow_) return Status::OK();
      return Status::FailedPrecondition(
          "SharedBufferPool: every frame in the shard is pinned, cannot "
          "evict (shard capacity " +
          std::to_string(shard.capacity) + ", " +
          std::to_string(shard.pinned) + " pinned)");
    }
    Frame& frame = shard.frames.at(victim);
    TraceSpan span("storage", "shared_evict");
    span.Arg("page", static_cast<int64_t>(victim))
        .Arg("dirty", static_cast<int64_t>(frame.dirty ? 1 : 0));
    if (frame.dirty) {
      Status status = WriteBack(victim, frame, shard);
      if (!status.ok()) return status;
    }
    shard.lru.erase(frame.lru);
    shard.frames.erase(victim);
    ++shard.evictions;
  }
  return Status::OK();
}

Result<const Page*> SharedBufferPool::Pin(PageId id, bool* missed) {
  const bool live = store_ != nullptr ? store_->IsLive(id)
                                      : backend_->IsAllocated(id);
  if (!live) {
    const std::string msg =
        "SharedBufferPool::Pin of a freed or out-of-range PageId (page " +
        std::to_string(id) + ")";
    STINDEX_CHECK_MSG(false, msg.c_str());
  }
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.stats.accesses;
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    // Hit: move to MRU. In store mode re-resolve the pointer so a slot
    // freed and reused between queries is never served stale.
    Frame& frame = it->second;
    shard.lru.splice(shard.lru.begin(), shard.lru, frame.lru);
    frame.lru = shard.lru.begin();
    if (store_ != nullptr) frame.page = store_->Get(id);
    if (frame.pins++ == 0) ++shard.pinned;
    *missed = false;
    return frame.page;
  }
  ++shard.stats.misses;
  TraceSpan span("storage", "shared_miss");
  span.Arg("page", static_cast<int64_t>(id));
  Status room = MakeRoom(shard);
  if (!room.ok()) return room;
  Frame frame;
  if (store_ != nullptr) {
    frame.page = store_->Get(id);
  } else {
    // Zero-copy path: an immutable backend (the mmap snapshot) lends its
    // pages — decode straight from the mapping, no bounce buffer.
    const uint8_t* borrowed = backend_->BorrowPage(id);
    uint8_t buffer[kPageSize];
    if (borrowed == nullptr) {
      Status status = backend_->Read(id, buffer);
      if (!status.ok()) {
        const std::string msg = "SharedBufferPool: read of page " +
                                std::to_string(id) +
                                " failed: " + status.ToString();
        STINDEX_CHECK_MSG(false, msg.c_str());
      }
    }
    Result<std::unique_ptr<Page>> decoded =
        codec_->Decode(borrowed != nullptr ? borrowed : buffer, id);
    if (!decoded.ok()) {
      const std::string msg = "SharedBufferPool: decode of page " +
                              std::to_string(id) +
                              " failed: " + decoded.status().ToString();
      STINDEX_CHECK_MSG(false, msg.c_str());
    }
    frame.owned = std::move(decoded).value();
    frame.page = frame.owned.get();
  }
  frame.pins = 1;
  ++shard.pinned;
  auto [inserted, ok] = shard.frames.emplace(id, std::move(frame));
  STINDEX_CHECK(ok);
  shard.lru.push_front(id);
  inserted->second.lru = shard.lru.begin();
  *missed = true;
  return inserted->second.page;
}

void SharedBufferPool::Unpin(PageId id) {
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.frames.find(id);
  STINDEX_CHECK_MSG(it != shard.frames.end(), "Unpin of a non-resident page");
  STINDEX_CHECK_MSG(it->second.pins > 0, "Unpin of an unpinned page");
  if (--it->second.pins == 0) --shard.pinned;
  TrimOverflowLocked(shard);
}

void SharedBufferPool::TrimOverflowLocked(Shard& shard) {
  while (shard.frames.size() > shard.capacity) {
    PageId victim = kInvalidPage;
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      const Frame& frame = shard.frames.at(*it);
      if (frame.pins == 0 && !frame.dirty) {
        victim = *it;
        break;
      }
    }
    if (victim == kInvalidPage) return;
    Frame& frame = shard.frames.at(victim);
    shard.lru.erase(frame.lru);
    shard.frames.erase(victim);
    ++shard.evictions;
  }
}

Status SharedBufferPool::Put(PageId id, std::unique_ptr<Page> page) {
  STINDEX_CHECK_MSG(backend_ != nullptr,
                    "SharedBufferPool::Put requires backend mode");
  STINDEX_CHECK(page != nullptr);
  STINDEX_CHECK(id != kInvalidPage);
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    Frame& frame = it->second;
    if (frame.pins > 0) {
      // A pinner may be reading the current decoded page; replacing it
      // under them would dangle their pointer.
      return Status::FailedPrecondition("SharedBufferPool::Put of page " +
                                        std::to_string(id) +
                                        " while it is pinned");
    }
    frame.owned = std::move(page);
    frame.page = frame.owned.get();
    if (!frame.dirty) {
      frame.dirty = true;
      ++shard.dirty;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, frame.lru);
    frame.lru = shard.lru.begin();
    return Status::OK();
  }
  Status room = MakeRoom(shard);
  if (!room.ok()) return room;
  Frame frame;
  frame.owned = std::move(page);
  frame.page = frame.owned.get();
  frame.dirty = true;
  ++shard.dirty;
  auto [inserted, ok] = shard.frames.emplace(id, std::move(frame));
  STINDEX_CHECK(ok);
  shard.lru.push_front(id);
  inserted->second.lru = shard.lru.begin();
  return Status::OK();
}

Status SharedBufferPool::FlushAll() {
  if (backend_ == nullptr) return Status::OK();
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.dirty == 0) continue;
    TraceSpan span("storage", "shared_flush");
    span.Arg("dirty", static_cast<int64_t>(shard.dirty));
    std::vector<PageId> dirty;
    dirty.reserve(shard.dirty);
    for (const auto& [id, frame] : shard.frames) {
      if (frame.dirty) dirty.push_back(id);
    }
    std::sort(dirty.begin(), dirty.end());
    for (const PageId id : dirty) {
      Status status = WriteBack(id, shard.frames.at(id), shard);
      if (!status.ok()) return status;
    }
  }
  return Status::OK();
}

IoStats SharedBufferPool::AggregateStats() const {
  IoStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total.accesses += shard->stats.accesses;
    total.misses += shard->stats.misses;
  }
  return total;
}

uint64_t SharedBufferPool::Evictions() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->evictions;
  }
  return total;
}

size_t SharedBufferPool::CachedPages() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->frames.size();
  }
  return total;
}

size_t SharedBufferPool::PinnedPages() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->pinned;
  }
  return total;
}

size_t SharedBufferPool::DirtyPages() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->dirty;
  }
  return total;
}

std::vector<SharedBufferPool::ShardOccupancy>
SharedBufferPool::ShardOccupancies() const {
  std::vector<ShardOccupancy> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    ShardOccupancy occupancy;
    occupancy.capacity = shard->capacity;
    occupancy.cached = shard->frames.size();
    occupancy.pinned = shard->pinned;
    occupancy.dirty = shard->dirty;
    out.push_back(occupancy);
  }
  return out;
}

void SharedBufferPool::PublishStats() {
  if (metric_scope_.empty()) return;
  std::lock_guard<std::mutex> publish_lock(publish_mutex_);
  const IoStats total = AggregateStats();
  const uint64_t evictions = Evictions();
  MetricRegistry& registry = MetricRegistry::Global();
  const uint64_t accesses = total.accesses - published_stats_.accesses;
  const uint64_t misses = total.misses - published_stats_.misses;
  if (accesses > 0) {
    registry.GetCounter("bufferpool." + metric_scope_ + ".accesses")
        ->Add(accesses);
    registry.GetCounter("bufferpool." + metric_scope_ + ".misses")->Add(misses);
  }
  const uint64_t eviction_delta = evictions - published_evictions_;
  if (eviction_delta > 0) {
    registry.GetCounter("bufferpool." + metric_scope_ + ".evictions")
        ->Add(eviction_delta);
  }
  published_stats_ = total;
  published_evictions_ = evictions;
}

SharedBufferPool::Session::Session(SharedBufferPool* pool,
                                   size_t protocol_pages)
    : pool_(pool), protocol_pages_(protocol_pages) {
  STINDEX_CHECK(pool != nullptr);
}

PageRef SharedBufferPool::Session::FetchPinned(PageId id) {
  ++stats_.accesses;
  ++lifetime_stats_.accesses;
  bool protocol_miss = false;
  if (protocol_pages_ > 0) {
    auto it = resident_.find(id);
    if (it != resident_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second = lru_.begin();
    } else {
      protocol_miss = true;
      // Evict before inserting, like BufferPool: the cache never holds
      // more than protocol_pages ids, and the victim is the exact LRU
      // tail (queries pin one page at a time, so the private pools this
      // accounting reproduces never skipped a pinned victim).
      if (lru_.size() >= protocol_pages_) {
        resident_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(id);
      resident_[id] = lru_.begin();
    }
  }
  bool pool_miss = false;
  Result<const Page*> page = pool_->Pin(id, &pool_miss);
  if (!page.ok()) {
    // The query path has no Status channel; undersizing the pool so far
    // that a shard cannot hold the concurrent pins is a setup error.
    STINDEX_CHECK_MSG(false, page.status().ToString().c_str());
  }
  if (protocol_pages_ > 0 ? protocol_miss : pool_miss) {
    ++stats_.misses;
    ++lifetime_stats_.misses;
  }
  return MakeRef(id, page.value());
}

void SharedBufferPool::Session::Unpin(PageId id) { pool_->Unpin(id); }

void SharedBufferPool::Session::ResetCache() {
  lru_.clear();
  resident_.clear();
}

}  // namespace stindex
