#ifndef STINDEX_STORAGE_PAGE_BACKEND_H_
#define STINDEX_STORAGE_PAGE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/page_codec.h"
#include "storage/page_store.h"
#include "util/status.h"

namespace stindex {

// A raw store of fixed-size pages addressed by PageId. Backends know
// nothing about node layouts — they move kPageSize byte blobs. The
// BufferPool sits in front of one, encoding/decoding nodes through a
// PageCodec and turning cache misses into actual backend reads.
//
// Concurrency: concurrent Read calls are safe (the parallel query drivers
// run one BufferPool per worker over a shared backend); Write/Free/Sync
// require external exclusion and in this codebase happen only while an
// index is being persisted, before any reader exists.
class PageBackend {
 public:
  virtual ~PageBackend() = default;

  // Size in bytes of every page; always kPageSize in this codebase.
  virtual size_t page_size() const = 0;

  // Copies page `id` into `out` (page_size() bytes). Reading a slot that
  // was never written or has been freed is InvalidArgument; an I/O
  // failure is IoError. Every error names the page id.
  virtual Status Read(PageId id, uint8_t* out) const = 0;

  // Writes page `id` from `data` (page_size() bytes), allocating the slot
  // if needed. Slots need not be written in order; the backend extends
  // itself to cover `id`.
  virtual Status Write(PageId id, const uint8_t* data) = 0;

  // Releases slot `id` for reuse. Freeing an unallocated slot is
  // InvalidArgument.
  virtual Status Free(PageId id) = 0;

  virtual bool IsAllocated(PageId id) const = 0;

  // One past the highest slot ever allocated.
  virtual size_t SlotCount() const = 0;

  // Number of currently allocated slots.
  virtual size_t LivePageCount() const = 0;

  // Durably persists all written pages and metadata.
  virtual Status Sync() = 0;

  // Short backend name for diagnostics ("memory", "file", "fault(...)").
  virtual std::string Name() const = 0;

  // Zero-copy read: a pointer to page `id`'s page_size() bytes, valid for
  // the backend's lifetime, or nullptr if this backend cannot lend stable
  // storage (the default). Borrowed pages are verified at open time, so
  // callers may decode straight from the span without re-reading. Only
  // immutable backends (the mmap snapshot) return non-null.
  virtual const uint8_t* BorrowPage(PageId id) const {
    (void)id;
    return nullptr;
  }
};

// Heap-backed PageBackend: pages live in malloc'd buffers. The byte-exact
// reference implementation the file backend is differentially tested
// against, and the substrate the fault-injection wrapper wraps in tests.
class MemoryPageBackend : public PageBackend {
 public:
  MemoryPageBackend() = default;

  MemoryPageBackend(const MemoryPageBackend&) = delete;
  MemoryPageBackend& operator=(const MemoryPageBackend&) = delete;

  size_t page_size() const override { return kPageSize; }
  Status Read(PageId id, uint8_t* out) const override;
  Status Write(PageId id, const uint8_t* data) override;
  Status Free(PageId id) override;
  bool IsAllocated(PageId id) const override;
  size_t SlotCount() const override { return slots_.size(); }
  size_t LivePageCount() const override { return live_count_; }
  Status Sync() override { return Status::OK(); }
  std::string Name() const override { return "memory"; }

 private:
  // nullptr = never written or freed.
  std::vector<std::unique_ptr<uint8_t[]>> slots_;
  size_t live_count_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_STORAGE_PAGE_BACKEND_H_
