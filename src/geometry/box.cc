#include "geometry/box.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace stindex {

Box3D Box3D::Empty() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return Box3D(kInf, kInf, kInf, -kInf, -kInf, -kInf);
}

double Box3D::Volume() const {
  if (IsEmpty()) return 0.0;
  return Extent(0) * Extent(1) * Extent(2);
}

double Box3D::Margin() const {
  if (IsEmpty()) return 0.0;
  return Extent(0) + Extent(1) + Extent(2);
}

bool Box3D::Intersects(const Box3D& b) const {
  for (int d = 0; d < 3; ++d) {
    if (lo[d] > b.hi[d] || b.lo[d] > hi[d]) return false;
  }
  return true;
}

bool Box3D::Contains(const Box3D& b) const {
  for (int d = 0; d < 3; ++d) {
    if (b.lo[d] < lo[d] || b.hi[d] > hi[d]) return false;
  }
  return true;
}

double Box3D::OverlapVolume(const Box3D& b) const {
  double volume = 1.0;
  for (int d = 0; d < 3; ++d) {
    const double extent = std::min(hi[d], b.hi[d]) - std::max(lo[d], b.lo[d]);
    if (extent <= 0.0) return 0.0;
    volume *= extent;
  }
  return volume;
}

Box3D Box3D::Union(const Box3D& b) const {
  Box3D out = *this;
  out.ExpandToInclude(b);
  return out;
}

void Box3D::ExpandToInclude(const Box3D& b) {
  for (int d = 0; d < 3; ++d) {
    lo[d] = std::min(lo[d], b.lo[d]);
    hi[d] = std::max(hi[d], b.hi[d]);
  }
}

double Box3D::Enlargement(const Box3D& b) const {
  return Union(b).Volume() - Volume();
}

std::string Box3D::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf), "[%g,%g]x[%g,%g]x[%g,%g]", lo[0], hi[0],
                lo[1], hi[1], lo[2], hi[2]);
  return buf;
}

}  // namespace stindex
