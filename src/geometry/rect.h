#ifndef STINDEX_GEOMETRY_RECT_H_
#define STINDEX_GEOMETRY_RECT_H_

#include <string>

#include "geometry/point.h"

namespace stindex {

// An axis-aligned rectangle on the plane (closed on all sides). This is
// the spatial MBR of an object at a time instant, and the spatial part of
// every index entry.
struct Rect2D {
  double xlo = 0.0;
  double ylo = 0.0;
  double xhi = 0.0;
  double yhi = 0.0;

  Rect2D() = default;
  Rect2D(double x_lo, double y_lo, double x_hi, double y_hi)
      : xlo(x_lo), ylo(y_lo), xhi(x_hi), yhi(y_hi) {}

  // A rectangle that acts as the identity for ExpandToInclude / Union:
  // empty, with inverted bounds.
  static Rect2D Empty();

  // True when the bounds are ordered (degenerate zero-extent rectangles,
  // i.e. points and segments, are valid).
  bool IsValid() const { return xlo <= xhi && ylo <= yhi; }

  bool IsEmpty() const { return xlo > xhi || ylo > yhi; }

  double Width() const { return xhi - xlo; }
  double Height() const { return yhi - ylo; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  // Half-perimeter; the "margin" of R*-tree split optimization.
  double Margin() const { return IsEmpty() ? 0.0 : Width() + Height(); }

  Point2D Center() const {
    return Point2D((xlo + xhi) / 2.0, (ylo + yhi) / 2.0);
  }

  bool Contains(const Point2D& p) const;
  bool Contains(const Rect2D& r) const;
  bool Intersects(const Rect2D& r) const;

  // Area of the intersection (0 when disjoint).
  double OverlapArea(const Rect2D& r) const;

  // Smallest rectangle covering both this and `r`.
  Rect2D Union(const Rect2D& r) const;

  // Common area of this and `r`; empty (inverted) when disjoint.
  Rect2D Intersection(const Rect2D& r) const;

  // Grows this rectangle in place to cover `r` (or `p`).
  void ExpandToInclude(const Rect2D& r);
  void ExpandToInclude(const Point2D& p);

  // Area increase of Union(r) relative to this rectangle.
  double Enlargement(const Rect2D& r) const;

  std::string ToString() const;

  friend bool operator==(const Rect2D&, const Rect2D&) = default;
};

}  // namespace stindex

#endif  // STINDEX_GEOMETRY_RECT_H_
