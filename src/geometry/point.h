#ifndef STINDEX_GEOMETRY_POINT_H_
#define STINDEX_GEOMETRY_POINT_H_

namespace stindex {

// A point on the 2-dimensional plane the objects move on.
struct Point2D {
  double x = 0.0;
  double y = 0.0;

  Point2D() = default;
  Point2D(double px, double py) : x(px), y(py) {}

  friend bool operator==(const Point2D&, const Point2D&) = default;
};

}  // namespace stindex

#endif  // STINDEX_GEOMETRY_POINT_H_
