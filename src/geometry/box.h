#ifndef STINDEX_GEOMETRY_BOX_H_
#define STINDEX_GEOMETRY_BOX_H_

#include <string>

#include "geometry/interval.h"
#include "geometry/rect.h"

namespace stindex {

// A 3-dimensional axis-aligned box (x, y, t as a continuous axis). This is
// the native key of the 3-D R*-tree; the time axis is scaled to the unit
// range before insertion, as in the paper's experimental setup.
struct Box3D {
  double lo[3] = {0.0, 0.0, 0.0};
  double hi[3] = {0.0, 0.0, 0.0};

  Box3D() = default;
  Box3D(double xlo, double ylo, double tlo, double xhi, double yhi,
        double thi) {
    lo[0] = xlo;
    lo[1] = ylo;
    lo[2] = tlo;
    hi[0] = xhi;
    hi[1] = yhi;
    hi[2] = thi;
  }

  // Identity element for Union / ExpandToInclude.
  static Box3D Empty();

  bool IsValid() const {
    return lo[0] <= hi[0] && lo[1] <= hi[1] && lo[2] <= hi[2];
  }
  bool IsEmpty() const {
    return lo[0] > hi[0] || lo[1] > hi[1] || lo[2] > hi[2];
  }

  double Extent(int dim) const { return hi[dim] - lo[dim]; }
  double Volume() const;
  // Sum of extents; the 3-D "margin" used by the R* split heuristic.
  double Margin() const;

  bool Intersects(const Box3D& b) const;
  bool Contains(const Box3D& b) const;
  double OverlapVolume(const Box3D& b) const;

  Box3D Union(const Box3D& b) const;
  void ExpandToInclude(const Box3D& b);
  double Enlargement(const Box3D& b) const;

  std::string ToString() const;

  friend bool operator==(const Box3D&, const Box3D&) = default;
};

// A spatiotemporal box: a spatial rectangle held over a discrete lifetime
// interval. This is the unit the splitting algorithms optimize — the
// "volume" they minimize is spatial area x discrete duration.
struct STBox {
  Rect2D rect;
  TimeInterval interval;

  STBox() = default;
  STBox(const Rect2D& r, const TimeInterval& i) : rect(r), interval(i) {}

  bool IsValid() const { return rect.IsValid() && interval.IsValid(); }

  // Spatial area times number of instants covered.
  double Volume() const {
    return rect.Area() * static_cast<double>(interval.Duration());
  }

  bool Intersects(const STBox& other) const {
    return rect.Intersects(other.rect) && interval.Intersects(other.interval);
  }

  // Covers both boxes in space and time.
  STBox Union(const STBox& other) const {
    return STBox(rect.Union(other.rect), interval.Union(other.interval));
  }

  // Continuous 3-D view with the time axis mapped by t -> (t - t0) * scale.
  // Passing the dataset's time origin / extent normalizes time to [0, 1],
  // matching how the paper feeds the 3-D R*-tree.
  Box3D ToBox3D(Time t0, double scale) const {
    return Box3D(rect.xlo, rect.ylo,
                 static_cast<double>(interval.start - t0) * scale, rect.xhi,
                 rect.yhi, static_cast<double>(interval.end - t0) * scale);
  }

  friend bool operator==(const STBox&, const STBox&) = default;
};

}  // namespace stindex

#endif  // STINDEX_GEOMETRY_BOX_H_
