#ifndef STINDEX_GEOMETRY_INTERVAL_H_
#define STINDEX_GEOMETRY_INTERVAL_H_

#include <algorithm>
#include <cstdint>

#include "util/check.h"

namespace stindex {

// Discrete time instant. The paper assumes time is a succession of
// increasing integers; all datasets use the domain [0, 1000).
using Time = int64_t;

// Sentinel deletion time for records that are still alive ("now").
inline constexpr Time kTimeInfinity = INT64_MAX;

// Half-open lifetime interval [start, end). An object alive during
// [t_i, t_j) exists at instants t_i, t_i+1, ..., t_j-1.
struct TimeInterval {
  Time start = 0;
  Time end = 0;

  TimeInterval() = default;
  TimeInterval(Time s, Time e) : start(s), end(e) {}

  bool IsValid() const { return start < end; }

  // Number of discrete instants covered.
  Time Duration() const { return end - start; }

  bool Contains(Time t) const { return t >= start && t < end; }

  bool Contains(const TimeInterval& other) const {
    return start <= other.start && other.end <= end;
  }

  bool Intersects(const TimeInterval& other) const {
    return start < other.end && other.start < end;
  }

  // Intersection with `other`; only meaningful when Intersects(other).
  TimeInterval Intersection(const TimeInterval& other) const {
    return TimeInterval(std::max(start, other.start), std::min(end, other.end));
  }

  // Smallest interval covering both.
  TimeInterval Union(const TimeInterval& other) const {
    return TimeInterval(std::min(start, other.start), std::max(end, other.end));
  }

  friend bool operator==(const TimeInterval&, const TimeInterval&) = default;
};

}  // namespace stindex

#endif  // STINDEX_GEOMETRY_INTERVAL_H_
