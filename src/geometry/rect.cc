#include "geometry/rect.h"

#include <algorithm>
#include <cstdio>
#include <limits>

namespace stindex {

Rect2D Rect2D::Empty() {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  return Rect2D(kInf, kInf, -kInf, -kInf);
}

bool Rect2D::Contains(const Point2D& p) const {
  return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
}

bool Rect2D::Contains(const Rect2D& r) const {
  return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
}

bool Rect2D::Intersects(const Rect2D& r) const {
  return xlo <= r.xhi && r.xlo <= xhi && ylo <= r.yhi && r.ylo <= yhi;
}

double Rect2D::OverlapArea(const Rect2D& r) const {
  const double w = std::min(xhi, r.xhi) - std::max(xlo, r.xlo);
  if (w <= 0.0) return 0.0;
  const double h = std::min(yhi, r.yhi) - std::max(ylo, r.ylo);
  if (h <= 0.0) return 0.0;
  return w * h;
}

Rect2D Rect2D::Union(const Rect2D& r) const {
  return Rect2D(std::min(xlo, r.xlo), std::min(ylo, r.ylo),
                std::max(xhi, r.xhi), std::max(yhi, r.yhi));
}

Rect2D Rect2D::Intersection(const Rect2D& r) const {
  return Rect2D(std::max(xlo, r.xlo), std::max(ylo, r.ylo),
                std::min(xhi, r.xhi), std::min(yhi, r.yhi));
}

void Rect2D::ExpandToInclude(const Rect2D& r) {
  xlo = std::min(xlo, r.xlo);
  ylo = std::min(ylo, r.ylo);
  xhi = std::max(xhi, r.xhi);
  yhi = std::max(yhi, r.yhi);
}

void Rect2D::ExpandToInclude(const Point2D& p) {
  xlo = std::min(xlo, p.x);
  ylo = std::min(ylo, p.y);
  xhi = std::max(xhi, p.x);
  yhi = std::max(yhi, p.y);
}

double Rect2D::Enlargement(const Rect2D& r) const {
  return Union(r).Area() - Area();
}

std::string Rect2D::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%g,%g]x[%g,%g]", xlo, xhi, ylo, yhi);
  return buf;
}

}  // namespace stindex
