#include "rstar/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/query_profile.h"
#include "storage/shared_buffer_pool.h"
#include "util/check.h"
#include "util/hilbert.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {

// A node occupies one page. `level` 0 means leaf; internal entries point
// at children one level below.
class RStarTree::Node : public Page {
 public:
  struct Entry {
    Box3D box;
    PageId child = kInvalidPage;  // internal nodes
    DataId data = 0;              // leaves
  };

  explicit Node(int level) : level_(level) {}

  int level() const { return level_; }
  bool IsLeaf() const { return level_ == 0; }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  Box3D Mbr() const {
    Box3D mbr = Box3D::Empty();
    for (const Entry& entry : entries_) mbr.ExpandToInclude(entry.box);
    return mbr;
  }

 private:
  int level_;
  std::vector<Entry> entries_;
};

// Serializes nodes to sealed pages. Payload layout (little-endian):
//   int32   level
//   uint64  entry count (encode CHECKs the configured fanout bound)
//   entries: Box3D (48 bytes), PageId, DataId
class RStarTree::NodeCodec : public PageCodec {
 public:
  explicit NodeCodec(size_t max_entries) : max_entries_(max_entries) {}

  void Encode(const Page& page, uint8_t* out) const override {
    const Node& node = static_cast<const Node&>(page);
    STINDEX_CHECK_MSG(node.entries().size() <= max_entries_,
                      "R*-tree node exceeds the configured fanout");
    PageWriter writer = PayloadWriter(out);
    writer.Write(static_cast<int32_t>(node.level()));
    writer.Write(static_cast<uint64_t>(node.entries().size()));
    for (const Node::Entry& entry : node.entries()) {
      writer.Write(entry.box);
      writer.Write(entry.child);
      writer.Write(entry.data);
    }
    SealPage(out, PageKind::kRStarNode);
  }

  Result<std::unique_ptr<Page>> Decode(const uint8_t* page,
                                       PageId id) const override {
    Result<PageReader> payload =
        OpenPagePayload(page, PageKind::kRStarNode, id);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    int32_t level = 0;
    uint64_t count = 0;
    if (!reader.Read(&level) || !reader.Read(&count)) {
      return Status::InvalidArgument("page " + std::to_string(id) +
                                     ": short R*-tree node header");
    }
    if (level < 0 || count > max_entries_) {
      return Status::InvalidArgument(
          "page " + std::to_string(id) + ": implausible R*-tree node (level " +
          std::to_string(level) + ", " + std::to_string(count) + " entries)");
    }
    auto node = std::make_unique<Node>(static_cast<int>(level));
    node->entries().resize(static_cast<size_t>(count));
    for (Node::Entry& entry : node->entries()) {
      if (!reader.Read(&entry.box) || !reader.Read(&entry.child) ||
          !reader.Read(&entry.data)) {
        return Status::InvalidArgument("page " + std::to_string(id) +
                                       ": truncated R*-tree node entries");
      }
    }
    return std::unique_ptr<Page>(std::move(node));
  }

 private:
  size_t max_entries_;
};

RStarTree::RStarTree(RStarConfig config) : config_(config) {
  STINDEX_CHECK(config_.max_entries >= 4);
  STINDEX_CHECK(config_.min_entries >= 2);
  STINDEX_CHECK(config_.min_entries <= config_.max_entries / 2);
  STINDEX_CHECK(config_.reinsert_count >= 1);
  STINDEX_CHECK(config_.reinsert_count < config_.max_entries);
  store_.SetMetricScope("rstar");
  buffer_ = std::make_unique<BufferPool>(&store_, config_.buffer_pages, "rstar");
}

RStarTree::~RStarTree() {
  if (root_ != kInvalidPage) {
    MetricRegistry::Global().GetGauge("rstar.height")->SetMax(Height());
  }
  // The default buffer publishes its lifetime I/O; it must die before the
  // store it reads from.
  buffer_.reset();
}

RStarTree::Node* RStarTree::GetNode(PageId id) const {
  return static_cast<Node*>(store_.Get(id));
}

std::unique_ptr<BufferPool> RStarTree::NewQueryBuffer(size_t pages) const {
  const size_t capacity = pages == 0 ? config_.buffer_pages : pages;
  if (backend_ != nullptr) {
    return std::make_unique<BufferPool>(backend_.get(), codec_.get(), capacity,
                                        "rstar");
  }
  return std::make_unique<BufferPool>(&store_, capacity, "rstar");
}

std::unique_ptr<SharedBufferPool> RStarTree::NewSharedQueryPool(
    size_t pages) const {
  SharedBufferPoolOptions options;
  options.capacity = pages == 0 ? config_.buffer_pages : pages;
  options.pin_overflow = true;
  options.metric_scope = "rstar.shared";
  if (backend_ != nullptr) {
    return std::make_unique<SharedBufferPool>(backend_.get(), codec_.get(),
                                              options);
  }
  return std::make_unique<SharedBufferPool>(&store_, options);
}

Status RStarTree::PersistAllNodes() {
  // A write-back pool sized like the query buffer: with more nodes than
  // frames, dirty evictions stream pages to the backend while the tail is
  // flushed explicitly — the real write path, not a bulk memcpy.
  BufferPool writer(backend_.get(), codec_.get(), config_.buffer_pages,
                    "rstar");
  for (PageId id = 0; id < store_.AllocatedCount(); ++id) {
    if (!store_.IsLive(id)) continue;
    const Node* node = GetNode(id);
    auto clone = std::make_unique<Node>(node->level());
    clone->entries() = node->entries();
    Status status = writer.Put(id, std::move(clone));
    if (!status.ok()) return status;
  }
  return writer.FlushAll();
}

Status RStarTree::AttachBackend(std::unique_ptr<PageBackend> backend) {
  STINDEX_CHECK_MSG(backend_ == nullptr, "backend already attached");
  STINDEX_CHECK(backend != nullptr);
  TraceSpan span("rstar", "attach_backend");
  span.Arg("pages", static_cast<int64_t>(store_.PageCount()));
  backend_ = std::move(backend);
  codec_ = std::make_unique<NodeCodec>(config_.max_entries);
  Status status = PersistAllNodes();
  if (status.ok()) status = backend_->Sync();
  if (!status.ok()) {
    codec_.reset();
    backend_.reset();
    return status;
  }
  buffer_ = std::make_unique<BufferPool>(backend_.get(), codec_.get(),
                                         config_.buffer_pages, "rstar");
  return Status::OK();
}

Status RStarTree::PackSnapshot(const std::string& path,
                               const SnapshotFile::Options& options) {
  STINDEX_CHECK_MSG(backend_ == nullptr, "backend already attached");
  TraceSpan span("rstar", "pack_snapshot");
  span.Arg("pages", static_cast<int64_t>(store_.PageCount()));
  // Deletes can leave freed holes in the id space; packing keeps only the
  // live nodes, sorted bottom-up (level, then id) so every level occupies
  // one contiguous extent of the snapshot.
  std::vector<PageId> order;
  order.reserve(store_.PageCount());
  for (PageId id = 0; id < store_.AllocatedCount(); ++id) {
    if (store_.IsLive(id)) order.push_back(id);
  }
  std::stable_sort(order.begin(), order.end(), [this](PageId a, PageId b) {
    return GetNode(a)->level() < GetNode(b)->level();
  });
  std::vector<PageId> remap(store_.AllocatedCount(), kInvalidPage);
  for (size_t slot = 0; slot < order.size(); ++slot) {
    remap[order[slot]] = static_cast<PageId>(slot);
  }
  // Rewrite the whole in-memory graph through the bijection first, so the
  // tree stays consistent (and still queryable from the store) even if
  // writing the snapshot fails below.
  for (PageId old_id : order) {
    Node* node = GetNode(old_id);
    if (node->IsLeaf()) continue;
    for (Node::Entry& entry : node->entries()) entry.child = remap[entry.child];
  }
  if (root_ != kInvalidPage) root_ = remap[root_];
  store_.Reindex(remap);

  const size_t count = order.size();
  Result<std::unique_ptr<SnapshotWriter>> writer = SnapshotWriter::Create(path);
  if (!writer.ok()) return writer.status();
  const NodeCodec codec(config_.max_entries);
  uint8_t page[kPageSize];
  for (PageId slot = 0; slot < count; ++slot) {
    const Node* node = GetNode(slot);
    codec.Encode(*node, page);
    Status status =
        writer.value()->Append(static_cast<uint32_t>(node->level()), page);
    if (!status.ok()) return status;
  }
  Status status = writer.value()->Finish();
  if (!status.ok()) return status;
  Result<std::unique_ptr<MmapSnapshotBackend>> backend =
      MmapSnapshotBackend::Open(path, options);
  if (!backend.ok()) return backend.status();
  backend_ = std::move(backend).value();
  codec_ = std::make_unique<NodeCodec>(config_.max_entries);
  buffer_ = std::make_unique<BufferPool>(backend_.get(), codec_.get(),
                                         config_.buffer_pages, "rstar");
  return Status::OK();
}

size_t RStarTree::Height() const {
  if (root_ == kInvalidPage) return 0;
  return static_cast<size_t>(GetNode(root_)->level()) + 1;
}

void RStarTree::ResetQueryState() const {
  buffer_->ResetCache();
  buffer_->ResetStats();
}

namespace {

// Chunk boundaries for packing `total` entries into nodes of at most
// `capacity`, keeping every node at or above `min_fill` by rebalancing
// the final pair.
std::vector<size_t> PackChunkSizes(size_t total, size_t capacity,
                                   size_t min_fill) {
  std::vector<size_t> sizes;
  size_t remaining = total;
  while (remaining > 0) {
    if (remaining >= capacity + min_fill || remaining <= capacity) {
      const size_t take = std::min(remaining, capacity);
      sizes.push_back(take);
      remaining -= take;
    } else {
      // Splitting the tail evenly keeps both nodes >= min_fill.
      sizes.push_back(remaining / 2);
      sizes.push_back(remaining - remaining / 2);
      remaining = 0;
    }
  }
  return sizes;
}

}  // namespace

std::unique_ptr<RStarTree> RStarTree::BulkLoad(
    const std::vector<Box3D>& boxes, PackingMethod method,
    RStarConfig config) {
  auto tree = std::make_unique<RStarTree>(config);
  if (boxes.empty()) return tree;
  TraceSpan span("rstar", "bulk_load");
  span.Arg("boxes", static_cast<int64_t>(boxes.size()));

  // Order the items along the packing curve.
  std::vector<size_t> order(boxes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  auto center = [&boxes](size_t i, int d) {
    return (boxes[i].lo[d] + boxes[i].hi[d]) / 2.0;
  };

  if (method == PackingMethod::kHilbert) {
    // Quantize centers to a 16-bit grid over the data bounding box.
    Box3D bounds = Box3D::Empty();
    for (const Box3D& box : boxes) bounds.ExpandToInclude(box);
    const int kBits = 16;
    const double cells = static_cast<double>((1 << kBits) - 1);
    std::vector<uint64_t> keys(boxes.size());
    for (size_t i = 0; i < boxes.size(); ++i) {
      uint32_t q[3];
      for (int d = 0; d < 3; ++d) {
        const double extent = bounds.Extent(d);
        const double normalized =
            extent > 0.0 ? (center(i, d) - bounds.lo[d]) / extent : 0.0;
        q[d] = static_cast<uint32_t>(normalized * cells);
      }
      keys[i] = HilbertIndex3D(q[0], q[1], q[2], kBits);
    }
    std::sort(order.begin(), order.end(),
              [&keys](size_t a, size_t b) { return keys[a] < keys[b]; });
  } else {
    // STR: x-slabs, then y-runs, then t within each run.
    const size_t leaf_count =
        (boxes.size() + config.max_entries - 1) / config.max_entries;
    const size_t slices = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(
               std::cbrt(static_cast<double>(leaf_count)))));
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return center(a, 0) < center(b, 0);
    });
    const size_t slab = (order.size() + slices - 1) / slices;
    for (size_t lo = 0; lo < order.size(); lo += slab) {
      const size_t hi = std::min(order.size(), lo + slab);
      std::sort(order.begin() + static_cast<long>(lo),
                order.begin() + static_cast<long>(hi),
                [&](size_t a, size_t b) { return center(a, 1) < center(b, 1); });
      const size_t run = (hi - lo + slices - 1) / slices;
      for (size_t rlo = lo; rlo < hi; rlo += run) {
        const size_t rhi = std::min(hi, rlo + run);
        std::sort(order.begin() + static_cast<long>(rlo),
                  order.begin() + static_cast<long>(rhi), [&](size_t a,
                                                              size_t b) {
                    return center(a, 2) < center(b, 2);
                  });
      }
    }
  }

  // Pack leaves, then upper levels, in curve order.
  struct Placed {
    Box3D mbr;
    PageId page;
  };
  std::vector<Placed> level_nodes;
  {
    size_t cursor = 0;
    for (size_t take :
         PackChunkSizes(order.size(), config.max_entries,
                        config.min_entries)) {
      auto node = std::make_unique<Node>(0);
      Box3D mbr = Box3D::Empty();
      for (size_t i = 0; i < take; ++i, ++cursor) {
        Node::Entry entry;
        entry.box = boxes[order[cursor]];
        entry.data = static_cast<DataId>(order[cursor]);
        mbr.ExpandToInclude(entry.box);
        node->entries().push_back(entry);
      }
      level_nodes.push_back(
          Placed{mbr, tree->store_.Allocate(std::move(node))});
    }
  }
  int level = 0;
  while (level_nodes.size() > 1) {
    ++level;
    std::vector<Placed> parents;
    size_t cursor = 0;
    for (size_t take :
         PackChunkSizes(level_nodes.size(), config.max_entries,
                        config.min_entries)) {
      auto node = std::make_unique<Node>(level);
      Box3D mbr = Box3D::Empty();
      for (size_t i = 0; i < take; ++i, ++cursor) {
        Node::Entry entry;
        entry.box = level_nodes[cursor].mbr;
        entry.child = level_nodes[cursor].page;
        mbr.ExpandToInclude(entry.box);
        node->entries().push_back(entry);
      }
      parents.push_back(Placed{mbr, tree->store_.Allocate(std::move(node))});
    }
    level_nodes = std::move(parents);
  }
  tree->root_ = level_nodes.front().page;
  tree->size_ = boxes.size();
  tree->reinserted_on_level_.assign(static_cast<size_t>(level) + 1, false);
  return tree;
}

void RStarTree::Insert(const Box3D& box, DataId data) {
  STINDEX_CHECK_MSG(backend_ == nullptr,
                    "RStarTree is frozen after AttachBackend");
  STINDEX_CHECK_MSG(box.IsValid(), "inserting an invalid box");
  if (root_ == kInvalidPage) {
    root_ = store_.Allocate(std::make_unique<Node>(0));
    reinserted_on_level_.assign(1, false);
  }
  std::fill(reinserted_on_level_.begin(), reinserted_on_level_.end(), false);
  InsertEntry(box, kInvalidPage, data, /*target_level=*/0,
              /*allow_reinsert=*/true);
  ++size_;
}

void RStarTree::ChoosePath(const Box3D& box, int target_level,
                           std::vector<PageId>* path_nodes,
                           std::vector<size_t>* path_slots) const {
  path_nodes->clear();
  path_slots->clear();
  PageId current = root_;
  path_nodes->push_back(current);
  Node* node = GetNode(current);
  while (node->level() > target_level) {
    const std::vector<Node::Entry>& entries = node->entries();
    STINDEX_CHECK(!entries.empty());
    size_t best = 0;
    if (node->level() == 1 && config_.split == SplitStrategy::kRStar) {
      // Children are leaves: minimize overlap enlargement (R* CS2), ties
      // broken by volume enlargement, then volume. The Guttman variants
      // use the classic least-enlargement rule at every level.
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < entries.size(); ++i) {
        const Box3D enlarged = entries[i].box.Union(box);
        double overlap_before = 0.0;
        double overlap_after = 0.0;
        for (size_t j = 0; j < entries.size(); ++j) {
          if (j == i) continue;
          overlap_before += entries[i].box.OverlapVolume(entries[j].box);
          overlap_after += enlarged.OverlapVolume(entries[j].box);
        }
        const double overlap_delta = overlap_after - overlap_before;
        const double enlargement = entries[i].box.Enlargement(box);
        const double volume = entries[i].box.Volume();
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             (enlargement < best_enlargement ||
              (enlargement == best_enlargement && volume < best_volume)))) {
          best = i;
          best_overlap_delta = overlap_delta;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
    } else {
      // Children are internal: minimize volume enlargement, ties by
      // volume.
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < entries.size(); ++i) {
        const double enlargement = entries[i].box.Enlargement(box);
        const double volume = entries[i].box.Volume();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)) {
          best = i;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
    }
    path_slots->push_back(best);
    current = entries[best].child;
    path_nodes->push_back(current);
    node = GetNode(current);
  }
}

void RStarTree::AdjustPath(const std::vector<PageId>& path_nodes,
                           const std::vector<size_t>& path_slots) const {
  for (size_t i = path_nodes.size(); i-- > 1;) {
    Node* child = GetNode(path_nodes[i]);
    Node* parent = GetNode(path_nodes[i - 1]);
    parent->entries()[path_slots[i - 1]].box = child->Mbr();
  }
}

void RStarTree::InsertEntry(const Box3D& box, PageId child, DataId data,
                            int target_level, bool allow_reinsert) {
  std::vector<PageId> path_nodes;
  std::vector<size_t> path_slots;
  ChoosePath(box, target_level, &path_nodes, &path_slots);

  Node* node = GetNode(path_nodes.back());
  STINDEX_CHECK(node->level() == target_level);
  Node::Entry entry;
  entry.box = box;
  entry.child = child;
  entry.data = data;
  node->entries().push_back(entry);
  AdjustPath(path_nodes, path_slots);

  if (node->entries().size() > config_.max_entries) {
    HandleOverflow(path_nodes, path_slots, allow_reinsert);
  }
}

void RStarTree::HandleOverflow(std::vector<PageId>& path_nodes,
                               std::vector<size_t>& path_slots,
                               bool allow_reinsert) {
  Node* node = GetNode(path_nodes.back());
  const size_t level = static_cast<size_t>(node->level());
  const bool is_root = path_nodes.size() == 1;
  if (!is_root && allow_reinsert && config_.forced_reinsert &&
      !reinserted_on_level_[level]) {
    Reinsert(path_nodes, path_slots);
  } else {
    SplitNode(path_nodes, path_slots);
  }
}

void RStarTree::Reinsert(std::vector<PageId>& path_nodes,
                         std::vector<size_t>& path_slots) {
  Node* node = GetNode(path_nodes.back());
  const size_t level = static_cast<size_t>(node->level());
  reinserted_on_level_[level] = true;
  static Counter* const reinsertions =
      MetricRegistry::Global().GetCounter("rstar.reinsertions");
  reinsertions->Increment();

  // Order entries by distance of their box center from the node MBR
  // center; the `reinsert_count` furthest leave the node.
  const Box3D node_mbr = node->Mbr();
  double center[3];
  for (int d = 0; d < 3; ++d) center[d] = (node_mbr.lo[d] + node_mbr.hi[d]) / 2;

  std::vector<Node::Entry>& entries = node->entries();
  auto distance2 = [&center](const Node::Entry& entry) {
    double sum = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double delta = (entry.box.lo[d] + entry.box.hi[d]) / 2 - center[d];
      sum += delta * delta;
    }
    return sum;
  };
  std::stable_sort(entries.begin(), entries.end(),
                   [&distance2](const Node::Entry& a, const Node::Entry& b) {
                     return distance2(a) < distance2(b);
                   });

  const size_t keep = entries.size() - config_.reinsert_count;
  std::vector<Node::Entry> removed(entries.begin() + static_cast<long>(keep),
                                   entries.end());
  entries.resize(keep);
  AdjustPath(path_nodes, path_slots);

  // Close reinsert: closest of the removed entries first.
  for (const Node::Entry& entry : removed) {
    InsertEntry(entry.box, entry.child, entry.data, static_cast<int>(level),
                /*allow_reinsert=*/true);
  }
}

namespace {

// One candidate split: entries sorted one way, first `split_point` go left.
struct SplitChoice {
  int axis = 0;
  bool by_upper = false;
  size_t split_point = 0;
};

}  // namespace

namespace {

// The R* split (CSA1 + CSI1): margin-driven axis choice, then the
// min-overlap distribution. Leaves the left group in *entries and
// returns the right group.
template <typename Entry>
std::vector<Entry> RStarPartition(std::vector<Entry>* entry_list,
                                  size_t min_fill) {
  std::vector<Entry>& entries = *entry_list;
  const size_t total = entries.size();

  auto sort_entries = [&entries](int axis, bool by_upper) {
    std::stable_sort(entries.begin(), entries.end(),
                     [axis, by_upper](const Entry& a, const Entry& b) {
                       return by_upper ? a.box.hi[axis] < b.box.hi[axis]
                                       : a.box.lo[axis] < b.box.lo[axis];
                     });
  };

  // Prefix/suffix MBRs for the current entry order.
  std::vector<Box3D> prefix(total), suffix(total);
  auto compute_group_mbrs = [&]() {
    Box3D acc = Box3D::Empty();
    for (size_t i = 0; i < total; ++i) {
      acc.ExpandToInclude(entries[i].box);
      prefix[i] = acc;
    }
    acc = Box3D::Empty();
    for (size_t i = total; i-- > 0;) {
      acc.ExpandToInclude(entries[i].box);
      suffix[i] = acc;
    }
  };

  // CSA1: choose the axis with minimum total margin over all candidate
  // distributions of both sorts.
  int best_axis = 0;
  double best_margin = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < 3; ++axis) {
    double margin_sum = 0.0;
    for (bool by_upper : {false, true}) {
      sort_entries(axis, by_upper);
      compute_group_mbrs();
      for (size_t k = min_fill; k <= total - min_fill; ++k) {
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
    }
    if (margin_sum < best_margin) {
      best_margin = margin_sum;
      best_axis = axis;
    }
  }

  // CSI1: on the chosen axis, pick the distribution with minimum overlap
  // between the groups, ties by minimum total volume.
  SplitChoice best_choice;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (bool by_upper : {false, true}) {
    sort_entries(best_axis, by_upper);
    compute_group_mbrs();
    for (size_t k = min_fill; k <= total - min_fill; ++k) {
      const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
      const double volume = prefix[k - 1].Volume() + suffix[k].Volume();
      if (overlap < best_overlap ||
          (overlap == best_overlap && volume < best_volume)) {
        best_overlap = overlap;
        best_volume = volume;
        best_choice = SplitChoice{best_axis, by_upper, k};
      }
    }
  }

  sort_entries(best_choice.axis, best_choice.by_upper);
  std::vector<Entry> right(
      entries.begin() + static_cast<long>(best_choice.split_point),
      entries.end());
  entries.resize(best_choice.split_point);
  return right;
}

// Guttman's quadratic split: seed with the pair wasting the most volume,
// then repeatedly place the entry with the strongest preference into the
// group that needs it less badly, honoring the fill bound.
template <typename Entry>
std::vector<Entry> QuadraticPartition(std::vector<Entry>* entry_list,
                                      size_t min_fill) {
  std::vector<Entry> pool;
  pool.swap(*entry_list);
  std::vector<Entry>& left = *entry_list;
  std::vector<Entry> right;

  size_t seed_a = 0, seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < pool.size(); ++i) {
    for (size_t j = i + 1; j < pool.size(); ++j) {
      const double waste = pool[i].box.Union(pool[j].box).Volume() -
                           pool[i].box.Volume() - pool[j].box.Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  Box3D left_mbr = pool[seed_a].box;
  Box3D right_mbr = pool[seed_b].box;
  left.push_back(pool[seed_a]);
  right.push_back(pool[seed_b]);
  std::vector<bool> placed(pool.size(), false);
  placed[seed_a] = placed[seed_b] = true;
  size_t remaining = pool.size() - 2;

  while (remaining > 0) {
    // Fill guarantee: when a group needs every remaining entry to reach
    // the minimum, it takes them all.
    if (left.size() + remaining == min_fill) {
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!placed[i]) left.push_back(pool[i]);
      }
      return right;
    }
    if (right.size() + remaining == min_fill) {
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!placed[i]) right.push_back(pool[i]);
      }
      return right;
    }
    // PickNext: strongest preference first.
    size_t pick = SIZE_MAX;
    double best_difference = -1.0;
    double pick_left_grow = 0.0, pick_right_grow = 0.0;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (placed[i]) continue;
      const double grow_left = left_mbr.Enlargement(pool[i].box);
      const double grow_right = right_mbr.Enlargement(pool[i].box);
      const double difference = std::abs(grow_left - grow_right);
      if (difference > best_difference) {
        best_difference = difference;
        pick = i;
        pick_left_grow = grow_left;
        pick_right_grow = grow_right;
      }
    }
    placed[pick] = true;
    --remaining;
    const bool go_left =
        pick_left_grow < pick_right_grow ||
        (pick_left_grow == pick_right_grow && left.size() <= right.size());
    if (go_left) {
      left.push_back(pool[pick]);
      left_mbr.ExpandToInclude(pool[pick].box);
    } else {
      right.push_back(pool[pick]);
      right_mbr.ExpandToInclude(pool[pick].box);
    }
  }
  return right;
}

// Guttman's linear split: seeds with the greatest normalized separation,
// remaining entries by least enlargement.
template <typename Entry>
std::vector<Entry> LinearPartition(std::vector<Entry>* entry_list,
                                   size_t min_fill) {
  std::vector<Entry> pool;
  pool.swap(*entry_list);
  std::vector<Entry>& left = *entry_list;
  std::vector<Entry> right;

  size_t seed_a = 0, seed_b = 1;
  double best_separation = -std::numeric_limits<double>::infinity();
  for (int d = 0; d < 3; ++d) {
    size_t highest_lo = 0, lowest_hi = 0;
    double lo_min = std::numeric_limits<double>::infinity();
    double hi_max = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < pool.size(); ++i) {
      if (pool[i].box.lo[d] > pool[highest_lo].box.lo[d]) highest_lo = i;
      if (pool[i].box.hi[d] < pool[lowest_hi].box.hi[d]) lowest_hi = i;
      lo_min = std::min(lo_min, pool[i].box.lo[d]);
      hi_max = std::max(hi_max, pool[i].box.hi[d]);
    }
    if (highest_lo == lowest_hi) continue;
    const double extent = hi_max - lo_min;
    const double separation =
        extent > 0.0 ? (pool[highest_lo].box.lo[d] -
                        pool[lowest_hi].box.hi[d]) /
                           extent
                     : 0.0;
    if (separation > best_separation) {
      best_separation = separation;
      seed_a = lowest_hi;
      seed_b = highest_lo;
    }
  }
  Box3D left_mbr = pool[seed_a].box;
  Box3D right_mbr = pool[seed_b].box;
  left.push_back(pool[seed_a]);
  right.push_back(pool[seed_b]);
  size_t remaining = pool.size() - 2;
  for (size_t i = 0; i < pool.size(); ++i) {
    if (i == seed_a || i == seed_b) continue;
    if (left.size() + remaining == min_fill) {
      left.push_back(pool[i]);
      left_mbr.ExpandToInclude(pool[i].box);
      --remaining;
      continue;
    }
    if (right.size() + remaining == min_fill) {
      right.push_back(pool[i]);
      right_mbr.ExpandToInclude(pool[i].box);
      --remaining;
      continue;
    }
    --remaining;
    const double grow_left = left_mbr.Enlargement(pool[i].box);
    const double grow_right = right_mbr.Enlargement(pool[i].box);
    if (grow_left < grow_right ||
        (grow_left == grow_right && left.size() <= right.size())) {
      left.push_back(pool[i]);
      left_mbr.ExpandToInclude(pool[i].box);
    } else {
      right.push_back(pool[i]);
      right_mbr.ExpandToInclude(pool[i].box);
    }
  }
  return right;
}

}  // namespace

void RStarTree::SplitNode(std::vector<PageId>& path_nodes,
                          std::vector<size_t>& path_slots) {
  Node* node = GetNode(path_nodes.back());
  std::vector<Node::Entry>& entries = node->entries();
  const size_t min_fill = config_.min_entries;
  STINDEX_CHECK(entries.size() == config_.max_entries + 1);
  static Counter* const node_splits =
      MetricRegistry::Global().GetCounter("rstar.node_splits");
  node_splits->Increment();

  std::vector<Node::Entry> right_group;
  switch (config_.split) {
    case SplitStrategy::kRStar:
      right_group = RStarPartition(&entries, min_fill);
      break;
    case SplitStrategy::kQuadratic:
      right_group = QuadraticPartition(&entries, min_fill);
      break;
    case SplitStrategy::kLinear:
      right_group = LinearPartition(&entries, min_fill);
      break;
  }
  auto sibling = std::make_unique<Node>(node->level());
  sibling->entries() = std::move(right_group);
  const Box3D left_mbr = node->Mbr();
  const Box3D right_mbr = sibling->Mbr();
  const PageId sibling_id = store_.Allocate(std::move(sibling));

  if (path_nodes.size() == 1) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>(node->level() + 1);
    Node::Entry left_entry;
    left_entry.box = left_mbr;
    left_entry.child = path_nodes.back();
    Node::Entry right_entry;
    right_entry.box = right_mbr;
    right_entry.child = sibling_id;
    new_root->entries().push_back(left_entry);
    new_root->entries().push_back(right_entry);
    root_ = store_.Allocate(std::move(new_root));
    reinserted_on_level_.push_back(false);
    return;
  }

  // Update the parent: refresh the split node's entry, add the sibling.
  Node* parent = GetNode(path_nodes[path_nodes.size() - 2]);
  parent->entries()[path_slots.back()].box = left_mbr;
  Node::Entry sibling_entry;
  sibling_entry.box = right_mbr;
  sibling_entry.child = sibling_id;
  parent->entries().push_back(sibling_entry);

  path_nodes.pop_back();
  path_slots.pop_back();
  AdjustPath(path_nodes, path_slots);

  if (parent->entries().size() > config_.max_entries) {
    HandleOverflow(path_nodes, path_slots, /*allow_reinsert=*/true);
  }
}

namespace {

// Minimum distance from a point to a box (0 inside).
double MinDistance2(const double point[3], const Box3D& box) {
  double sum = 0.0;
  for (int d = 0; d < 3; ++d) {
    double delta = 0.0;
    if (point[d] < box.lo[d]) {
      delta = box.lo[d] - point[d];
    } else if (point[d] > box.hi[d]) {
      delta = point[d] - box.hi[d];
    }
    sum += delta * delta;
  }
  return sum;
}

}  // namespace

bool RStarTree::Delete(const Box3D& box, DataId data) {
  STINDEX_CHECK_MSG(backend_ == nullptr,
                    "RStarTree is frozen after AttachBackend");
  if (root_ == kInvalidPage) return false;

  // DFS for the leaf holding (box, data); directory MBRs are exact, so
  // containment prunes correctly.
  std::vector<PageId> path_nodes = {root_};
  std::vector<size_t> path_slots;
  bool found = false;
  {
    struct Frame {
      std::vector<PageId> nodes;
      std::vector<size_t> slots;
    };
    std::vector<Frame> stack = {{path_nodes, path_slots}};
    while (!stack.empty() && !found) {
      Frame frame = std::move(stack.back());
      stack.pop_back();
      const Node* node = GetNode(frame.nodes.back());
      if (node->IsLeaf()) {
        for (const Node::Entry& entry : node->entries()) {
          if (entry.data == data && entry.box == box) {
            path_nodes = frame.nodes;
            path_slots = frame.slots;
            found = true;
            break;
          }
        }
        continue;
      }
      const std::vector<Node::Entry>& entries = node->entries();
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!entries[i].box.Contains(box)) continue;
        Frame next = frame;
        next.nodes.push_back(entries[i].child);
        next.slots.push_back(i);
        stack.push_back(std::move(next));
      }
    }
  }
  if (!found) return false;

  // Remove the entry from the (found) leaf.
  {
    Node* leaf = GetNode(path_nodes.back());
    std::vector<Node::Entry>& entries = leaf->entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].data == data && entries[i].box == box) {
        entries.erase(entries.begin() + static_cast<long>(i));
        break;
      }
    }
  }
  --size_;

  // CondenseTree: dissolve under-filled nodes bottom-up, collecting
  // orphaned entries (with their level) for re-insertion.
  struct Orphan {
    Node::Entry entry;
    int level;  // level the entry belongs at (0 = data)
  };
  std::vector<Orphan> orphans;
  for (size_t depth = path_nodes.size(); depth-- > 1;) {
    Node* node = GetNode(path_nodes[depth]);
    Node* parent = GetNode(path_nodes[depth - 1]);
    if (node->entries().size() < config_.min_entries) {
      for (const Node::Entry& entry : node->entries()) {
        orphans.push_back(Orphan{entry, node->level()});
      }
      parent->entries().erase(parent->entries().begin() +
                              static_cast<long>(path_slots[depth - 1]));
      store_.Free(path_nodes[depth]);
    } else {
      parent->entries()[path_slots[depth - 1]].box = node->Mbr();
    }
  }

  // Shrink the root.
  while (root_ != kInvalidPage) {
    Node* root = GetNode(root_);
    if (root->entries().empty()) {
      store_.Free(root_);
      root_ = kInvalidPage;
      reinserted_on_level_.clear();
      break;
    }
    if (!root->IsLeaf() && root->entries().size() == 1) {
      const PageId child = root->entries()[0].child;
      store_.Free(root_);
      root_ = child;
      reinserted_on_level_.pop_back();
      continue;
    }
    break;
  }

  // Re-insert orphans, deepest (highest level) first. If the tree shrank
  // below an orphan subtree's level, dissolve that subtree into its own
  // entries instead.
  std::sort(orphans.begin(), orphans.end(),
            [](const Orphan& a, const Orphan& b) { return a.level > b.level; });
  while (!orphans.empty()) {
    const Orphan orphan = orphans.front();
    orphans.erase(orphans.begin());
    const int root_level =
        root_ == kInvalidPage ? -1 : GetNode(root_)->level();
    if (orphan.level > 0 && orphan.level >= root_level) {
      Node* node = GetNode(orphan.entry.child);
      // An entry stored in a node at level L is itself "at" level L: the
      // dissolved child sits at orphan.level - 1, so its entries re-enter
      // at that level.
      for (const Node::Entry& entry : node->entries()) {
        orphans.push_back(Orphan{entry, node->level()});
      }
      store_.Free(orphan.entry.child);
      continue;
    }
    if (root_ == kInvalidPage) {
      STINDEX_CHECK(orphan.level == 0);
      root_ = store_.Allocate(std::make_unique<Node>(0));
      reinserted_on_level_.assign(1, false);
    }
    std::fill(reinserted_on_level_.begin(), reinserted_on_level_.end(),
              false);
    InsertEntry(orphan.entry.box, orphan.entry.child, orphan.entry.data,
                orphan.level, /*allow_reinsert=*/true);
  }
  return true;
}

void RStarTree::NearestNeighbors(const double point[3], size_t k,
                                 std::vector<DataId>* results) const {
  results->clear();
  if (root_ == kInvalidPage || k == 0) return;

  struct Candidate {
    double distance;
    bool is_data;
    PageId node;
    DataId data;

    bool operator>(const Candidate& other) const {
      return distance > other.distance;
    }
  };
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      queue;
  queue.push(Candidate{0.0, false, root_, 0});
  while (!queue.empty() && results->size() < k) {
    const Candidate top = queue.top();
    queue.pop();
    if (top.is_data) {
      results->push_back(top.data);
      continue;
    }
    const PageRef ref = buffer_->FetchPinned(top.node);
    const Node* node = static_cast<const Node*>(ref.get());
    for (const Node::Entry& entry : node->entries()) {
      const double distance = MinDistance2(point, entry.box);
      if (node->IsLeaf()) {
        queue.push(Candidate{distance, true, kInvalidPage, entry.data});
      } else {
        queue.push(Candidate{distance, false, entry.child, 0});
      }
    }
  }
}

void RStarTree::Search(const Box3D& query,
                       std::vector<DataId>* results) const {
  Search(query, buffer_.get(), results);
}

void RStarTree::Search(const Box3D& query, PageCache* buffer,
                       std::vector<DataId>* results,
                       QueryProfile* profile) const {
  results->clear();
  if (root_ == kInvalidPage) return;
  TraceSpan span("rstar", "search");
  const IoStats before = buffer->stats();
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    // Pinned for the loop body: the node pointer must survive any
    // evictions a deeper Fetch could cause in backend mode.
    const PageRef ref = buffer->FetchPinned(id);
    const Node* node = static_cast<const Node*>(ref.get());
    if (profile != nullptr) {
      profile->CountNode(node->level());
      if (node->IsLeaf()) {
        profile->leaf_entries_scanned += node->entries().size();
      }
    }
    for (const Node::Entry& entry : node->entries()) {
      if (!entry.box.Intersects(query)) continue;
      if (node->IsLeaf()) {
        results->push_back(entry.data);
      } else {
        stack.push_back(entry.child);
      }
    }
  }
  if (profile != nullptr) {
    profile->candidates += results->size();
    const IoStats after = buffer->stats();
    profile->pages_missed += after.misses - before.misses;
    profile->pages_hit +=
        (after.accesses - before.accesses) - (after.misses - before.misses);
  }
  span.Arg("results", static_cast<int64_t>(results->size()));
}

namespace {

bool BoxAlmostContains(const Box3D& outer, const Box3D& inner) {
  constexpr double kEps = 1e-9;
  for (int d = 0; d < 3; ++d) {
    if (inner.lo[d] < outer.lo[d] - kEps) return false;
    if (inner.hi[d] > outer.hi[d] + kEps) return false;
  }
  return true;
}

}  // namespace

std::vector<RStarTree::NodeSummary> RStarTree::CollectNodeSummaries() const {
  std::vector<NodeSummary> summaries;
  if (root_ == kInvalidPage) return summaries;
  std::vector<PageId> stack = {root_};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const Node* node = GetNode(id);
    NodeSummary summary;
    summary.level = node->level();
    summary.box = node->Mbr();
    summary.entries = node->entries().size();
    summaries.push_back(summary);
    if (node->IsLeaf()) continue;
    for (const Node::Entry& entry : node->entries()) {
      stack.push_back(entry.child);
    }
  }
  return summaries;
}

void RStarTree::CheckInvariants() const {
  if (root_ == kInvalidPage) {
    STINDEX_CHECK(size_ == 0);
    return;
  }
  size_t leaf_entries = 0;
  const int root_level = GetNode(root_)->level();
  // (node, expected MBR or null for root)
  std::vector<std::pair<PageId, Box3D>> stack;
  stack.emplace_back(root_, GetNode(root_)->Mbr());
  while (!stack.empty()) {
    auto [id, expected] = stack.back();
    stack.pop_back();
    const Node* node = GetNode(id);
    STINDEX_CHECK(node->level() >= 0 && node->level() <= root_level);
    STINDEX_CHECK(node->entries().size() <= config_.max_entries);
    if (id != root_) {
      STINDEX_CHECK(node->entries().size() >= config_.min_entries);
    } else {
      STINDEX_CHECK(!node->entries().empty());
    }
    STINDEX_CHECK(BoxAlmostContains(expected, node->Mbr()));
    for (const Node::Entry& entry : node->entries()) {
      if (node->IsLeaf()) {
        ++leaf_entries;
      } else {
        const Node* child = GetNode(entry.child);
        STINDEX_CHECK(child->level() == node->level() - 1);
        STINDEX_CHECK(BoxAlmostContains(entry.box, child->Mbr()));
        stack.emplace_back(entry.child, entry.box);
      }
    }
  }
  STINDEX_CHECK(leaf_entries == size_);
}

}  // namespace stindex
