#ifndef STINDEX_RSTAR_RSTAR_TREE_H_
#define STINDEX_RSTAR_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "geometry/box.h"
#include "storage/buffer_pool.h"
#include "storage/page_backend.h"
#include "storage/page_store.h"
#include "storage/snapshot_file.h"
#include "util/status.h"

namespace stindex {

struct QueryProfile;
class SharedBufferPool;

// Opaque payload attached to a leaf entry (a segment-record index in the
// experiments; callers de-duplicate by object after lookup).
using DataId = uint64_t;

// Node split strategy. The paper's baseline is the R*-tree [3]; the
// original Guttman splits [8] are provided for ablation ("an R-Tree or
// its variants").
enum class SplitStrategy {
  kRStar,      // margin-driven axis + min-overlap distribution
  kQuadratic,  // Guttman quadratic: max-waste seeds, greedy assignment
  kLinear,     // Guttman linear: max-separation seeds, cheap assignment
};

// Tuning knobs of the R*-tree. Defaults follow the paper's setup (page
// capacity 50) and the Beckmann et al. recommendations (40% minimum fill,
// 30% forced reinsertion).
struct RStarConfig {
  // Maximum entries per node (page capacity).
  size_t max_entries = 50;
  // Minimum entries per node after a split.
  size_t min_entries = 20;
  // Entries removed on forced reinsertion (p in the R* paper).
  size_t reinsert_count = 15;
  // LRU buffer pages used when answering queries.
  size_t buffer_pages = 10;
  // Split algorithm; non-R* strategies also switch ChooseSubtree to the
  // classic least-enlargement criterion at every level.
  SplitStrategy split = SplitStrategy::kRStar;
  // Disable to split immediately on every overflow (classic R-tree).
  bool forced_reinsert = true;
};

// Leaf ordering used by bulk loading (packed R-trees). The paper decided
// against packing for its experiments — "packing does not help
// substantially with datasets of moving objects" (Section V) — and the
// bench_ablation_packing harness reproduces that observation.
enum class PackingMethod {
  kStr,      // Sort-Tile-Recursive (Leutenegger et al. [15])
  kHilbert,  // Hilbert-curve order (Kamel & Faloutsos [9])
};

// A 3-dimensional R*-tree (Beckmann, Kriegel, Schneider, Seeger, SIGMOD
// 1990) over simulated disk pages: ChooseSubtree with minimum overlap
// enlargement at the leaf level, margin-driven split axis selection,
// minimum-overlap split distribution, and forced reinsertion. This is the
// "straightforward" baseline the paper compares against: objects (or their
// split segments) become 3-D boxes whose height is the lifetime interval,
// with the time axis scaled to the unit range beforehand.
class RStarTree {
 public:
  explicit RStarTree(RStarConfig config = RStarConfig());
  ~RStarTree();

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  // Builds a packed tree bottom-up: box i carries payload i. Nodes are
  // filled to capacity (the final pair per level is rebalanced to honor
  // the minimum fill).
  static std::unique_ptr<RStarTree> BulkLoad(const std::vector<Box3D>& boxes,
                                             PackingMethod method,
                                             RStarConfig config = RStarConfig());

  // Inserts a box with its payload.
  void Insert(const Box3D& box, DataId data);

  // Removes the entry with this exact box and payload (Guttman's delete
  // with CondenseTree: under-filled nodes are dissolved and their entries
  // re-inserted). Returns false when no such entry exists.
  bool Delete(const Box3D& box, DataId data);

  // Best-first k-nearest-neighbor search by box center distance
  // (Hjaltason & Samet): the k data entries whose boxes are nearest to
  // `point` (min distance between the point and the box), through the
  // tree's own buffer. Library extension beyond the paper.
  void NearestNeighbors(const double point[3], size_t k,
                        std::vector<DataId>* results) const;

  // Collects the payloads of all leaf entries whose box intersects
  // `query`, reading nodes through the LRU buffer (misses count as disk
  // accesses in stats()).
  void Search(const Box3D& query, std::vector<DataId>* results) const;

  // Same, through a caller-owned page cache (one per querying thread): a
  // private BufferPool (NewQueryBuffer) or a per-worker Session of one
  // SharedBufferPool (NewSharedQueryPool). When `profile` is non-null,
  // per-level node visits, buffer hit/miss deltas, leaf entries scanned
  // and candidate counts are accumulated into it (see
  // core/query_profile.h); nullptr skips all profiling work.
  void Search(const Box3D& query, PageCache* buffer,
              std::vector<DataId>* results,
              QueryProfile* profile = nullptr) const;

  // A fresh LRU buffer over this tree's pages (0 = configured default).
  // After AttachBackend the buffer reads (and decodes) real pages from
  // the backend; before, it fronts the in-memory store.
  std::unique_ptr<BufferPool> NewQueryBuffer(size_t pages = 0) const;

  // A sharded thread-safe pool over this tree's pages whose `pages`
  // frames (0 = the configured default) are shared by every worker —
  // total capacity, unlike one NewQueryBuffer per worker. Workers query
  // through per-worker SharedBufferPool::Sessions; pin overflow is
  // enabled (queries hold one transient pin each).
  std::unique_ptr<SharedBufferPool> NewSharedQueryPool(size_t pages = 0) const;

  // Serializes every node into `backend` through a pinning write-back
  // buffer pool (dirty evictions perform real page writes), then serves
  // all subsequent queries from the backend: buffer misses become actual
  // backend reads. The tree is frozen afterwards — Insert/Delete become
  // checked errors. Page ids are preserved, so query I/O counts are
  // identical to the in-memory tree's.
  Status AttachBackend(std::unique_ptr<PageBackend> backend);

  // Packs the live nodes into a read-only snapshot file at `path` and
  // serves all subsequent queries from its mmap'd pages (zero-copy;
  // pread fallback per `options`). Live ids (sparse after deletes) are
  // remapped to a dense bottom-up layout — leaves first, then each
  // directory level in one contiguous extent. The remap is a bijection
  // of the page-id access sequence, so per-query LRU miss counts are
  // byte-identical to the unpacked tree's. The tree is frozen
  // afterwards, like AttachBackend.
  Status PackSnapshot(const std::string& path,
                      const SnapshotFile::Options& options = {});

  // Nullptr until AttachBackend/PackSnapshot succeeds.
  const PageBackend* backend() const { return backend_.get(); }

  // Number of leaf entries stored.
  size_t Size() const { return size_; }

  // Disk footprint in pages (nodes).
  size_t PageCount() const { return store_.PageCount(); }

  // Tree height (1 = root is a leaf); 0 when empty.
  size_t Height() const;

  // Query I/O statistics; misses are "disk accesses".
  const IoStats& stats() const { return buffer_->stats(); }
  void ResetQueryState() const;

  // Validates structural invariants (entry counts, MBR containment,
  // uniform leaf depth). Test hook; aborts on violation.
  void CheckInvariants() const;

  // Introspection: one summary per node (level, MBR, entry count), for
  // the Pagel-style cost analyses in src/model/pagel_metrics.h.
  struct NodeSummary {
    int level = 0;
    Box3D box;
    size_t entries = 0;
  };
  std::vector<NodeSummary> CollectNodeSummaries() const;

 private:
  class Node;
  class NodeCodec;

  Node* GetNode(PageId id) const;

  // Writes every live node to backend_ via a write-back pool.
  Status PersistAllNodes();

  // Descends from the root to a node at `target_level`, recording the
  // path (page ids and the entry index taken in each parent).
  void ChoosePath(const Box3D& box, int target_level,
                  std::vector<PageId>* path_nodes,
                  std::vector<size_t>* path_slots) const;

  // Core insertion of an entry at `target_level` (0 for data).
  void InsertEntry(const Box3D& box, PageId child, DataId data,
                   int target_level, bool allow_reinsert);

  // Overflow handling: forced reinsertion on first overflow per level per
  // insertion, node split otherwise.
  void HandleOverflow(std::vector<PageId>& path_nodes,
                      std::vector<size_t>& path_slots, bool allow_reinsert);

  void SplitNode(std::vector<PageId>& path_nodes,
                 std::vector<size_t>& path_slots);

  void Reinsert(std::vector<PageId>& path_nodes,
                std::vector<size_t>& path_slots);

  // Recomputes MBRs upward along the path after a child changed.
  void AdjustPath(const std::vector<PageId>& path_nodes,
                  const std::vector<size_t>& path_slots) const;

  RStarConfig config_;
  mutable PageStore store_;
  // Declared before buffer_ so every pool dies before the backend and
  // codec it borrows.
  std::unique_ptr<PageBackend> backend_;
  std::unique_ptr<PageCodec> codec_;
  std::unique_ptr<BufferPool> buffer_;
  PageId root_ = kInvalidPage;
  size_t size_ = 0;
  // Levels on which forced reinsertion already ran during the current
  // insertion (R* invokes it at most once per level per insertion).
  mutable std::vector<bool> reinserted_on_level_;
};

}  // namespace stindex

#endif  // STINDEX_RSTAR_RSTAR_TREE_H_
