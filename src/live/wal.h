#ifndef STINDEX_LIVE_WAL_H_
#define STINDEX_LIVE_WAL_H_

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "geometry/rect.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "trajectory/trajectory.h"
#include "util/status.h"

namespace stindex {

// One logical record in the live-tier write-ahead log.
//
// The log is the durable form of the *input stream*, not of the derived
// state: kObserve/kEnd records replay the movement updates through the
// same code that applied them originally, and kSeal records pin down
// exactly where the migration pipeline sealed a chunk, so replay is
// log-driven rather than re-deriving threshold decisions (whose inputs —
// the unacknowledged tail — may be partially lost). kCheckpoint marks
// where a checkpoint *began*; a committed checkpoint truncates the log
// up to (and including) its marker, so replay only ever sees a marker
// whose checkpoint failed to commit — and ignores it.
struct WalRecord {
  enum class Kind : uint8_t {
    kObserve = 1,     // object occupied `rect` at instant `time`
    kEnd = 2,         // object's life ended; `time` is one past its last
                      // instant
    kSeal = 3,        // object's buffer was sealed; `time` is the chunk's
                      // first instant, `segments` the number of records
                      // produced
    kCheckpoint = 4,  // a checkpoint with sequence `time` started here
  };

  Kind kind = Kind::kObserve;
  ObjectId object = 0;
  Time time = 0;
  Rect2D rect;            // kObserve only
  uint32_t segments = 0;  // kSeal only

  static WalRecord Observe(ObjectId object, Time time, const Rect2D& rect) {
    WalRecord r;
    r.kind = Kind::kObserve;
    r.object = object;
    r.time = time;
    r.rect = rect;
    return r;
  }
  static WalRecord End(ObjectId object, Time time) {
    WalRecord r;
    r.kind = Kind::kEnd;
    r.object = object;
    r.time = time;
    return r;
  }
  static WalRecord Seal(ObjectId object, Time first_instant,
                        uint32_t segments) {
    WalRecord r;
    r.kind = Kind::kSeal;
    r.object = object;
    r.time = first_instant;
    r.segments = segments;
    return r;
  }
  static WalRecord Checkpoint(uint64_t sequence) {
    WalRecord r;
    r.kind = Kind::kCheckpoint;
    r.time = static_cast<Time>(sequence);
    return r;
  }

  bool operator==(const WalRecord& o) const;
};

// The journal backend's slot map: slots 0 and 1 are the two alternating
// checkpoint header slots (see live/checkpoint.h); everything from
// kWalFirstDataSlot up is WAL pages, checkpointed tree nodes and
// checkpoint metadata, allocated and recycled through WalSlotAllocator.
inline constexpr PageId kWalFirstDataSlot = 2;

// A flushed journal page: its position in the logical log (`seq`) and
// the backend slot holding it. Truncation frees slots, so consecutive
// sequence numbers need not sit in consecutive slots.
struct WalPageRef {
  uint64_t seq = 0;
  PageId slot = 0;
};

// Hands out backend slots for the journal's data pages, lowest free slot
// first, so truncation keeps the file's high-water mark bounded: freed
// slots are recycled before the file grows. Rebuilt by a bitmap scan at
// open (after recovery has freed all debris).
class WalSlotAllocator {
 public:
  WalSlotAllocator() = default;
  // Every allocated slot >= kWalFirstDataSlot is considered taken.
  explicit WalSlotAllocator(const PageBackend& backend);

  PageId Acquire();
  void Release(PageId slot);

 private:
  // Min-heap of released slots below frontier_.
  std::vector<PageId> free_;
  PageId frontier_ = kWalFirstDataSlot;
};

// Appends WalRecords to journal pages. Records accumulate in an
// in-memory page image; a page is written when full, at Flush(), or at
// Commit() (which also fsyncs). Each page carries the monotone sequence
// number of its position in the logical log; slots come from the
// allocator. Committed pages are never rewritten, so the durable log is
// always a record-sequence prefix of the logical log — the invariant
// recovery builds on. TruncateBefore frees the prefix a committed
// checkpoint has made redundant.
//
// Durability contract: a record is durable iff a Commit() issued after
// its Append() returned OK. Callers acknowledge input batches only then.
class WalWriter {
 public:
  // `backend` and `slots` are borrowed and must outlive the writer.
  // `next_seq` is the sequence of the next page to flush — 1 for a fresh
  // log, or WalReplayStats::next_seq to continue a replayed one. `tail`
  // is the replayed log's live pages (WalReplayStats::tail), which
  // TruncateBefore frees when a later checkpoint covers them.
  WalWriter(PageBackend* backend, WalSlotAllocator* slots, uint64_t next_seq,
            std::vector<WalPageRef> tail = {});

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Serializes `record` into the open page, flushing it to the backend
  // first if the record does not fit. An I/O failure leaves the writer
  // unusable for further appends of the same logical batch — the caller
  // must treat it as a crash and recover.
  Status Append(const WalRecord& record);

  // Writes the open page (if it holds any records) to its slot. No fsync.
  Status Flush();

  // Flush + fsync. No-op when nothing was appended or flushed since the
  // last Commit.
  Status Commit();

  // Frees every flushed page with sequence < `seq` and returns the slots
  // to the allocator; `*freed` counts them. Only meaningful after the
  // checkpoint covering those pages has committed.
  Status TruncateBefore(uint64_t seq, size_t* freed);

  // Sequence the next flushed page will carry.
  uint64_t next_seq() const { return next_seq_; }
  // Flushed pages not yet truncated — what replay would read back.
  size_t tail_pages() const { return tail_.size(); }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t pages_written() const { return pages_written_; }
  uint64_t commits() const { return commits_; }

 private:
  Status FlushPage();

  PageBackend* backend_;
  WalSlotAllocator* slots_;
  uint64_t next_seq_;
  std::vector<WalPageRef> tail_;   // flushed live pages, ascending seq
  std::vector<uint8_t> buffered_;  // serialized records of the open page
  uint32_t buffered_count_ = 0;
  bool dirty_since_sync_ = false;
  uint64_t appended_records_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t commits_ = 0;
};

struct WalReplayOptions {
  // Sequence of the first page to replay: 1 for a full replay, the
  // committed checkpoint's wal_start_seq to replay only the tail.
  uint64_t start_seq = 1;
  // Slots owned by the committed checkpoint (tree nodes + metadata
  // chain); they are allocated but are not journal pages.
  std::unordered_set<PageId> owned;
};

struct WalReplayStats {
  uint64_t pages = 0;    // pages replayed cleanly
  uint64_t records = 0;  // records delivered to the callback
  // True when an allocated slot held a page that failed its checksum or
  // decoded short — the torn tail of a crashed append (or debris of an
  // uncommitted checkpoint), treated as clean end of log.
  bool torn_tail = false;
  uint64_t next_seq = 1;  // sequence for the continuing writer's next page
  // The replayed pages, ascending seq — the continuing writer's tail.
  std::vector<WalPageRef> tail;
  // Allocated slots that are not part of the log: torn pages, pages a
  // crashed truncation failed to free, nodes/metadata of an uncommitted
  // checkpoint. The caller frees them before building the allocator.
  std::vector<PageId> garbage;
};

// Redo-only, checkpoint-aware replay: scans every allocated data slot
// (skipping `options.owned`), orders the valid journal pages by sequence
// and delivers every record of pages with seq >= options.start_seq, in
// order, to `apply`. The surviving sequences must be exactly
// start_seq, start_seq + 1, ... — a missing interior sequence means the
// log lost a committed page and replay fails with InvalidArgument
// (never a silent truncation). Pages that fail their checksum or decode
// short are debris (torn tail, crashed truncation or checkpoint) and
// are reported in `garbage`; pages with seq < start_seq are already
// covered by the checkpoint and join `garbage` too. A non-OK status
// from `apply` aborts replay with that status.
Result<WalReplayStats> ReplayWal(
    const PageBackend& backend, const WalReplayOptions& options,
    const std::function<Status(const WalRecord&)>& apply);

}  // namespace stindex

#endif  // STINDEX_LIVE_WAL_H_
