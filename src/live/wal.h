#ifndef STINDEX_LIVE_WAL_H_
#define STINDEX_LIVE_WAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/rect.h"
#include "storage/page_backend.h"
#include "storage/page_codec.h"
#include "trajectory/trajectory.h"
#include "util/status.h"

namespace stindex {

// One logical record in the live-tier write-ahead log.
//
// The log is the durable form of the *input stream*, not of the derived
// state: kObserve/kEnd records replay the movement updates through the
// same code that applied them originally, and kSeal records pin down
// exactly where the migration pipeline sealed a chunk, so replay is
// log-driven rather than re-deriving threshold decisions (whose inputs —
// the unacknowledged tail — may be partially lost).
struct WalRecord {
  enum class Kind : uint8_t {
    kObserve = 1,  // object occupied `rect` at instant `time`
    kEnd = 2,      // object's life ended; `time` is one past its last instant
    kSeal = 3,     // object's buffer was sealed; `time` is the chunk's first
                   // instant, `segments` the number of records produced
  };

  Kind kind = Kind::kObserve;
  ObjectId object = 0;
  Time time = 0;
  Rect2D rect;            // kObserve only
  uint32_t segments = 0;  // kSeal only

  static WalRecord Observe(ObjectId object, Time time, const Rect2D& rect) {
    WalRecord r;
    r.kind = Kind::kObserve;
    r.object = object;
    r.time = time;
    r.rect = rect;
    return r;
  }
  static WalRecord End(ObjectId object, Time time) {
    WalRecord r;
    r.kind = Kind::kEnd;
    r.object = object;
    r.time = time;
    return r;
  }
  static WalRecord Seal(ObjectId object, Time first_instant,
                        uint32_t segments) {
    WalRecord r;
    r.kind = Kind::kSeal;
    r.object = object;
    r.time = first_instant;
    r.segments = segments;
    return r;
  }

  bool operator==(const WalRecord& o) const;
};

// Appends WalRecords to consecutive pages of a PageBackend, starting at
// `next_page`. Records accumulate in an in-memory page image; a page is
// written when full or at Commit(), which also fsyncs. Committed pages
// are never rewritten, so the durable log is always a record-sequence
// prefix of the logical log — the invariant recovery builds on.
//
// Durability contract: a record is durable iff a Commit() issued after
// its Append() returned OK. Callers acknowledge input batches only then.
class WalWriter {
 public:
  // `backend` is borrowed and must outlive the writer. `next_page` is the
  // first page to write — 0 for a fresh log, or WalReplayStats::next_page
  // to continue a replayed one (a torn tail page is overwritten).
  WalWriter(PageBackend* backend, PageId next_page);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Serializes `record` into the open page, flushing it to the backend
  // first if the record does not fit. An I/O failure leaves the writer
  // unusable for further appends of the same logical batch — the caller
  // must treat it as a crash and recover.
  Status Append(const WalRecord& record);

  // Flushes the open page (if it holds any records) and fsyncs the
  // backend. No-op when nothing was appended or flushed since the last
  // Commit.
  Status Commit();

  PageId next_page() const { return next_page_; }
  uint64_t appended_records() const { return appended_records_; }
  uint64_t pages_written() const { return pages_written_; }
  uint64_t commits() const { return commits_; }

 private:
  Status FlushPage();

  PageBackend* backend_;
  PageId next_page_;
  std::vector<uint8_t> buffered_;  // serialized records of the open page
  uint32_t buffered_count_ = 0;
  bool dirty_since_sync_ = false;
  uint64_t appended_records_ = 0;
  uint64_t pages_written_ = 0;
  uint64_t commits_ = 0;
};

struct WalReplayStats {
  uint64_t pages = 0;    // pages replayed cleanly
  uint64_t records = 0;  // records delivered to the callback
  // True when the last allocated page failed its checksum or decoded
  // short — the torn tail of a crashed append, treated as clean end of
  // log. `next_page` points at it so a continuing writer overwrites the
  // garbage.
  bool torn_tail = false;
  PageId next_page = 0;  // where a continuing WalWriter should write
};

// Redo-only replay: reads pages 0, 1, ... until the first unallocated
// page and delivers every record, in order, to `apply`. A checksum or
// decode failure on the *last* allocated page is a torn tail (clean end
// of log, see WalReplayStats); anywhere else it is corruption and
// replay fails. A non-OK status from `apply` aborts replay with that
// status.
Result<WalReplayStats> ReplayWal(
    const PageBackend& backend,
    const std::function<Status(const WalRecord&)>& apply);

}  // namespace stindex

#endif  // STINDEX_LIVE_WAL_H_
