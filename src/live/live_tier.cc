#include "live/live_tier.h"

#include <algorithm>
#include <chrono>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct TierMetrics {
  Counter* observes;
  Counter* ends;
  Counter* dup_skips;
  Counter* queries;
  Counter* checkpoints;
  Counter* truncated_pages;
  Counter* packs;
};

const TierMetrics& Metrics() {
  static const TierMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return TierMetrics{r.GetCounter("live.observes"),
                       r.GetCounter("live.ends"),
                       r.GetCounter("live.dup_skips"),
                       r.GetCounter("live.queries"),
                       r.GetCounter("live.wal.checkpoints"),
                       r.GetCounter("live.wal.truncated_pages"),
                       r.GetCounter("live.packs")};
  }();
  return m;
}

}  // namespace

LiveTier::LiveTier(LiveTierOptions options,
                   std::unique_ptr<PageBackend> wal_backend)
    : options_(options),
      wal_backend_(std::move(wal_backend)),
      index_(options.index),
      tree_(std::make_unique<PprTree>(options.ppr)),
      pipeline_(tree_.get()),
      pool_(tree_->NewSharedQueryPool(options.query_pool_pages)),
      last_checkpoint_at_(std::chrono::steady_clock::now()) {}

Result<std::unique_ptr<LiveTier>> LiveTier::Open(
    LiveTierOptions options, std::unique_ptr<PageBackend> wal_backend) {
  if (wal_backend == nullptr) {
    return Status::InvalidArgument("live tier requires a WAL backend");
  }
  std::unique_ptr<LiveTier> tier(
      new LiveTier(options, std::move(wal_backend)));
  Status status = tier->Recover();
  if (!status.ok()) return status;
  return tier;
}

Status LiveTier::Recover() {
  TraceSpan span("live", "recover");
  const CheckpointHeader header = ReadLatestCheckpointHeader(*wal_backend_);
  WalReplayOptions replay;
  if (header.checkpoint_seq > 0) {
    std::vector<PageId> owned;
    Status status = RestoreFromCheckpoint(header, &owned);
    if (!status.ok()) return status;
    checkpoint_seq_ = header.checkpoint_seq;
    checkpoint_slots_ = owned;
    replay.start_seq = header.wal_start_seq;
    replay.owned.insert(owned.begin(), owned.end());
  }
  Result<WalReplayStats> stats = ReplayWal(
      *wal_backend_, replay,
      [this](const WalRecord& record) { return ApplyReplayRecord(record); });
  if (!stats.ok()) return stats.status();
  recovered_ = std::move(stats).value();
  // Free the debris replay classified: torn tail pages, journal pages an
  // interrupted truncation left behind, shadow pages of a checkpoint that
  // never committed. They are unreferenced — reclaiming them here is what
  // keeps crash loops from leaking slots.
  for (PageId slot : recovered_.garbage) {
    Status status = wal_backend_->Free(slot);
    if (!status.ok()) return status;
  }
  slots_ = WalSlotAllocator(*wal_backend_);
  writer_ = std::make_unique<WalWriter>(wal_backend_.get(), &slots_,
                                        recovered_.next_seq, recovered_.tail);
  // Seals directly follow their trigger in the log, so only the very tail
  // can have lost them; re-derive those now, through the same policy the
  // uninterrupted run used.
  return SealRipe();
}

Status LiveTier::RestoreFromCheckpoint(const CheckpointHeader& header,
                                       std::vector<PageId>* owned_slots) {
  TraceSpan span("live", "restore_checkpoint");
  span.Arg("checkpoint_seq", static_cast<int64_t>(header.checkpoint_seq));
  std::vector<PageId> meta_slots;
  Result<std::vector<uint8_t>> meta =
      ReadCheckpointMeta(*wal_backend_, header, &meta_slots);
  if (!meta.ok()) return meta.status();
  ByteSource in(meta.value().data(), meta.value().size());

  // The layered tree state: frozen packed layers (oldest first), then
  // the active tree. Restored layers serve from their in-memory stores —
  // a pack's mmap serving is an optimization the snapshot file carries,
  // not checkpoint state; answers are identical either way.
  uint64_t layer_count = 0;
  if (!in.Read(&layer_count) || layer_count == 0) {
    return Status::InvalidArgument("checkpoint: bad tree layer count");
  }
  std::vector<std::unique_ptr<PprTree>> layers;
  std::vector<PageId> node_slots;
  uint8_t page[kPageSize];
  Status status;
  for (uint64_t l = 0; l < layer_count; ++l) {
    auto tree = std::make_unique<PprTree>(options_.ppr);
    status = tree->DecodeCheckpointMeta(&in);
    if (!status.ok()) return status;

    uint64_t node_count = 0;
    if (!in.Read(&node_count)) {
      return Status::InvalidArgument("checkpoint: truncated node slot map");
    }
    std::vector<PageId> layer_slots(static_cast<size_t>(node_count));
    for (PageId& slot : layer_slots) {
      if (!in.Read(&slot)) {
        return Status::InvalidArgument("checkpoint: truncated node slot map");
      }
    }
    for (size_t i = 0; i < layer_slots.size(); ++i) {
      const PageId slot = layer_slots[i];
      if (static_cast<size_t>(slot) >= wal_backend_->SlotCount() ||
          !wal_backend_->IsAllocated(slot)) {
        return Status::InvalidArgument(
            "checkpoint: tree node " + std::to_string(i) +
            " points at freed slot " + std::to_string(slot));
      }
      status = wal_backend_->Read(slot, page);
      if (!status.ok()) return status;
      status = tree->InstallCheckpointNode(static_cast<PageId>(i), page);
      if (!status.ok()) return status;
    }
    node_slots.insert(node_slots.end(), layer_slots.begin(),
                      layer_slots.end());
    layers.push_back(std::move(tree));
  }

  // Install the restored layering before the pipeline decodes: it must
  // aim at the active tree.
  frozen_.clear();
  for (size_t l = 0; l + 1 < layers.size(); ++l) {
    FrozenLayer layer;
    layer.tree = std::move(layers[l]);
    layer.pool = layer.tree->NewSharedQueryPool(options_.query_pool_pages);
    frozen_.push_back(std::move(layer));
  }
  pool_.reset();
  tree_ = std::move(layers.back());
  pipeline_.SetTree(tree_.get());
  pool_ = tree_->NewSharedQueryPool(options_.query_pool_pages);

  status = pipeline_.DecodeState(&in);
  if (!status.ok()) return status;
  status = index_.DecodeState(&in);
  if (!status.ok()) return status;
  if (in.remaining() != 0) {
    return Status::InvalidArgument("checkpoint: trailing metadata bytes");
  }

  owned_slots->insert(owned_slots->end(), node_slots.begin(),
                      node_slots.end());
  owned_slots->insert(owned_slots->end(), meta_slots.begin(),
                      meta_slots.end());
  return Status::OK();
}

Status LiveTier::ApplyReplayRecord(const WalRecord& record) {
  bool applied = false;
  switch (record.kind) {
    case WalRecord::Kind::kObserve: {
      Status status = index_.Observe(record.object, record.time, record.rect,
                                     &applied);
      if (!status.ok()) return status;
      if (!applied) {
        return Status::InvalidArgument(
            "wal replay: duplicate observation of object " +
            std::to_string(record.object));
      }
      return Status::OK();
    }
    case WalRecord::Kind::kEnd: {
      Status status = index_.End(record.object, record.time, &applied);
      if (!status.ok()) return status;
      if (!applied) {
        return Status::InvalidArgument("wal replay: duplicate end of object " +
                                       std::to_string(record.object));
      }
      return Status::OK();
    }
    case WalRecord::Kind::kSeal: {
      // Log-driven seal: do exactly what the original run journaled, and
      // verify the replayed state produces the same chunk.
      Result<LiveIndex::SealedChunk> chunk = index_.Seal(record.object);
      if (!chunk.ok()) {
        return Status::InvalidArgument(
            "wal replay: seal does not match replayed state (" +
            chunk.status().message() + ")");
      }
      if (chunk.value().start != record.time) {
        return Status::InvalidArgument(
            "wal replay: seal of object " + std::to_string(record.object) +
            " starts at t=" + std::to_string(chunk.value().start) +
            ", log says t=" + std::to_string(record.time));
      }
      const size_t produced = pipeline_.Enqueue(chunk.value());
      if (produced != record.segments) {
        return Status::InvalidArgument(
            "wal replay: seal of object " + std::to_string(record.object) +
            " produced " + std::to_string(produced) + " segments, log says " +
            std::to_string(record.segments));
      }
      pipeline_.Advance(index_.Watermark());
      return Status::OK();
    }
    case WalRecord::Kind::kCheckpoint:
      // The marker of a checkpoint that never committed (a committed one
      // truncates its marker away). Its shadow pages are debris replay
      // already routed to `garbage`; the record itself is a no-op.
      return Status::OK();
  }
  return Status::InvalidArgument("wal replay: unknown record kind");
}

Status LiveTier::CheckAlive() const {
  if (failed_) {
    return Status::FailedPrecondition(
        "live tier hit a WAL I/O failure — reopen the journal to recover");
  }
  if (finished_) {
    return Status::FailedPrecondition("live tier is finished");
  }
  return Status::OK();
}

Status LiveTier::Latch(Status status) {
  failed_ = true;
  // Joiners parked in a group commit must see the failure.
  commit_cv_.notify_all();
  return status;
}

Status LiveTier::SealAndJournal(ObjectId object) {
  // Journal first, mutate second: once the seal record is appended the
  // seal must happen (and deterministically will — PreviewSeal told us
  // exactly what the record claims); if the append fails, the buffer is
  // untouched and queries still answer exactly from it.
  Result<LiveIndex::SealPreview> preview = index_.PreviewSeal(object);
  if (!preview.ok()) return preview.status();
  Status status = writer_->Append(WalRecord::Seal(
      object, preview.value().start, preview.value().segments));
  if (!status.ok()) return Latch(status);
  Result<LiveIndex::SealedChunk> chunk = index_.Seal(object);
  STINDEX_CHECK(chunk.ok());
  const size_t produced = pipeline_.Enqueue(chunk.value());
  STINDEX_CHECK(produced == preview.value().segments);
  return Status::OK();
}

Status LiveTier::SealRipe() {
  for (ObjectId object : index_.RipeForCatchUp()) {
    Status status = SealAndJournal(object);
    if (!status.ok()) return status;
  }
  while (index_.OverBudget()) {
    const ObjectId victim = index_.BudgetVictim();
    STINDEX_CHECK(victim != LiveIndex::kInvalidObject);
    Status status = SealAndJournal(victim);
    if (!status.ok()) return status;
  }
  pipeline_.Advance(index_.Watermark());
  return Status::OK();
}

Status LiveTier::Observe(ObjectId object, Time t, const Rect2D& rect) {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  // Validate, journal, then apply: if the append fails the index was
  // never touched, so a latched tier cannot serve an update that never
  // reached the log (visibility implies journaled).
  bool would_apply = false;
  status = index_.CheckObserve(object, t, rect, &would_apply);
  if (!status.ok()) return status;
  if (!would_apply) {
    Metrics().dup_skips->Add(1);
    return Status::OK();
  }
  status = writer_->Append(WalRecord::Observe(object, t, rect));
  if (!status.ok()) return Latch(status);
  bool applied = false;
  status = index_.Observe(object, t, rect, &applied);
  STINDEX_CHECK(status.ok() && applied);
  Metrics().observes->Add(1);
  return SealRipe();
}

Status LiveTier::End(ObjectId object, Time t) {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  bool would_apply = false;
  status = index_.CheckEnd(object, t, &would_apply);
  if (!status.ok()) return status;
  if (!would_apply) {
    Metrics().dup_skips->Add(1);
    return Status::OK();
  }
  status = writer_->Append(WalRecord::End(object, t));
  if (!status.ok()) return Latch(status);
  bool applied = false;
  status = index_.End(object, t, &applied);
  STINDEX_CHECK(status.ok() && applied);
  Metrics().ends->Add(1);
  return SealRipe();
}

Status LiveTier::Apply(const LiveObservation& update) {
  if (update.is_end) return End(update.object, update.time);
  return Observe(update.object, update.time, update.rect);
}

Status LiveTier::Commit() {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  if (!options_.group_commit) {
    status = writer_->Commit();
    if (!status.ok()) return Latch(status);
    durable_records_ = writer_->appended_records();
    return MaybeCheckpointLocked();
  }

  // Group commit. Everything this caller appended is already in the
  // writer, so it is covered once `durable_records_` reaches the current
  // append count.
  const uint64_t target = writer_->appended_records();
  while (true) {
    if (failed_) return CheckAlive();
    if (durable_records_ >= target) return Status::OK();
    if (!commit_leader_active_) break;
    commit_cv_.wait(lock);  // a leader is flushing; join its batch
  }
  // Leader: optionally wait out the batching interval — the lock is
  // released while waiting, so updates keep appending and later Commit()
  // callers park as joiners; one fsync then covers them all.
  commit_leader_active_ = true;
  if (options_.commit_interval_us > 0) {
    commit_cv_.wait_for(lock,
                        std::chrono::microseconds(options_.commit_interval_us));
  }
  status = CheckAlive();  // another thread may have latched while unlocked
  if (status.ok()) {
    const uint64_t covered = writer_->appended_records();
    status = writer_->Commit();
    if (status.ok()) {
      durable_records_ = covered;
    } else {
      Latch(status);
    }
  }
  commit_leader_active_ = false;
  commit_cv_.notify_all();
  if (!status.ok()) return status;
  return MaybeCheckpointLocked();
}

Status LiveTier::MaybeCheckpointLocked() {
  if (options_.checkpoint_every_pages == 0 ||
      writer_->tail_pages() < options_.checkpoint_every_pages) {
    return Status::OK();
  }
  return CheckpointLocked();
}

Status LiveTier::Checkpoint() {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  return CheckpointLocked();
}

void LiveTier::EncodeCheckpointState(
    const std::vector<std::vector<PageId>>& layer_slots, ByteSink* out) const {
  STINDEX_CHECK(layer_slots.size() == frozen_.size() + 1);
  out->Write(static_cast<uint64_t>(layer_slots.size()));
  for (size_t l = 0; l < layer_slots.size(); ++l) {
    const PprTree& tree =
        l < frozen_.size() ? *frozen_[l].tree : *tree_;
    tree.EncodeCheckpointMeta(out);
    out->Write(static_cast<uint64_t>(layer_slots[l].size()));
    for (PageId slot : layer_slots[l]) out->Write(slot);
  }
  pipeline_.EncodeState(out);
  index_.EncodeState(out);
}

Status LiveTier::CheckpointLocked() {
  TraceSpan span("live", "checkpoint");
  const uint64_t seq = checkpoint_seq_ + 1;
  span.Arg("checkpoint_seq", static_cast<int64_t>(seq));

  // 1. Mark the cut in the log and flush, so the state captured below
  //    corresponds exactly to the log prefix before `wal_start_seq`.
  //    The marker only survives if this checkpoint fails to commit —
  //    replay ignores it.
  Status status = writer_->Append(WalRecord::Checkpoint(seq));
  if (!status.ok()) return Latch(status);
  status = writer_->Flush();
  if (!status.ok()) return Latch(status);
  const uint64_t wal_start_seq = writer_->next_seq();

  // 2. Shadow-write every historical-tree node — of every layer, oldest
  //    frozen first then the active tree — into fresh slots through the
  //    write-back BufferPool. The previous checkpoint's pages stay
  //    untouched — a crash anywhere before step 5 leaves it intact.
  //    Frozen packed layers keep their nodes in memory with contiguous
  //    ids, so they persist through the same path the active tree does.
  std::vector<const PprTree*> layers;
  layers.reserve(frozen_.size() + 1);
  for (const FrozenLayer& layer : frozen_) layers.push_back(layer.tree.get());
  layers.push_back(tree_.get());
  std::vector<std::vector<PageId>> layer_slots(layers.size());
  std::vector<PageId> node_slots;
  for (size_t l = 0; l < layers.size(); ++l) {
    layer_slots[l].resize(layers[l]->NodeCount());
    for (PageId& slot : layer_slots[l]) slot = slots_.Acquire();
    status =
        layers[l]->PersistNodesForCheckpoint(wal_backend_.get(), layer_slots[l]);
    if (!status.ok()) return Latch(status);
    node_slots.insert(node_slots.end(), layer_slots[l].begin(),
                      layer_slots[l].end());
  }

  // 3. Serialize the layered tree state + pipeline + live index into the
  //    metadata chain.
  ByteSink meta;
  EncodeCheckpointState(layer_slots, &meta);
  CheckpointHeader header;
  header.checkpoint_seq = seq;
  header.wal_start_seq = wal_start_seq;
  std::vector<PageId> new_slots = node_slots;
  status = WriteCheckpointMeta(wal_backend_.get(), &slots_, seq, meta.bytes(),
                               &header, &new_slots);
  if (!status.ok()) return Latch(status);

  // 4. Everything the header will reference must be durable *before* the
  //    header commits: tree pages flushed + synced first.
  status = wal_backend_->Sync();
  if (!status.ok()) return Latch(status);

  // 5. The commit point: a durable header makes this checkpoint the one
  //    recovery loads.
  status = WriteCheckpointHeader(wal_backend_.get(), header);
  if (!status.ok()) return Latch(status);
  status = wal_backend_->Sync();
  if (!status.ok()) return Latch(status);

  // 6. Truncate: the journal prefix the checkpoint absorbed, and the
  //    previous checkpoint's shadow pages. A crash mid-truncation is
  //    safe — recovery frees whatever this loop did not.
  size_t freed = 0;
  status = writer_->TruncateBefore(wal_start_seq, &freed);
  if (!status.ok()) return Latch(status);
  for (PageId slot : checkpoint_slots_) {
    status = wal_backend_->Free(slot);
    if (!status.ok()) return Latch(status);
    slots_.Release(slot);
    ++freed;
  }
  Metrics().truncated_pages->Add(checkpoint_slots_.size());

  checkpoint_seq_ = seq;
  checkpoint_slots_ = std::move(new_slots);
  last_checkpoint_at_ = std::chrono::steady_clock::now();
  // The sync at step 4/5 covered every appended record.
  durable_records_ = writer_->appended_records();
  Metrics().checkpoints->Add(1);
  span.Arg("freed_pages", static_cast<int64_t>(freed));
  return Status::OK();
}

Status LiveTier::PackHistorical(const std::string& path,
                                const SnapshotFile::Options& options) {
  std::unique_lock lock(mu_);
  // A latched tier must not mutate; a finished one may pack (read path
  // optimization only).
  if (failed_) {
    return Status::FailedPrecondition(
        "live tier hit a WAL I/O failure — reopen the journal to recover");
  }
  TraceSpan span("live", "pack_historical");
  span.Arg("pages", static_cast<int64_t>(tree_->NodeCount()));
  // The shared pool's frames reference pre-pack page ids; drop it before
  // the pack remaps the store and rebuild it below.
  pool_.reset();
  Status status = tree_->PackSnapshot(path, options);
  if (!status.ok()) {
    // The tree stayed consistent (PackSnapshot rewrites the in-memory
    // graph before any I/O); keep serving from the store.
    pool_ = tree_->NewSharedQueryPool(options_.query_pool_pages);
    return status;
  }
  FrozenLayer layer;
  layer.tree = std::move(tree_);
  layer.pool = layer.tree->NewSharedQueryPool(options_.query_pool_pages);
  frozen_.push_back(std::move(layer));
  tree_ = std::make_unique<PprTree>(options_.ppr);
  pipeline_.RetargetAfterPack(tree_.get());
  pool_ = tree_->NewSharedQueryPool(options_.query_pool_pages);
  Metrics().packs->Add(1);
  return Status::OK();
}

Status LiveTier::Finish() {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  for (ObjectId object : index_.BufferedObjects()) {
    status = SealAndJournal(object);
    if (!status.ok()) return status;
  }
  pipeline_.Drain();
  status = writer_->Commit();
  if (!status.ok()) return Latch(status);
  durable_records_ = writer_->appended_records();
  finished_ = true;
  return Status::OK();
}

void LiveTier::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                             std::vector<ObjectId>* out,
                             QueryProfile* profile) const {
  std::shared_lock lock(mu_);
  Metrics().queries->Add(1);
  out->clear();
  std::vector<PprDataId> raw;
  // Every layer holds a disjoint slice of the migrated records: frozen
  // packed layers (served zero-copy from their snapshots) plus the
  // active tree. PprTree::IntervalQuery clears its output vector, so
  // each layer answers into a scratch that is appended to the union.
  std::vector<PprDataId> layer_hits;
  for (const FrozenLayer& layer : frozen_) {
    SharedBufferPool::Session frozen_session(layer.pool.get());
    layer.tree->IntervalQuery(area, range, &frozen_session, &layer_hits,
                              profile);
    raw.insert(raw.end(), layer_hits.begin(), layer_hits.end());
  }
  SharedBufferPool::Session session(pool_.get());
  tree_->IntervalQuery(area, range, &session, &layer_hits, profile);
  raw.insert(raw.end(), layer_hits.begin(), layer_hits.end());
  for (PprDataId id : raw) {
    // A record whose delete is still queued looks alive-to-infinity
    // inside the tree; re-check against the true segment interval.
    if (pipeline_.ClipToInterval(id, range)) {
      out->push_back(pipeline_.ObjectOf(id));
    }
  }
  pipeline_.CollectPending(area, range, out);
  index_.CollectLive(area, range, out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void LiveTier::SnapshotQuery(const Rect2D& area, Time t,
                             std::vector<ObjectId>* out,
                             QueryProfile* profile) const {
  IntervalQuery(area, TimeInterval(t, t + 1), out, profile);
}

size_t LiveTier::frozen_layers() const {
  std::shared_lock lock(mu_);
  return frozen_.size();
}

size_t LiveTier::live_objects() const {
  std::shared_lock lock(mu_);
  return index_.live_objects();
}

size_t LiveTier::buffered_instants() const {
  std::shared_lock lock(mu_);
  return index_.buffered_instants();
}

size_t LiveTier::pending_events() const {
  std::shared_lock lock(mu_);
  return pipeline_.pending_events();
}

uint64_t LiveTier::wal_records() const {
  std::shared_lock lock(mu_);
  return writer_->appended_records();
}

uint64_t LiveTier::wal_pages() const {
  std::shared_lock lock(mu_);
  return writer_->pages_written();
}

uint64_t LiveTier::wal_commits() const {
  std::shared_lock lock(mu_);
  return writer_->commits();
}

uint64_t LiveTier::wal_tail_pages() const {
  std::shared_lock lock(mu_);
  return writer_->tail_pages();
}

uint64_t LiveTier::checkpoint_seq() const {
  std::shared_lock lock(mu_);
  return checkpoint_seq_;
}

bool LiveTier::latched() const {
  std::shared_lock lock(mu_);
  return failed_;
}

LiveTier::Telemetry LiveTier::GetTelemetry() const {
  std::shared_lock lock(mu_);
  Telemetry telemetry;
  telemetry.latched = failed_;
  telemetry.finished = finished_;
  telemetry.wal_records = writer_->appended_records();
  telemetry.wal_pages = writer_->pages_written();
  telemetry.wal_tail_pages = writer_->tail_pages();
  telemetry.wal_commits = writer_->commits();
  telemetry.checkpoint_seq = checkpoint_seq_;
  telemetry.seconds_since_checkpoint =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    last_checkpoint_at_)
          .count();
  telemetry.live_objects = index_.live_objects();
  telemetry.buffered_instants = index_.buffered_instants();
  telemetry.pending_events = pipeline_.pending_events();
  telemetry.frozen_layers = frozen_.size();
  telemetry.watermark = index_.Watermark();
  telemetry.last_time = index_.last_time();
  for (const auto& occupancy : pool_->ShardOccupancies()) {
    telemetry.pool_shards.push_back(occupancy);
  }
  for (const FrozenLayer& layer : frozen_) {
    for (const auto& occupancy : layer.pool->ShardOccupancies()) {
      telemetry.pool_shards.push_back(occupancy);
    }
  }
  return telemetry;
}

void LiveTier::PublishGauges() const {
  std::shared_lock lock(mu_);
  MetricRegistry& registry = MetricRegistry::Global();
  registry.GetGauge("live.objects")
      ->Set(static_cast<int64_t>(index_.live_objects()));
  registry.GetGauge("live.buffered_instants")
      ->Set(static_cast<int64_t>(index_.buffered_instants()));
  registry.GetGauge("live.pending_events")
      ->Set(static_cast<int64_t>(pipeline_.pending_events()));
  registry.GetGauge("live.frozen_layers")
      ->Set(static_cast<int64_t>(frozen_.size()));
  registry.GetGauge("live.wal.records")
      ->Set(static_cast<int64_t>(writer_->appended_records()));
  registry.GetGauge("live.wal.pages")
      ->Set(static_cast<int64_t>(writer_->pages_written()));
  registry.GetGauge("live.wal.tail_pages")
      ->Set(static_cast<int64_t>(writer_->tail_pages()));
  registry.GetGauge("live.wal.commits")
      ->Set(static_cast<int64_t>(writer_->commits()));
  registry.GetGauge("live.wal.checkpoint_seq")
      ->Set(static_cast<int64_t>(checkpoint_seq_));
  // How far the migration watermark trails the newest observed instant —
  // stream ticks, not wall time, so the gauge is deterministic.
  registry.GetGauge("live.watermark_lag")
      ->Set(static_cast<int64_t>(index_.last_time() - index_.Watermark()));
  pool_->PublishStats();
  for (const FrozenLayer& layer : frozen_) layer.pool->PublishStats();
}

std::vector<LiveObservation> MakeObservationStream(
    const std::vector<Trajectory>& objects) {
  std::vector<LiveObservation> stream;
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    const std::vector<Rect2D> rects = object.Sample();
    for (Time t = life.start; t < life.end; ++t) {
      LiveObservation update;
      update.object = object.id();
      update.time = t;
      update.rect = rects[static_cast<size_t>(t - life.start)];
      stream.push_back(update);
    }
    LiveObservation end;
    end.object = object.id();
    end.time = life.end;
    end.is_end = true;
    stream.push_back(end);
  }
  std::sort(stream.begin(), stream.end(),
            [](const LiveObservation& a, const LiveObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_end != b.is_end) return a.is_end;
              return a.object < b.object;
            });
  return stream;
}

}  // namespace stindex
