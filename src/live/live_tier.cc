#include "live/live_tier.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct TierMetrics {
  Counter* observes;
  Counter* ends;
  Counter* dup_skips;
  Counter* queries;
};

const TierMetrics& Metrics() {
  static const TierMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return TierMetrics{r.GetCounter("live.observes"),
                       r.GetCounter("live.ends"),
                       r.GetCounter("live.dup_skips"),
                       r.GetCounter("live.queries")};
  }();
  return m;
}

}  // namespace

LiveTier::LiveTier(LiveTierOptions options,
                   std::unique_ptr<PageBackend> wal_backend)
    : options_(options),
      wal_backend_(std::move(wal_backend)),
      index_(options.index),
      tree_(std::make_unique<PprTree>(options.ppr)),
      pipeline_(tree_.get()),
      pool_(tree_->NewSharedQueryPool(options.query_pool_pages)) {}

Result<std::unique_ptr<LiveTier>> LiveTier::Open(
    LiveTierOptions options, std::unique_ptr<PageBackend> wal_backend) {
  if (wal_backend == nullptr) {
    return Status::InvalidArgument("live tier requires a WAL backend");
  }
  std::unique_ptr<LiveTier> tier(
      new LiveTier(options, std::move(wal_backend)));
  Status status = tier->Recover();
  if (!status.ok()) return status;
  return tier;
}

Status LiveTier::Recover() {
  TraceSpan span("live", "recover");
  Result<WalReplayStats> stats = ReplayWal(
      *wal_backend_,
      [this](const WalRecord& record) { return ApplyReplayRecord(record); });
  if (!stats.ok()) return stats.status();
  recovered_ = stats.value();
  writer_ =
      std::make_unique<WalWriter>(wal_backend_.get(), recovered_.next_page);
  // Seals directly follow their trigger in the log, so only the very tail
  // can have lost them; re-derive those now, through the same policy the
  // uninterrupted run used.
  return SealRipe();
}

Status LiveTier::ApplyReplayRecord(const WalRecord& record) {
  bool applied = false;
  switch (record.kind) {
    case WalRecord::Kind::kObserve: {
      Status status = index_.Observe(record.object, record.time, record.rect,
                                     &applied);
      if (!status.ok()) return status;
      if (!applied) {
        return Status::InvalidArgument(
            "wal replay: duplicate observation of object " +
            std::to_string(record.object));
      }
      return Status::OK();
    }
    case WalRecord::Kind::kEnd: {
      Status status = index_.End(record.object, record.time, &applied);
      if (!status.ok()) return status;
      if (!applied) {
        return Status::InvalidArgument("wal replay: duplicate end of object " +
                                       std::to_string(record.object));
      }
      return Status::OK();
    }
    case WalRecord::Kind::kSeal: {
      // Log-driven seal: do exactly what the original run journaled, and
      // verify the replayed state produces the same chunk.
      Result<LiveIndex::SealedChunk> chunk = index_.Seal(record.object);
      if (!chunk.ok()) {
        return Status::InvalidArgument(
            "wal replay: seal does not match replayed state (" +
            chunk.status().message() + ")");
      }
      if (chunk.value().start != record.time) {
        return Status::InvalidArgument(
            "wal replay: seal of object " + std::to_string(record.object) +
            " starts at t=" + std::to_string(chunk.value().start) +
            ", log says t=" + std::to_string(record.time));
      }
      const size_t produced = pipeline_.Enqueue(chunk.value());
      if (produced != record.segments) {
        return Status::InvalidArgument(
            "wal replay: seal of object " + std::to_string(record.object) +
            " produced " + std::to_string(produced) + " segments, log says " +
            std::to_string(record.segments));
      }
      pipeline_.Advance(index_.Watermark());
      return Status::OK();
    }
  }
  return Status::InvalidArgument("wal replay: unknown record kind");
}

Status LiveTier::CheckAlive() const {
  if (failed_) {
    return Status::FailedPrecondition(
        "live tier hit a WAL I/O failure — reopen the journal to recover");
  }
  if (finished_) {
    return Status::FailedPrecondition("live tier is finished");
  }
  return Status::OK();
}

Status LiveTier::Latch(Status status) {
  failed_ = true;
  return status;
}

Status LiveTier::SealAndJournal(ObjectId object) {
  Result<LiveIndex::SealedChunk> chunk = index_.Seal(object);
  if (!chunk.ok()) return chunk.status();
  // ApplySplits yields one segment per cut plus the tail.
  const uint32_t segments =
      static_cast<uint32_t>(chunk.value().cuts.size() + 1);
  Status status = writer_->Append(
      WalRecord::Seal(object, chunk.value().start, segments));
  if (!status.ok()) return Latch(status);
  const size_t produced = pipeline_.Enqueue(chunk.value());
  STINDEX_CHECK(produced == segments);
  return Status::OK();
}

Status LiveTier::SealRipe() {
  for (ObjectId object : index_.RipeForCatchUp()) {
    Status status = SealAndJournal(object);
    if (!status.ok()) return status;
  }
  while (index_.OverBudget()) {
    const ObjectId victim = index_.BudgetVictim();
    STINDEX_CHECK(victim != LiveIndex::kInvalidObject);
    Status status = SealAndJournal(victim);
    if (!status.ok()) return status;
  }
  pipeline_.Advance(index_.Watermark());
  return Status::OK();
}

Status LiveTier::Observe(ObjectId object, Time t, const Rect2D& rect) {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  bool applied = false;
  status = index_.Observe(object, t, rect, &applied);
  if (!status.ok()) return status;
  if (!applied) {
    Metrics().dup_skips->Add(1);
    return Status::OK();
  }
  Metrics().observes->Add(1);
  status = writer_->Append(WalRecord::Observe(object, t, rect));
  if (!status.ok()) return Latch(status);
  return SealRipe();
}

Status LiveTier::End(ObjectId object, Time t) {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  bool applied = false;
  status = index_.End(object, t, &applied);
  if (!status.ok()) return status;
  if (!applied) {
    Metrics().dup_skips->Add(1);
    return Status::OK();
  }
  Metrics().ends->Add(1);
  status = writer_->Append(WalRecord::End(object, t));
  if (!status.ok()) return Latch(status);
  return SealRipe();
}

Status LiveTier::Apply(const LiveObservation& update) {
  if (update.is_end) return End(update.object, update.time);
  return Observe(update.object, update.time, update.rect);
}

Status LiveTier::Commit() {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  status = writer_->Commit();
  if (!status.ok()) return Latch(status);
  return Status::OK();
}

Status LiveTier::Finish() {
  std::unique_lock lock(mu_);
  Status status = CheckAlive();
  if (!status.ok()) return status;
  for (ObjectId object : index_.BufferedObjects()) {
    status = SealAndJournal(object);
    if (!status.ok()) return status;
  }
  pipeline_.Drain();
  status = writer_->Commit();
  if (!status.ok()) return Latch(status);
  finished_ = true;
  return Status::OK();
}

void LiveTier::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                             std::vector<ObjectId>* out) const {
  std::shared_lock lock(mu_);
  Metrics().queries->Add(1);
  out->clear();
  std::vector<PprDataId> raw;
  SharedBufferPool::Session session(pool_.get());
  tree_->IntervalQuery(area, range, &session, &raw);
  for (PprDataId id : raw) {
    // A record whose delete is still queued looks alive-to-infinity
    // inside the tree; re-check against the true segment interval.
    if (pipeline_.ClipToInterval(id, range)) {
      out->push_back(pipeline_.ObjectOf(id));
    }
  }
  pipeline_.CollectPending(area, range, out);
  index_.CollectLive(area, range, out);
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

void LiveTier::SnapshotQuery(const Rect2D& area, Time t,
                             std::vector<ObjectId>* out) const {
  IntervalQuery(area, TimeInterval(t, t + 1), out);
}

size_t LiveTier::live_objects() const {
  std::shared_lock lock(mu_);
  return index_.live_objects();
}

size_t LiveTier::buffered_instants() const {
  std::shared_lock lock(mu_);
  return index_.buffered_instants();
}

size_t LiveTier::pending_events() const {
  std::shared_lock lock(mu_);
  return pipeline_.pending_events();
}

std::vector<LiveObservation> MakeObservationStream(
    const std::vector<Trajectory>& objects) {
  std::vector<LiveObservation> stream;
  for (const Trajectory& object : objects) {
    const TimeInterval life = object.Lifetime();
    const std::vector<Rect2D> rects = object.Sample();
    for (Time t = life.start; t < life.end; ++t) {
      LiveObservation update;
      update.object = object.id();
      update.time = t;
      update.rect = rects[static_cast<size_t>(t - life.start)];
      stream.push_back(update);
    }
    LiveObservation end;
    end.object = object.id();
    end.time = life.end;
    end.is_end = true;
    stream.push_back(end);
  }
  std::sort(stream.begin(), stream.end(),
            [](const LiveObservation& a, const LiveObservation& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.is_end != b.is_end) return a.is_end;
              return a.object < b.object;
            });
  return stream;
}

}  // namespace stindex
