#include "live/migration.h"

#include <algorithm>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct MigrationMetrics {
  Counter* chunks;
  Counter* segments;
  Counter* applied;
};

const MigrationMetrics& Metrics() {
  static const MigrationMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return MigrationMetrics{r.GetCounter("live.migration.chunks"),
                            r.GetCounter("live.migration.segments"),
                            r.GetCounter("live.migration.applied_events")};
  }();
  return m;
}

}  // namespace

MigrationPipeline::MigrationPipeline(PprTree* tree) : tree_(tree) {}

size_t MigrationPipeline::Enqueue(const LiveIndex::SealedChunk& chunk) {
  TraceSpan span("live", "migrate_seal");
  span.Arg("object", static_cast<int64_t>(chunk.object));
  const std::vector<SegmentRecord> records =
      ApplySplits(chunk.object, chunk.rects, chunk.start, chunk.cuts);
  for (const SegmentRecord& record : records) {
    const PprDataId id = static_cast<PprDataId>(segments_.size());
    segments_.push_back(record);
    insert_pending_.insert(id);
    delete_pending_.insert(id);
    events_.push(Event{record.box.interval.start, /*is_insert=*/true, id});
    events_.push(Event{record.box.interval.end, /*is_insert=*/false, id});
  }
  Metrics().chunks->Add(1);
  Metrics().segments->Add(records.size());
  return records.size();
}

void MigrationPipeline::Apply(const Event& event) {
  const SegmentRecord& record = segments_[static_cast<size_t>(event.id)];
  if (event.is_insert) {
    tree_->Insert(record.box.rect, event.time, event.id);
    insert_pending_.erase(event.id);
  } else {
    tree_->Delete(event.id, event.time);
    delete_pending_.erase(event.id);
  }
  ++applied_events_;
  Metrics().applied->Add(1);
}

void MigrationPipeline::Advance(Time watermark) {
  while (!events_.empty() && events_.top().time < watermark) {
    const Event event = events_.top();
    events_.pop();
    Apply(event);
  }
}

void MigrationPipeline::Drain() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    Apply(event);
  }
}

void MigrationPipeline::RetargetAfterPack(PprTree* tree) {
  // An id in delete_pending_ but not insert_pending_ had its insert
  // applied to the now-frozen layer; its delete is unappliable from here
  // on. Afterwards delete_pending_ == insert_pending_, so the queue is
  // exactly the fully-pending ids' events — rebuild it the same way
  // DecodeState does, now aimed at the fresh active tree.
  for (PprDataId id : delete_pending_) {
    if (insert_pending_.count(id) == 0) frozen_deletes_.insert(id);
  }
  for (PprDataId id : frozen_deletes_) delete_pending_.erase(id);
  events_ = std::priority_queue<Event, std::vector<Event>, EventAfter>();
  for (PprDataId id : insert_pending_) {
    const STBox& box = segments_[static_cast<size_t>(id)].box;
    events_.push(Event{box.interval.start, /*is_insert=*/true, id});
  }
  for (PprDataId id : delete_pending_) {
    const STBox& box = segments_[static_cast<size_t>(id)].box;
    events_.push(Event{box.interval.end, /*is_insert=*/false, id});
  }
  tree_ = tree;
}

void MigrationPipeline::EncodeState(ByteSink* out) const {
  out->Write(static_cast<uint64_t>(segments_.size()));
  for (const SegmentRecord& record : segments_) {
    out->Write(record.object);
    out->Write(record.box.rect);
    out->Write(record.box.interval);
  }
  const auto write_sorted = [out](const std::unordered_set<PprDataId>& set) {
    std::vector<PprDataId> ids(set.begin(), set.end());
    std::sort(ids.begin(), ids.end());
    out->Write(static_cast<uint64_t>(ids.size()));
    for (PprDataId id : ids) out->Write(id);
  };
  write_sorted(insert_pending_);
  write_sorted(delete_pending_);
  write_sorted(frozen_deletes_);
  out->Write(static_cast<uint64_t>(applied_events_));
}

Status MigrationPipeline::DecodeState(ByteSource* in) {
  STINDEX_CHECK_MSG(segments_.empty() && events_.empty(),
                    "checkpoint restore into a non-empty pipeline");
  uint64_t segment_count = 0;
  if (!in->Read(&segment_count)) {
    return Status::InvalidArgument("checkpoint: truncated segment list");
  }
  segments_.reserve(static_cast<size_t>(segment_count));
  for (uint64_t i = 0; i < segment_count; ++i) {
    SegmentRecord record;
    if (!in->Read(&record.object) || !in->Read(&record.box.rect) ||
        !in->Read(&record.box.interval)) {
      return Status::InvalidArgument("checkpoint: truncated segment list");
    }
    segments_.push_back(record);
  }
  const auto read_set = [&](std::unordered_set<PprDataId>* set,
                            bool is_insert) -> Status {
    uint64_t count = 0;
    if (!in->Read(&count)) {
      return Status::InvalidArgument("checkpoint: truncated pending set");
    }
    for (uint64_t i = 0; i < count; ++i) {
      PprDataId id = 0;
      if (!in->Read(&id)) {
        return Status::InvalidArgument("checkpoint: truncated pending set");
      }
      if (static_cast<size_t>(id) >= segments_.size()) {
        return Status::InvalidArgument(
            "checkpoint: pending id " + std::to_string(id) +
            " beyond the segment list");
      }
      set->insert(id);
      const STBox& box = segments_[static_cast<size_t>(id)].box;
      events_.push(Event{is_insert ? box.interval.start : box.interval.end,
                         is_insert, id});
    }
    return Status::OK();
  };
  Status status = read_set(&insert_pending_, /*is_insert=*/true);
  if (!status.ok()) return status;
  status = read_set(&delete_pending_, /*is_insert=*/false);
  if (!status.ok()) return status;
  // Frozen deletes rebuild the set only — their events are unappliable by
  // construction, so none are queued.
  uint64_t frozen_count = 0;
  if (!in->Read(&frozen_count)) {
    return Status::InvalidArgument("checkpoint: truncated frozen-delete set");
  }
  for (uint64_t i = 0; i < frozen_count; ++i) {
    PprDataId id = 0;
    if (!in->Read(&id)) {
      return Status::InvalidArgument("checkpoint: truncated frozen-delete set");
    }
    if (static_cast<size_t>(id) >= segments_.size()) {
      return Status::InvalidArgument("checkpoint: frozen-delete id " +
                                     std::to_string(id) +
                                     " beyond the segment list");
    }
    frozen_deletes_.insert(id);
  }
  uint64_t applied = 0;
  if (!in->Read(&applied)) {
    return Status::InvalidArgument("checkpoint: truncated pipeline state");
  }
  applied_events_ = static_cast<size_t>(applied);
  return Status::OK();
}

void MigrationPipeline::CollectPending(const Rect2D& area,
                                       const TimeInterval& range,
                                       std::vector<ObjectId>* out) const {
  const STBox query(area, range);
  for (const PprDataId id : insert_pending_) {
    if (segments_[static_cast<size_t>(id)].box.Intersects(query)) {
      out->push_back(ObjectOf(id));
    }
  }
}

bool MigrationPipeline::ClipToInterval(PprDataId id,
                                       const TimeInterval& range) const {
  if (delete_pending_.count(id) == 0 && frozen_deletes_.count(id) == 0) {
    return true;
  }
  return segments_[static_cast<size_t>(id)].box.interval.Intersects(range);
}

}  // namespace stindex
