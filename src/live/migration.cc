#include "live/migration.h"

#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct MigrationMetrics {
  Counter* chunks;
  Counter* segments;
  Counter* applied;
};

const MigrationMetrics& Metrics() {
  static const MigrationMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return MigrationMetrics{r.GetCounter("live.migration.chunks"),
                            r.GetCounter("live.migration.segments"),
                            r.GetCounter("live.migration.applied_events")};
  }();
  return m;
}

}  // namespace

MigrationPipeline::MigrationPipeline(PprTree* tree) : tree_(tree) {}

size_t MigrationPipeline::Enqueue(const LiveIndex::SealedChunk& chunk) {
  TraceSpan span("live", "migrate_seal");
  span.Arg("object", static_cast<int64_t>(chunk.object));
  const std::vector<SegmentRecord> records =
      ApplySplits(chunk.object, chunk.rects, chunk.start, chunk.cuts);
  for (const SegmentRecord& record : records) {
    const PprDataId id = static_cast<PprDataId>(segments_.size());
    segments_.push_back(record);
    insert_pending_.insert(id);
    delete_pending_.insert(id);
    events_.push(Event{record.box.interval.start, /*is_insert=*/true, id});
    events_.push(Event{record.box.interval.end, /*is_insert=*/false, id});
  }
  Metrics().chunks->Add(1);
  Metrics().segments->Add(records.size());
  return records.size();
}

void MigrationPipeline::Apply(const Event& event) {
  const SegmentRecord& record = segments_[static_cast<size_t>(event.id)];
  if (event.is_insert) {
    tree_->Insert(record.box.rect, event.time, event.id);
    insert_pending_.erase(event.id);
  } else {
    tree_->Delete(event.id, event.time);
    delete_pending_.erase(event.id);
  }
  ++applied_events_;
  Metrics().applied->Add(1);
}

void MigrationPipeline::Advance(Time watermark) {
  while (!events_.empty() && events_.top().time < watermark) {
    const Event event = events_.top();
    events_.pop();
    Apply(event);
  }
}

void MigrationPipeline::Drain() {
  while (!events_.empty()) {
    const Event event = events_.top();
    events_.pop();
    Apply(event);
  }
}

void MigrationPipeline::CollectPending(const Rect2D& area,
                                       const TimeInterval& range,
                                       std::vector<ObjectId>* out) const {
  const STBox query(area, range);
  for (const PprDataId id : insert_pending_) {
    if (segments_[static_cast<size_t>(id)].box.Intersects(query)) {
      out->push_back(ObjectOf(id));
    }
  }
}

bool MigrationPipeline::ClipToInterval(PprDataId id,
                                       const TimeInterval& range) const {
  if (delete_pending_.count(id) == 0) return true;
  return segments_[static_cast<size_t>(id)].box.interval.Intersects(range);
}

}  // namespace stindex
