#ifndef STINDEX_LIVE_LIVE_TIER_H_
#define STINDEX_LIVE_LIVE_TIER_H_

#include <chrono>
#include <condition_variable>
#include <memory>
#include <shared_mutex>
#include <vector>

#include "live/checkpoint.h"
#include "live/live_index.h"
#include "live/migration.h"
#include "live/wal.h"
#include "pprtree/ppr_tree.h"
#include "storage/page_backend.h"
#include "storage/shared_buffer_pool.h"
#include "util/status.h"

namespace stindex {

struct LiveTierOptions {
  LiveIndexOptions index;
  PprConfig ppr;
  // Frames of the shared query pool over the historical tree (0 = the
  // PprConfig default).
  size_t query_pool_pages = 0;
  // Automatic WAL checkpointing: once a successful Commit leaves at
  // least this many flushed journal pages since the last checkpoint, the
  // tier checkpoints and truncates them. 0 disables the automatic
  // trigger (explicit Checkpoint() calls still work).
  size_t checkpoint_every_pages = 0;
  // Group commit: concurrent Commit() callers coalesce into one fsync —
  // one caller becomes the leader, flushes everything appended so far
  // and syncs once; the rest wait for the leader to cover their records.
  bool group_commit = false;
  // With group commit: how long the leader waits before flushing, so
  // later callers can join the batch (0 = flush immediately). Updates
  // keep appending while the leader waits — the lock is released.
  int64_t commit_interval_us = 0;
};

// One movement update of the input stream; `MakeObservationStream` turns
// a trajectory dataset into the tick-ordered sequence of these that a
// position feed would deliver.
struct LiveObservation {
  ObjectId object = 0;
  Time time = 0;
  Rect2D rect;
  bool is_end = false;  // when set, `time` is one past the last instant
};

// The crash-safe live ingestion tier: movement updates land in an
// in-memory LiveIndex and are journaled to a write-ahead log; ripe
// buffers (capacity / duration / global-budget knobs, LIT's -c/-d/-b)
// seal into segments through the online splitter and migrate into a
// persistent PPR-tree in time order (see MigrationPipeline). Queries
// consult all three layers — historical tree, in-flight migration
// records, live buffers — so an acknowledged update is immediately and
// exactly visible.
//
// Updates journal *before* they apply: a record that never reached the
// WAL is never visible to queries, so a latched tier cannot serve
// phantom state (visibility implies journaled).
//
// Durability contract: an update is acknowledged once a later Commit()
// returns OK. On crash, reopen the WAL backend and Open() again:
// recovery loads the latest committed checkpoint (if any) and redo-
// replays only the journal tail past it (seals are log-driven, so the
// rebuilt tree is byte-identical), and re-ingesting the whole input is
// safe — absorbed records are detected and skipped. Any WAL I/O error
// latches the tier dead (kFailedPrecondition thereafter): the in-memory
// state may be ahead of the log, so the only safe continuation is
// recovery from the durable prefix.
//
// Checkpoints bound the journal: Checkpoint() (or the automatic
// checkpoint_every_pages trigger) persists the historical tree's pages
// through a write-back BufferPool plus the pipeline/index state into the
// journal backend, syncs, commits a checkpoint header, and then frees
// every journal page before the checkpoint — the file's page count
// stays bounded across arbitrarily long streams.
//
// Thread safety: updates and Commit/Finish/Checkpoint are serialized
// internally and may run concurrently with any number of queries
// (readers-writer lock; historical reads go through a sharded
// SharedBufferPool).
class LiveTier {
 public:
  // `wal_backend` holds the journal: freshly Create()d for a new tier, or
  // re-Open()ed after a crash — Open replays it before returning.
  static Result<std::unique_ptr<LiveTier>> Open(
      LiveTierOptions options, std::unique_ptr<PageBackend> wal_backend);

  // --- updates (serialized; acknowledged by the next Commit) -----------

  Status Observe(ObjectId object, Time t, const Rect2D& rect);
  Status End(ObjectId object, Time t);
  Status Apply(const LiveObservation& update);

  // Makes every update since the last Commit durable. Under group_commit
  // concurrent callers coalesce into one fsync (see LiveTierOptions).
  Status Commit();

  // Persists the full tier state into the journal backend and truncates
  // every journal page it covers. Queries run concurrently; updates wait.
  Status Checkpoint();

  // End of stream: seals every remaining buffer, drains the migration
  // pipeline into the tree and commits. The tier is frozen afterwards
  // (further updates are kFailedPrecondition; queries keep working).
  Status Finish();

  // Packs the current historical tree into a read-only mmap snapshot at
  // `path` and freezes it as a layer served zero-copy; a fresh active
  // tree takes over migration (deletes of records already in the frozen
  // layer are clipped at query time forever — see
  // MigrationPipeline::RetargetAfterPack). Queries consult every frozen
  // layer plus the active tree, so answers are unchanged. The pack is
  // not WAL-journaled: a crash before the next checkpoint recovers to
  // the pre-pack single-tree layering with identical answers; the next
  // checkpoint persists the layering. Allowed after Finish() (the tier
  // stays finished); refused once the tier is latched.
  Status PackHistorical(const std::string& path,
                        const SnapshotFile::Options& options = {});

  // --- queries (exact over acknowledged and in-flight updates) ---------

  // `profile` (optional) accumulates EXPLAIN counts across every layer
  // the query consulted — the slow-query log's capture payload.
  void SnapshotQuery(const Rect2D& area, Time t, std::vector<ObjectId>* out,
                     QueryProfile* profile = nullptr) const;
  // Objects occupying `area` at any instant of [range.start, range.end);
  // sorted, de-duplicated.
  void IntervalQuery(const Rect2D& area, const TimeInterval& range,
                     std::vector<ObjectId>* out,
                     QueryProfile* profile = nullptr) const;

  // --- introspection ----------------------------------------------------

  // The *active* persistent tree (frozen packed layers excluded). Only
  // stable while no update runs concurrently; the differential tests
  // compare it against a batch-built tree after Finish().
  const PprTree& historical() const { return *tree_; }
  // Frozen packed layers currently serving queries.
  size_t frozen_layers() const;
  // Segments migrated so far, in migration order (PprDataId = index).
  const std::vector<SegmentRecord>& migrated_segments() const {
    return pipeline_.segments();
  }

  size_t live_objects() const;
  size_t buffered_instants() const;
  size_t pending_events() const;
  uint64_t wal_records() const;
  uint64_t wal_pages() const;
  uint64_t wal_commits() const;
  // Journal pages flushed since the last checkpoint (the replay tail a
  // crash right now would read).
  uint64_t wal_tail_pages() const;
  // Committed checkpoints over this tier's lifetime, including the one
  // recovery loaded (its sequence number).
  uint64_t checkpoint_seq() const;
  // Replay statistics from Open (post-checkpoint tail only).
  const WalReplayStats& recovered() const { return recovered_; }
  // True once a WAL I/O failure latched the tier dead (every further
  // mutation returns kFailedPrecondition). The /healthz signal.
  bool latched() const;

  // One consistent reading of everything /statusz reports about the
  // tier, taken under the shared lock.
  struct Telemetry {
    bool latched = false;
    bool finished = false;
    uint64_t wal_records = 0;
    uint64_t wal_pages = 0;
    uint64_t wal_tail_pages = 0;
    uint64_t wal_commits = 0;
    uint64_t checkpoint_seq = 0;
    double seconds_since_checkpoint = 0.0;  // since Open when none yet
    size_t live_objects = 0;
    size_t buffered_instants = 0;
    size_t pending_events = 0;  // migration queue depth
    size_t frozen_layers = 0;
    // Migration watermark and the newest observed instant: their gap is
    // how far the live buffers trail the stream head.
    Time watermark = 0;
    Time last_time = 0;
    // Query-pool occupancy: the active tree's shared pool first, then
    // one entry per frozen layer's pool, flattened shard by shard.
    std::vector<SharedBufferPool::ShardOccupancy> pool_shards;
  };
  Telemetry GetTelemetry() const;

  // Publishes the tier's deterministic state gauges (live.objects,
  // live.pending_events, live.frozen_layers, live.wal.*, watermark lag)
  // to the global registry and flushes the shared pools' counter deltas.
  // Deterministic inputs only — no wall-clock or occupancy readings — so
  // bench reports that dump the registry stay byte-identical.
  void PublishGauges() const;

 private:
  LiveTier(LiveTierOptions options, std::unique_ptr<PageBackend> wal_backend);

  // Loads the latest committed checkpoint (if any), replays the journal
  // tail past it, frees debris and seals anything whose seal record was
  // lost with the log's tail.
  Status Recover();
  Status RestoreFromCheckpoint(const CheckpointHeader& header,
                               std::vector<PageId>* owned_slots);
  Status ApplyReplayRecord(const WalRecord& record);

  // Seals every ripe buffer (the deterministic order documented on
  // LiveIndex::RipeForCatchUp, then budget evictions) and advances the
  // migration pipeline. Runs after every applied update and at recovery
  // catch-up — one code path, so a crashed-and-recovered run seals
  // exactly where an uninterrupted one would.
  Status SealRipe();
  Status SealAndJournal(ObjectId object);

  // Serializes the layered tree state (per layer, oldest frozen first
  // then the active tree: meta + node slot map) + pipeline + index into
  // one byte stream (the checkpoint metadata chain's content).
  void EncodeCheckpointState(
      const std::vector<std::vector<PageId>>& layer_slots,
      ByteSink* out) const;
  // The checkpoint procedure; caller holds the exclusive lock.
  Status CheckpointLocked();
  // Runs CheckpointLocked when the automatic trigger is armed and due.
  Status MaybeCheckpointLocked();

  Status CheckAlive() const;
  Status Latch(Status status);  // records a WAL failure; returns it

  // One packed historical layer: a frozen tree serving from its snapshot
  // backend (or, after a recovery, from its in-memory store — the pack
  // optimization is lost on recovery, the answers are not), plus the
  // shared pool queries read it through. Pool declared after the tree so
  // it dies first.
  struct FrozenLayer {
    std::unique_ptr<PprTree> tree;
    std::unique_ptr<SharedBufferPool> pool;
  };

  LiveTierOptions options_;
  std::unique_ptr<PageBackend> wal_backend_;
  WalSlotAllocator slots_;
  std::unique_ptr<WalWriter> writer_;  // set once Recover finishes replay
  LiveIndex index_;
  std::vector<FrozenLayer> frozen_;  // oldest first
  std::unique_ptr<PprTree> tree_;    // the active tree
  MigrationPipeline pipeline_;
  std::unique_ptr<SharedBufferPool> pool_;
  WalReplayStats recovered_;
  // Sequence of the committed checkpoint (0 = none yet) and the slots it
  // owns (tree node pages + metadata chain), freed when the next
  // checkpoint commits.
  uint64_t checkpoint_seq_ = 0;
  std::vector<PageId> checkpoint_slots_;
  // Group commit: records covered by the last successful fsync, and
  // whether a leader is mid-flush. Joiners wait on commit_cv_.
  uint64_t durable_records_ = 0;
  bool commit_leader_active_ = false;
  mutable std::condition_variable_any commit_cv_;
  // When the last checkpoint committed (Open time until the first one) —
  // the /statusz checkpoint-age reading.
  std::chrono::steady_clock::time_point last_checkpoint_at_;
  bool failed_ = false;
  bool finished_ = false;
  mutable std::shared_mutex mu_;
};

// Flattens a trajectory dataset into the live tier's input: one observe
// per alive instant plus one end per object, ordered by (tick, ends
// before observes, object id) — the order a per-tick position feed
// delivers.
std::vector<LiveObservation> MakeObservationStream(
    const std::vector<Trajectory>& objects);

}  // namespace stindex

#endif  // STINDEX_LIVE_LIVE_TIER_H_
