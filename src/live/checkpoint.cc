#include "live/checkpoint.h"

#include <algorithm>
#include <string>

#include "storage/page_codec.h"
#include "util/check.h"

namespace stindex {
namespace {

// kCheckpointPage payload: a chain link plus its slice of the metadata
// byte stream.
//   u64 checkpoint_seq   (guards against mixing chains)
//   u32 page_index       (0-based position in the chain)
//   u32 next_slot        (kInvalidPage on the last page)
//   u32 byte_count
//   bytes...
constexpr size_t kMetaPageHeaderBytes =
    sizeof(uint64_t) + 3 * sizeof(uint32_t);
constexpr size_t kMetaBytesPerPage = kPagePayloadBytes - kMetaPageHeaderBytes;

}  // namespace

CheckpointHeader ReadLatestCheckpointHeader(const PageBackend& backend) {
  CheckpointHeader best;
  uint8_t page[kPageSize];
  for (PageId slot = 0; slot < kWalFirstDataSlot; ++slot) {
    if (static_cast<size_t>(slot) >= backend.SlotCount() ||
        !backend.IsAllocated(slot)) {
      continue;
    }
    if (!backend.Read(slot, page).ok()) continue;
    Result<PageReader> payload =
        OpenPagePayload(page, PageKind::kCheckpointHeader, slot);
    if (!payload.ok()) continue;  // torn or foreign: the other slot decides
    PageReader reader = payload.value();
    CheckpointHeader header;
    if (!reader.Read(&header.checkpoint_seq) ||
        !reader.Read(&header.wal_start_seq) || !reader.Read(&header.meta_head) ||
        !reader.Read(&header.meta_pages) || !reader.Read(&header.meta_bytes)) {
      continue;
    }
    if (header.checkpoint_seq > best.checkpoint_seq) best = header;
  }
  return best;
}

Status WriteCheckpointHeader(PageBackend* backend,
                             const CheckpointHeader& header) {
  STINDEX_CHECK(header.checkpoint_seq > 0);
  const PageId slot = static_cast<PageId>(header.checkpoint_seq % 2);
  uint8_t page[kPageSize];
  PageWriter writer = PayloadWriter(page);
  writer.Write(header.checkpoint_seq);
  writer.Write(header.wal_start_seq);
  writer.Write(header.meta_head);
  writer.Write(header.meta_pages);
  writer.Write(header.meta_bytes);
  SealPage(page, PageKind::kCheckpointHeader);
  return backend->Write(slot, page);
}

Status WriteCheckpointMeta(PageBackend* backend, WalSlotAllocator* allocator,
                           uint64_t checkpoint_seq,
                           const std::vector<uint8_t>& bytes,
                           CheckpointHeader* header,
                           std::vector<PageId>* slots) {
  const size_t pages =
      bytes.empty() ? 1 : (bytes.size() + kMetaBytesPerPage - 1) /
                              kMetaBytesPerPage;
  std::vector<PageId> chain(pages);
  for (size_t i = 0; i < pages; ++i) chain[i] = allocator->Acquire();

  uint8_t page[kPageSize];
  size_t offset = 0;
  for (size_t i = 0; i < pages; ++i) {
    const size_t count = std::min(kMetaBytesPerPage, bytes.size() - offset);
    PageWriter writer = PayloadWriter(page);
    writer.Write(checkpoint_seq);
    writer.Write(static_cast<uint32_t>(i));
    writer.Write(i + 1 < pages ? chain[i + 1] : kInvalidPage);
    writer.Write(static_cast<uint32_t>(count));
    writer.WriteBytes(bytes.data() + offset, count);
    SealPage(page, PageKind::kCheckpointPage);
    Status status = backend->Write(chain[i], page);
    if (!status.ok()) return status;
    offset += count;
  }
  STINDEX_CHECK(offset == bytes.size());

  header->meta_head = chain[0];
  header->meta_pages = static_cast<uint32_t>(pages);
  header->meta_bytes = bytes.size();
  slots->insert(slots->end(), chain.begin(), chain.end());
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadCheckpointMeta(const PageBackend& backend,
                                                const CheckpointHeader& header,
                                                std::vector<PageId>* slots) {
  std::vector<uint8_t> bytes;
  bytes.reserve(header.meta_bytes);
  uint8_t page[kPageSize];
  PageId slot = header.meta_head;
  for (uint32_t i = 0; i < header.meta_pages; ++i) {
    if (slot == kInvalidPage || static_cast<size_t>(slot) >= backend.SlotCount() ||
        !backend.IsAllocated(slot)) {
      return Status::InvalidArgument(
          "checkpoint " + std::to_string(header.checkpoint_seq) +
          ": metadata chain broken at page " + std::to_string(i));
    }
    Status status = backend.Read(slot, page);
    if (!status.ok()) return status;
    Result<PageReader> payload =
        OpenPagePayload(page, PageKind::kCheckpointPage, slot);
    if (!payload.ok()) return payload.status();
    PageReader reader = payload.value();
    uint64_t seq = 0;
    uint32_t index = 0;
    PageId next = kInvalidPage;
    uint32_t count = 0;
    if (!reader.Read(&seq) || !reader.Read(&index) || !reader.Read(&next) ||
        !reader.Read(&count) || seq != header.checkpoint_seq || index != i ||
        count > reader.remaining()) {
      return Status::InvalidArgument(
          "checkpoint " + std::to_string(header.checkpoint_seq) +
          ": corrupt metadata page " + std::to_string(slot));
    }
    const size_t offset = bytes.size();
    bytes.resize(offset + count);
    if (!reader.ReadBytes(bytes.data() + offset, count)) {
      return Status::InvalidArgument(
          "checkpoint " + std::to_string(header.checkpoint_seq) +
          ": truncated metadata page " + std::to_string(slot));
    }
    slots->push_back(slot);
    slot = next;
  }
  if (bytes.size() != header.meta_bytes) {
    return Status::InvalidArgument(
        "checkpoint " + std::to_string(header.checkpoint_seq) +
        ": metadata is " + std::to_string(bytes.size()) + " bytes, header says " +
        std::to_string(header.meta_bytes));
  }
  return bytes;
}

}  // namespace stindex
