#include "live/live_index.h"

#include <algorithm>

namespace stindex {
namespace {

std::string ObjTime(ObjectId object, Time t) {
  return "object " + std::to_string(object) + " at t=" + std::to_string(t);
}

}  // namespace

LiveIndex::LiveIndex(LiveIndexOptions options) : options_(options) {}

Status LiveIndex::Observe(ObjectId object, Time t, const Rect2D& rect,
                          bool* applied) {
  *applied = false;
  if (!rect.IsValid()) {
    return Status::InvalidArgument(ObjTime(object, t) + ": invalid rectangle");
  }
  const auto last = last_instant_.find(object);
  if (last != last_instant_.end() && t <= last->second) {
    return Status::OK();  // already absorbed (re-ingested tail)
  }
  if (retired_.count(object) != 0) {
    return Status::InvalidArgument(ObjTime(object, t) +
                                   ": observation of an ended object");
  }
  if (t < last_global_) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": out of order (stream is at t=" +
        std::to_string(last_global_) + ")");
  }
  if (last != last_instant_.end() && t != last->second + 1) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": non-consecutive instant (previous t=" +
        std::to_string(last->second) + ")");
  }
  auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) {
    buffer = buffers_.emplace(object, Buffer(t, options_.split)).first;
  }
  buffer->second.rects.push_back(rect);
  buffer->second.splitter.Observe(rect);
  last_instant_[object] = t;
  last_global_ = t;
  ++buffered_instants_;
  *applied = true;
  return Status::OK();
}

Status LiveIndex::End(ObjectId object, Time t, bool* applied) {
  *applied = false;
  const auto last = last_instant_.find(object);
  if (last == last_instant_.end()) {
    return Status::InvalidArgument(ObjTime(object, t) +
                                   ": end of an unknown object");
  }
  if (t != last->second + 1) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": end does not follow the last instant (t=" +
        std::to_string(last->second) + ")");
  }
  if (retired_.count(object) != 0) {
    return Status::OK();  // already ended (re-ingested tail)
  }
  retired_.insert(object);
  *applied = true;
  return Status::OK();
}

Result<LiveIndex::SealedChunk> LiveIndex::Seal(ObjectId object) {
  auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) {
    return Status::InvalidArgument("object " + std::to_string(object) +
                                   ": seal without a buffered observation");
  }
  SealedChunk chunk;
  chunk.object = object;
  chunk.start = buffer->second.start;
  chunk.rects = std::move(buffer->second.rects);
  chunk.cuts = buffer->second.splitter.cuts();
  buffered_instants_ -= chunk.rects.size();
  buffers_.erase(buffer);
  return chunk;
}

bool LiveIndex::OverThreshold(ObjectId object) const {
  const auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) return false;
  if (options_.capacity != 0 &&
      buffer->second.rects.size() >= options_.capacity) {
    return true;
  }
  // Duration counts global time, so a buffer also ripens while *other*
  // objects advance the clock.
  return options_.duration != 0 &&
         last_global_ - buffer->second.start + 1 >= options_.duration;
}

ObjectId LiveIndex::BudgetVictim() const {
  ObjectId victim = kInvalidObject;
  Time victim_start = 0;
  for (const auto& [object, buffer] : buffers_) {
    if (victim == kInvalidObject || buffer.start < victim_start ||
        (buffer.start == victim_start && object < victim)) {
      victim = object;
      victim_start = buffer.start;
    }
  }
  return victim;
}

std::vector<ObjectId> LiveIndex::RipeForCatchUp() const {
  std::vector<ObjectId> ended;
  std::vector<ObjectId> over;
  for (const auto& [object, buffer] : buffers_) {
    if (retired_.count(object) != 0) {
      ended.push_back(object);
    } else if (OverThreshold(object)) {
      over.push_back(object);
    }
  }
  std::sort(ended.begin(), ended.end());
  std::sort(over.begin(), over.end());
  ended.insert(ended.end(), over.begin(), over.end());
  return ended;
}

std::vector<ObjectId> LiveIndex::BufferedObjects() const {
  std::vector<ObjectId> objects;
  objects.reserve(buffers_.size());
  for (const auto& [object, buffer] : buffers_) objects.push_back(object);
  std::sort(objects.begin(), objects.end());
  return objects;
}

void LiveIndex::CollectLive(const Rect2D& area, const TimeInterval& range,
                            std::vector<ObjectId>* out) const {
  for (const auto& [object, buffer] : buffers_) {
    const Time end = buffer.start + static_cast<Time>(buffer.rects.size());
    const Time lo = std::max(range.start, buffer.start);
    const Time hi = std::min(range.end, end);
    for (Time t = lo; t < hi; ++t) {
      if (buffer.rects[static_cast<size_t>(t - buffer.start)]
              .Intersects(area)) {
        out->push_back(object);
        break;
      }
    }
  }
}

Time LiveIndex::Watermark() const {
  if (buffers_.empty()) return last_global_;
  Time watermark = std::numeric_limits<Time>::max();
  for (const auto& [object, buffer] : buffers_) {
    watermark = std::min(watermark, buffer.start);
  }
  return watermark;
}

}  // namespace stindex
