#include "live/live_index.h"

#include <algorithm>

namespace stindex {
namespace {

std::string ObjTime(ObjectId object, Time t) {
  return "object " + std::to_string(object) + " at t=" + std::to_string(t);
}

}  // namespace

LiveIndex::LiveIndex(LiveIndexOptions options) : options_(options) {}

Status LiveIndex::CheckObserve(ObjectId object, Time t, const Rect2D& rect,
                               bool* would_apply) const {
  *would_apply = false;
  if (!rect.IsValid()) {
    return Status::InvalidArgument(ObjTime(object, t) + ": invalid rectangle");
  }
  const auto last = last_instant_.find(object);
  if (last != last_instant_.end() && t <= last->second) {
    return Status::OK();  // already absorbed (re-ingested tail)
  }
  if (retired_.count(object) != 0) {
    return Status::InvalidArgument(ObjTime(object, t) +
                                   ": observation of an ended object");
  }
  if (t < last_global_) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": out of order (stream is at t=" +
        std::to_string(last_global_) + ")");
  }
  if (last != last_instant_.end() && t != last->second + 1) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": non-consecutive instant (previous t=" +
        std::to_string(last->second) + ")");
  }
  *would_apply = true;
  return Status::OK();
}

Status LiveIndex::Observe(ObjectId object, Time t, const Rect2D& rect,
                          bool* applied) {
  Status status = CheckObserve(object, t, rect, applied);
  if (!status.ok() || !*applied) return status;
  auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) {
    buffer = buffers_.emplace(object, Buffer(t, options_.split)).first;
  }
  buffer->second.rects.push_back(rect);
  buffer->second.splitter.Observe(rect);
  last_instant_[object] = t;
  last_global_ = t;
  ++buffered_instants_;
  return Status::OK();
}

Status LiveIndex::CheckEnd(ObjectId object, Time t, bool* would_apply) const {
  *would_apply = false;
  const auto last = last_instant_.find(object);
  if (last == last_instant_.end()) {
    return Status::InvalidArgument(ObjTime(object, t) +
                                   ": end of an unknown object");
  }
  if (t != last->second + 1) {
    return Status::InvalidArgument(
        ObjTime(object, t) + ": end does not follow the last instant (t=" +
        std::to_string(last->second) + ")");
  }
  if (retired_.count(object) != 0) {
    return Status::OK();  // already ended (re-ingested tail)
  }
  *would_apply = true;
  return Status::OK();
}

Status LiveIndex::End(ObjectId object, Time t, bool* applied) {
  Status status = CheckEnd(object, t, applied);
  if (!status.ok() || !*applied) return status;
  retired_.insert(object);
  return Status::OK();
}

Result<LiveIndex::SealedChunk> LiveIndex::Seal(ObjectId object) {
  auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) {
    return Status::InvalidArgument("object " + std::to_string(object) +
                                   ": seal without a buffered observation");
  }
  SealedChunk chunk;
  chunk.object = object;
  chunk.start = buffer->second.start;
  chunk.rects = std::move(buffer->second.rects);
  chunk.cuts = buffer->second.splitter.cuts();
  buffered_instants_ -= chunk.rects.size();
  buffers_.erase(buffer);
  return chunk;
}

Result<LiveIndex::SealPreview> LiveIndex::PreviewSeal(ObjectId object) const {
  const auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) {
    return Status::InvalidArgument("object " + std::to_string(object) +
                                   ": seal without a buffered observation");
  }
  SealPreview preview;
  preview.start = buffer->second.start;
  // ApplySplits yields one segment per cut plus the tail.
  preview.segments =
      static_cast<uint32_t>(buffer->second.splitter.cuts().size() + 1);
  return preview;
}

void LiveIndex::EncodeState(ByteSink* out) const {
  std::vector<ObjectId> objects = BufferedObjects();
  out->Write(static_cast<uint64_t>(objects.size()));
  for (ObjectId object : objects) {
    const Buffer& buffer = buffers_.at(object);
    out->Write(object);
    out->Write(buffer.start);
    out->Write(static_cast<uint64_t>(buffer.rects.size()));
    for (const Rect2D& rect : buffer.rects) out->Write(rect);
  }
  std::vector<std::pair<ObjectId, Time>> lasts(last_instant_.begin(),
                                               last_instant_.end());
  std::sort(lasts.begin(), lasts.end());
  out->Write(static_cast<uint64_t>(lasts.size()));
  for (const auto& [object, t] : lasts) {
    out->Write(object);
    out->Write(t);
  }
  std::vector<ObjectId> retired(retired_.begin(), retired_.end());
  std::sort(retired.begin(), retired.end());
  out->Write(static_cast<uint64_t>(retired.size()));
  for (ObjectId object : retired) out->Write(object);
  out->Write(last_global_);
}

Status LiveIndex::DecodeState(ByteSource* in) {
  STINDEX_CHECK_MSG(buffers_.empty() && last_instant_.empty(),
                    "checkpoint restore into a non-empty index");
  uint64_t buffer_count = 0;
  if (!in->Read(&buffer_count)) {
    return Status::InvalidArgument("checkpoint: truncated live-index state");
  }
  for (uint64_t i = 0; i < buffer_count; ++i) {
    ObjectId object = 0;
    Time start = 0;
    uint64_t rect_count = 0;
    if (!in->Read(&object) || !in->Read(&start) || !in->Read(&rect_count)) {
      return Status::InvalidArgument("checkpoint: truncated live buffer");
    }
    auto buffer = buffers_.emplace(object, Buffer(start, options_.split)).first;
    buffer->second.rects.reserve(static_cast<size_t>(rect_count));
    for (uint64_t j = 0; j < rect_count; ++j) {
      Rect2D rect;
      if (!in->Read(&rect)) {
        return Status::InvalidArgument("checkpoint: truncated live buffer");
      }
      buffer->second.rects.push_back(rect);
      // Re-feeding the splitter reproduces its cuts exactly — it is
      // deterministic in the observed sequence.
      buffer->second.splitter.Observe(rect);
    }
    buffered_instants_ += static_cast<size_t>(rect_count);
  }
  uint64_t last_count = 0;
  if (!in->Read(&last_count)) {
    return Status::InvalidArgument("checkpoint: truncated live-index state");
  }
  for (uint64_t i = 0; i < last_count; ++i) {
    ObjectId object = 0;
    Time t = 0;
    if (!in->Read(&object) || !in->Read(&t)) {
      return Status::InvalidArgument("checkpoint: truncated live-index state");
    }
    last_instant_[object] = t;
  }
  uint64_t retired_count = 0;
  if (!in->Read(&retired_count)) {
    return Status::InvalidArgument("checkpoint: truncated live-index state");
  }
  for (uint64_t i = 0; i < retired_count; ++i) {
    ObjectId object = 0;
    if (!in->Read(&object)) {
      return Status::InvalidArgument("checkpoint: truncated live-index state");
    }
    retired_.insert(object);
  }
  if (!in->Read(&last_global_)) {
    return Status::InvalidArgument("checkpoint: truncated live-index state");
  }
  return Status::OK();
}

bool LiveIndex::OverThreshold(ObjectId object) const {
  const auto buffer = buffers_.find(object);
  if (buffer == buffers_.end()) return false;
  if (options_.capacity != 0 &&
      buffer->second.rects.size() >= options_.capacity) {
    return true;
  }
  // Duration counts global time, so a buffer also ripens while *other*
  // objects advance the clock.
  return options_.duration != 0 &&
         last_global_ - buffer->second.start + 1 >= options_.duration;
}

ObjectId LiveIndex::BudgetVictim() const {
  ObjectId victim = kInvalidObject;
  Time victim_start = 0;
  for (const auto& [object, buffer] : buffers_) {
    if (victim == kInvalidObject || buffer.start < victim_start ||
        (buffer.start == victim_start && object < victim)) {
      victim = object;
      victim_start = buffer.start;
    }
  }
  return victim;
}

std::vector<ObjectId> LiveIndex::RipeForCatchUp() const {
  std::vector<ObjectId> ended;
  std::vector<ObjectId> over;
  for (const auto& [object, buffer] : buffers_) {
    if (retired_.count(object) != 0) {
      ended.push_back(object);
    } else if (OverThreshold(object)) {
      over.push_back(object);
    }
  }
  std::sort(ended.begin(), ended.end());
  std::sort(over.begin(), over.end());
  ended.insert(ended.end(), over.begin(), over.end());
  return ended;
}

std::vector<ObjectId> LiveIndex::BufferedObjects() const {
  std::vector<ObjectId> objects;
  objects.reserve(buffers_.size());
  for (const auto& [object, buffer] : buffers_) objects.push_back(object);
  std::sort(objects.begin(), objects.end());
  return objects;
}

void LiveIndex::CollectLive(const Rect2D& area, const TimeInterval& range,
                            std::vector<ObjectId>* out) const {
  for (const auto& [object, buffer] : buffers_) {
    const Time end = buffer.start + static_cast<Time>(buffer.rects.size());
    const Time lo = std::max(range.start, buffer.start);
    const Time hi = std::min(range.end, end);
    for (Time t = lo; t < hi; ++t) {
      if (buffer.rects[static_cast<size_t>(t - buffer.start)]
              .Intersects(area)) {
        out->push_back(object);
        break;
      }
    }
  }
}

Time LiveIndex::Watermark() const {
  if (buffers_.empty()) return last_global_;
  Time watermark = std::numeric_limits<Time>::max();
  for (const auto& [object, buffer] : buffers_) {
    watermark = std::min(watermark, buffer.start);
  }
  return watermark;
}

}  // namespace stindex
