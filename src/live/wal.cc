#include "live/wal.h"

#include <cstring>

#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct WalMetrics {
  Counter* records;
  Counter* pages;
  Counter* commits;
  Counter* replayed_records;
  Counter* replayed_pages;
};

const WalMetrics& Metrics() {
  static const WalMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return WalMetrics{r.GetCounter("live.wal.records"),
                      r.GetCounter("live.wal.pages"),
                      r.GetCounter("live.wal.commits"),
                      r.GetCounter("live.wal.replayed_records"),
                      r.GetCounter("live.wal.replayed_pages")};
  }();
  return m;
}

// Serialized sizes (payload bytes) per record kind; a fixed header of
// kind + object + time, plus kind-specific fields.
constexpr size_t kHeaderBytes =
    sizeof(uint8_t) + sizeof(ObjectId) + sizeof(Time);

size_t RecordBytes(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kObserve:
      return kHeaderBytes + 4 * sizeof(double);
    case WalRecord::Kind::kEnd:
      return kHeaderBytes;
    case WalRecord::Kind::kSeal:
      return kHeaderBytes + sizeof(uint32_t);
  }
  return 0;
}

void SerializeRecord(const WalRecord& record, PageWriter* writer) {
  writer->Write(static_cast<uint8_t>(record.kind));
  writer->Write(record.object);
  writer->Write(record.time);
  switch (record.kind) {
    case WalRecord::Kind::kObserve:
      writer->Write(record.rect.xlo);
      writer->Write(record.rect.ylo);
      writer->Write(record.rect.xhi);
      writer->Write(record.rect.yhi);
      break;
    case WalRecord::Kind::kEnd:
      break;
    case WalRecord::Kind::kSeal:
      writer->Write(record.segments);
      break;
  }
}

// Returns false on a short or malformed payload (the caller decides
// whether that is a torn tail or corruption).
bool DeserializeRecord(PageReader* reader, WalRecord* out) {
  uint8_t kind = 0;
  if (!reader->Read(&kind) || !reader->Read(&out->object) ||
      !reader->Read(&out->time)) {
    return false;
  }
  switch (kind) {
    case static_cast<uint8_t>(WalRecord::Kind::kObserve):
      out->kind = WalRecord::Kind::kObserve;
      return reader->Read(&out->rect.xlo) && reader->Read(&out->rect.ylo) &&
             reader->Read(&out->rect.xhi) && reader->Read(&out->rect.yhi);
    case static_cast<uint8_t>(WalRecord::Kind::kEnd):
      out->kind = WalRecord::Kind::kEnd;
      return true;
    case static_cast<uint8_t>(WalRecord::Kind::kSeal):
      out->kind = WalRecord::Kind::kSeal;
      return reader->Read(&out->segments);
    default:
      return false;  // unknown kind: garbage
  }
}

}  // namespace

bool WalRecord::operator==(const WalRecord& o) const {
  if (kind != o.kind || object != o.object || time != o.time) return false;
  switch (kind) {
    case Kind::kObserve:
      return rect.xlo == o.rect.xlo && rect.ylo == o.rect.ylo &&
             rect.xhi == o.rect.xhi && rect.yhi == o.rect.yhi;
    case Kind::kEnd:
      return true;
    case Kind::kSeal:
      return segments == o.segments;
  }
  return false;
}

WalWriter::WalWriter(PageBackend* backend, PageId next_page)
    : backend_(backend), next_page_(next_page) {
  buffered_.reserve(kPagePayloadBytes);
}

Status WalWriter::FlushPage() {
  uint8_t page[kPageSize];
  PageWriter writer = PayloadWriter(page);
  writer.Write(buffered_count_);
  writer.WriteBytes(buffered_.data(), buffered_.size());
  SealPage(page, PageKind::kWalPage);
  Status status = backend_->Write(next_page_, page);
  if (!status.ok()) return status;
  ++next_page_;
  ++pages_written_;
  Metrics().pages->Add(1);
  buffered_.clear();
  buffered_count_ = 0;
  dirty_since_sync_ = true;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  const size_t bytes = RecordBytes(record);
  // +4 for the record-count field at the head of the payload.
  if (sizeof(uint32_t) + buffered_.size() + bytes > kPagePayloadBytes) {
    Status status = FlushPage();
    if (!status.ok()) return status;
  }
  const size_t offset = buffered_.size();
  buffered_.resize(offset + bytes);
  PageWriter writer(buffered_.data() + offset, bytes);
  SerializeRecord(record, &writer);
  ++buffered_count_;
  ++appended_records_;
  Metrics().records->Add(1);
  return Status::OK();
}

Status WalWriter::Commit() {
  if (buffered_count_ > 0) {
    Status status = FlushPage();
    if (!status.ok()) return status;
  }
  if (!dirty_since_sync_) return Status::OK();
  TraceSpan span("live", "wal_commit");
  Status status = backend_->Sync();
  if (!status.ok()) return status;
  dirty_since_sync_ = false;
  ++commits_;
  Metrics().commits->Add(1);
  return Status::OK();
}

Result<WalReplayStats> ReplayWal(
    const PageBackend& backend,
    const std::function<Status(const WalRecord&)>& apply) {
  TraceSpan span("live", "wal_replay");
  // The durable log is pages 0..k-1 for some k: WalWriter appends them in
  // order and never frees one. Find the end so a decode failure there can
  // be classified as a torn tail rather than interior corruption.
  PageId last = kInvalidPage;
  for (PageId id = 0; id < backend.SlotCount(); ++id) {
    if (backend.IsAllocated(id)) last = id;
  }
  WalReplayStats stats;
  uint8_t page[kPageSize];
  for (PageId id = 0; id == 0 || id <= last; ++id) {
    if (last == kInvalidPage || !backend.IsAllocated(id)) break;
    Status status = backend.Read(id, page);
    if (!status.ok()) return status;  // environment failure, not corruption
    Result<PageReader> payload = OpenPagePayload(page, PageKind::kWalPage, id);
    if (!payload.ok()) {
      if (id == last) {
        stats.torn_tail = true;
        break;
      }
      return Status::InvalidArgument("wal page " + std::to_string(id) + ": " +
                                     payload.status().message());
    }
    PageReader reader = payload.value();
    uint32_t count = 0;
    bool well_formed = reader.Read(&count);
    std::vector<WalRecord> records;
    if (well_formed) {
      records.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WalRecord record;
        if (!DeserializeRecord(&reader, &record)) {
          well_formed = false;
          break;
        }
        records.push_back(record);
      }
    }
    if (!well_formed) {
      // The checksum passed but the payload decodes short: only plausible
      // as a torn tail of a half-written final page; anywhere else the
      // log is corrupt.
      if (id == last) {
        stats.torn_tail = true;
        break;
      }
      return Status::InvalidArgument("wal page " + std::to_string(id) +
                                     ": malformed record payload");
    }
    for (const WalRecord& record : records) {
      Status status_apply = apply(record);
      if (!status_apply.ok()) return status_apply;
      ++stats.records;
    }
    ++stats.pages;
  }
  stats.next_page = static_cast<PageId>(stats.pages);
  Metrics().replayed_records->Add(stats.records);
  Metrics().replayed_pages->Add(stats.pages);
  return stats;
}

}  // namespace stindex
