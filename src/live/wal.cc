#include "live/wal.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace stindex {
namespace {

struct WalMetrics {
  Counter* records;
  Counter* pages;
  Counter* commits;
  Counter* truncated_pages;
  Counter* replayed_records;
  Counter* replayed_pages;
};

const WalMetrics& Metrics() {
  static const WalMetrics m = [] {
    MetricRegistry& r = MetricRegistry::Global();
    return WalMetrics{r.GetCounter("live.wal.records"),
                      r.GetCounter("live.wal.pages"),
                      r.GetCounter("live.wal.commits"),
                      r.GetCounter("live.wal.truncated_pages"),
                      r.GetCounter("live.wal.replayed_records"),
                      r.GetCounter("live.wal.replayed_pages")};
  }();
  return m;
}

// Page payload: [u64 page sequence][u32 record count][records...].
constexpr size_t kPageHeaderBytes = sizeof(uint64_t) + sizeof(uint32_t);

// Serialized sizes (payload bytes) per record kind; a fixed header of
// kind + object + time, plus kind-specific fields.
constexpr size_t kHeaderBytes =
    sizeof(uint8_t) + sizeof(ObjectId) + sizeof(Time);

size_t RecordBytes(const WalRecord& record) {
  switch (record.kind) {
    case WalRecord::Kind::kObserve:
      return kHeaderBytes + 4 * sizeof(double);
    case WalRecord::Kind::kEnd:
      return kHeaderBytes;
    case WalRecord::Kind::kSeal:
      return kHeaderBytes + sizeof(uint32_t);
    case WalRecord::Kind::kCheckpoint:
      return kHeaderBytes;
  }
  return 0;
}

void SerializeRecord(const WalRecord& record, PageWriter* writer) {
  writer->Write(static_cast<uint8_t>(record.kind));
  writer->Write(record.object);
  writer->Write(record.time);
  switch (record.kind) {
    case WalRecord::Kind::kObserve:
      writer->Write(record.rect.xlo);
      writer->Write(record.rect.ylo);
      writer->Write(record.rect.xhi);
      writer->Write(record.rect.yhi);
      break;
    case WalRecord::Kind::kEnd:
      break;
    case WalRecord::Kind::kSeal:
      writer->Write(record.segments);
      break;
    case WalRecord::Kind::kCheckpoint:
      break;
  }
}

// Returns false on a short or malformed payload (the caller decides
// whether that is a torn tail or corruption).
bool DeserializeRecord(PageReader* reader, WalRecord* out) {
  uint8_t kind = 0;
  if (!reader->Read(&kind) || !reader->Read(&out->object) ||
      !reader->Read(&out->time)) {
    return false;
  }
  switch (kind) {
    case static_cast<uint8_t>(WalRecord::Kind::kObserve):
      out->kind = WalRecord::Kind::kObserve;
      return reader->Read(&out->rect.xlo) && reader->Read(&out->rect.ylo) &&
             reader->Read(&out->rect.xhi) && reader->Read(&out->rect.yhi);
    case static_cast<uint8_t>(WalRecord::Kind::kEnd):
      out->kind = WalRecord::Kind::kEnd;
      return true;
    case static_cast<uint8_t>(WalRecord::Kind::kSeal):
      out->kind = WalRecord::Kind::kSeal;
      return reader->Read(&out->segments);
    case static_cast<uint8_t>(WalRecord::Kind::kCheckpoint):
      out->kind = WalRecord::Kind::kCheckpoint;
      return true;
    default:
      return false;  // unknown kind: garbage
  }
}

}  // namespace

bool WalRecord::operator==(const WalRecord& o) const {
  if (kind != o.kind || object != o.object || time != o.time) return false;
  switch (kind) {
    case Kind::kObserve:
      return rect.xlo == o.rect.xlo && rect.ylo == o.rect.ylo &&
             rect.xhi == o.rect.xhi && rect.yhi == o.rect.yhi;
    case Kind::kEnd:
      return true;
    case Kind::kSeal:
      return segments == o.segments;
    case Kind::kCheckpoint:
      return true;
  }
  return false;
}

WalSlotAllocator::WalSlotAllocator(const PageBackend& backend) {
  for (PageId slot = kWalFirstDataSlot;
       slot < static_cast<PageId>(backend.SlotCount()); ++slot) {
    if (backend.IsAllocated(slot)) {
      frontier_ = slot + 1;
    }
  }
  // Holes below the frontier are free.
  for (PageId slot = kWalFirstDataSlot; slot < frontier_; ++slot) {
    if (!backend.IsAllocated(slot)) Release(slot);
  }
}

PageId WalSlotAllocator::Acquire() {
  if (!free_.empty()) {
    std::pop_heap(free_.begin(), free_.end(), std::greater<PageId>());
    const PageId slot = free_.back();
    free_.pop_back();
    return slot;
  }
  return frontier_++;
}

void WalSlotAllocator::Release(PageId slot) {
  STINDEX_CHECK(slot >= kWalFirstDataSlot && slot < frontier_);
  free_.push_back(slot);
  std::push_heap(free_.begin(), free_.end(), std::greater<PageId>());
}

WalWriter::WalWriter(PageBackend* backend, WalSlotAllocator* slots,
                     uint64_t next_seq, std::vector<WalPageRef> tail)
    : backend_(backend),
      slots_(slots),
      next_seq_(next_seq),
      tail_(std::move(tail)) {
  buffered_.reserve(kPagePayloadBytes);
}

Status WalWriter::FlushPage() {
  const PageId slot = slots_->Acquire();
  uint8_t page[kPageSize];
  PageWriter writer = PayloadWriter(page);
  writer.Write(next_seq_);
  writer.Write(buffered_count_);
  writer.WriteBytes(buffered_.data(), buffered_.size());
  SealPage(page, PageKind::kWalPage);
  Status status = backend_->Write(slot, page);
  if (!status.ok()) {
    slots_->Release(slot);
    return status;
  }
  tail_.push_back(WalPageRef{next_seq_, slot});
  ++next_seq_;
  ++pages_written_;
  Metrics().pages->Add(1);
  buffered_.clear();
  buffered_count_ = 0;
  dirty_since_sync_ = true;
  return Status::OK();
}

Status WalWriter::Append(const WalRecord& record) {
  const size_t bytes = RecordBytes(record);
  if (kPageHeaderBytes + buffered_.size() + bytes > kPagePayloadBytes) {
    Status status = FlushPage();
    if (!status.ok()) return status;
  }
  const size_t offset = buffered_.size();
  buffered_.resize(offset + bytes);
  PageWriter writer(buffered_.data() + offset, bytes);
  SerializeRecord(record, &writer);
  ++buffered_count_;
  ++appended_records_;
  Metrics().records->Add(1);
  return Status::OK();
}

Status WalWriter::Flush() {
  if (buffered_count_ == 0) return Status::OK();
  return FlushPage();
}

Status WalWriter::Commit() {
  if (buffered_count_ > 0) {
    Status status = FlushPage();
    if (!status.ok()) return status;
  }
  if (!dirty_since_sync_) return Status::OK();
  TraceSpan span("live", "wal_commit");
  Status status = backend_->Sync();
  if (!status.ok()) return status;
  dirty_since_sync_ = false;
  ++commits_;
  Metrics().commits->Add(1);
  return Status::OK();
}

Status WalWriter::TruncateBefore(uint64_t seq, size_t* freed) {
  *freed = 0;
  // tail_ is ascending by seq, so the pages to free are a prefix. Freeing
  // before erasing keeps a crash mid-loop recoverable: replay treats an
  // already-freed prefix page as covered by the checkpoint, and a
  // not-yet-freed one as stale garbage it frees itself.
  size_t cut = 0;
  for (; cut < tail_.size() && tail_[cut].seq < seq; ++cut) {
    Status status = backend_->Free(tail_[cut].slot);
    if (!status.ok()) {
      tail_.erase(tail_.begin(), tail_.begin() + static_cast<long>(cut));
      return status;
    }
    slots_->Release(tail_[cut].slot);
    ++*freed;
  }
  tail_.erase(tail_.begin(), tail_.begin() + static_cast<long>(cut));
  Metrics().truncated_pages->Add(*freed);
  return Status::OK();
}

Result<WalReplayStats> ReplayWal(
    const PageBackend& backend, const WalReplayOptions& options,
    const std::function<Status(const WalRecord&)>& apply) {
  TraceSpan span("live", "wal_replay");
  WalReplayStats stats;
  stats.next_seq = options.start_seq;

  // Pass 1: classify every allocated data slot. A slot holds either a
  // valid journal page (keyed by its sequence) or debris — a torn tail,
  // a page an interrupted truncation failed to free, or the shadow pages
  // of a checkpoint that never committed.
  struct Candidate {
    uint64_t seq = 0;
    PageId slot = 0;
    std::vector<WalRecord> records;
    bool malformed = false;  // valid envelope, short record payload
  };
  std::vector<Candidate> candidates;
  uint8_t page[kPageSize];
  for (PageId slot = kWalFirstDataSlot;
       slot < static_cast<PageId>(backend.SlotCount()); ++slot) {
    if (!backend.IsAllocated(slot) || options.owned.count(slot) != 0) continue;
    Status status = backend.Read(slot, page);
    if (!status.ok()) return status;  // environment failure, not corruption
    Result<PageReader> payload =
        OpenPagePayload(page, PageKind::kWalPage, slot);
    if (!payload.ok()) {
      stats.torn_tail = true;
      stats.garbage.push_back(slot);
      continue;
    }
    PageReader reader = payload.value();
    Candidate candidate;
    candidate.slot = slot;
    uint32_t count = 0;
    bool well_formed = reader.Read(&candidate.seq) && reader.Read(&count);
    if (well_formed) {
      candidate.records.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        WalRecord record;
        if (!DeserializeRecord(&reader, &record)) {
          well_formed = false;
          break;
        }
        candidate.records.push_back(record);
      }
    }
    if (!well_formed && candidate.seq == 0) {
      // Not even a sequence number: indistinguishable from a torn page.
      stats.torn_tail = true;
      stats.garbage.push_back(slot);
      continue;
    }
    candidate.malformed = !well_formed;
    if (candidate.seq < options.start_seq) {
      // Covered by the committed checkpoint; an interrupted truncation
      // left it behind.
      stats.garbage.push_back(slot);
      continue;
    }
    candidates.push_back(std::move(candidate));
  }

  // Pass 2: the surviving sequences must be exactly start_seq,
  // start_seq + 1, ... — the log's committed pages are a contiguous run,
  // so a hole means a committed page was lost (satellite of truncation:
  // an unexpected gap is an error, never silent data loss).
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.seq < b.seq; });
  uint64_t expected = options.start_seq;
  for (size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& candidate = candidates[i];
    if (candidate.seq != expected) {
      return Status::InvalidArgument(
          "wal: journal page seq " + std::to_string(expected) +
          " missing (slot " + std::to_string(candidate.slot) + " holds seq " +
          std::to_string(candidate.seq) + ") — log lost a committed page");
    }
    if (candidate.malformed) {
      // The checksum passed but the payload decodes short: only plausible
      // as a torn tail of a half-written final page; anywhere else the
      // log is corrupt.
      if (i + 1 == candidates.size()) {
        stats.torn_tail = true;
        stats.garbage.push_back(candidate.slot);
        break;
      }
      return Status::InvalidArgument("wal page seq " +
                                     std::to_string(candidate.seq) +
                                     ": malformed record payload");
    }
    ++expected;
  }

  // Pass 3: deliver, in sequence order.
  for (const Candidate& candidate : candidates) {
    if (candidate.seq >= expected) break;  // torn tail dropped above
    for (const WalRecord& record : candidate.records) {
      Status status = apply(record);
      if (!status.ok()) return status;
      ++stats.records;
    }
    stats.tail.push_back(WalPageRef{candidate.seq, candidate.slot});
    ++stats.pages;
  }
  stats.next_seq = expected;
  Metrics().replayed_records->Add(stats.records);
  Metrics().replayed_pages->Add(stats.pages);
  return stats;
}

}  // namespace stindex
