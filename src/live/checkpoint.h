#ifndef STINDEX_LIVE_CHECKPOINT_H_
#define STINDEX_LIVE_CHECKPOINT_H_

#include <cstdint>
#include <vector>

#include "live/wal.h"
#include "storage/page_backend.h"
#include "util/status.h"

namespace stindex {

// The commit record of a live-tier checkpoint, stored in the journal
// backend's slots 0 and 1 (checkpoint N writes slot N % 2, so a torn
// header write can never destroy the previous checkpoint — the other
// slot still holds it, CRC-valid). A checkpoint consists of:
//
//   * one sealed kPprNode page per historical-tree node, in freshly
//     acquired slots (shadow pages — the previous checkpoint's copies
//     stay untouched until this one commits),
//   * a chain of kCheckpointPage pages carrying the serialized metadata
//     (tree meta + node slot map, migration pipeline, live index),
//   * this header, whose durable write *is* the commit point.
//
// All of the above are synced before the header is written, so a valid
// header always points at complete, durable state ("a checkpoint commits
// only after tree pages are synced"). Everything a failed checkpoint
// left behind is unreferenced debris that recovery frees.
struct CheckpointHeader {
  uint64_t checkpoint_seq = 0;  // 0 = no committed checkpoint
  // Journal pages with seq >= this are the post-checkpoint tail replay
  // starts from; everything earlier was truncated (or is stale debris).
  uint64_t wal_start_seq = 1;
  PageId meta_head = kInvalidPage;  // first page of the metadata chain
  uint32_t meta_pages = 0;
  uint64_t meta_bytes = 0;
};

// Reads slots 0 and 1 and returns the valid header with the highest
// checkpoint_seq; a header with checkpoint_seq == 0 when neither slot
// holds one (fresh journal, or no checkpoint ever committed). Unreadable
// or torn slots are skipped, never an error.
CheckpointHeader ReadLatestCheckpointHeader(const PageBackend& backend);

// Writes `header` into its slot (checkpoint_seq % 2). Does not sync —
// the caller syncs to make the commit durable.
Status WriteCheckpointHeader(PageBackend* backend,
                             const CheckpointHeader& header);

// Writes `bytes` as a chain of kCheckpointPage pages in freshly acquired
// slots, fills header->meta_* and appends the chain's slots to `slots`.
// Does not sync.
Status WriteCheckpointMeta(PageBackend* backend, WalSlotAllocator* allocator,
                           uint64_t checkpoint_seq,
                           const std::vector<uint8_t>& bytes,
                           CheckpointHeader* header,
                           std::vector<PageId>* slots);

// Reads the metadata chain `header` points at; `slots` receives the
// chain's slots (so recovery can mark them checkpoint-owned).
Result<std::vector<uint8_t>> ReadCheckpointMeta(const PageBackend& backend,
                                                const CheckpointHeader& header,
                                                std::vector<PageId>* slots);

}  // namespace stindex

#endif  // STINDEX_LIVE_CHECKPOINT_H_
