#ifndef STINDEX_LIVE_LIVE_INDEX_H_
#define STINDEX_LIVE_LIVE_INDEX_H_

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/online_split.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "trajectory/trajectory.h"
#include "util/bytes.h"
#include "util/status.h"

namespace stindex {

// Buffering and sealing knobs of the live tier, mirroring LIT's update
// parameters: `capacity` is the per-object instant budget (-c), `duration`
// the per-object time budget (-d), `buffer` the global buffered-instant
// budget across all live objects (-b). 0 disables a knob.
struct LiveIndexOptions {
  size_t capacity = 64;
  Time duration = 0;
  size_t buffer = 0;
  OnlineSplitter::Options split;
};

// The in-memory half of the live ingestion tier: per-object buffers of
// recent movement observations, each paired with an OnlineSplitter that
// decides segment cuts incrementally. LiveIndex is pure state — it
// appends, dedups and seals, but *when* to seal is the caller's policy
// (LiveTier in normal operation, the WAL's kSeal records during replay),
// which is what makes replay deterministic.
//
// Stream invariants enforced here:
//  - global observation times are non-decreasing;
//  - per-object instants are consecutive (each observation is at the
//    instant after the object's previous one);
//  - an ended object never moves again.
// Re-delivered records (the unacknowledged tail re-ingested after crash
// recovery) are detected by per-object high-water marks and skipped, so
// replay + re-ingest reconstruct the exact logical stream.
class LiveIndex {
 public:
  // An object's buffer sealed into a migration chunk: `cuts` are the
  // splitter's decisions over `rects` (first instant `start`), ready for
  // ApplySplits.
  struct SealedChunk {
    ObjectId object = 0;
    Time start = 0;
    std::vector<Rect2D> rects;
    std::vector<int> cuts;
  };

  explicit LiveIndex(LiveIndexOptions options);

  // Appends one observation. `*applied` is false when the record is a
  // duplicate of one already absorbed (then the call is a no-op). Errors:
  // a gap in an object's instants, a global time regression, or movement
  // of an ended object.
  Status Observe(ObjectId object, Time t, const Rect2D& rect, bool* applied);

  // Retires the object; `t` must be one past its last observed instant.
  // The buffer is left in place — the caller seals it (policy above).
  Status End(ObjectId object, Time t, bool* applied);

  // Validation-only halves of Observe/End: the exact status and
  // would-apply answer the mutating call would produce, with no state
  // change. LiveTier journals between Check and apply so an update is
  // never visible unless its record reached the WAL ("visibility implies
  // journaled").
  Status CheckObserve(ObjectId object, Time t, const Rect2D& rect,
                      bool* would_apply) const;
  Status CheckEnd(ObjectId object, Time t, bool* would_apply) const;

  // Seals `object`'s buffer into a chunk and clears it. The object must
  // have a non-empty buffer.
  Result<SealedChunk> Seal(ObjectId object);

  // What Seal would journal, without sealing: the chunk's first instant
  // and the number of segments ApplySplits will produce (cuts + 1).
  struct SealPreview {
    Time start = 0;
    uint32_t segments = 0;
  };
  Result<SealPreview> PreviewSeal(ObjectId object) const;

  // --- checkpoint state -------------------------------------------------

  // Serializes the full index state (deterministic: maps are emitted in
  // sorted order). DecodeState restores it into a fresh index with the
  // same options; splitters are rebuilt by re-feeding each buffer's
  // rects, which reproduces their cut decisions exactly (the splitter is
  // deterministic in its observed sequence).
  void EncodeState(ByteSink* out) const;
  Status DecodeState(ByteSource* in);

  // --- sealing policy inputs -------------------------------------------

  // True when `object` has a buffer over the capacity or duration knob.
  bool OverThreshold(ObjectId object) const;
  // True when the global buffered-instant total exceeds the buffer knob.
  bool OverBudget() const {
    return options_.buffer != 0 && buffered_instants_ > options_.buffer;
  }
  // The buffer to evict when over budget: oldest first instant, smallest
  // id on ties. kInvalidObject when no buffers exist.
  ObjectId BudgetVictim() const;
  // Buffers that should already have been sealed: ended objects whose
  // buffer survived (ascending id), then over-threshold buffers
  // (ascending id) — the deterministic catch-up order recovery uses when
  // the tail of the log lost its seal records. At most one trigger can be
  // pending (seal records directly follow their trigger in the log), so
  // this order always matches the order the lost seals originally had.
  std::vector<ObjectId> RipeForCatchUp() const;

  static constexpr ObjectId kInvalidObject =
      std::numeric_limits<ObjectId>::max();

  // --- queries ----------------------------------------------------------

  // Objects with a buffered instant in `range` whose rectangle at that
  // instant intersects `area`. Appends to `out` (unsorted, no duplicates
  // within one call).
  void CollectLive(const Rect2D& area, const TimeInterval& range,
                   std::vector<ObjectId>* out) const;

  // --- introspection ----------------------------------------------------

  bool HasBuffer(ObjectId object) const {
    return buffers_.count(object) != 0;
  }
  // Every object with a non-empty buffer, ascending id — the order
  // Finish seals the stragglers in.
  std::vector<ObjectId> BufferedObjects() const;

  size_t live_objects() const { return buffers_.size(); }
  size_t buffered_instants() const { return buffered_instants_; }
  Time last_time() const { return last_global_; }
  // Migration watermark: every future segment starts at or after this
  // time. Minimum first-buffered-instant over live buffers; the last
  // global observation time when no buffer is open.
  Time Watermark() const;

 private:
  struct Buffer {
    Time start = 0;
    std::vector<Rect2D> rects;
    OnlineSplitter splitter;

    explicit Buffer(Time t, OnlineSplitter::Options options)
        : start(t), splitter(options) {}
  };

  LiveIndexOptions options_;
  std::unordered_map<ObjectId, Buffer> buffers_;
  // Last observed instant per object, across seals (the dedup and
  // consecutiveness high-water mark).
  std::unordered_map<ObjectId, Time> last_instant_;
  std::unordered_set<ObjectId> retired_;
  size_t buffered_instants_ = 0;
  Time last_global_ = std::numeric_limits<Time>::min();
};

}  // namespace stindex

#endif  // STINDEX_LIVE_LIVE_INDEX_H_
