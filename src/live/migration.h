#ifndef STINDEX_LIVE_MIGRATION_H_
#define STINDEX_LIVE_MIGRATION_H_

#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/segment.h"
#include "live/live_index.h"
#include "pprtree/ppr_tree.h"
#include "util/bytes.h"
#include "util/status.h"

namespace stindex {

// Moves sealed live-tier chunks into the persistent PPR-tree.
//
// The PPR-tree demands updates in globally non-decreasing time order, but
// chunks seal out of time order (whichever buffer ripens first). The
// pipeline therefore splits each chunk into segment records immediately —
// data ids are assigned in migration order, exactly as BuildPprTree
// numbers its input — and holds the resulting insert/delete events in a
// priority queue keyed (time, deletes-first, data id), the same order
// BuildPprTree replays a batch. Advance(watermark) applies every event
// strictly below the watermark (no later chunk can produce an earlier
// event, see LiveIndex::Watermark), so feeding the same chunks in the
// same order as a batch build yields a byte-identical tree.
//
// Events still queued are invisible to (delete-pending: overstated by)
// the tree; CollectPending and ClipToInterval give queries exact answers
// over the in-flight records.
class MigrationPipeline {
 public:
  explicit MigrationPipeline(PprTree* tree);

  // Splits `chunk` into segment records and queues their events. Returns
  // the number of segments produced.
  size_t Enqueue(const LiveIndex::SealedChunk& chunk);

  // Applies every queued event with time < `watermark` to the tree.
  // Watermarks must be non-decreasing across calls.
  void Advance(Time watermark);

  // Applies everything. Only valid at end of stream: a later Enqueue
  // could produce events before ones already applied.
  void Drain();

  // --- packing the historical tree --------------------------------------

  // Rewires the pipeline after its tree was packed into a frozen layer:
  // ids whose insert was already applied can never see their delete
  // applied (the layer is read-only), so those deletes move to the
  // frozen set — ClipToInterval keeps clipping them against the true
  // segment interval forever. The event queue is rebuilt to hold exactly
  // the events of the still-fully-pending ids, which now target `tree`
  // (the fresh active tree, empty at time 0; events pop in globally
  // non-decreasing time order, so the new tree's clock is respected).
  void RetargetAfterPack(PprTree* tree);

  // Recovery hook: points the pipeline at `tree` without touching state
  // (the restored layering re-creates trees before DecodeState runs).
  void SetTree(PprTree* tree) { tree_ = tree; }

  // Every migrated segment, in migration order: segment i has PprDataId i.
  const std::vector<SegmentRecord>& segments() const { return segments_; }

  size_t applied_events() const { return applied_events_; }
  size_t pending_events() const { return events_.size(); }

  // --- checkpoint state -------------------------------------------------

  // Serializes segments + pending sets (sorted — deterministic bytes).
  // The event queue is not serialized: it is exactly {insert event for
  // every insert-pending id} ∪ {delete event for every delete-pending
  // id} — Enqueue pushes an event and its pending id together, Apply
  // pops them together — so DecodeState rebuilds it from the sets.
  void EncodeState(ByteSink* out) const;
  // Restores into a fresh pipeline whose tree was already restored.
  Status DecodeState(ByteSource* in);

  // --- query support over in-flight records ----------------------------

  // Segments whose insert has not been applied (the tree cannot see
  // them): appends the objects of those intersecting the query to `out`.
  void CollectPending(const Rect2D& area, const TimeInterval& range,
                      std::vector<ObjectId>* out) const;

  // The tree reports `id` for `range`; true if the segment really does
  // intersect `range` in time. (An insert-applied, delete-pending record
  // looks alive-to-infinity inside the tree.)
  bool ClipToInterval(PprDataId id, const TimeInterval& range) const;

  ObjectId ObjectOf(PprDataId id) const {
    return segments_[static_cast<size_t>(id)].object;
  }

 private:
  struct Event {
    Time time = 0;
    bool is_insert = false;
    PprDataId id = 0;
  };
  // Orders the min-heap by (time, deletes-first, data id) — BuildPprTree's
  // replay order.
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      if (a.is_insert != b.is_insert) return a.is_insert && !b.is_insert;
      return a.id > b.id;
    }
  };

  void Apply(const Event& event);

  PprTree* tree_;
  std::vector<SegmentRecord> segments_;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::unordered_set<PprDataId> insert_pending_;
  std::unordered_set<PprDataId> delete_pending_;
  // Ids whose insert lives in a frozen packed layer and whose delete can
  // therefore never be applied; their tree hits are clipped forever.
  std::unordered_set<PprDataId> frozen_deletes_;
  size_t applied_events_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_LIVE_MIGRATION_H_
