#ifndef STINDEX_CORE_DP_SPLIT_H_
#define STINDEX_CORE_DP_SPLIT_H_

#include <vector>

#include "core/segment.h"
#include "geometry/rect.h"

namespace stindex {

// DPSplit (paper Section III-A.1): the optimal dynamic program for
// splitting one object into k+1 consecutive pieces of minimum total
// volume. Runs in O(n^2 k) time and O(n k) space, where n is the number of
// alive instants (Theorem 1).
//
// Recurrence: V_l[0, i] = min_{0 <= j < i} { V_{l-1}[0, j] + V[j+1, i] },
// where V[a, b] is the volume of one MBR over instants a..b, served in
// O(n) per DP row by MbrVolumeTable::RunVolumesEndingAt.

// Optimal cuts for exactly min(k, n-1) splits. k >= 0.
SplitResult DpSplit(const std::vector<Rect2D>& rects, int k);

// Optimal total volume for every split count 0..min(k_max, n-1); entry j
// is the volume with j splits. The whole curve costs one O(n^2 k_max) DP —
// this feeds the distribution algorithms, which need gains per extra
// split.
std::vector<double> DpVolumeCurve(const std::vector<Rect2D>& rects,
                                  int k_max);

}  // namespace stindex

#endif  // STINDEX_CORE_DP_SPLIT_H_
