#ifndef STINDEX_CORE_SEGMENT_H_
#define STINDEX_CORE_SEGMENT_H_

#include <vector>

#include "geometry/box.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "trajectory/trajectory.h"

namespace stindex {

// Result of splitting one object. `cuts` are instant indices c (relative
// to the object's first alive instant, 0 < c < n) where a new segment
// begins: k cuts produce the k+1 segments [0,c1), [c1,c2), ..., [ck, n).
// `total_volume` is the summed volume of the segment MBRs.
struct SplitResult {
  std::vector<int> cuts;
  double total_volume = 0.0;

  int NumSplits() const { return static_cast<int>(cuts.size()); }
};

// A record produced by splitting: one piece of one object, approximated by
// a single spatiotemporal box. These are what gets inserted in the
// indexes; `object` ties the pieces back to the original object so query
// results can be de-duplicated.
struct SegmentRecord {
  ObjectId object = 0;
  STBox box;
};

// Materializes the segment boxes of an object split at `cuts`.
// `rects` is the per-instant rectangle sequence, `t0` the first alive
// instant. Cuts must be strictly increasing and within (0, rects.size()).
std::vector<SegmentRecord> ApplySplits(ObjectId object,
                                       const std::vector<Rect2D>& rects,
                                       Time t0, const std::vector<int>& cuts);

// Total volume of the segment boxes produced by `cuts` (without
// materializing the records).
double SplitVolume(const std::vector<Rect2D>& rects,
                   const std::vector<int>& cuts);

}  // namespace stindex

#endif  // STINDEX_CORE_SEGMENT_H_
