#include "core/piecewise_split.h"

#include "util/check.h"

namespace stindex {

SplitResult PiecewiseSplit(const Trajectory& trajectory) {
  const Time t0 = trajectory.Lifetime().start;
  SplitResult result;
  for (Time change : trajectory.ChangePoints()) {
    result.cuts.push_back(static_cast<int>(change - t0));
  }
  const std::vector<Rect2D> rects = trajectory.Sample();
  result.total_volume = SplitVolume(rects, result.cuts);
  return result;
}

std::vector<SegmentRecord> PiecewiseSplitAll(
    const std::vector<Trajectory>& objects, int64_t* total_splits) {
  std::vector<SegmentRecord> records;
  int64_t splits = 0;
  for (const Trajectory& object : objects) {
    const SplitResult split = PiecewiseSplit(object);
    splits += split.NumSplits();
    const std::vector<Rect2D> rects = object.Sample();
    std::vector<SegmentRecord> pieces =
        ApplySplits(object.id(), rects, object.Lifetime().start, split.cuts);
    records.insert(records.end(), pieces.begin(), pieces.end());
  }
  if (total_splits != nullptr) *total_splits = splits;
  return records;
}

}  // namespace stindex
