#include "core/dp_split.h"

#include <algorithm>
#include <limits>

#include "trajectory/prefix_mbr.h"
#include "util/check.h"

namespace stindex {
namespace {

// Shared DP driver. Fills `best[l][i]` = optimal volume covering instants
// 0..i with l splits, for l = 0..k. When `parents` is non-null it records
// the argmin cut position for backtracking.
void RunDp(const std::vector<Rect2D>& rects, int k,
           std::vector<std::vector<double>>* best,
           std::vector<std::vector<int>>* parents) {
  const int n = static_cast<int>(rects.size());
  const MbrVolumeTable table(rects);

  best->assign(static_cast<size_t>(k) + 1,
               std::vector<double>(static_cast<size_t>(n), 0.0));
  if (parents != nullptr) {
    parents->assign(static_cast<size_t>(k) + 1,
                    std::vector<int>(static_cast<size_t>(n), -1));
  }

  std::vector<double> run_volume;  // run_volume[j] = V[j, i] for current i
  for (int i = 0; i < n; ++i) {
    table.RunVolumesEndingAt(static_cast<size_t>(i), &run_volume);
    (*best)[0][static_cast<size_t>(i)] = run_volume[0];
    for (int l = 1; l <= k; ++l) {
      double minimum = std::numeric_limits<double>::infinity();
      int arg = -1;
      // Last segment is [j+1, i]; the prefix 0..j uses l-1 splits. A valid
      // placement needs at least l instants in the prefix (cuts are at
      // distinct positions), hence j >= l - 1.
      for (int j = l - 1; j < i; ++j) {
        const double candidate =
            (*best)[static_cast<size_t>(l) - 1][static_cast<size_t>(j)] +
            run_volume[static_cast<size_t>(j) + 1];
        if (candidate < minimum) {
          minimum = candidate;
          arg = j;
        }
      }
      if (arg < 0) {
        // Fewer instants than splits: the best we can do is one box per
        // instant, same as l = i splits.
        minimum = (*best)[static_cast<size_t>(l) - 1][static_cast<size_t>(i)];
      }
      (*best)[static_cast<size_t>(l)][static_cast<size_t>(i)] = minimum;
      if (parents != nullptr) {
        (*parents)[static_cast<size_t>(l)][static_cast<size_t>(i)] = arg;
      }
    }
  }
}

}  // namespace

SplitResult DpSplit(const std::vector<Rect2D>& rects, int k) {
  STINDEX_CHECK(!rects.empty());
  STINDEX_CHECK(k >= 0);
  const int n = static_cast<int>(rects.size());
  const int splits = std::min(k, n - 1);

  std::vector<std::vector<double>> best;
  std::vector<std::vector<int>> parents;
  RunDp(rects, splits, &best, &parents);

  SplitResult result;
  result.total_volume = best[static_cast<size_t>(splits)]
                            [static_cast<size_t>(n) - 1];
  // Backtrack: at (l, i) the last segment starts at parents[l][i] + 1.
  int i = n - 1;
  for (int l = splits; l >= 1; --l) {
    const int j = parents[static_cast<size_t>(l)][static_cast<size_t>(i)];
    STINDEX_CHECK(j >= 0);
    result.cuts.push_back(j + 1);
    i = j;
  }
  std::reverse(result.cuts.begin(), result.cuts.end());
  return result;
}

std::vector<double> DpVolumeCurve(const std::vector<Rect2D>& rects,
                                  int k_max) {
  STINDEX_CHECK(!rects.empty());
  STINDEX_CHECK(k_max >= 0);
  const int n = static_cast<int>(rects.size());
  const int splits = std::min(k_max, n - 1);

  std::vector<std::vector<double>> best;
  RunDp(rects, splits, &best, nullptr);

  std::vector<double> curve(static_cast<size_t>(splits) + 1);
  for (int l = 0; l <= splits; ++l) {
    curve[static_cast<size_t>(l)] =
        best[static_cast<size_t>(l)][static_cast<size_t>(n) - 1];
  }
  return curve;
}

}  // namespace stindex
