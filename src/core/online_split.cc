#include "core/online_split.h"

#include "util/check.h"

namespace stindex {

OnlineSplitter::OnlineSplitter(Options options) : options_(options) {
  STINDEX_CHECK(options_.waste_threshold >= 1.0);
  STINDEX_CHECK(options_.min_segment_length >= 1);
  STINDEX_CHECK(options_.max_splits >= 0);
}

void OnlineSplitter::Observe(const Rect2D& rect) {
  STINDEX_CHECK(rect.IsValid());
  const int position = length_;
  ++length_;

  // Tentatively admit the instant.
  Rect2D extended = segment_mbr_;
  extended.ExpandToInclude(rect);
  const int segment_length = position - segment_start_ + 1;
  const double extended_volume =
      extended.Area() * static_cast<double>(segment_length);
  const double tight = tight_volume_ + rect.Area();

  const bool over_budget =
      static_cast<int>(cuts_.size()) >= options_.max_splits;
  // Note: for moving point objects tight == 0 while the MBR area is
  // positive, so any movement is "wasteful" once the minimum length is
  // reached — consistent with volume minimization (tight boxes of points
  // have zero volume); cap with max_splits for such data.
  const bool wasteful = segment_length > options_.min_segment_length &&
                        extended_volume > options_.waste_threshold * tight;
  if (!over_budget && wasteful) {
    // Close the segment before this instant.
    cuts_.push_back(position);
    segment_start_ = position;
    segment_mbr_ = rect;
    tight_volume_ = rect.Area();
    return;
  }
  segment_mbr_ = extended;
  tight_volume_ = tight;
}

SplitResult OnlineSplitter::Finish(
    const std::vector<Rect2D>& all_rects) const {
  STINDEX_CHECK(static_cast<int>(all_rects.size()) == length_);
  STINDEX_CHECK(length_ > 0);
  SplitResult result;
  result.cuts = cuts_;
  result.total_volume = SplitVolume(all_rects, cuts_);
  return result;
}

SplitResult OnlineSplit(const std::vector<Rect2D>& rects,
                        OnlineSplitter::Options options) {
  STINDEX_CHECK(!rects.empty());
  OnlineSplitter splitter(options);
  for (const Rect2D& rect : rects) splitter.Observe(rect);
  return splitter.Finish(rects);
}

}  // namespace stindex
