#include "core/merge_split.h"

#include <algorithm>
#include <queue>

#include "util/check.h"

namespace stindex {
namespace {

// Greedy merger over a doubly-linked list of segments with a lazily
// invalidated min-heap of adjacent-merge costs.
class Merger {
 public:
  explicit Merger(const std::vector<Rect2D>& rects) {
    const int n = static_cast<int>(rects.size());
    segments_.reserve(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Segment seg;
      seg.lo = i;
      seg.hi = i;
      seg.mbr = rects[static_cast<size_t>(i)];
      seg.prev = i - 1;
      seg.next = i + 1 < n ? i + 1 : -1;
      segments_.push_back(seg);
      total_volume_ += seg.mbr.Area();
    }
    count_ = n;
    for (int i = 0; i + 1 < n; ++i) PushCandidate(i);
  }

  int count() const { return count_; }
  double total_volume() const { return total_volume_; }

  // Merges the cheapest adjacent pair. Requires count() > 1.
  void MergeOnce() {
    STINDEX_CHECK(count_ > 1);
    while (true) {
      STINDEX_CHECK(!heap_.empty());
      const Candidate top = heap_.top();
      heap_.pop();
      Segment& left = segments_[static_cast<size_t>(top.left)];
      if (!left.alive || left.version != top.left_version ||
          left.next != top.right) {
        continue;  // stale entry
      }
      Segment& right = segments_[static_cast<size_t>(top.right)];
      if (!right.alive || right.version != top.right_version) continue;

      // Merge `right` into `left`.
      total_volume_ += top.cost;
      left.hi = right.hi;
      left.mbr.ExpandToInclude(right.mbr);
      left.next = right.next;
      ++left.version;
      right.alive = false;
      if (left.next >= 0) {
        segments_[static_cast<size_t>(left.next)].prev = top.left;
        PushCandidate(top.left);
      }
      if (left.prev >= 0) PushCandidate(left.prev);
      --count_;
      return;
    }
  }

  // Boundaries between surviving segments (the cut positions).
  std::vector<int> Cuts() const {
    std::vector<int> cuts;
    for (const Segment& seg : segments_) {
      if (seg.alive && seg.lo > 0) cuts.push_back(seg.lo);
    }
    std::sort(cuts.begin(), cuts.end());
    return cuts;
  }

 private:
  struct Segment {
    int lo = 0;
    int hi = 0;  // inclusive
    Rect2D mbr;
    int prev = -1;
    int next = -1;
    uint32_t version = 0;
    bool alive = true;

    double Volume() const {
      return mbr.Area() * static_cast<double>(hi - lo + 1);
    }
  };

  struct Candidate {
    double cost;
    int left;
    int right;
    uint32_t left_version;
    uint32_t right_version;

    bool operator>(const Candidate& other) const { return cost > other.cost; }
  };

  void PushCandidate(int left) {
    const Segment& a = segments_[static_cast<size_t>(left)];
    STINDEX_DCHECK(a.alive && a.next >= 0);
    const Segment& b = segments_[static_cast<size_t>(a.next)];
    const double merged_volume = a.mbr.Union(b.mbr).Area() *
                                 static_cast<double>(b.hi - a.lo + 1);
    heap_.push(Candidate{merged_volume - a.Volume() - b.Volume(), left,
                         a.next, a.version, b.version});
  }

  std::vector<Segment> segments_;
  std::priority_queue<Candidate, std::vector<Candidate>,
                      std::greater<Candidate>>
      heap_;
  double total_volume_ = 0.0;
  int count_ = 0;
};

}  // namespace

SplitResult MergeSplit(const std::vector<Rect2D>& rects, int k) {
  STINDEX_CHECK(!rects.empty());
  STINDEX_CHECK(k >= 0);
  const int n = static_cast<int>(rects.size());
  const int target_segments = std::min(k, n - 1) + 1;

  Merger merger(rects);
  while (merger.count() > target_segments) merger.MergeOnce();

  SplitResult result;
  result.cuts = merger.Cuts();
  result.total_volume = merger.total_volume();
  return result;
}

std::vector<double> MergeVolumeCurve(const std::vector<Rect2D>& rects,
                                     int k_max) {
  STINDEX_CHECK(!rects.empty());
  STINDEX_CHECK(k_max >= 0);
  const int n = static_cast<int>(rects.size());
  const int top = std::min(k_max, n - 1);

  std::vector<double> curve(static_cast<size_t>(top) + 1, 0.0);
  Merger merger(rects);
  if (merger.count() - 1 <= top) {
    curve[static_cast<size_t>(merger.count()) - 1] = merger.total_volume();
  }
  while (merger.count() > 1) {
    merger.MergeOnce();
    const int splits = merger.count() - 1;
    if (splits <= top) curve[static_cast<size_t>(splits)] =
        merger.total_volume();
  }
  return curve;
}

}  // namespace stindex
