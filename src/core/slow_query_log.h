#ifndef STINDEX_CORE_SLOW_QUERY_LOG_H_
#define STINDEX_CORE_SLOW_QUERY_LOG_H_

// A bounded in-memory ring of the most recent queries that exceeded a
// latency threshold, each captured with its full EXPLAIN profile
// (core/query_profile.h) and query window. The telemetry plane's answer
// to "what was that p99 spike actually doing": /statusz renders the ring
// as JSON, and an optional JSONL sink appends one machine-parseable line
// per slow query for offline analysis.
//
// MaybeRecord is called on the query path, so the fast path (latency
// under threshold) is a single comparison with no lock. Slow captures
// take a mutex; they are by definition rare. When the ring is full the
// oldest entry is dropped (evicted() counts how many) — a soak that goes
// bad keeps the newest evidence, not the oldest.

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "core/query_profile.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "util/json_writer.h"

namespace stindex {

// One captured slow query.
struct SlowQueryEntry {
  // Monotone capture sequence number (1-based, never reused), so JSONL
  // consumers can detect ring eviction gaps.
  uint64_t sequence = 0;
  double latency_ms = 0.0;
  // Timestamp-range queries carry `range`; snapshot queries set
  // is_snapshot and store the instant in range.start.
  bool is_snapshot = false;
  Rect2D area;
  TimeInterval range;
  uint64_t results = 0;
  QueryProfile profile;
};

class SlowQueryLog {
 public:
  // Queries at or above `threshold_ms` are captured; the ring retains the
  // newest `capacity` of them.
  explicit SlowQueryLog(double threshold_ms, size_t capacity = 64);
  ~SlowQueryLog();

  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  // Additionally appends every captured entry as one JSON line to `path`
  // (created/truncated here). Returns false (and logs nothing) if the
  // file cannot be opened. Call before the first MaybeRecord.
  bool OpenJsonlSink(const std::string& path);

  // Captures the query if latency_ms >= threshold. The profile is copied;
  // the caller keeps ownership. Returns true when captured.
  bool MaybeRecord(double latency_ms, bool is_snapshot, const Rect2D& area,
                   const TimeInterval& range, uint64_t results,
                   const QueryProfile& profile);

  double threshold_ms() const { return threshold_ms_; }
  size_t capacity() const { return capacity_; }
  uint64_t captured() const;  // lifetime captures (>= ring size)
  uint64_t evicted() const;   // captures dropped to make room

  // Oldest-first copy of the ring.
  std::vector<SlowQueryEntry> Entries() const;

  // Appends the log's state as the value of an already-written JSON key:
  // {threshold_ms, captured, evicted, entries: [...]} with each entry's
  // window, latency and profile counts. Used by /statusz.
  void RenderStatusz(JsonWriter* json) const;

 private:
  void AppendJsonlLocked(const SlowQueryEntry& entry);

  const double threshold_ms_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> ring_;  // oldest first
  uint64_t captured_ = 0;
  uint64_t evicted_ = 0;
  std::FILE* sink_ = nullptr;
};

}  // namespace stindex

#endif  // STINDEX_CORE_SLOW_QUERY_LOG_H_
