#ifndef STINDEX_CORE_QUERY_PROFILE_H_
#define STINDEX_CORE_QUERY_PROFILE_H_

// Per-query EXPLAIN data: where a query's node accesses went (per tree
// level), how the buffer behaved, and how many index candidates were
// *false hits* — records whose stored segment MBR intersects the query
// but whose actual per-instant rectangles never do. False hits are the
// paper's "empty space" made observable: the dead volume of a segment
// box is exactly what makes an MBR intersect a query the object never
// touches, and splitting exists to shrink it (Figures 15/17/18).
//
// A QueryProfile is a passive accumulator threaded through the tree
// query paths as an optional out-parameter (nullptr = no profiling, no
// cost). Parallel drivers give each chunk its own profile and merge the
// shards in ascending chunk order; every field is an integer count, so
// merged totals are independent of the thread count.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/segment.h"
#include "datagen/query_gen.h"
#include "trajectory/trajectory.h"

namespace stindex {

struct QueryProfile {
  // nodes_per_level[l] = nodes visited at tree level l (0 = leaves).
  std::vector<uint64_t> nodes_per_level;
  uint64_t nodes_visited = 0;
  // Buffer behaviour over the profiled queries (hits + misses = fetches).
  uint64_t pages_hit = 0;
  uint64_t pages_missed = 0;
  // Leaf entries tested against the query window.
  uint64_t leaf_entries_scanned = 0;
  // Leaf entries whose stored box intersected the window (the result set
  // before de-duplication and refinement).
  uint64_t candidates = 0;
  // Candidates the exact per-instant refinement rejected (see
  // FalseHitRefiner); 0 when no refiner ran.
  uint64_t false_hits = 0;

  void CountNode(int level) {
    if (nodes_per_level.size() <= static_cast<size_t>(level)) {
      nodes_per_level.resize(static_cast<size_t>(level) + 1, 0);
    }
    ++nodes_per_level[static_cast<size_t>(level)];
    ++nodes_visited;
  }

  // Adds `other` into this profile (shard reduction; all fields are
  // counts, so merging commutes — drivers still merge in chunk order for
  // uniformity with the histogram contract).
  void Merge(const QueryProfile& other);

  // Human-readable EXPLAIN table (the `stindex_cli query --explain`
  // rendering).
  std::string ToTable() const;
};

// Exact-geometry post-pass deciding whether an index candidate is a true
// or a false hit. The indexes only store one MBR per segment record; the
// refiner goes back to the trajectories and tests the actual rectangle
// at every instant in the overlap of the record's interval and the query
// range.
class FalseHitRefiner {
 public:
  // Both containers must outlive the refiner. `records` are the segment
  // records the index was built over, in insertion order: candidate id i
  // returned by a tree refers to records[i].
  FalseHitRefiner(const std::vector<Trajectory>& objects,
                  const std::vector<SegmentRecord>& records);

  // True when the object of records[record_index] actually intersects
  // query.area at some instant of
  // intersect(records[record_index].box.interval, query.range).
  bool Matches(uint64_t record_index, const STQuery& query) const;

  // Counts the candidates Matches rejects and adds them to
  // profile->false_hits (profile may be nullptr; the count is returned
  // either way).
  uint64_t CountFalseHits(const std::vector<uint64_t>& candidates,
                          const STQuery& query, QueryProfile* profile) const;

 private:
  const std::vector<Trajectory>* objects_;
  const std::vector<SegmentRecord>* records_;
  std::unordered_map<ObjectId, size_t> object_index_;
};

}  // namespace stindex

#endif  // STINDEX_CORE_QUERY_PROFILE_H_
