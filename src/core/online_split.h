#ifndef STINDEX_CORE_ONLINE_SPLIT_H_
#define STINDEX_CORE_ONLINE_SPLIT_H_

#include <limits>
#include <vector>

#include "core/segment.h"
#include "geometry/rect.h"

namespace stindex {

// Streaming single-object splitter for the ON-LINE version of the problem
// — the paper's stated future work (Section VII): instants arrive one at
// a time and the splitter must decide split points without seeing the
// future and without revisiting past decisions.
//
// Policy: while a segment is open, track its MBR and the sum of the
// per-instant rectangle areas ("tight volume"). Admitting a new instant
// is *wasteful* when the segment box's volume exceeds
// `waste_threshold` x the tight volume — then the segment is closed and a
// new one starts at the current instant. A `max_splits` budget caps the
// number of cuts; `min_segment_length` suppresses degenerate one-instant
// pieces for slowly drifting objects.
class OnlineSplitter {
 public:
  struct Options {
    // Close the open segment when mbr_area * length exceeds this factor
    // times the summed instant areas. Lower = more, tighter segments.
    double waste_threshold = 4.0;
    // Never close a segment shorter than this many instants.
    int min_segment_length = 2;
    // Maximum number of cuts (splits); unlimited by default.
    int max_splits = std::numeric_limits<int>::max();
  };

  OnlineSplitter() : OnlineSplitter(Options{}) {}
  explicit OnlineSplitter(Options options);

  // Feeds the object's rectangle at the next alive instant.
  void Observe(const Rect2D& rect);

  // Number of instants observed so far.
  int Length() const { return length_; }

  // Cuts decided so far (stable: past cuts never change).
  const std::vector<int>& cuts() const { return cuts_; }

  // Finalizes and returns the split (cuts + exact total volume).
  SplitResult Finish(const std::vector<Rect2D>& all_rects) const;

 private:
  Options options_;
  std::vector<int> cuts_;
  int length_ = 0;
  // Open segment state.
  int segment_start_ = 0;
  Rect2D segment_mbr_ = Rect2D::Empty();
  double tight_volume_ = 0.0;
};

// Convenience: runs the splitter over a whole per-instant sequence.
SplitResult OnlineSplit(const std::vector<Rect2D>& rects,
                        OnlineSplitter::Options options =
                            OnlineSplitter::Options());

}  // namespace stindex

#endif  // STINDEX_CORE_ONLINE_SPLIT_H_
