#include "core/volume_curve.h"

#include "core/dp_split.h"
#include "core/merge_split.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {

VolumeCurve ComputeVolumeCurve(const std::vector<Rect2D>& rects, int k_max,
                               SplitMethod method) {
  VolumeCurve curve;
  switch (method) {
    case SplitMethod::kDp:
      curve.volume = DpVolumeCurve(rects, k_max);
      break;
    case SplitMethod::kMerge:
      curve.volume = MergeVolumeCurve(rects, k_max);
      break;
  }
  STINDEX_CHECK(!curve.volume.empty());
  return curve;
}

std::vector<VolumeCurve> ComputeVolumeCurves(
    const std::vector<Trajectory>& objects, int k_max, SplitMethod method,
    int num_threads) {
  ScopedTimer timer("pipeline.curve_seconds");
  TraceSpan span("pipeline", "compute_volume_curves");
  span.Arg("objects", static_cast<int64_t>(objects.size()))
      .Arg("k_max", static_cast<int64_t>(k_max));
  MetricRegistry::Global()
      .GetCounter("pipeline.curves_computed")
      ->Add(objects.size());
  std::vector<VolumeCurve> curves(objects.size());
  ParallelFor(num_threads, objects.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  curves[i] =
                      ComputeVolumeCurve(objects[i].Sample(), k_max, method);
                }
              });
  return curves;
}

}  // namespace stindex
