#ifndef STINDEX_CORE_PIECEWISE_SPLIT_H_
#define STINDEX_CORE_PIECEWISE_SPLIT_H_

#include <vector>

#include "core/segment.h"
#include "trajectory/trajectory.h"

namespace stindex {

// The "piecewise" baseline of Section V: split an object exactly at the
// instants where its movement changes characteristics (the tuple
// boundaries of the polynomial representation). This mirrors representing
// movements with piecewise functions as in Porkaew et al. [21]; on the
// paper's datasets it yields about 400% of the object count in splits and
// performs worse than not splitting at all (Figure 18).
SplitResult PiecewiseSplit(const Trajectory& trajectory);

// Convenience: piecewise-split every object in a dataset and return the
// resulting segment records plus (via out-params) the number of splits
// used. Out-params may be null.
std::vector<SegmentRecord> PiecewiseSplitAll(
    const std::vector<Trajectory>& objects, int64_t* total_splits);

}  // namespace stindex

#endif  // STINDEX_CORE_PIECEWISE_SPLIT_H_
