#include "core/distribute.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {

namespace {

// Heap entry tied to an object's current split count; entries whose
// `expected_splits` no longer matches the object's state are stale and
// skipped on pop (lazy deletion).
struct GainEntry {
  double gain;
  int object;
  int expected_splits;
};

struct MaxGainLess {
  bool operator()(const GainEntry& a, const GainEntry& b) const {
    return a.gain < b.gain;  // max-heap
  }
};

struct MinGainGreater {
  bool operator()(const GainEntry& a, const GainEntry& b) const {
    return a.gain > b.gain;  // min-heap
  }
};

}  // namespace

double UnsplitVolume(const std::vector<VolumeCurve>& curves) {
  double total = 0.0;
  for (const VolumeCurve& curve : curves) total += curve.VolumeAt(0);
  return total;
}

Distribution DistributeOptimal(const std::vector<VolumeCurve>& curves,
                               int64_t k_total) {
  STINDEX_CHECK(k_total >= 0);
  ScopedTimer timer("pipeline.distribute_seconds");
  TraceSpan span("pipeline", "distribute_optimal");
  span.Arg("objects", static_cast<int64_t>(curves.size()))
      .Arg("k_total", k_total);
  const int n = static_cast<int>(curves.size());
  const int budget = static_cast<int>(
      std::min<int64_t>(k_total, std::numeric_limits<int>::max()));

  Distribution result;
  result.splits.assign(static_cast<size_t>(n), 0);
  if (n == 0) return result;

  // tv[l] = minimum total volume of the objects processed so far using at
  // most l splits; rolled over objects. choice[i][l] = splits assigned to
  // object i in the optimum for budget l.
  std::vector<double> tv(static_cast<size_t>(budget) + 1, 0.0);
  std::vector<double> next(static_cast<size_t>(budget) + 1, 0.0);
  std::vector<std::vector<uint16_t>> choice(
      static_cast<size_t>(n),
      std::vector<uint16_t>(static_cast<size_t>(budget) + 1, 0));

  for (int i = 0; i < n; ++i) {
    const VolumeCurve& curve = curves[static_cast<size_t>(i)];
    const int max_splits = std::min(curve.MaxSplits(), budget);
    for (int l = 0; l <= budget; ++l) {
      double best = std::numeric_limits<double>::infinity();
      uint16_t arg = 0;
      const int j_top = std::min(l, max_splits);
      for (int j = 0; j <= j_top; ++j) {
        const double candidate =
            tv[static_cast<size_t>(l - j)] + curve.VolumeAt(j);
        if (candidate < best) {
          best = candidate;
          arg = static_cast<uint16_t>(j);
        }
      }
      next[static_cast<size_t>(l)] = best;
      choice[static_cast<size_t>(i)][static_cast<size_t>(l)] = arg;
    }
    std::swap(tv, next);
  }

  result.total_volume = tv[static_cast<size_t>(budget)];
  // Backtrack the allocation.
  int remaining = budget;
  for (int i = n - 1; i >= 0; --i) {
    const int j =
        choice[static_cast<size_t>(i)][static_cast<size_t>(remaining)];
    result.splits[static_cast<size_t>(i)] = j;
    remaining -= j;
  }
  STINDEX_CHECK(remaining >= 0);
  return result;
}

namespace {

// Shared by DistributeGreedy and DistributeLAGreedy (which seeds from the
// greedy allocation); the public entry points own the phase timer so the
// greedy prelude of LAGreedy is not recorded twice.
Distribution DistributeGreedyImpl(const std::vector<VolumeCurve>& curves,
                                  int64_t k_total, int num_threads) {
  STINDEX_CHECK(k_total >= 0);
  const int n = static_cast<int>(curves.size());

  Distribution result;
  result.splits.assign(static_cast<size_t>(n), 0);
  // Summed serially in object order: a parallel reduction would reassociate
  // the floating-point sum and break bit-equality with the serial path.
  result.total_volume = UnsplitVolume(curves);

  // Parallel precompute of each object's first marginal gain; the heap is
  // then seeded serially in object order so its internal layout (and thus
  // every tie-break) matches the serial path exactly.
  std::vector<double> first_gain(static_cast<size_t>(n));
  ParallelFor(num_threads, static_cast<size_t>(n),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  first_gain[i] = curves[i].Gain(1);
                }
              });
  std::priority_queue<GainEntry, std::vector<GainEntry>, MaxGainLess> heap;
  for (int i = 0; i < n; ++i) {
    if (curves[static_cast<size_t>(i)].MaxSplits() >= 1) {
      heap.push(GainEntry{first_gain[static_cast<size_t>(i)], i, 0});
    }
  }

  for (int64_t assigned = 0; assigned < k_total && !heap.empty();
       ++assigned) {
    const GainEntry top = heap.top();
    heap.pop();
    const int i = top.object;
    const VolumeCurve& curve = curves[static_cast<size_t>(i)];
    int& splits = result.splits[static_cast<size_t>(i)];
    STINDEX_DCHECK(top.expected_splits == splits);
    ++splits;
    result.total_volume -= top.gain;
    if (splits + 1 <= curve.MaxSplits()) {
      heap.push(GainEntry{curve.Gain(splits + 1), i, splits});
    }
  }
  return result;
}

}  // namespace

Distribution DistributeGreedy(const std::vector<VolumeCurve>& curves,
                              int64_t k_total, int num_threads) {
  ScopedTimer timer("pipeline.distribute_seconds");
  TraceSpan span("pipeline", "distribute_greedy");
  span.Arg("objects", static_cast<int64_t>(curves.size()))
      .Arg("k_total", k_total);
  return DistributeGreedyImpl(curves, k_total, num_threads);
}

namespace {

// Mutable LAGreedy state: the split counts plus the two lazily maintained
// priority queues of Figure 10.
class LaGreedyState {
 public:
  LaGreedyState(const std::vector<VolumeCurve>& curves,
                Distribution* distribution, int num_threads)
      : curves_(curves), dist_(distribution) {
    // Parallel precompute of the per-object seed gains (Gain/Gain2 curve
    // evaluations); both heaps are then seeded serially in object order,
    // keeping their layout identical to a fully serial construction.
    struct SeedGains {
      double last;
      double ahead;
    };
    const size_t n = curves.size();
    std::vector<SeedGains> seeds(n);
    ParallelFor(num_threads, n,
                [&](size_t /*chunk*/, size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    const int k = dist_->splits[i];
                    seeds[i].last = k >= 1 ? curves_[i].Gain(k) : 0.0;
                    seeds[i].ahead = curves_[i].Gain2(k);
                  }
                });
    for (int i = 0; i < static_cast<int>(n); ++i) {
      const int k = SplitsOf(i);
      if (k >= 1) {
        last_heap_.push(GainEntry{seeds[static_cast<size_t>(i)].last, i, k});
      }
      if (k + 2 <= curves_[static_cast<size_t>(i)].MaxSplits()) {
        ahead_heap_.push(GainEntry{seeds[static_cast<size_t>(i)].ahead, i, k});
      }
    }
  }

  // One exchange step. Returns false when no profitable exchange exists.
  bool TryExchange() {
    // The two distinct objects whose *last* splits gained the least.
    GainEntry first{};
    if (!PopValidLast(&first, /*exclude0=*/-1, /*exclude1=*/-1)) return false;
    GainEntry second{};
    if (!PopValidLast(&second, first.object, -1)) {
      last_heap_.push(first);
      return false;
    }
    // The best object to receive two extra splits, distinct from both.
    GainEntry third{};
    if (!PopValidAhead(&third, first.object, second.object)) {
      last_heap_.push(first);
      last_heap_.push(second);
      return false;
    }

    if (third.gain <= first.gain + second.gain) {
      last_heap_.push(first);
      last_heap_.push(second);
      ahead_heap_.push(third);
      return false;
    }

    // Profitable: move one split each from `first`/`second` to `third`.
    Splits(first.object) -= 1;
    Splits(second.object) -= 1;
    Splits(third.object) += 2;
    dist_->total_volume += first.gain + second.gain - third.gain;
    PushEntries(first.object);
    PushEntries(second.object);
    PushEntries(third.object);
    return true;
  }

 private:
  int& Splits(int i) { return dist_->splits[static_cast<size_t>(i)]; }
  int SplitsOf(int i) const {
    return dist_->splits[static_cast<size_t>(i)];
  }

  void PushEntries(int i) {
    const VolumeCurve& curve = curves_[static_cast<size_t>(i)];
    const int k = SplitsOf(i);
    if (k >= 1) {
      last_heap_.push(GainEntry{curve.Gain(k), i, k});
    }
    if (k + 2 <= curve.MaxSplits()) {
      ahead_heap_.push(GainEntry{curve.Gain2(k), i, k});
    }
  }

  bool PopValidLast(GainEntry* out, int exclude0, int exclude1) {
    std::vector<GainEntry> skipped;
    bool found = false;
    while (!last_heap_.empty()) {
      GainEntry entry = last_heap_.top();
      last_heap_.pop();
      if (entry.expected_splits != SplitsOf(entry.object)) continue;
      if (entry.object == exclude0 || entry.object == exclude1) {
        skipped.push_back(entry);
        continue;
      }
      *out = entry;
      found = true;
      break;
    }
    for (const GainEntry& entry : skipped) last_heap_.push(entry);
    return found;
  }

  bool PopValidAhead(GainEntry* out, int exclude0, int exclude1) {
    std::vector<GainEntry> skipped;
    bool found = false;
    while (!ahead_heap_.empty()) {
      GainEntry entry = ahead_heap_.top();
      ahead_heap_.pop();
      if (entry.expected_splits != SplitsOf(entry.object)) continue;
      if (entry.object == exclude0 || entry.object == exclude1) {
        skipped.push_back(entry);
        continue;
      }
      *out = entry;
      found = true;
      break;
    }
    for (const GainEntry& entry : skipped) ahead_heap_.push(entry);
    return found;
  }

  const std::vector<VolumeCurve>& curves_;
  Distribution* dist_;
  // Min-heap: gain of each object's last allocated split.
  std::priority_queue<GainEntry, std::vector<GainEntry>, MinGainGreater>
      last_heap_;
  // Max-heap: gain if an object received two extra splits.
  std::priority_queue<GainEntry, std::vector<GainEntry>, MaxGainLess>
      ahead_heap_;
};

}  // namespace

Distribution DistributeLAGreedy(const std::vector<VolumeCurve>& curves,
                                int64_t k_total, int num_threads) {
  ScopedTimer timer("pipeline.distribute_seconds");
  TraceSpan span("pipeline", "distribute_lagreedy");
  span.Arg("objects", static_cast<int64_t>(curves.size()))
      .Arg("k_total", k_total);
  Distribution result = DistributeGreedyImpl(curves, k_total, num_threads);
  LaGreedyState state(curves, &result, num_threads);
  while (state.TryExchange()) {
  }
  return result;
}

}  // namespace stindex
