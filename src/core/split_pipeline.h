#ifndef STINDEX_CORE_SPLIT_PIPELINE_H_
#define STINDEX_CORE_SPLIT_PIPELINE_H_

#include <vector>

#include "core/distribute.h"
#include "core/segment.h"
#include "core/volume_curve.h"
#include "geometry/box.h"
#include "trajectory/trajectory.h"

namespace stindex {

// End-to-end splitting pipeline helpers: dataset -> per-object splits ->
// segment records -> index input. Used by the split advisor, the
// examples and every index experiment.

// Applies `splits_per_object[i]` splits to object i with the chosen
// single-object splitter and materializes all segment records.
//
// Objects are independent units of work: with num_threads > 1 they are
// partitioned into contiguous chunks on the shared thread pool and each
// chunk materializes its records into a pre-sized per-chunk slot; the
// slots are concatenated in chunk order, so the result is byte-identical
// to the serial path at any thread count.
std::vector<SegmentRecord> BuildSegments(
    const std::vector<Trajectory>& objects,
    const std::vector<int>& splits_per_object, SplitMethod method,
    int num_threads = 1);

// One record per object: the naive single-MBR representation. Same
// determinism contract as BuildSegments.
std::vector<SegmentRecord> BuildUnsplitSegments(
    const std::vector<Trajectory>& objects, int num_threads = 1);

// Converts segment records to the 3-D boxes fed to the R*-tree, scaling
// the time axis onto [0, 1] (paper Section V: "the time dimension was
// scaled down to the unit range first").
std::vector<Box3D> SegmentsToBoxes(const std::vector<SegmentRecord>& records,
                                   Time t0, Time time_domain);

// Total volume of a segment collection.
double TotalVolume(const std::vector<SegmentRecord>& records);

}  // namespace stindex

#endif  // STINDEX_CORE_SPLIT_PIPELINE_H_
