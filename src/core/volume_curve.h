#ifndef STINDEX_CORE_VOLUME_CURVE_H_
#define STINDEX_CORE_VOLUME_CURVE_H_

#include <vector>

#include "geometry/rect.h"
#include "trajectory/trajectory.h"

namespace stindex {

// Which single-object splitter computes per-object volumes.
enum class SplitMethod {
  kDp,     // optimal, O(n^2 k)
  kMerge,  // greedy, O(n log n)
};

// Per-object volume-vs-splits curve: volume[j] is the total volume of the
// object's representation with j splits (j+1 boxes). The distribution
// algorithms of Section III-B operate on a collection of these curves.
//
// The curve is non-increasing (an extra split never increases total
// volume) but its *gains* need not be monotone — Figure 4's objects gain
// little from one split and a lot from two; LAGreedy exists to handle
// exactly those.
struct VolumeCurve {
  std::vector<double> volume;

  int MaxSplits() const { return static_cast<int>(volume.size()) - 1; }

  // Volume with j splits; saturates at the fully split volume.
  double VolumeAt(int j) const {
    if (j >= MaxSplits()) return volume.back();
    return volume[static_cast<size_t>(j)];
  }

  // Volume decrease going from j-1 to j splits (0 once saturated).
  double Gain(int j) const { return VolumeAt(j - 1) - VolumeAt(j); }

  // Combined gain of going from j to j+2 splits (LAGreedy's look-ahead).
  double Gain2(int j) const { return VolumeAt(j) - VolumeAt(j + 2); }
};

// Computes the curve for one object, allowing up to k_max splits
// (truncated to the object's lifetime - 1).
VolumeCurve ComputeVolumeCurve(const std::vector<Rect2D>& rects, int k_max,
                               SplitMethod method);

// Curves for a whole dataset. Objects are independent, so with
// num_threads > 1 the computation is chunked over the shared thread pool;
// each object's curve is written into its pre-sized slot, making the
// result identical to the serial path at any thread count.
std::vector<VolumeCurve> ComputeVolumeCurves(
    const std::vector<Trajectory>& objects, int k_max, SplitMethod method,
    int num_threads = 1);

}  // namespace stindex

#endif  // STINDEX_CORE_VOLUME_CURVE_H_
