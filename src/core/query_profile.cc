#include "core/query_profile.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace stindex {

void QueryProfile::Merge(const QueryProfile& other) {
  if (nodes_per_level.size() < other.nodes_per_level.size()) {
    nodes_per_level.resize(other.nodes_per_level.size(), 0);
  }
  for (size_t l = 0; l < other.nodes_per_level.size(); ++l) {
    nodes_per_level[l] += other.nodes_per_level[l];
  }
  nodes_visited += other.nodes_visited;
  pages_hit += other.pages_hit;
  pages_missed += other.pages_missed;
  leaf_entries_scanned += other.leaf_entries_scanned;
  candidates += other.candidates;
  false_hits += other.false_hits;
}

std::string QueryProfile::ToTable() const {
  char line[128];
  std::string out;
  out += "query profile\n";
  out += "  level  nodes visited\n";
  // Root first: levels count up from the leaves.
  for (size_t l = nodes_per_level.size(); l-- > 0;) {
    std::snprintf(line, sizeof(line), "  %5zu  %13llu%s\n", l,
                  static_cast<unsigned long long>(nodes_per_level[l]),
                  l == 0 ? "  (leaves)" : "");
    out += line;
  }
  std::snprintf(line, sizeof(line), "  nodes visited        %llu\n",
                static_cast<unsigned long long>(nodes_visited));
  out += line;
  std::snprintf(line, sizeof(line), "  pages hit / missed   %llu / %llu\n",
                static_cast<unsigned long long>(pages_hit),
                static_cast<unsigned long long>(pages_missed));
  out += line;
  std::snprintf(line, sizeof(line), "  leaf entries scanned %llu\n",
                static_cast<unsigned long long>(leaf_entries_scanned));
  out += line;
  std::snprintf(line, sizeof(line), "  candidates           %llu\n",
                static_cast<unsigned long long>(candidates));
  out += line;
  std::snprintf(
      line, sizeof(line), "  false hits           %llu (%.1f%% of candidates)\n",
      static_cast<unsigned long long>(false_hits),
      candidates == 0 ? 0.0
                      : 100.0 * static_cast<double>(false_hits) /
                            static_cast<double>(candidates));
  out += line;
  return out;
}

FalseHitRefiner::FalseHitRefiner(const std::vector<Trajectory>& objects,
                                 const std::vector<SegmentRecord>& records)
    : objects_(&objects), records_(&records) {
  object_index_.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    object_index_.emplace(objects[i].id(), i);
  }
}

bool FalseHitRefiner::Matches(uint64_t record_index,
                              const STQuery& query) const {
  STINDEX_CHECK(record_index < records_->size());
  const SegmentRecord& record = (*records_)[record_index];
  const auto it = object_index_.find(record.object);
  STINDEX_CHECK_MSG(it != object_index_.end(),
                    "FalseHitRefiner: candidate object not in the dataset");
  const Trajectory& object = (*objects_)[it->second];
  if (!record.box.interval.Intersects(query.range)) return false;
  const TimeInterval overlap = record.box.interval.Intersection(query.range);
  for (Time t = overlap.start; t < overlap.end; ++t) {
    if (object.RectAt(t).Intersects(query.area)) return true;
  }
  return false;
}

uint64_t FalseHitRefiner::CountFalseHits(
    const std::vector<uint64_t>& candidates, const STQuery& query,
    QueryProfile* profile) const {
  uint64_t false_hits = 0;
  for (const uint64_t id : candidates) {
    if (!Matches(id, query)) ++false_hits;
  }
  if (profile != nullptr) profile->false_hits += false_hits;
  return false_hits;
}

}  // namespace stindex
