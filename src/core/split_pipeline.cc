#include "core/split_pipeline.h"

#include "core/dp_split.h"
#include "core/merge_split.h"
#include "util/check.h"

namespace stindex {

std::vector<SegmentRecord> BuildSegments(
    const std::vector<Trajectory>& objects,
    const std::vector<int>& splits_per_object, SplitMethod method) {
  STINDEX_CHECK(objects.size() == splits_per_object.size());
  std::vector<SegmentRecord> records;
  records.reserve(objects.size());
  for (size_t i = 0; i < objects.size(); ++i) {
    const Trajectory& object = objects[i];
    const std::vector<Rect2D> rects = object.Sample();
    const int k = splits_per_object[i];
    SplitResult split;
    if (k > 0) {
      split = method == SplitMethod::kDp ? DpSplit(rects, k)
                                         : MergeSplit(rects, k);
    }
    std::vector<SegmentRecord> pieces =
        ApplySplits(object.id(), rects, object.Lifetime().start, split.cuts);
    records.insert(records.end(), pieces.begin(), pieces.end());
  }
  return records;
}

std::vector<SegmentRecord> BuildUnsplitSegments(
    const std::vector<Trajectory>& objects) {
  std::vector<SegmentRecord> records;
  records.reserve(objects.size());
  for (const Trajectory& object : objects) {
    SegmentRecord record;
    record.object = object.id();
    record.box = object.FullBox();
    records.push_back(record);
  }
  return records;
}

std::vector<Box3D> SegmentsToBoxes(const std::vector<SegmentRecord>& records,
                                   Time t0, Time time_domain) {
  STINDEX_CHECK(time_domain > 0);
  const double scale = 1.0 / static_cast<double>(time_domain);
  std::vector<Box3D> boxes;
  boxes.reserve(records.size());
  for (const SegmentRecord& record : records) {
    boxes.push_back(record.box.ToBox3D(t0, scale));
  }
  return boxes;
}

double TotalVolume(const std::vector<SegmentRecord>& records) {
  double volume = 0.0;
  for (const SegmentRecord& record : records) volume += record.box.Volume();
  return volume;
}

}  // namespace stindex
