#include "core/split_pipeline.h"

#include "core/dp_split.h"
#include "core/merge_split.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace stindex {

namespace {

// Splits one object and materializes its records.
std::vector<SegmentRecord> SplitOne(const Trajectory& object, int k,
                                    SplitMethod method) {
  const std::vector<Rect2D> rects = object.Sample();
  SplitResult split;
  if (k > 0) {
    split =
        method == SplitMethod::kDp ? DpSplit(rects, k) : MergeSplit(rects, k);
  }
  return ApplySplits(object.id(), rects, object.Lifetime().start, split.cuts);
}

// Concatenates per-chunk slots in chunk order: since chunks partition the
// object range contiguously, this reproduces the serial object order.
std::vector<SegmentRecord> Concatenate(
    std::vector<std::vector<SegmentRecord>> chunk_records) {
  size_t total = 0;
  for (const auto& chunk : chunk_records) total += chunk.size();
  std::vector<SegmentRecord> records;
  records.reserve(total);
  for (auto& chunk : chunk_records) {
    records.insert(records.end(), chunk.begin(), chunk.end());
  }
  return records;
}

// Publishes the segment-phase outcome (count only; counter adds are
// order-independent, so the parallel path stays deterministic).
void CountSegmentsBuilt(size_t n) {
  MetricRegistry::Global().GetCounter("pipeline.segments_built")->Add(n);
}

}  // namespace

std::vector<SegmentRecord> BuildSegments(
    const std::vector<Trajectory>& objects,
    const std::vector<int>& splits_per_object, SplitMethod method,
    int num_threads) {
  STINDEX_CHECK(objects.size() == splits_per_object.size());
  ScopedTimer timer("pipeline.segment_seconds");
  TraceSpan span("pipeline", "build_segments");
  span.Arg("objects", static_cast<int64_t>(objects.size()))
      .Arg("threads", static_cast<int64_t>(num_threads));
  if (num_threads <= 1) {
    std::vector<SegmentRecord> records;
    records.reserve(objects.size());
    for (size_t i = 0; i < objects.size(); ++i) {
      const std::vector<SegmentRecord> pieces =
          SplitOne(objects[i], splits_per_object[i], method);
      records.insert(records.end(), pieces.begin(), pieces.end());
    }
    CountSegmentsBuilt(records.size());
    return records;
  }

  std::vector<std::vector<SegmentRecord>> chunk_records(
      ParallelChunks(num_threads, objects.size()));
  ParallelFor(num_threads, objects.size(),
              [&](size_t chunk, size_t begin, size_t end) {
                std::vector<SegmentRecord>& out = chunk_records[chunk];
                for (size_t i = begin; i < end; ++i) {
                  const std::vector<SegmentRecord> pieces =
                      SplitOne(objects[i], splits_per_object[i], method);
                  out.insert(out.end(), pieces.begin(), pieces.end());
                }
              });
  std::vector<SegmentRecord> records = Concatenate(std::move(chunk_records));
  CountSegmentsBuilt(records.size());
  return records;
}

std::vector<SegmentRecord> BuildUnsplitSegments(
    const std::vector<Trajectory>& objects, int num_threads) {
  ScopedTimer timer("pipeline.segment_seconds");
  TraceSpan span("pipeline", "build_unsplit_segments");
  span.Arg("objects", static_cast<int64_t>(objects.size()));
  std::vector<SegmentRecord> records(objects.size());
  ParallelFor(num_threads, objects.size(),
              [&](size_t /*chunk*/, size_t begin, size_t end) {
                for (size_t i = begin; i < end; ++i) {
                  records[i].object = objects[i].id();
                  records[i].box = objects[i].FullBox();
                }
              });
  CountSegmentsBuilt(records.size());
  return records;
}

std::vector<Box3D> SegmentsToBoxes(const std::vector<SegmentRecord>& records,
                                   Time t0, Time time_domain) {
  STINDEX_CHECK(time_domain > 0);
  const double scale = 1.0 / static_cast<double>(time_domain);
  std::vector<Box3D> boxes;
  boxes.reserve(records.size());
  for (const SegmentRecord& record : records) {
    boxes.push_back(record.box.ToBox3D(t0, scale));
  }
  return boxes;
}

double TotalVolume(const std::vector<SegmentRecord>& records) {
  double volume = 0.0;
  for (const SegmentRecord& record : records) volume += record.box.Volume();
  return volume;
}

}  // namespace stindex
