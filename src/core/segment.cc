#include "core/segment.h"

#include "trajectory/prefix_mbr.h"
#include "util/check.h"

namespace stindex {
namespace {

// Validates cuts and yields the [lo, hi) index ranges of the segments.
std::vector<std::pair<int, int>> SegmentRanges(size_t n,
                                               const std::vector<int>& cuts) {
  const int count = static_cast<int>(n);
  std::vector<std::pair<int, int>> ranges;
  ranges.reserve(cuts.size() + 1);
  int lo = 0;
  for (int cut : cuts) {
    STINDEX_CHECK_MSG(cut > lo && cut < count, "cut out of range");
    ranges.emplace_back(lo, cut);
    lo = cut;
  }
  ranges.emplace_back(lo, count);
  return ranges;
}

}  // namespace

std::vector<SegmentRecord> ApplySplits(ObjectId object,
                                       const std::vector<Rect2D>& rects,
                                       Time t0,
                                       const std::vector<int>& cuts) {
  STINDEX_CHECK(!rects.empty());
  const MbrVolumeTable table(rects);
  std::vector<SegmentRecord> records;
  for (const auto& [lo, hi] : SegmentRanges(rects.size(), cuts)) {
    SegmentRecord record;
    record.object = object;
    record.box.rect = table.MbrOver(static_cast<size_t>(lo),
                                    static_cast<size_t>(hi - 1));
    record.box.interval = TimeInterval(t0 + lo, t0 + hi);
    records.push_back(record);
  }
  return records;
}

double SplitVolume(const std::vector<Rect2D>& rects,
                   const std::vector<int>& cuts) {
  STINDEX_CHECK(!rects.empty());
  const MbrVolumeTable table(rects);
  double volume = 0.0;
  for (const auto& [lo, hi] : SegmentRanges(rects.size(), cuts)) {
    volume += table.RunVolume(static_cast<size_t>(lo),
                              static_cast<size_t>(hi - 1));
  }
  return volume;
}

}  // namespace stindex
