#ifndef STINDEX_CORE_DISTRIBUTE_H_
#define STINDEX_CORE_DISTRIBUTE_H_

#include <vector>

#include "core/volume_curve.h"

namespace stindex {

// How a budget of K splits is shared among N objects (Section III-B).
struct Distribution {
  // splits[i] = number of splits allocated to object i.
  std::vector<int> splits;
  // Total volume of the collection under this allocation.
  double total_volume = 0.0;

  int64_t TotalSplits() const {
    int64_t total = 0;
    for (int s : splits) total += s;
    return total;
  }
};

// Optimal dynamic program (Theorem 2): O(N K^2) time, O(N K) space for the
// backtracking table. TV_l[i] = min_{0<=j<=l} { TV_{l-j}[i-1] + V_j[i] }.
// "At most K" semantics: surplus splits beyond what any object can use are
// simply left unassigned.
Distribution DistributeOptimal(const std::vector<VolumeCurve>& curves,
                               int64_t k_total);

// Greedy (Figure 9): repeatedly give the next split to the object with the
// largest marginal gain. O((K + N) log N) given the curves.
//
// The heap phase is inherently serial, but the per-object marginal-gain
// precompute (the initial VolumeCurve evaluations, and the unsplit-volume
// baseline) is chunked over the shared thread pool when num_threads > 1.
// The precomputed entries are pushed into the heap serially in object
// order, so the allocation — including tie-breaking — is identical to the
// serial path at any thread count.
Distribution DistributeGreedy(const std::vector<VolumeCurve>& curves,
                              int64_t k_total, int num_threads = 1);

// Look-ahead-2 greedy (Figure 10): run Greedy, then repeatedly undo the
// two globally cheapest last splits and give a different third object two
// extra splits whenever that strictly reduces total volume. Handles the
// non-monotone objects of Figure 4 that plain Greedy starves.
// Same num_threads contract as DistributeGreedy: both its greedy phase and
// its initial exchange-heap seeding precompute gains in parallel and feed
// the serial heaps in object order.
Distribution DistributeLAGreedy(const std::vector<VolumeCurve>& curves,
                                int64_t k_total, int num_threads = 1);

// Total volume of a collection with no splits at all (baseline).
double UnsplitVolume(const std::vector<VolumeCurve>& curves);

}  // namespace stindex

#endif  // STINDEX_CORE_DISTRIBUTE_H_
