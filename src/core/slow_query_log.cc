#include "core/slow_query_log.h"

#include <cinttypes>

#include "util/check.h"

namespace stindex {

namespace {

// %.17g matches the JSON writer's round-trip-safe float rendering.
void AppendDouble(std::string& out, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  out += buffer;
}

void AppendUint(std::string& out, uint64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%" PRIu64, value);
  out += buffer;
}

}  // namespace

SlowQueryLog::SlowQueryLog(double threshold_ms, size_t capacity)
    : threshold_ms_(threshold_ms), capacity_(capacity == 0 ? 1 : capacity) {}

SlowQueryLog::~SlowQueryLog() {
  if (sink_ != nullptr) std::fclose(sink_);
}

bool SlowQueryLog::OpenJsonlSink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  STINDEX_CHECK_MSG(sink_ == nullptr, "JSONL sink already open");
  sink_ = std::fopen(path.c_str(), "w");
  return sink_ != nullptr;
}

bool SlowQueryLog::MaybeRecord(double latency_ms, bool is_snapshot,
                               const Rect2D& area, const TimeInterval& range,
                               uint64_t results, const QueryProfile& profile) {
  if (latency_ms < threshold_ms_) return false;
  std::lock_guard<std::mutex> lock(mu_);
  SlowQueryEntry entry;
  entry.sequence = ++captured_;
  entry.latency_ms = latency_ms;
  entry.is_snapshot = is_snapshot;
  entry.area = area;
  entry.range = range;
  entry.results = results;
  entry.profile = profile;
  if (sink_ != nullptr) AppendJsonlLocked(entry);
  ring_.push_back(std::move(entry));
  if (ring_.size() > capacity_) {
    ring_.erase(ring_.begin());
    ++evicted_;
  }
  return true;
}

uint64_t SlowQueryLog::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return captured_;
}

uint64_t SlowQueryLog::evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evicted_;
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_;
}

void SlowQueryLog::AppendJsonlLocked(const SlowQueryEntry& entry) {
  // One compact JSON object per line; hand-formatted because JsonWriter
  // pretty-prints (multi-line) and JSONL needs exactly one line per
  // record.
  std::string line = "{\"seq\":";
  AppendUint(line, entry.sequence);
  line += ",\"latency_ms\":";
  AppendDouble(line, entry.latency_ms);
  line += ",\"kind\":\"";
  line += entry.is_snapshot ? "snapshot" : "interval";
  line += "\",\"area\":[";
  AppendDouble(line, entry.area.xlo);
  line += ",";
  AppendDouble(line, entry.area.ylo);
  line += ",";
  AppendDouble(line, entry.area.xhi);
  line += ",";
  AppendDouble(line, entry.area.yhi);
  line += "],\"t\":[";
  AppendUint(line, static_cast<uint64_t>(entry.range.start));
  line += ",";
  AppendUint(line, static_cast<uint64_t>(
                       entry.is_snapshot ? entry.range.start : entry.range.end));
  line += "],\"results\":";
  AppendUint(line, entry.results);
  line += ",\"nodes\":";
  AppendUint(line, entry.profile.nodes_visited);
  line += ",\"pages_hit\":";
  AppendUint(line, entry.profile.pages_hit);
  line += ",\"pages_missed\":";
  AppendUint(line, entry.profile.pages_missed);
  line += ",\"leaf_entries\":";
  AppendUint(line, entry.profile.leaf_entries_scanned);
  line += ",\"candidates\":";
  AppendUint(line, entry.profile.candidates);
  line += ",\"false_hits\":";
  AppendUint(line, entry.profile.false_hits);
  line += ",\"nodes_per_level\":[";
  for (size_t i = 0; i < entry.profile.nodes_per_level.size(); ++i) {
    if (i > 0) line += ",";
    AppendUint(line, entry.profile.nodes_per_level[i]);
  }
  line += "]}\n";
  std::fwrite(line.data(), 1, line.size(), sink_);
  std::fflush(sink_);
}

void SlowQueryLog::RenderStatusz(JsonWriter* json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json->BeginObject();
  json->Key("threshold_ms").Double(threshold_ms_);
  json->Key("capacity").Uint(capacity_);
  json->Key("captured").Uint(captured_);
  json->Key("evicted").Uint(evicted_);
  json->Key("entries").BeginArray();
  for (const SlowQueryEntry& entry : ring_) {
    json->BeginObject();
    json->Key("seq").Uint(entry.sequence);
    json->Key("latency_ms").Double(entry.latency_ms);
    json->Key("kind").String(entry.is_snapshot ? "snapshot" : "interval");
    json->Key("area")
        .BeginArray()
        .Double(entry.area.xlo)
        .Double(entry.area.ylo)
        .Double(entry.area.xhi)
        .Double(entry.area.yhi)
        .EndArray();
    json->Key("t_start").Int(entry.range.start);
    if (!entry.is_snapshot) json->Key("t_end").Int(entry.range.end);
    json->Key("results").Uint(entry.results);
    json->Key("nodes_visited").Uint(entry.profile.nodes_visited);
    json->Key("pages_hit").Uint(entry.profile.pages_hit);
    json->Key("pages_missed").Uint(entry.profile.pages_missed);
    json->Key("leaf_entries_scanned").Uint(entry.profile.leaf_entries_scanned);
    json->Key("candidates").Uint(entry.profile.candidates);
    json->Key("false_hits").Uint(entry.profile.false_hits);
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace stindex
