#ifndef STINDEX_CORE_MERGE_SPLIT_H_
#define STINDEX_CORE_MERGE_SPLIT_H_

#include <vector>

#include "core/segment.h"
#include "geometry/rect.h"

namespace stindex {

// MergeSplit (paper Figure 8): the greedy O(n log n) alternative to
// DPSplit. Starts with one box per alive instant and repeatedly merges the
// pair of consecutive boxes whose union increases total volume the least,
// until the target box count is reached. Sub-optimal in general but very
// close in practice (paper Figure 12) and orders of magnitude faster
// (Figure 11).

// Greedy cuts for min(k, n-1) splits.
SplitResult MergeSplit(const std::vector<Rect2D>& rects, int k);

// Greedy total volume for every split count 0..min(k_max, n-1); entry j is
// the volume with j splits. One merge run produces the whole curve: the
// total volume is recorded each time the segment count passes through
// j + 1.
std::vector<double> MergeVolumeCurve(const std::vector<Rect2D>& rects,
                                     int k_max);

}  // namespace stindex

#endif  // STINDEX_CORE_MERGE_SPLIT_H_
