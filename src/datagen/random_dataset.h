#ifndef STINDEX_DATAGEN_RANDOM_DATASET_H_
#define STINDEX_DATAGEN_RANDOM_DATASET_H_

#include <cstdint>
#include <vector>

#include "trajectory/trajectory.h"

namespace stindex {

// Parameters of the paper's uniform "random" datasets (Section V,
// Table I): moving rectangles in the unit square over 1000 discrete
// instants, lifetime U[1, 100], movements made of 1..10 polynomial tuples
// of degree 1 or 2, rectangle extents 0.1%..1% of the space side.
struct RandomDatasetConfig {
  size_t num_objects = 10000;
  // Instants are 0 .. time_domain - 1.
  Time time_domain = 1000;
  Time min_lifetime = 1;
  Time max_lifetime = 100;
  int min_tuples = 1;
  int max_tuples = 10;
  // Movement polynomial degree is chosen uniformly in [1, max_degree].
  int max_degree = 2;
  // Rectangle extents as a fraction of the unit-square side.
  double min_extent = 0.001;
  double max_extent = 0.01;
  // When true, extents also change linearly within each tuple (the
  // shape-changing objects of Figure 6); the paper's random datasets use
  // constant extents.
  bool changing_extents = false;
  uint64_t seed = 42;
};

// Generates the dataset. Object i has id i. All trajectories are
// normalized so rectangle centers stay inside the unit square.
std::vector<Trajectory> GenerateRandomDataset(const RandomDatasetConfig&);

// Dataset statistics as reported in Table I.
struct DatasetStats {
  size_t total_objects = 0;
  double avg_objects_per_instant = 0.0;
  // Total number of movement tuples ("segments" in Table I).
  size_t total_segments = 0;
  double avg_lifetime = 0.0;
  double min_extent = 0.0;
  double max_extent = 0.0;
};

DatasetStats ComputeDatasetStats(const std::vector<Trajectory>& objects,
                                 Time time_domain);

}  // namespace stindex

#endif  // STINDEX_DATAGEN_RANDOM_DATASET_H_
