#include "datagen/clustered_dataset.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace stindex {
namespace {

double Clamp01(double value, double margin) {
  return std::min(1.0 - margin, std::max(margin, value));
}

}  // namespace

std::vector<Trajectory> GenerateClusteredDataset(
    const ClusteredDatasetConfig& config) {
  STINDEX_CHECK(config.num_objects > 0);
  STINDEX_CHECK(config.num_clusters >= 1);
  STINDEX_CHECK(config.min_lifetime >= 1 &&
                config.min_lifetime <= config.max_lifetime);
  STINDEX_CHECK(config.max_lifetime <= config.time_domain);
  STINDEX_CHECK(config.min_waypoints >= 1 &&
                config.min_waypoints <= config.max_waypoints);
  Rng rng(config.seed);

  // Cluster centers away from the borders.
  std::vector<Point2D> centers;
  for (int c = 0; c < config.num_clusters; ++c) {
    centers.emplace_back(rng.UniformDouble(0.15, 0.85),
                         rng.UniformDouble(0.15, 0.85));
  }

  std::vector<Trajectory> objects;
  objects.reserve(config.num_objects);
  for (size_t id = 0; id < config.num_objects; ++id) {
    const Point2D& home =
        centers[static_cast<size_t>(rng.UniformInt(
            0, config.num_clusters - 1))];
    const Time lifetime =
        rng.UniformInt(config.min_lifetime, config.max_lifetime);
    const Time start = rng.UniformInt(0, config.time_domain - lifetime);
    const double extent =
        rng.UniformDouble(config.min_extent, config.max_extent);
    const double margin = extent / 2.0;

    auto waypoint = [&]() {
      return Point2D(
          Clamp01(rng.Gaussian(home.x, config.cluster_stddev), margin),
          Clamp01(rng.Gaussian(home.y, config.cluster_stddev), margin));
    };

    // Piecewise-linear legs between waypoints near the home cluster.
    const int legs = static_cast<int>(rng.UniformInt(
        config.min_waypoints,
        std::min<int64_t>(config.max_waypoints, lifetime)));
    std::vector<Time> boundaries = {start, start + lifetime};
    while (static_cast<int>(boundaries.size()) < legs + 1) {
      const Time cut = rng.UniformInt(start + 1, start + lifetime - 1);
      if (std::find(boundaries.begin(), boundaries.end(), cut) ==
          boundaries.end()) {
        boundaries.push_back(cut);
      }
    }
    std::sort(boundaries.begin(), boundaries.end());

    std::vector<MovementTuple> movement;
    Point2D at = waypoint();
    for (size_t b = 0; b + 1 < boundaries.size(); ++b) {
      const Point2D next = waypoint();
      MovementTuple tuple;
      tuple.interval = TimeInterval(boundaries[b], boundaries[b + 1]);
      const double duration = static_cast<double>(tuple.interval.Duration());
      tuple.center_x = Polynomial::Linear(at.x, (next.x - at.x) / duration);
      tuple.center_y = Polynomial::Linear(at.y, (next.y - at.y) / duration);
      tuple.extent_x = Polynomial::Constant(extent);
      tuple.extent_y = Polynomial::Constant(extent);
      movement.push_back(std::move(tuple));
      at = next;
    }
    objects.emplace_back(static_cast<ObjectId>(id), std::move(movement));
    STINDEX_DCHECK(objects.back().Validate().ok());
  }
  return objects;
}

}  // namespace stindex
