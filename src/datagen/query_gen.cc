#include "datagen/query_gen.h"

#include <algorithm>

#include "util/check.h"
#include "util/random.h"

namespace stindex {

std::vector<STQuery> GenerateQuerySet(const QuerySetConfig& config) {
  STINDEX_CHECK(config.count > 0);
  STINDEX_CHECK(config.min_extent > 0.0 &&
                config.min_extent <= config.max_extent);
  STINDEX_CHECK(config.min_duration >= 1 &&
                config.min_duration <= config.max_duration);
  STINDEX_CHECK(config.max_duration <= config.time_domain);
  Rng rng(config.seed);

  std::vector<STQuery> queries;
  queries.reserve(config.count);
  for (size_t i = 0; i < config.count; ++i) {
    const double width =
        rng.UniformDouble(config.min_extent, config.max_extent);
    const double height =
        rng.UniformDouble(config.min_extent, config.max_extent);
    const double cx = rng.UniformDouble(width / 2.0, 1.0 - width / 2.0);
    const double cy = rng.UniformDouble(height / 2.0, 1.0 - height / 2.0);
    const Time duration =
        rng.UniformInt(config.min_duration, config.max_duration);
    const Time start = rng.UniformInt(0, config.time_domain - duration);
    STQuery query;
    query.area = Rect2D(cx - width / 2.0, cy - height / 2.0,
                        cx + width / 2.0, cy + height / 2.0);
    query.range = TimeInterval(start, start + duration);
    queries.push_back(query);
  }
  return queries;
}

Box3D QueryToBox(const STQuery& query, Time t0, Time time_domain) {
  STINDEX_CHECK(time_domain > 0);
  const double scale = 1.0 / static_cast<double>(time_domain);
  return Box3D(query.area.xlo, query.area.ylo,
               (static_cast<double>(query.range.start - t0) + 0.5) * scale,
               query.area.xhi, query.area.yhi,
               (static_cast<double>(query.range.end - t0) - 0.5) * scale);
}

QuerySetConfig TinySnapshotSet() {
  return QuerySetConfig{"tiny-snapshot", 1000, 0.0001, 0.001, 1, 1, 1000,
                        1001};
}

QuerySetConfig SmallSnapshotSet() {
  return QuerySetConfig{"small-snapshot", 1000, 0.001, 0.01, 1, 1, 1000,
                        1002};
}

QuerySetConfig MixedSnapshotSet() {
  return QuerySetConfig{"mixed-snapshot", 1000, 0.001, 0.05, 1, 1, 1000,
                        1003};
}

QuerySetConfig LargeSnapshotSet() {
  return QuerySetConfig{"large-snapshot", 1000, 0.01, 0.05, 1, 1, 1000,
                        1004};
}

QuerySetConfig SmallRangeSet() {
  return QuerySetConfig{"small-range", 1000, 0.001, 0.01, 1, 10, 1000, 1005};
}

QuerySetConfig MediumRangeSet() {
  return QuerySetConfig{"medium-range", 1000, 0.001, 0.01, 10, 50, 1000,
                        1006};
}

}  // namespace stindex
