#ifndef STINDEX_DATAGEN_RAILWAY_H_
#define STINDEX_DATAGEN_RAILWAY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/point.h"
#include "trajectory/trajectory.h"

namespace stindex {

// The skewed "railway" workload of Section V: trains moving on a railway
// map of 22 cities and 51 tracks approximating California and New York,
// with a few cities in between and cross-country connections. The paper's
// hand-made map is not published; this is a deterministic synthetic
// equivalent with the same cardinalities, two dense intra-state clusters
// and real-ish distances (see DESIGN.md, substitutions).

struct City {
  std::string name;
  // Position in the unit square (the whole map is normalized like the
  // random datasets).
  Point2D position;
};

struct Track {
  int from = 0;  // city indices
  int to = 0;
};

struct RailwayMap {
  std::vector<City> cities;
  std::vector<Track> tracks;
  // Width of the unit square in miles (used to convert speeds).
  double map_width_miles = 2800.0;

  // Adjacent city indices of `city`.
  std::vector<int> Neighbors(int city) const;

  // Track distance between adjacent cities, in miles.
  double DistanceMiles(int from, int to) const;
};

// The fixed 22-city / 51-track map.
RailwayMap BuildRailwayMap();

struct RailwayDatasetConfig {
  size_t num_trains = 10000;
  Time time_domain = 1000;
  // One discrete instant corresponds to this many hours; 1.25 h/instant
  // reproduces the paper's ~18-instant average train lifetime under the
  // 36-hour travel cap.
  double hours_per_instant = 1.25;
  int max_stops = 10;
  double max_travel_hours = 36.0;
  double min_speed_mph = 60.0;
  double max_speed_mph = 75.0;
  // Train extent (fraction of the map side).
  double train_extent = 0.002;
  uint64_t seed = 7;
};

// Generates train trajectories: piecewise-linear legs along tracks with
// occasional dwell stops, never returning to the origin city without an
// intermediate stop.
std::vector<Trajectory> GenerateRailwayDataset(const RailwayDatasetConfig&);

}  // namespace stindex

#endif  // STINDEX_DATAGEN_RAILWAY_H_
