#ifndef STINDEX_DATAGEN_QUERY_GEN_H_
#define STINDEX_DATAGEN_QUERY_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geometry/box.h"
#include "geometry/interval.h"
#include "geometry/rect.h"

namespace stindex {

// A topological historical query: all objects intersecting `area` at any
// instant in `range` (snapshot queries have a one-instant range).
struct STQuery {
  Rect2D area;
  TimeInterval range;

  bool IsSnapshot() const { return range.Duration() == 1; }
};

// Parameters of a query set (paper Table II). Extents are expressed as a
// fraction of the unit-square side (the table's percentages / 100);
// durations in discrete instants.
struct QuerySetConfig {
  std::string name;
  size_t count = 1000;
  double min_extent = 0.001;
  double max_extent = 0.01;
  Time min_duration = 1;
  Time max_duration = 1;
  Time time_domain = 1000;
  uint64_t seed = 123;
};

std::vector<STQuery> GenerateQuerySet(const QuerySetConfig& config);

// The 3-D window for running `query` against an R*-tree whose boxes were
// built with SegmentsToBoxes(records, t0, time_domain). The time edges are
// nudged by half an instant so the closed continuous box reproduces the
// discrete half-open semantics exactly: a record alive over [a, b) matches
// iff a < range.end and range.start < b.
Box3D QueryToBox(const STQuery& query, Time t0, Time time_domain);

// The six query sets of Table II.
QuerySetConfig TinySnapshotSet();    // extents 0.01%-0.1%, duration 1
QuerySetConfig SmallSnapshotSet();   // extents 0.1%-1%, duration 1
QuerySetConfig MixedSnapshotSet();   // extents 0.1%-5%, duration 1
QuerySetConfig LargeSnapshotSet();   // extents 1%-5%, duration 1
QuerySetConfig SmallRangeSet();      // extents 0.1%-1%, duration 1-10
QuerySetConfig MediumRangeSet();     // extents 0.1%-1%, duration 10-50

}  // namespace stindex

#endif  // STINDEX_DATAGEN_QUERY_GEN_H_
