#ifndef STINDEX_DATAGEN_CLUSTERED_DATASET_H_
#define STINDEX_DATAGEN_CLUSTERED_DATASET_H_

#include <cstdint>
#include <vector>

#include "trajectory/trajectory.h"

namespace stindex {

// A third dataset family beyond the paper's uniform "random" and
// network-bound "railway" workloads: objects clustered around Gaussian
// hot spots (city centers, habitats), moving piecewise-linearly between
// waypoints drawn near their home cluster. Exercises the index split
// heuristics under heavy spatial skew.
struct ClusteredDatasetConfig {
  size_t num_objects = 10000;
  Time time_domain = 1000;
  Time min_lifetime = 1;
  Time max_lifetime = 100;
  int num_clusters = 8;
  // Standard deviation of waypoints around their cluster center.
  double cluster_stddev = 0.04;
  int min_waypoints = 1;
  int max_waypoints = 9;
  double min_extent = 0.001;
  double max_extent = 0.01;
  uint64_t seed = 99;
};

std::vector<Trajectory> GenerateClusteredDataset(
    const ClusteredDatasetConfig& config);

}  // namespace stindex

#endif  // STINDEX_DATAGEN_CLUSTERED_DATASET_H_
