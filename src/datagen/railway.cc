#include "datagen/railway.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/random.h"

namespace stindex {

std::vector<int> RailwayMap::Neighbors(int city) const {
  std::vector<int> neighbors;
  for (const Track& track : tracks) {
    if (track.from == city) neighbors.push_back(track.to);
    if (track.to == city) neighbors.push_back(track.from);
  }
  return neighbors;
}

double RailwayMap::DistanceMiles(int from, int to) const {
  const Point2D& a = cities[static_cast<size_t>(from)].position;
  const Point2D& b = cities[static_cast<size_t>(to)].position;
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy) * map_width_miles;
}

RailwayMap BuildRailwayMap() {
  RailwayMap map;
  // California cluster (west edge), 10 cities. Coordinates are rough
  // normalized positions on a US-wide unit square.
  map.cities = {
      {"Sacramento", {0.06, 0.62}},    // 0
      {"San Francisco", {0.03, 0.58}}, // 1
      {"San Jose", {0.045, 0.55}},     // 2
      {"Oakland", {0.04, 0.585}},      // 3
      {"Fresno", {0.09, 0.48}},        // 4
      {"Bakersfield", {0.10, 0.42}},   // 5
      {"Los Angeles", {0.09, 0.35}},   // 6
      {"Anaheim", {0.10, 0.34}},       // 7
      {"Riverside", {0.12, 0.345}},    // 8
      {"San Diego", {0.11, 0.28}},     // 9
      // New York cluster (east edge), 9 cities.
      {"Buffalo", {0.78, 0.70}},        // 10
      {"Rochester", {0.81, 0.71}},      // 11
      {"Syracuse", {0.84, 0.70}},       // 12
      {"Albany", {0.89, 0.68}},         // 13
      {"Schenectady", {0.885, 0.69}},   // 14
      {"Yonkers", {0.905, 0.60}},       // 15
      {"New York City", {0.91, 0.59}},  // 16
      {"New Rochelle", {0.915, 0.60}},  // 17
      {"Binghamton", {0.85, 0.65}},     // 18
      // In-between cities on the cross-country corridor, 3 cities.
      {"Denver", {0.38, 0.52}},        // 19
      {"Kansas City", {0.52, 0.50}},   // 20
      {"Chicago", {0.63, 0.63}},       // 21
  };

  // 51 tracks: dense intra-state meshes plus a sparse transcontinental
  // corridor, mirroring the paper's description.
  map.tracks = {
      // Intra-California (20).
      {0, 1},  {0, 3},  {0, 4},  {1, 2},  {1, 3},  {2, 3},  {2, 4},
      {4, 5},  {4, 6},  {5, 6},  {5, 8},  {6, 7},  {6, 9},  {7, 8},
      {7, 9},  {8, 9},  {0, 2},  {3, 4},  {6, 8},  {1, 4},
      // Intra-New York (18).
      {10, 11}, {11, 12}, {12, 13}, {13, 14}, {13, 15}, {15, 16},
      {16, 17}, {15, 17}, {12, 18}, {18, 16}, {10, 18}, {11, 18},
      {12, 14}, {14, 15}, {10, 12}, {13, 16}, {11, 13}, {18, 13},
      // Cross-country corridor and inter-state links (13).
      {0, 19},  {4, 19},  {6, 19},  {19, 20}, {20, 21}, {21, 10},
      {21, 12}, {20, 10}, {19, 21}, {5, 20},  {20, 16}, {21, 16},
      {0, 21},
  };
  STINDEX_CHECK(map.cities.size() == 22);
  STINDEX_CHECK(map.tracks.size() == 51);
  return map;
}

std::vector<Trajectory> GenerateRailwayDataset(
    const RailwayDatasetConfig& config) {
  STINDEX_CHECK(config.num_trains > 0);
  STINDEX_CHECK(config.hours_per_instant > 0.0);
  STINDEX_CHECK(config.min_speed_mph > 0.0 &&
                config.min_speed_mph <= config.max_speed_mph);
  const RailwayMap map = BuildRailwayMap();
  Rng rng(config.seed);

  std::vector<Trajectory> trains;
  trains.reserve(config.num_trains);
  const double extent = config.train_extent;
  const Time max_instants = static_cast<Time>(
      std::ceil(config.max_travel_hours / config.hours_per_instant));

  for (size_t id = 0; id < config.num_trains; ++id) {
    const double speed =
        rng.UniformDouble(config.min_speed_mph, config.max_speed_mph);
    const int origin =
        static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(
                                               map.cities.size()) - 1));
    const Time start =
        rng.UniformInt(0, config.time_domain - max_instants - 1);

    std::vector<MovementTuple> movement;
    Time now = start;
    int current = origin;
    int previous = -1;
    const int stops = static_cast<int>(rng.UniformInt(1, config.max_stops));
    for (int leg = 0; leg < stops; ++leg) {
      // Pick the next city: never run straight back to the origin.
      std::vector<int> options;
      for (int neighbor : map.Neighbors(current)) {
        if (neighbor == origin && leg == 0) continue;
        if (neighbor == origin && previous == origin) continue;
        options.push_back(neighbor);
      }
      if (options.empty()) break;
      const int next = options[static_cast<size_t>(rng.UniformInt(
          0, static_cast<int64_t>(options.size()) - 1))];

      const double hours = map.DistanceMiles(current, next) / speed;
      const Time duration = std::max<Time>(
          1, static_cast<Time>(std::llround(hours / config.hours_per_instant)));
      if (now + duration - start > max_instants) break;

      const Point2D& from = map.cities[static_cast<size_t>(current)].position;
      const Point2D& to = map.cities[static_cast<size_t>(next)].position;
      MovementTuple tuple;
      tuple.interval = TimeInterval(now, now + duration);
      tuple.center_x = Polynomial::Linear(
          from.x, (to.x - from.x) / static_cast<double>(duration));
      tuple.center_y = Polynomial::Linear(
          from.y, (to.y - from.y) / static_cast<double>(duration));
      tuple.extent_x = Polynomial::Constant(extent);
      tuple.extent_y = Polynomial::Constant(extent);
      movement.push_back(std::move(tuple));

      now += duration;
      previous = current;
      current = next;

      // Occasional dwell at the station.
      if (leg + 1 < stops && rng.Bernoulli(0.3) &&
          now + 1 - start <= max_instants) {
        MovementTuple dwell;
        dwell.interval = TimeInterval(now, now + 1);
        dwell.center_x = Polynomial::Constant(to.x);
        dwell.center_y = Polynomial::Constant(to.y);
        dwell.extent_x = Polynomial::Constant(extent);
        dwell.extent_y = Polynomial::Constant(extent);
        movement.push_back(std::move(dwell));
        now += 1;
      }
    }
    if (movement.empty()) {
      // Degenerate route (isolated pick): park the train for one instant.
      const Point2D& at = map.cities[static_cast<size_t>(current)].position;
      MovementTuple parked;
      parked.interval = TimeInterval(now, now + 1);
      parked.center_x = Polynomial::Constant(at.x);
      parked.center_y = Polynomial::Constant(at.y);
      parked.extent_x = Polynomial::Constant(extent);
      parked.extent_y = Polynomial::Constant(extent);
      movement.push_back(std::move(parked));
    }
    trains.emplace_back(static_cast<ObjectId>(id), std::move(movement));
    STINDEX_DCHECK(trains.back().Validate().ok());
  }
  return trains;
}

}  // namespace stindex
