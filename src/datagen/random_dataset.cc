#include "datagen/random_dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"
#include "util/random.h"

namespace stindex {
namespace {

// Applies x' = a * x + b to a center polynomial.
Polynomial AffineTransform(const Polynomial& poly, double a, double b) {
  std::vector<double> coefficients = poly.coefficients();
  if (coefficients.empty()) coefficients.push_back(0.0);
  for (double& c : coefficients) c *= a;
  coefficients[0] += b;
  return Polynomial(std::move(coefficients));
}

// Random movement polynomial of the requested degree with the given start
// position, using per-instant velocity/acceleration scales small enough
// that normalization rarely has to shrink much.
Polynomial RandomMovement(Rng& rng, int degree, double start) {
  std::vector<double> coefficients = {start};
  if (degree >= 1) coefficients.push_back(rng.UniformDouble(-0.02, 0.02));
  if (degree >= 2) coefficients.push_back(rng.UniformDouble(-0.002, 0.002));
  return Polynomial(std::move(coefficients));
}

}  // namespace

std::vector<Trajectory> GenerateRandomDataset(
    const RandomDatasetConfig& config) {
  STINDEX_CHECK(config.num_objects > 0);
  STINDEX_CHECK(config.min_lifetime >= 1);
  STINDEX_CHECK(config.min_lifetime <= config.max_lifetime);
  STINDEX_CHECK(config.max_lifetime <= config.time_domain);
  STINDEX_CHECK(config.min_tuples >= 1 &&
                config.min_tuples <= config.max_tuples);
  STINDEX_CHECK(config.max_degree >= 1);
  // Zero extents are allowed: the moving-points special case the paper
  // cites ([20], [21]) flows through the same pipeline.
  STINDEX_CHECK(config.min_extent >= 0.0 &&
                config.min_extent <= config.max_extent);
  Rng rng(config.seed);

  std::vector<Trajectory> objects;
  objects.reserve(config.num_objects);
  for (size_t obj = 0; obj < config.num_objects; ++obj) {
    const Time lifetime =
        rng.UniformInt(config.min_lifetime, config.max_lifetime);
    const Time start = rng.UniformInt(0, config.time_domain - lifetime);

    // Choose tuple boundaries: at most one tuple per instant.
    const int tuples =
        static_cast<int>(rng.UniformInt(config.min_tuples,
                                        std::min<int64_t>(config.max_tuples,
                                                          lifetime)));
    std::vector<Time> boundaries = {start, start + lifetime};
    while (static_cast<int>(boundaries.size()) < tuples + 1) {
      const Time cut = rng.UniformInt(start + 1, start + lifetime - 1);
      if (std::find(boundaries.begin(), boundaries.end(), cut) ==
          boundaries.end()) {
        boundaries.push_back(cut);
      }
    }
    std::sort(boundaries.begin(), boundaries.end());

    const double extent_x =
        rng.UniformDouble(config.min_extent, config.max_extent);
    const double extent_y =
        rng.UniformDouble(config.min_extent, config.max_extent);

    // Build continuous movement: each tuple starts where the previous
    // ended.
    std::vector<MovementTuple> movement;
    double x = rng.NextDouble();
    double y = rng.NextDouble();
    for (size_t b = 0; b + 1 < boundaries.size(); ++b) {
      MovementTuple tuple;
      tuple.interval = TimeInterval(boundaries[b], boundaries[b + 1]);
      const int degree =
          static_cast<int>(rng.UniformInt(1, config.max_degree));
      tuple.center_x = RandomMovement(rng, degree, x);
      tuple.center_y = RandomMovement(rng, degree, y);
      if (config.changing_extents) {
        tuple.extent_x = Polynomial::Linear(
            extent_x, rng.UniformDouble(-1.0, 1.0) * extent_x /
                          static_cast<double>(lifetime));
        tuple.extent_y = Polynomial::Linear(
            extent_y, rng.UniformDouble(-1.0, 1.0) * extent_y /
                          static_cast<double>(lifetime));
      } else {
        tuple.extent_x = Polynomial::Constant(extent_x);
        tuple.extent_y = Polynomial::Constant(extent_y);
      }
      const double duration =
          static_cast<double>(tuple.interval.Duration());
      x = tuple.center_x.Evaluate(duration);
      y = tuple.center_y.Evaluate(duration);
      movement.push_back(std::move(tuple));
    }

    // Normalize: map the center bounding box into the unit square
    // (shrinking if the random walk drifted out, translating otherwise).
    Trajectory draft(static_cast<ObjectId>(obj), std::move(movement));
    Rect2D centers = Rect2D::Empty();
    const TimeInterval life = draft.Lifetime();
    for (Time t = life.start; t < life.end; ++t) {
      centers.ExpandToInclude(draft.RectAt(t).Center());
    }
    auto normalize_axis = [&rng](double lo, double hi, double margin,
                                 double* a, double* b) {
      const double available = 1.0 - 2.0 * margin;
      const double range = hi - lo;
      if (range > available) {
        *a = available / range;
        *b = margin - lo * (*a);
      } else {
        *a = 1.0;
        *b = margin - lo + rng.UniformDouble(0.0, available - range);
      }
    };
    double ax, bx, ay, by;
    normalize_axis(centers.xlo, centers.xhi, extent_x / 2.0, &ax, &bx);
    normalize_axis(centers.ylo, centers.yhi, extent_y / 2.0, &ay, &by);
    std::vector<MovementTuple> normalized = draft.tuples();
    for (MovementTuple& tuple : normalized) {
      tuple.center_x = AffineTransform(tuple.center_x, ax, bx);
      tuple.center_y = AffineTransform(tuple.center_y, ay, by);
    }
    objects.emplace_back(static_cast<ObjectId>(obj), std::move(normalized));
    STINDEX_DCHECK(objects.back().Validate().ok());
  }
  return objects;
}

DatasetStats ComputeDatasetStats(const std::vector<Trajectory>& objects,
                                 Time time_domain) {
  DatasetStats stats;
  stats.total_objects = objects.size();
  if (objects.empty()) return stats;
  int64_t total_alive_instants = 0;
  int64_t total_lifetime = 0;
  double min_extent = std::numeric_limits<double>::infinity();
  double max_extent = 0.0;
  for (const Trajectory& object : objects) {
    total_alive_instants += object.NumInstants();
    total_lifetime += object.NumInstants();
    stats.total_segments += object.tuples().size();
    const Rect2D rect = object.RectAt(object.Lifetime().start);
    min_extent = std::min({min_extent, rect.Width(), rect.Height()});
    max_extent = std::max({max_extent, rect.Width(), rect.Height()});
  }
  stats.avg_objects_per_instant =
      static_cast<double>(total_alive_instants) /
      static_cast<double>(time_domain);
  stats.avg_lifetime = static_cast<double>(total_lifetime) /
                       static_cast<double>(objects.size());
  stats.min_extent = min_extent;
  stats.max_extent = max_extent;
  return stats;
}

}  // namespace stindex
