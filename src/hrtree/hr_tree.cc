#include "hrtree/hr_tree.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace stindex {

struct HrTree::Version {
  Time start = 0;
  PageId root = kInvalidPage;
};

class HrTree::Node : public Page {
 public:
  struct Entry {
    Rect2D rect;
    PageId child = kInvalidPage;  // internal nodes
    HrDataId data = 0;            // leaves
  };

  Node(int level, Time created) : level_(level), created_(created) {}

  int level() const { return level_; }
  bool IsLeaf() const { return level_ == 0; }
  Time created() const { return created_; }

  std::vector<Entry>& entries() { return entries_; }
  const std::vector<Entry>& entries() const { return entries_; }

  Rect2D Mbr() const {
    Rect2D mbr = Rect2D::Empty();
    for (const Entry& entry : entries_) mbr.ExpandToInclude(entry.rect);
    return mbr;
  }

 private:
  int level_;
  Time created_;
  std::vector<Entry> entries_;
};

HrTree::HrTree(HrConfig config) : config_(config) {
  STINDEX_CHECK(config_.max_entries >= 4);
  STINDEX_CHECK(config_.min_entries >= 1);
  STINDEX_CHECK(config_.min_entries <= config_.max_entries / 2);
  store_.SetMetricScope("hr");
  buffer_ = std::make_unique<BufferPool>(&store_, config_.buffer_pages, "hr");
}

HrTree::~HrTree() = default;

HrTree::Node* HrTree::GetNode(PageId id) const {
  return static_cast<Node*>(store_.Get(id));
}

const HrTree::Node* HrTree::FetchNode(BufferPool* buffer, PageId id) {
  return static_cast<const Node*>(buffer->Fetch(id));
}

std::unique_ptr<BufferPool> HrTree::NewQueryBuffer(size_t pages) const {
  return std::make_unique<BufferPool>(
      &store_, pages == 0 ? config_.buffer_pages : pages, "hr");
}

size_t HrTree::NumVersions() const { return roots_.size(); }

void HrTree::ResetQueryState() const {
  buffer_->ResetCache();
  buffer_->ResetStats();
}

PageId HrTree::RootAt(Time t) const {
  auto it = std::upper_bound(roots_.begin(), roots_.end(), t,
                             [](Time value, const Version& version) {
                               return value < version.start;
                             });
  if (it == roots_.begin()) return kInvalidPage;
  return std::prev(it)->root;
}

void HrTree::PublishRoot(PageId root, Time t) {
  if (!roots_.empty() && roots_.back().start == t) {
    roots_.back().root = root;
    return;
  }
  STINDEX_CHECK(roots_.empty() || roots_.back().start < t);
  // Avoid redundant versions when nothing changed.
  if (!roots_.empty() && roots_.back().root == root) return;
  roots_.push_back(Version{t, root});
}

PageId HrTree::MakeWritable(PageId id, Time t, bool* copied) {
  Node* node = GetNode(id);
  if (node->created() == t) {
    *copied = false;
    return id;
  }
  auto clone = std::make_unique<Node>(node->level(), t);
  clone->entries() = node->entries();
  *copied = true;
  return store_.Allocate(std::move(clone));
}

PageId HrTree::InsertIntoVersion(PageId root, const Rect2D& rect,
                                 HrDataId data, Time t) {
  // Copy-on-write descent: clone the root-to-leaf path chosen by least
  // area enlargement, expanding rects on the way down.
  bool copied = false;
  const PageId new_root = MakeWritable(root, t, &copied);
  std::vector<PageId> path = {new_root};
  std::vector<size_t> slots;
  Node* node = GetNode(new_root);
  while (!node->IsLeaf()) {
    std::vector<Node::Entry>& entries = node->entries();
    size_t best = 0;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < entries.size(); ++i) {
      const double enlargement = entries[i].rect.Enlargement(rect);
      const double area = entries[i].rect.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = i;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    const PageId child = MakeWritable(entries[best].child, t, &copied);
    entries[best].child = child;
    entries[best].rect.ExpandToInclude(rect);
    path.push_back(child);
    slots.push_back(best);
    node = GetNode(child);
  }

  Node::Entry entry;
  entry.rect = rect;
  entry.data = data;
  node->entries().push_back(entry);

  // Overflow propagation with quadratic splits.
  PageId result_root = path.front();
  for (size_t depth = path.size(); depth-- > 0;) {
    Node* victim = GetNode(path[depth]);
    if (victim->entries().size() <= config_.max_entries) break;

    // Quadratic split (Guttman): pick the seed pair wasting the most
    // area, then assign by least enlargement with fill guarantees.
    std::vector<Node::Entry> pool;
    pool.swap(victim->entries());
    size_t seed_a = 0, seed_b = 1;
    double worst_waste = -std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < pool.size(); ++i) {
      for (size_t j = i + 1; j < pool.size(); ++j) {
        const double waste = pool[i].rect.Union(pool[j].rect).Area() -
                             pool[i].rect.Area() - pool[j].rect.Area();
        if (waste > worst_waste) {
          worst_waste = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
    auto sibling = std::make_unique<Node>(victim->level(), t);
    Rect2D mbr_a = pool[seed_a].rect;
    Rect2D mbr_b = pool[seed_b].rect;
    victim->entries().push_back(pool[seed_a]);
    sibling->entries().push_back(pool[seed_b]);
    size_t remaining = pool.size() - 2;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (i == seed_a || i == seed_b) continue;
      // Fill guarantee: a group that needs every remaining entry to reach
      // the minimum takes them all.
      if (victim->entries().size() + remaining == config_.min_entries) {
        victim->entries().push_back(pool[i]);
        mbr_a.ExpandToInclude(pool[i].rect);
        --remaining;
        continue;
      }
      if (sibling->entries().size() + remaining == config_.min_entries) {
        sibling->entries().push_back(pool[i]);
        mbr_b.ExpandToInclude(pool[i].rect);
        --remaining;
        continue;
      }
      --remaining;
      const double grow_a = mbr_a.Enlargement(pool[i].rect);
      const double grow_b = mbr_b.Enlargement(pool[i].rect);
      if (grow_a < grow_b ||
          (grow_a == grow_b &&
           victim->entries().size() <= sibling->entries().size())) {
        victim->entries().push_back(pool[i]);
        mbr_a.ExpandToInclude(pool[i].rect);
      } else {
        sibling->entries().push_back(pool[i]);
        mbr_b.ExpandToInclude(pool[i].rect);
      }
    }
    const PageId sibling_id = store_.Allocate(std::move(sibling));

    if (depth == 0) {
      // Root split: new root one level up.
      auto grown = std::make_unique<Node>(victim->level() + 1, t);
      Node::Entry left;
      left.rect = GetNode(path[0])->Mbr();
      left.child = path[0];
      Node::Entry right;
      right.rect = GetNode(sibling_id)->Mbr();
      right.child = sibling_id;
      grown->entries().push_back(left);
      grown->entries().push_back(right);
      result_root = store_.Allocate(std::move(grown));
      break;
    }
    Node* parent = GetNode(path[depth - 1]);
    parent->entries()[slots[depth - 1]].rect = GetNode(path[depth])->Mbr();
    Node::Entry extra;
    extra.rect = GetNode(sibling_id)->Mbr();
    extra.child = sibling_id;
    parent->entries().push_back(extra);
  }
  return result_root;
}

namespace {

// Recursive locate-and-remove for DeleteFromVersion. Returns true when
// the record was found and removed beneath `id`; `*empty` reports that
// the node ended up with no entries.
struct RemoveContext {
  Rect2D rect;
  HrDataId data;
  Time t;
};

}  // namespace

PageId HrTree::DeleteFromVersion(PageId root, HrDataId data, Time t) {
  const Rect2D rect = alive_entry_.at(data);

  // Iterative DFS that lazily path-copies once the leaf is found: for
  // simplicity we copy nodes along the *current* DFS path when removal
  // succeeds, using recursion.
  struct Frame {
    PageId node;
    size_t slot;  // slot in parent
  };

  // Find the root-to-leaf path to the entry (search guided by rect).
  std::vector<Frame> path;
  bool found = false;
  std::vector<std::vector<Frame>> stack;
  stack.push_back({Frame{root, SIZE_MAX}});
  while (!stack.empty() && !found) {
    std::vector<Frame> candidate = std::move(stack.back());
    stack.pop_back();
    const Node* node = GetNode(candidate.back().node);
    if (node->IsLeaf()) {
      for (const Node::Entry& entry : node->entries()) {
        if (entry.data == data) {
          path = candidate;
          found = true;
          break;
        }
      }
      continue;
    }
    const std::vector<Node::Entry>& entries = node->entries();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (!entries[i].rect.Intersects(rect)) continue;
      std::vector<Frame> next = candidate;
      next.push_back(Frame{entries[i].child, i});
      stack.push_back(std::move(next));
    }
  }
  STINDEX_CHECK_MSG(found, "alive record not found in current version");

  // Copy-on-write the path top-down.
  bool copied = false;
  path[0].node = MakeWritable(path[0].node, t, &copied);
  for (size_t i = 1; i < path.size(); ++i) {
    Node* parent = GetNode(path[i - 1].node);
    path[i].node = MakeWritable(path[i].node, t, &copied);
    parent->entries()[path[i].slot].child = path[i].node;
  }

  // Remove the entry from the (writable) leaf.
  Node* leaf = GetNode(path.back().node);
  auto& leaf_entries = leaf->entries();
  bool erased = false;
  for (size_t i = 0; i < leaf_entries.size(); ++i) {
    if (leaf_entries[i].data == data) {
      leaf_entries.erase(leaf_entries.begin() + static_cast<long>(i));
      erased = true;
      break;
    }
  }
  STINDEX_CHECK(erased);

  // Condense: prune empty nodes upward and refresh ancestor rects. We do
  // not re-insert orphaned under-filled nodes (acceptable for the
  // historical baseline; rects never shrink below correctness).
  for (size_t depth = path.size(); depth-- > 1;) {
    Node* node = GetNode(path[depth].node);
    Node* parent = GetNode(path[depth - 1].node);
    if (node->entries().empty()) {
      parent->entries().erase(parent->entries().begin() +
                              static_cast<long>(path[depth].slot));
      // Slots of later frames are unaffected (they are deeper).
    } else {
      parent->entries()[path[depth].slot].rect = node->Mbr();
    }
  }

  // Shrink the root.
  PageId new_root = path[0].node;
  while (new_root != kInvalidPage) {
    Node* node = GetNode(new_root);
    if (node->entries().empty()) {
      new_root = kInvalidPage;
      break;
    }
    if (!node->IsLeaf() && node->entries().size() == 1) {
      new_root = node->entries()[0].child;
      continue;
    }
    break;
  }
  return new_root;
}

void HrTree::Insert(const Rect2D& rect, Time t, HrDataId data) {
  STINDEX_CHECK_MSG(rect.IsValid(), "inserting an invalid rect");
  STINDEX_CHECK_MSG(t >= current_time_, "updates must be fed in time order");
  STINDEX_CHECK_MSG(alive_entry_.find(data) == alive_entry_.end(),
                    "record is already alive");
  current_time_ = t;
  ++size_;
  alive_entry_[data] = rect;

  const PageId root = roots_.empty() ? kInvalidPage : roots_.back().root;
  if (root == kInvalidPage) {
    auto node = std::make_unique<Node>(0, t);
    Node::Entry entry;
    entry.rect = rect;
    entry.data = data;
    node->entries().push_back(entry);
    PublishRoot(store_.Allocate(std::move(node)), t);
    return;
  }
  PublishRoot(InsertIntoVersion(root, rect, data, t), t);
}

void HrTree::Delete(HrDataId data, Time t) {
  STINDEX_CHECK_MSG(t >= current_time_, "updates must be fed in time order");
  auto it = alive_entry_.find(data);
  STINDEX_CHECK_MSG(it != alive_entry_.end(), "record is not alive");
  current_time_ = t;

  const PageId root = roots_.empty() ? kInvalidPage : roots_.back().root;
  STINDEX_CHECK(root != kInvalidPage);
  const PageId new_root = DeleteFromVersion(root, data, t);
  alive_entry_.erase(it);
  PublishRoot(new_root, t);
}

void HrTree::SnapshotQuery(const Rect2D& area, Time t,
                           std::vector<HrDataId>* results) const {
  SnapshotQuery(area, t, buffer_.get(), results);
}

void HrTree::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                           std::vector<HrDataId>* results) const {
  IntervalQuery(area, range, buffer_.get(), results);
}

void HrTree::SnapshotQuery(const Rect2D& area, Time t, BufferPool* buffer,
                           std::vector<HrDataId>* results) const {
  results->clear();
  const PageId root = RootAt(t);
  if (root == kInvalidPage) return;
  std::vector<PageId> stack = {root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const Node* node = FetchNode(buffer, id);
    for (const Node::Entry& entry : node->entries()) {
      if (!entry.rect.Intersects(area)) continue;
      if (node->IsLeaf()) {
        results->push_back(entry.data);
      } else {
        stack.push_back(entry.child);
      }
    }
  }
}

void HrTree::IntervalQuery(const Rect2D& area, const TimeInterval& range,
                           BufferPool* buffer,
                           std::vector<HrDataId>* results) const {
  results->clear();
  if (!range.IsValid()) return;
  std::unordered_set<HrDataId> seen;
  // One search per version tree overlapping the range — the overlapping
  // approach has no lifetime information inside nodes to prune with.
  for (size_t v = 0; v < roots_.size(); ++v) {
    const Time start = std::max(roots_[v].start, range.start);
    const Time end =
        v + 1 < roots_.size() ? roots_[v + 1].start : kTimeInfinity;
    if (start >= range.end || start >= end) continue;
    if (roots_[v].root == kInvalidPage) continue;
    SnapshotQueryNoClear(roots_[v].root, area, buffer, &seen, results);
  }
}

// Helper outside the public header: search one version root, appending
// unseen hits.
void HrTree::SnapshotQueryNoClear(PageId root, const Rect2D& area,
                                  BufferPool* buffer,
                                  std::unordered_set<HrDataId>* seen,
                                  std::vector<HrDataId>* results) const {
  std::vector<PageId> stack = {root};
  while (!stack.empty()) {
    const PageId id = stack.back();
    stack.pop_back();
    const Node* node = FetchNode(buffer, id);
    for (const Node::Entry& entry : node->entries()) {
      if (!entry.rect.Intersects(area)) continue;
      if (node->IsLeaf()) {
        if (seen->insert(entry.data).second) results->push_back(entry.data);
      } else {
        stack.push_back(entry.child);
      }
    }
  }
}

void HrTree::CheckInvariants() const {
  for (const Version& version : roots_) {
    if (version.root == kInvalidPage) continue;
    const int root_level = GetNode(version.root)->level();
    std::vector<std::pair<PageId, int>> stack = {{version.root, root_level}};
    while (!stack.empty()) {
      auto [id, expected_level] = stack.back();
      stack.pop_back();
      const Node* node = GetNode(id);
      STINDEX_CHECK(node->level() == expected_level);
      STINDEX_CHECK(node->entries().size() <= config_.max_entries);
      for (const Node::Entry& entry : node->entries()) {
        STINDEX_CHECK(entry.rect.IsValid());
        if (!node->IsLeaf()) {
          const Node* child = GetNode(entry.child);
          STINDEX_CHECK(child->level() == node->level() - 1);
          STINDEX_CHECK_MSG(entry.rect.Contains(child->Mbr()),
                            "parent rect does not cover child");
          stack.push_back({entry.child, expected_level - 1});
        }
      }
    }
  }
}

std::unique_ptr<HrTree> BuildHrTree(const std::vector<SegmentRecord>& records,
                                    HrConfig config) {
  auto tree = std::make_unique<HrTree>(config);
  struct Event {
    Time time;
    bool is_insert;
    uint64_t record;
  };
  std::vector<Event> events;
  events.reserve(records.size() * 2);
  for (uint64_t i = 0; i < records.size(); ++i) {
    events.push_back(Event{records[i].box.interval.start, true, i});
    events.push_back(Event{records[i].box.interval.end, false, i});
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.is_insert != b.is_insert) return !a.is_insert;
    return a.record < b.record;
  });
  for (const Event& event : events) {
    const SegmentRecord& record = records[event.record];
    if (event.is_insert) {
      tree->Insert(record.box.rect, record.box.interval.start, event.record);
    } else {
      tree->Delete(event.record, record.box.interval.end);
    }
  }
  return tree;
}

}  // namespace stindex
