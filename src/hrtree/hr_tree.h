#ifndef STINDEX_HRTREE_HR_TREE_H_
#define STINDEX_HRTREE_HR_TREE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/segment.h"
#include "geometry/interval.h"
#include "geometry/rect.h"
#include "storage/buffer_pool.h"
#include "storage/page_store.h"

namespace stindex {

// Payload of an HR-tree data record.
using HrDataId = uint64_t;

struct HrConfig {
  // Maximum entries per node (page capacity B).
  size_t max_entries = 50;
  // Minimum entries per node after a key split.
  size_t min_entries = 20;
  // LRU buffer pages used when answering queries.
  size_t buffer_pages = 10;
};

// The historical (overlapping) R-tree — the *other* way to make a spatial
// structure partially persistent, which the paper contrasts with the
// multiversion PPR-tree (Section I; Nascimento & Silva [17], Tzouramanis
// et al. [29], Burton et al. [4]).
//
// Conceptually one 2-D R-tree exists per time instant; consecutive trees
// differ little, so unchanged branches are SHARED and every update
// copies only the root-to-leaf path it touches (copy-on-write). Snapshot
// queries are served by an ordinary R-tree search on the root of the
// queried instant. The known trade-offs this implementation reproduces:
//
//  * storage grows by O(height) pages per change — the "logarithmic
//    overhead on the index storage requirements" of [24] — roughly an
//    order of magnitude above the PPR-tree's linear storage;
//  * interval queries must search one tree per instant in the range
//    (with result de-duplication), so they degrade with duration.
//
// Updates must be fed in non-decreasing time order, like the PPR-tree.
class HrTree {
 public:
  explicit HrTree(HrConfig config = HrConfig());
  ~HrTree();

  HrTree(const HrTree&) = delete;
  HrTree& operator=(const HrTree&) = delete;

  // Starts the life of record `data` with spatial key `rect` at time t.
  void Insert(const Rect2D& rect, Time t, HrDataId data);

  // Ends the life of record `data` at time t (it exists at instants < t).
  void Delete(HrDataId data, Time t);

  // All records alive at instant t whose rect intersects `area`.
  void SnapshotQuery(const Rect2D& area, Time t,
                     std::vector<HrDataId>* results) const;

  // All records alive at any instant in [range.start, range.end) whose
  // rect intersects `area`; de-duplicated. Cost grows with the number of
  // version trees in the range — the overlapping approach's weakness.
  void IntervalQuery(const Rect2D& area, const TimeInterval& range,
                     std::vector<HrDataId>* results) const;

  // Variants reading through a caller-owned buffer (one per thread).
  void SnapshotQuery(const Rect2D& area, Time t, BufferPool* buffer,
                     std::vector<HrDataId>* results) const;
  void IntervalQuery(const Rect2D& area, const TimeInterval& range,
                     BufferPool* buffer,
                     std::vector<HrDataId>* results) const;

  // A fresh LRU buffer over this tree's pages (0 = configured default).
  std::unique_ptr<BufferPool> NewQueryBuffer(size_t pages = 0) const;

  size_t Size() const { return size_; }
  size_t AliveCount() const { return alive_entry_.size(); }
  size_t PageCount() const { return store_.PageCount(); }
  size_t NumVersions() const;

  const IoStats& stats() const { return buffer_->stats(); }
  void ResetQueryState() const;

  // Structural checks on every version tree (sampled): uniform leaf
  // depth, parent MBR containment, capacity bounds. Test hook.
  void CheckInvariants() const;

 private:
  class Node;
  struct Version;

  Node* GetNode(PageId id) const;
  static const Node* FetchNode(BufferPool* buffer, PageId id);

  // Returns the root owning instant t (kInvalidPage when empty).
  PageId RootAt(Time t) const;

  // Makes `id` writable for version `t`: returns it unchanged when the
  // node was created at t, otherwise clones it (copy-on-write).
  PageId MakeWritable(PageId id, Time t, bool* copied);

  // R-tree insert of a leaf entry into the version tree rooted at
  // `root`, with path copying; returns the (possibly new) root.
  PageId InsertIntoVersion(PageId root, const Rect2D& rect, HrDataId data,
                           Time t);

  // Removes `data` from the version tree; returns the new root.
  PageId DeleteFromVersion(PageId root, HrDataId data, Time t);

  // Searches one version root, appending hits not in `seen`.
  void SnapshotQueryNoClear(PageId root, const Rect2D& area,
                            BufferPool* buffer,
                            std::unordered_set<HrDataId>* seen,
                            std::vector<HrDataId>* results) const;

  // Ensures the version list ends with a root for time t and returns a
  // writable alias of the previous root (or invalid when empty).
  void PublishRoot(PageId root, Time t);

  HrConfig config_;
  mutable PageStore store_;
  std::unique_ptr<BufferPool> buffer_;
  // Version list: root of the tree valid from `start` until the next
  // version's start.
  std::vector<Version> roots_;
  size_t size_ = 0;
  Time current_time_ = 0;
  // data -> spatial key of the alive record (needed to find its leaf).
  std::unordered_map<HrDataId, Rect2D> alive_entry_;
};

// Replays segment records (insert at interval.start, delete at
// interval.end) into a fresh HR-tree; record i gets HrDataId i.
std::unique_ptr<HrTree> BuildHrTree(const std::vector<SegmentRecord>& records,
                                    HrConfig config = HrConfig());

}  // namespace stindex

#endif  // STINDEX_HRTREE_HR_TREE_H_
