#ifndef STINDEX_UTIL_THREADS_H_
#define STINDEX_UTIL_THREADS_H_

// Shared worker-thread-count resolution for every front end (benches and
// stindex_cli), so `--threads=N` and the STINDEX_THREADS environment
// variable mean the same thing everywhere:
//
//   resolution order:  --threads flag  >  STINDEX_THREADS  >  1
//
// Both sources are validated, not passed through: a value must parse as
// an integer in [1, kMaxThreads]. Zero, negatives, garbage and overflow
// are InvalidArgument — never silently clamped into the ThreadPool.

#include <string>

#include "util/status.h"

namespace stindex {

// Upper bound on accepted worker counts; far above any useful
// parallelism here, it exists to catch typos like --threads=10000000.
inline constexpr int kMaxThreads = 1024;

// Parses `text` as a thread count in [1, kMaxThreads]. `source` names
// where the value came from ("--threads", "STINDEX_THREADS") for the
// error message.
Result<int> ParseThreadCount(const std::string& text,
                             const std::string& source);

// Resolves the effective thread count: `flag_value` when non-empty, else
// the STINDEX_THREADS environment variable when set, else 1. Invalid
// values from either source are an error, not a fallback.
Result<int> ResolveThreadCount(const std::string& flag_value);

}  // namespace stindex

#endif  // STINDEX_UTIL_THREADS_H_
