#include "util/threads.h"

#include <cerrno>
#include <cstdlib>

namespace stindex {

Result<int> ParseThreadCount(const std::string& text,
                             const std::string& source) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument(source + ": '" + text +
                                   "' is not an integer thread count");
  }
  if (errno == ERANGE || value < 1 || value > kMaxThreads) {
    return Status::InvalidArgument(
        source + ": thread count " + text + " out of range [1, " +
        std::to_string(kMaxThreads) + "]");
  }
  return static_cast<int>(value);
}

Result<int> ResolveThreadCount(const std::string& flag_value) {
  if (!flag_value.empty()) return ParseThreadCount(flag_value, "--threads");
  const char* env = std::getenv("STINDEX_THREADS");
  if (env != nullptr && *env != '\0') {
    return ParseThreadCount(env, "STINDEX_THREADS");
  }
  return 1;
}

}  // namespace stindex
