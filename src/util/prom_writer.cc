#include "util/prom_writer.h"

#include <cstdio>

namespace stindex {

namespace {

bool IsPromChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// %.17g matches the JSON writer's round-trip-safe float rendering.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendQuantile(std::string& out, const std::string& name,
                    const char* quantile, double value) {
  out += name + "{quantile=\"" + quantile + "\"} " + FormatDouble(value) +
         "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string sanitized = "stindex_";
  sanitized.reserve(sanitized.size() + name.size());
  for (const char c : name) {
    sanitized.push_back(IsPromChar(c) ? c : '_');
  }
  return sanitized;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " counter\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " gauge\n";
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(name);
    out += "# TYPE " + prom + " summary\n";
    AppendQuantile(out, prom, "0.5", histogram.p50);
    AppendQuantile(out, prom, "0.9", histogram.p90);
    AppendQuantile(out, prom, "0.95", histogram.p95);
    AppendQuantile(out, prom, "0.99", histogram.p99);
    out += prom + "_sum " + FormatDouble(histogram.sum) + "\n";
    out += prom + "_count " + std::to_string(histogram.count) + "\n";
  }
  return out;
}

}  // namespace stindex
