#include "util/prom_writer.h"

#include <cstdio>

#include "util/check.h"

namespace stindex {

namespace {

bool IsPromChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

// Separator bytes registry names legitimately use; each maps to '_'.
bool IsMappedSeparator(char c) {
  return c == '.' || c == ' ' || c == '/' || c == ':' || c == '-';
}

// %.17g matches the JSON writer's round-trip-safe float rendering.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

void AppendQuantile(std::string& out, const std::string& name,
                    const char* quantile, double value) {
  out += name + "{quantile=\"" + quantile + "\"} " + FormatDouble(value) +
         "\n";
}

void AppendHeader(std::string& out, const std::string& prom,
                  const std::string& source, const char* kind) {
  out += "# HELP " + prom + " stindex registry metric '" + source + "' (" +
         kind + ")\n";
  out += "# TYPE " + prom + " ";
  out += kind;
  out += "\n";
}

void AppendSummary(std::string& out, const std::string& prom,
                   const std::string& source,
                   const HistogramSnapshot& histogram) {
  AppendHeader(out, prom, source, "summary");
  AppendQuantile(out, prom, "0.5", histogram.p50);
  AppendQuantile(out, prom, "0.9", histogram.p90);
  AppendQuantile(out, prom, "0.95", histogram.p95);
  AppendQuantile(out, prom, "0.99", histogram.p99);
  out += prom + "_sum " + FormatDouble(histogram.sum) + "\n";
  out += prom + "_count " + std::to_string(histogram.count) + "\n";
}

}  // namespace

std::string PrometheusMetricName(const std::string& name) {
  std::string sanitized = "stindex_";
  sanitized.reserve(sanitized.size() + name.size());
  for (const char c : name) {
    STINDEX_CHECK_MSG(
        IsPromChar(c) || IsMappedSeparator(c),
        ("metric name '" + name +
         "' contains a byte that is neither Prometheus-legal [a-zA-Z0-9_] "
         "nor a mapped separator (. /:-)")
            .c_str());
    sanitized.push_back(IsPromChar(c) ? c : '_');
  }
  return sanitized;
}

std::string RenderPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "counter");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "gauge");
    out += prom + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    AppendSummary(out, PrometheusMetricName(name), name, histogram);
  }
  return out;
}

std::string RenderPrometheusWindow(const WindowedMetricsSnapshot& window) {
  std::string out;
  AppendHeader(out, "stindex_metrics_window_seconds",
               "metrics.window_seconds", "gauge");
  out += "stindex_metrics_window_seconds " + FormatDouble(window.seconds) +
         "\n";
  for (const auto& [name, rate] : window.counter_rates) {
    const std::string prom = PrometheusMetricName(name) + "_rate";
    AppendHeader(out, prom, name + " increase/s over the window", "gauge");
    out += prom + " " + FormatDouble(rate) + "\n";
  }
  for (const auto& [name, histogram] : window.histograms) {
    AppendSummary(out, PrometheusMetricName(name) + "_window",
                  name + " over the window", histogram);
  }
  return out;
}

}  // namespace stindex
