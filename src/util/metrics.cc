#include "util/metrics.h"

#include <cmath>

#include "util/check.h"

namespace stindex {

namespace {

// Bucket 0's upper bound is 2^kExponentOffset; see header.
constexpr int kExponentOffset = -20;

}  // namespace

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN readings
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);
  // frexp puts value in [2^(exponent-1), 2^exponent); our buckets are
  // open below and CLOSED above, so an exact power of two belongs to the
  // bucket it bounds.
  int index = exponent - kExponentOffset;
  if (mantissa == 0.5) --index;
  if (index < 0) return 0;
  if (index >= static_cast<int>(kBucketCount)) return kBucketCount - 1;
  return static_cast<size_t>(index);
}

double Histogram::BucketUpperBound(size_t index) {
  return std::ldexp(1.0, static_cast<int>(index) + kExponentOffset);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) value = 0.0;
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0.0;
  STINDEX_CHECK(p >= 0.0 && p <= 100.0);
  if (p == 0.0) return min_;
  if (p == 100.0) return max_;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The true value lies in this bucket; report its upper bound,
      // clamped to the exact extremes.
      double bound = BucketUpperBound(i);
      if (bound > max_) bound = max_;
      if (bound < min_) bound = min_;
      return bound;
    }
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = count_ == 0 ? 0.0 : min_;
  snapshot.max = count_ == 0 ? 0.0 : max_;
  snapshot.p50 = ValueAtPercentile(50.0);
  snapshot.p90 = ValueAtPercentile(90.0);
  snapshot.p95 = ValueAtPercentile(95.0);
  snapshot.p99 = ValueAtPercentile(99.0);
  return snapshot;
}

void HistogramMetric::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(value);
}

void HistogramMetric::MergeFrom(const Histogram& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Merge(shard);
}

Histogram HistogramMetric::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

void HistogramMetric::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<HistogramMetric>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Value().Snapshot());
  }
  return snapshot;
}

void MetricRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MergeShards(const std::vector<Histogram>& shards,
                 HistogramMetric* target) {
  STINDEX_CHECK(target != nullptr);
  for (const Histogram& shard : shards) target->MergeFrom(shard);
}

ScopedTimer::ScopedTimer(const std::string& histogram_name)
    : histogram_(MetricRegistry::Global().GetHistogram(histogram_name)),
      start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  histogram_->Record(elapsed.count());
}

}  // namespace stindex
