#include "util/metrics.h"

#include <cmath>

#include "util/check.h"

namespace stindex {

namespace {

// Bucket 0's upper bound is 2^kExponentOffset; see header.
constexpr int kExponentOffset = -20;

}  // namespace

size_t Histogram::BucketIndex(double value) {
  if (!(value > 0.0)) return 0;  // non-positive and NaN readings
  int exponent = 0;
  const double mantissa = std::frexp(value, &exponent);
  // frexp puts value in [2^(exponent-1), 2^exponent); our buckets are
  // open below and CLOSED above, so an exact power of two belongs to the
  // bucket it bounds.
  int index = exponent - kExponentOffset;
  if (mantissa == 0.5) --index;
  if (index < 0) return 0;
  if (index >= static_cast<int>(kBucketCount)) return kBucketCount - 1;
  return static_cast<size_t>(index);
}

double Histogram::BucketUpperBound(size_t index) {
  return std::ldexp(1.0, static_cast<int>(index) + kExponentOffset);
}

void Histogram::Record(double value) {
  if (std::isnan(value)) value = 0.0;
  ++buckets_[BucketIndex(value)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Histogram Histogram::DeltaSince(const Histogram& earlier) const {
  STINDEX_CHECK(count_ >= earlier.count_);
  Histogram delta;
  size_t first_nonzero = kBucketCount;
  size_t last_nonzero = kBucketCount;
  for (size_t i = 0; i < kBucketCount; ++i) {
    STINDEX_CHECK(buckets_[i] >= earlier.buckets_[i]);
    delta.buckets_[i] = buckets_[i] - earlier.buckets_[i];
    if (delta.buckets_[i] > 0) {
      if (first_nonzero == kBucketCount) first_nonzero = i;
      last_nonzero = i;
    }
  }
  delta.count_ = count_ - earlier.count_;
  delta.sum_ = sum_ - earlier.sum_;
  if (delta.count_ > 0) {
    // Bucket-accurate extremes: the exact window min/max are gone, but
    // every percentile is only bucket-accurate anyway. Clamp to the
    // cumulative extremes so single-bucket windows stay sane.
    double lo = first_nonzero == 0 ? 0.0 : BucketUpperBound(first_nonzero - 1);
    double hi = BucketUpperBound(last_nonzero);
    if (lo < min_) lo = min_;
    if (hi > max_) hi = max_;
    if (lo > hi) lo = hi;
    delta.min_ = lo;
    delta.max_ = hi;
  }
  return delta;
}

double Histogram::ValueAtPercentile(double p) const {
  if (count_ == 0) return 0.0;
  STINDEX_CHECK(p >= 0.0 && p <= 100.0);
  if (p == 0.0) return min_;
  if (p == 100.0) return max_;
  uint64_t rank =
      static_cast<uint64_t>(std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i];
    if (cumulative >= rank) {
      // The true value lies in this bucket; report its upper bound,
      // clamped to the exact extremes.
      double bound = BucketUpperBound(i);
      if (bound > max_) bound = max_;
      if (bound < min_) bound = min_;
      return bound;
    }
  }
  return max_;
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_;
  snapshot.sum = sum_;
  snapshot.min = count_ == 0 ? 0.0 : min_;
  snapshot.max = count_ == 0 ? 0.0 : max_;
  snapshot.p50 = ValueAtPercentile(50.0);
  snapshot.p90 = ValueAtPercentile(90.0);
  snapshot.p95 = ValueAtPercentile(95.0);
  snapshot.p99 = ValueAtPercentile(99.0);
  return snapshot;
}

void HistogramMetric::Record(double value) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Record(value);
}

void HistogramMetric::MergeFrom(const Histogram& shard) {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Merge(shard);
}

Histogram HistogramMetric::Value() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histogram_;
}

void HistogramMetric::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  histogram_.Reset();
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

HistogramMetric* MetricRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<HistogramMetric>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<HistogramMetric>();
  return slot.get();
}

MetricsSnapshot MetricRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->Value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->Value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace_back(name, histogram->Value().Snapshot());
  }
  return snapshot;
}

MetricsCapture MetricRegistry::CaptureRaw() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsCapture capture;
  capture.at = std::chrono::steady_clock::now();
  capture.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    capture.counters.emplace_back(name, counter->Value());
  }
  capture.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    capture.histograms.emplace_back(name, histogram->Value());
  }
  return capture;
}

void MetricRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, histogram] : histograms_) histogram->Reset();
}

void MergeShards(const std::vector<Histogram>& shards,
                 HistogramMetric* target) {
  STINDEX_CHECK(target != nullptr);
  for (const Histogram& shard : shards) target->MergeFrom(shard);
}

MetricsWindow::MetricsWindow(size_t epochs, MetricRegistry* registry)
    : registry_(registry), capacity_(epochs == 0 ? 1 : epochs) {
  STINDEX_CHECK(registry_ != nullptr);
}

void MetricsWindow::Advance() {
  MetricsCapture capture = registry_->CaptureRaw();
  std::lock_guard<std::mutex> lock(mu_);
  captures_.push_back(std::move(capture));
  if (captures_.size() > capacity_ + 1) {
    captures_.erase(captures_.begin());
  }
}

WindowedMetricsSnapshot MetricsWindow::WindowSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  WindowedMetricsSnapshot out;
  if (captures_.size() < 2) return out;
  const MetricsCapture& oldest = captures_.front();
  const MetricsCapture& newest = captures_.back();
  out.epochs = captures_.size() - 1;
  out.seconds =
      std::chrono::duration<double>(newest.at - oldest.at).count();
  const double seconds = out.seconds > 0.0 ? out.seconds : 1.0;

  // Both captures are sorted by name; metrics only ever get added, so a
  // name in `oldest` is always present in `newest`. Walk them together,
  // diffing against zero (counters) / empty (histograms) for metrics
  // born after the window opened.
  size_t old_index = 0;
  out.counter_rates.reserve(newest.counters.size());
  for (const auto& [name, value] : newest.counters) {
    uint64_t base = 0;
    while (old_index < oldest.counters.size() &&
           oldest.counters[old_index].first < name) {
      ++old_index;
    }
    if (old_index < oldest.counters.size() &&
        oldest.counters[old_index].first == name) {
      base = oldest.counters[old_index].second;
    }
    // ResetForTest can run mid-window; treat a backwards counter as
    // freshly born rather than producing a negative rate.
    const uint64_t delta = value >= base ? value - base : value;
    out.counter_rates.emplace_back(name,
                                   static_cast<double>(delta) / seconds);
  }
  old_index = 0;
  static const Histogram kEmpty;
  out.histograms.reserve(newest.histograms.size());
  for (const auto& [name, histogram] : newest.histograms) {
    const Histogram* base = &kEmpty;
    while (old_index < oldest.histograms.size() &&
           oldest.histograms[old_index].first < name) {
      ++old_index;
    }
    if (old_index < oldest.histograms.size() &&
        oldest.histograms[old_index].first == name &&
        histogram.Count() >= oldest.histograms[old_index].second.Count()) {
      base = &oldest.histograms[old_index].second;
    }
    out.histograms.emplace_back(name,
                                histogram.DeltaSince(*base).Snapshot());
  }
  return out;
}

ScopedTimer::ScopedTimer(const std::string& histogram_name)
    : histogram_(MetricRegistry::Global().GetHistogram(histogram_name)),
      start_(std::chrono::steady_clock::now()) {}

ScopedTimer::~ScopedTimer() {
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start_;
  histogram_->Record(elapsed.count());
}

}  // namespace stindex
