#ifndef STINDEX_UTIL_METRICS_H_
#define STINDEX_UTIL_METRICS_H_

// Lightweight process-wide metrics: named counters, gauges and
// fixed-log-bucket latency histograms, registered in a global
// MetricRegistry and snapshotted in sorted name order so every rendering
// (bench reports, the CLI --stats dump) is deterministic.
//
// Determinism contract. All instrumentation in this library must keep
// instrumented runs byte-identical at any thread count:
//
//  * Counter/Gauge hold integers; additions commute, so concurrent
//    updates from the deterministic chunked ParallelFor produce the same
//    totals regardless of scheduling.
//  * Histogram sums doubles, so update ORDER matters. Parallel code must
//    not Record() into a shared histogram from workers; instead each
//    chunk records into its own Histogram value (a "shard") and the
//    shards are merged in ascending chunk index order (MergeShards), the
//    same order the serial path would have produced.
//
// Metrics are cheap (an atomic add) but not free; instrument phase
// boundaries and structural events, not per-entry inner loops.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace stindex {

// Monotone event count (node splits, buffer misses, ...).
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written level (tree height, live pages). SetMax ratchets, for
// peaks.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void SetMax(int64_t value) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (value > current &&
           !value_.compare_exchange_weak(current, value,
                                         std::memory_order_relaxed)) {
    }
  }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Point-in-time rendering of a histogram.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// A fixed-log-bucket histogram VALUE (not thread-safe): bucket i covers
// (2^(i-21), 2^(i-20)], i.e. boundaries double per bucket from ~1e-6 up
// to ~8.8e12, covering sub-microsecond to multi-hour readings whether the
// unit is seconds or milliseconds. Percentiles report the upper bound of
// the bucket holding the requested rank (clamped to the exact max), so
// they are accurate to one bucket width (a factor of two).
//
// Used both standalone as a per-chunk shard (see MergeShards) and as the
// payload of a registry HistogramMetric.
class Histogram {
 public:
  static constexpr size_t kBucketCount = 64;

  void Record(double value);
  // Adds `other`'s buckets, count and sum into this histogram. Merging
  // shards in ascending chunk order keeps the double sum deterministic.
  void Merge(const Histogram& other);
  void Reset() { *this = Histogram(); }

  // The readings recorded into this histogram since `earlier` was a copy
  // of it (bucket-wise subtraction; `earlier` must be an older capture of
  // the SAME histogram, checked via monotone counts). The delta's min and
  // max are bucket-accurate — recovered from the first and last non-empty
  // delta bucket, clamped to the cumulative extremes — matching the
  // one-bucket accuracy of every percentile. This is what turns periodic
  // cumulative captures into sliding-window percentiles (MetricsWindow).
  Histogram DeltaSince(const Histogram& earlier) const;

  uint64_t Count() const { return count_; }
  double Sum() const { return sum_; }
  // Upper bound of bucket i (the value BucketIndex maps to i or below).
  static double BucketUpperBound(size_t index);
  static size_t BucketIndex(double value);

  // The value at percentile p, p in [0, 100]: the upper bound of the
  // bucket holding rank ceil(p/100 * count) (bucket-accurate, one bucket
  // width = a factor of two), clamped to the recorded extremes — so the
  // result is EXACT at p=0 (the minimum), at p=100 (the maximum), and
  // for single-sample histograms. Returns 0 for an empty histogram.
  double ValueAtPercentile(double p) const;
  // Deprecated spelling of ValueAtPercentile.
  double Percentile(double p) const { return ValueAtPercentile(p); }

  HistogramSnapshot Snapshot() const;

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// A registry-owned histogram: a Histogram behind a mutex so Record and
// MergeFrom may be called from any thread (but see the determinism
// contract above — parallel phases merge shards in chunk order instead
// of recording concurrently).
class HistogramMetric {
 public:
  void Record(double value);
  void MergeFrom(const Histogram& shard);
  Histogram Value() const;
  void Reset();

 private:
  mutable std::mutex mu_;
  Histogram histogram_;
};

// Everything the registry holds, names sorted ascending within each kind.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// A raw registry capture: counter values plus full bucket-level
// histogram copies (not percentile summaries), in sorted name order.
// This is the epoch payload of MetricsWindow — diffing two captures of a
// monotone registry yields exact windowed counts and bucket-exact
// windowed percentiles.
struct MetricsCapture {
  std::chrono::steady_clock::time_point at;
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, Histogram>> histograms;
};

// Name -> metric map. Get* registers on first use and returns a pointer
// that stays valid for the process lifetime (ResetForTest zeroes values,
// it never removes metrics). Thread-safe.
class MetricRegistry {
 public:
  static MetricRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  HistogramMetric* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  MetricsCapture CaptureRaw() const;
  // Zeroes every registered metric (pointers stay valid).
  void ResetForTest();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<HistogramMetric>> histograms_;
};

// Merges per-chunk shards into `target` in ascending chunk index order —
// the deterministic reduction every parallel phase must use.
void MergeShards(const std::vector<Histogram>& shards,
                 HistogramMetric* target);

// What a MetricsWindow covers right now: per-counter increase rates and
// bucket-exact sliding-window histograms over the captured interval.
struct WindowedMetricsSnapshot {
  // Wall seconds between the oldest and newest retained epoch (0 until
  // at least two epochs exist — a window needs two boundaries).
  double seconds = 0.0;
  // Epoch intervals the window currently spans.
  size_t epochs = 0;
  // Counter increase per second over the window, sorted by name.
  // Counters born mid-window diff against zero.
  std::vector<std::pair<std::string, double>> counter_rates;
  // Readings recorded during the window only, sorted by name.
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;
};

// A sliding window over the cumulative registry. Advance() captures the
// registry's raw state (counter values, bucket-level histograms) as the
// newest epoch of a fixed ring; WindowSnapshot() diffs the newest
// capture against the oldest retained one, yielding rolling rates and
// window-local p50/p95/p99 alongside — never instead of — the cumulative
// series.
//
// Determinism story: the window only READS cumulative state on a
// publisher thread's cadence; the Record() paths are untouched and no
// window exists outside the server/soak paths, so instrumented bench
// runs stay byte-identical whether or not this class is ever linked in.
class MetricsWindow {
 public:
  // The window spans up to `epochs` advance intervals (>= 1): the ring
  // retains epochs+1 boundary captures. With the exposition server's
  // default 2 s cadence, 15 epochs give a rolling 30 s window.
  explicit MetricsWindow(size_t epochs = 15,
                         MetricRegistry* registry = &MetricRegistry::Global());

  // Captures the registry now as the newest epoch boundary, dropping the
  // oldest once the ring is full. Thread-safe; called by the exposition
  // server's publisher loop (or a soak driver) every interval.
  void Advance();

  WindowedMetricsSnapshot WindowSnapshot() const;

  size_t max_epochs() const { return capacity_; }

 private:
  MetricRegistry* registry_;
  size_t capacity_;  // epoch intervals, ring holds capacity_+1 captures
  mutable std::mutex mu_;
  std::vector<MetricsCapture> captures_;  // oldest first
};

// Records the wall-clock seconds between construction and destruction
// into the named registry histogram (the pipeline phase timers). Wall
// times are inherently run-to-run noise; they live only in histograms,
// never in outputs required to be byte-identical across thread counts.
class ScopedTimer {
 public:
  explicit ScopedTimer(const std::string& histogram_name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  HistogramMetric* histogram_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace stindex

#endif  // STINDEX_UTIL_METRICS_H_
