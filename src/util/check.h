#ifndef STINDEX_UTIL_CHECK_H_
#define STINDEX_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Invariant checking macros. The library does not use exceptions; broken
// invariants indicate programming errors and abort with a diagnostic.
//
// STINDEX_CHECK is always on (cheap comparisons on hot paths are factored
// so that release builds keep correctness checks at negligible cost).
// STINDEX_DCHECK compiles away in NDEBUG builds and may guard expensive
// validation.

#define STINDEX_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "STINDEX_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define STINDEX_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "STINDEX_CHECK failed at %s:%d: %s (%s)\n",       \
                   __FILE__, __LINE__, #cond, msg);                          \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define STINDEX_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define STINDEX_DCHECK(cond) STINDEX_CHECK(cond)
#endif

#endif  // STINDEX_UTIL_CHECK_H_
