#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

#include "util/check.h"

namespace stindex {

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    STINDEX_CHECK_MSG(!done_, "second top-level JSON value");
    done_ = true;  // containers stay "open" until their matching End*
    return;
  }
  if (stack_.back() == Scope::kArray) {
    STINDEX_CHECK_MSG(!key_pending_, "Key() inside an array");
    if (counts_.back() > 0) out_ += ',';
    out_ += '\n';
    Indent();
  } else {
    STINDEX_CHECK_MSG(key_pending_, "object value without a Key()");
    key_pending_ = false;
  }
  ++counts_.back();
}

void JsonWriter::AppendEscaped(const std::string& text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  STINDEX_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "EndObject without matching BeginObject");
  STINDEX_CHECK_MSG(!key_pending_, "dangling Key() at EndObject");
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  counts_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  STINDEX_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kArray,
                    "EndArray without matching BeginArray");
  const bool empty = counts_.back() == 0;
  stack_.pop_back();
  counts_.pop_back();
  if (!empty) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  STINDEX_CHECK_MSG(!stack_.empty() && stack_.back() == Scope::kObject,
                    "Key() outside an object");
  STINDEX_CHECK_MSG(!key_pending_, "two Key() calls in a row");
  if (counts_.back() > 0) out_ += ',';
  out_ += '\n';
  Indent();
  AppendEscaped(name);
  out_ += ": ";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  AppendEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

const std::string& JsonWriter::str() const {
  STINDEX_CHECK_MSG(stack_.empty() && done_,
                    "str() on an unfinished JSON document");
  return out_;
}

}  // namespace stindex
