#ifndef STINDEX_UTIL_BYTES_H_
#define STINDEX_UTIL_BYTES_H_

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace stindex {

// A growable little-endian byte stream for variable-length state
// serialization (the live tier's checkpoint metadata). PageWriter /
// PageReader cover the fixed-size single-page case; ByteSink / ByteSource
// cover state whose size is unknown up front and which is later chunked
// across pages by the caller.
class ByteSink {
 public:
  template <typename T>
  void Write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteSink::Write requires a trivially copyable type");
    WriteBytes(&value, sizeof(T));
  }

  void WriteBytes(const void* data, size_t size) {
    const size_t offset = bytes_.size();
    bytes_.resize(offset + size);
    std::memcpy(bytes_.data() + offset, data, size);
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

 private:
  std::vector<uint8_t> bytes_;
};

// Reader over a borrowed byte range; every Read reports truncation
// instead of walking off the end.
class ByteSource {
 public:
  ByteSource(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool Read(T* out) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "ByteSource::Read requires a trivially copyable type");
    return ReadBytes(out, sizeof(T));
  }

  bool ReadBytes(void* out, size_t size) {
    if (size_ - offset_ < size) return false;
    std::memcpy(out, data_ + offset_, size);
    offset_ += size;
    return true;
  }

  size_t remaining() const { return size_ - offset_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t offset_ = 0;
};

}  // namespace stindex

#endif  // STINDEX_UTIL_BYTES_H_
