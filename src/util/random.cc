#include "util/random.h"

#include <cmath>

namespace stindex {
namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

uint64_t Rng::DeriveSeed(uint64_t base_seed, uint64_t stream) {
  // Mix(Mix(base) ^ Mix(stream + 1)); see the header for the rationale.
  uint64_t base = base_seed;
  uint64_t offset_stream = stream + 1;
  uint64_t combined = SplitMix64(base) ^ SplitMix64(offset_stream);
  return SplitMix64(combined);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  STINDEX_CHECK(lo <= hi);
  const uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % range);
}

double Rng::NextDouble() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  STINDEX_CHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; u1 in (0, 1] to keep the log finite.
  const double u1 = 1.0 - NextDouble();
  const double u2 = NextDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
  return mean + stddev * z;
}

}  // namespace stindex
