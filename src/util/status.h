#ifndef STINDEX_UTIL_STATUS_H_
#define STINDEX_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace stindex {

// Error category for operations that can fail at runtime (bad arguments,
// malformed datasets, capacity limits). Programming errors use
// STINDEX_CHECK instead.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kFailedPrecondition,
  kIoError,
};

// A lightweight Status carrying a code and a message. The library does not
// throw; fallible public entry points return Status or Result<T>.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable one-line rendering, e.g. "InvalidArgument: k < 0".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Result<T> is either a value or an error Status. Access to the value of a
// failed result is a checked programming error.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    STINDEX_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    STINDEX_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T& value() & {
    STINDEX_CHECK_MSG(ok(), status_.ToString().c_str());
    return value_;
  }
  T&& value() && {
    STINDEX_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(value_);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace stindex

#endif  // STINDEX_UTIL_STATUS_H_
