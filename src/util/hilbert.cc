#include "util/hilbert.h"

#include "util/check.h"

namespace stindex {

uint64_t HilbertIndex3D(uint32_t x, uint32_t y, uint32_t z, int bits) {
  STINDEX_CHECK(bits >= 1 && bits <= 21);
  uint32_t coords[3] = {x, y, z};

  // Skilling's algorithm: convert coordinates in place to the transposed
  // Hilbert index, then interleave.
  const uint32_t top = 1u << (bits - 1);
  // Inverse undo excess work.
  for (uint32_t q = top; q > 1; q >>= 1) {
    const uint32_t p = q - 1;
    for (int i = 0; i < 3; ++i) {
      if (coords[i] & q) {
        coords[0] ^= p;  // invert
      } else {
        const uint32_t t = (coords[0] ^ coords[i]) & p;
        coords[0] ^= t;
        coords[i] ^= t;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < 3; ++i) coords[i] ^= coords[i - 1];
  uint32_t t = 0;
  for (uint32_t q = top; q > 1; q >>= 1) {
    if (coords[2] & q) t ^= q - 1;
  }
  for (int i = 0; i < 3; ++i) coords[i] ^= t;

  // Interleave the transposed bits: bit b of coords[i] becomes bit
  // (3*b + 2 - i) of the index.
  uint64_t index = 0;
  for (int b = bits - 1; b >= 0; --b) {
    for (int i = 0; i < 3; ++i) {
      index = (index << 1) |
              ((coords[i] >> static_cast<uint32_t>(b)) & 1u);
    }
  }
  return index;
}

}  // namespace stindex
