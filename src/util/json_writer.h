#ifndef STINDEX_UTIL_JSON_WRITER_H_
#define STINDEX_UTIL_JSON_WRITER_H_

// A minimal streaming JSON writer for the structured bench reports and
// the CLI --stats dump. No reading, no DOM: callers emit a document in
// order and take the string. Output is pretty-printed with 2-space
// indentation and stable field order (whatever order the caller wrote),
// so reports diff cleanly.
//
// The writer checks nesting with STINDEX_CHECK: a value outside an array
// needs a preceding Key(), EndObject must match BeginObject, and exactly
// one top-level value is allowed.

#include <cstdint>
#include <string>
#include <vector>

namespace stindex {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Emits the member name; must be followed by exactly one value (or
  // container) and is only legal directly inside an object.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  // %.17g (shortest round-trip-safe form); NaN and infinities become null
  // since JSON cannot represent them.
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // The finished document. Checks that all containers were closed.
  const std::string& str() const;

 private:
  enum class Scope { kObject, kArray };

  void BeforeValue();  // separators, indentation, key bookkeeping
  void Indent();
  void AppendEscaped(const std::string& text);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<size_t> counts_;  // values emitted in each open scope
  bool key_pending_ = false;
  bool done_ = false;  // a complete top-level value was written
};

}  // namespace stindex

#endif  // STINDEX_UTIL_JSON_WRITER_H_
