#ifndef STINDEX_UTIL_STOPWATCH_H_
#define STINDEX_UTIL_STOPWATCH_H_

#include <chrono>

namespace stindex {

// Wall-clock stopwatch for the CPU-time experiments (Figures 11 and 13).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace stindex

#endif  // STINDEX_UTIL_STOPWATCH_H_
