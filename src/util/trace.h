#ifndef STINDEX_UTIL_TRACE_H_
#define STINDEX_UTIL_TRACE_H_

// Process-wide span tracing: who spent time where, on which thread.
//
// Instrumentation sites declare RAII spans:
//
//   STINDEX_TRACE_SPAN("rstar", "search");            // common case
//   TraceSpan span("storage", "fetch_miss");          // when args are needed
//   span.Arg("page", static_cast<int64_t>(id));
//
// Spans are recorded into fixed-capacity per-thread ring buffers
// (drop-oldest on overflow; drops are counted in the
// `trace.dropped_events` registry counter). A TraceSession owns one
// capture: Start() arms the process-wide enabled flag, Stop() disarms it
// and drains every thread buffer; ExportChromeTrace() renders the
// capture as Chrome trace-event JSON, loadable in chrome://tracing and
// Perfetto (ui.perfetto.dev), with counter tracks sampled from the
// MetricRegistry at session start and stop.
//
// Cost contract (same spirit as util/metrics.h):
//
//  * Disabled (the default), a span is ONE relaxed atomic load — no
//    allocation, no branch beyond the check — so permanently
//    instrumented hot paths stay free in production runs.
//  * Enabled, an event write is a couple of atomic flag stores plus a
//    struct copy into the calling thread's own ring; threads never
//    contend with each other. Only Stop() synchronizes with writers
//    (a seq-cst enabled/writing handshake per buffer), so enabling
//    tracing cannot change any computed output: instrumented runs stay
//    byte-identical at any thread count (pinned by
//    tests/parallel_pipeline_test.cc).
//
// Category/name must be string literals (static storage): events store
// the pointers, not copies. Argument string values ARE copied (and
// truncated) into a small inline buffer.

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace stindex {

namespace trace_internal {
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

// The single-branch off-path check; relaxed is enough because a stale
// read only delays the first/last events of a capture by one event.
inline bool TracingActive() {
  return trace_internal::g_enabled.load(std::memory_order_relaxed);
}

// One recorded event. Phases follow the Chrome trace-event format:
// 'B'egin / 'E'nd duration pairs, 'C'ounter samples.
struct TraceEvent {
  struct Arg {
    enum class Kind : uint8_t { kNone, kInt, kDouble, kString };
    const char* key = nullptr;  // string literal
    Kind kind = Kind::kNone;
    int64_t int_value = 0;
    double double_value = 0.0;
    char string_value[24] = {0};  // truncated copy
  };
  static constexpr int kMaxArgs = 2;

  char phase = 'B';
  uint32_t tid = 0;      // session-assigned, dense from 1
  uint64_t ts_ns = 0;    // nanoseconds since session start
  const char* category = nullptr;  // string literal
  const char* name = nullptr;      // string literal
  uint32_t num_args = 0;
  Arg args[kMaxArgs];
};

// RAII span: emits 'B' at construction and 'E' at destruction. Args
// added between the two ride on the 'E' event (Chrome merges B/E args
// when displaying a duration). Inactive instances (tracing disabled at
// construction) ignore everything.
class TraceSpan {
 public:
  TraceSpan(const char* category, const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  TraceSpan& Arg(const char* key, int64_t value);
  TraceSpan& Arg(const char* key, uint64_t value);
  TraceSpan& Arg(const char* key, double value);
  TraceSpan& Arg(const char* key, const char* value);

 private:
  bool active_ = false;
  const char* category_ = nullptr;
  const char* name_ = nullptr;
  uint32_t num_args_ = 0;
  TraceEvent::Arg args_[TraceEvent::kMaxArgs];
};

#define STINDEX_TRACE_CONCAT_INNER(a, b) a##b
#define STINDEX_TRACE_CONCAT(a, b) STINDEX_TRACE_CONCAT_INNER(a, b)
// Declares an anonymous span covering the rest of the enclosing scope.
#define STINDEX_TRACE_SPAN(category, name)                               \
  ::stindex::TraceSpan STINDEX_TRACE_CONCAT(stindex_trace_span_,         \
                                            __LINE__)((category), (name))

struct TraceSessionConfig {
  // Ring capacity per thread, in events; rounded up to a power of two.
  // A span is two events. When a thread records more than this between
  // Start and Stop, the oldest events are overwritten (drop-oldest) and
  // counted in `trace.dropped_events`.
  size_t events_per_thread = 1 << 16;
};

// The process-wide capture. Static interface: at most one session is
// active at a time (Start while active is a checked error).
class TraceSession {
 public:
  static void Start(const TraceSessionConfig& config = TraceSessionConfig());
  // Disarms tracing, waits out in-flight writers, and drains every
  // thread ring into the collected-event list. Idempotent per capture.
  static void Stop();
  static bool IsActive();

  // After Stop: the drained events, per-thread chronological order
  // concatenated in thread-registration order, and the total number of
  // events the rings overwrote.
  static const std::vector<TraceEvent>& CollectedEvents();
  static uint64_t DroppedEvents();

  // Chrome trace-event JSON of the collected capture: duration events
  // per thread plus 'C' counter tracks holding every registry counter
  // and gauge sampled at session start and stop. Call after Stop.
  static std::string ExportChromeTrace();
  static Status WriteChromeTrace(const std::string& path);
};

}  // namespace stindex

#endif  // STINDEX_UTIL_TRACE_H_
