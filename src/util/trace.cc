#include "util/trace.h"

#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include <fstream>

#include "util/check.h"
#include "util/json_writer.h"
#include "util/metrics.h"

namespace stindex {

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

namespace {

// One thread's event ring. The owning thread is the only writer; the
// draining session reads it only after the enabled/writing handshake in
// Drain() proved no write is in flight (and none can start, since
// writers re-check g_enabled after raising `writing`). Buffers are
// registered once per thread and live for the process lifetime, so a
// worker that outlives several sessions keeps its slot and a thread
// that exits leaves its last capture readable.
struct ThreadBuffer {
  explicit ThreadBuffer(uint32_t tid) : tid(tid) {}

  const uint32_t tid;
  std::atomic<bool> writing{false};
  std::atomic<uint64_t> head{0};  // events ever written this session
  size_t capacity = 0;            // power of two; 0 = ring not sized yet
  std::unique_ptr<TraceEvent[]> events;
};

struct TraceGlobals {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;
  size_t ring_capacity = 1 << 16;  // active session's per-thread capacity
  std::chrono::steady_clock::time_point session_start;
  bool stopped = true;
  std::vector<TraceEvent> collected;
  uint64_t dropped = 0;
  MetricsSnapshot start_sample;
  MetricsSnapshot stop_sample;
  uint64_t stop_ts_ns = 0;
};

TraceGlobals& Globals() {
  static TraceGlobals* globals = new TraceGlobals();
  return *globals;
}

thread_local ThreadBuffer* tls_buffer = nullptr;

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Registers (or resizes) the calling thread's ring. Called with tracing
// enabled, outside the writing-flag window, so Drain cannot be reading
// the ring it replaces.
ThreadBuffer* RegisterThisThread() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  if (tls_buffer == nullptr) {
    const uint32_t tid = static_cast<uint32_t>(globals.buffers.size()) + 1;
    globals.buffers.push_back(std::make_unique<ThreadBuffer>(tid));
    tls_buffer = globals.buffers.back().get();
  }
  if (tls_buffer->capacity != globals.ring_capacity) {
    tls_buffer->capacity = globals.ring_capacity;
    tls_buffer->events = std::make_unique<TraceEvent[]>(tls_buffer->capacity);
  }
  return tls_buffer;
}

uint64_t NowNs() {
  const auto elapsed =
      std::chrono::steady_clock::now() - Globals().session_start;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
}

// Writer side of the drain handshake. `writing` is raised BEFORE the
// enabled re-check: in the seq-cst total order either this write sees
// enabled==false and bails, or Stop()'s drain sees writing==true and
// waits for the release-store below — either way the ring is never read
// and written concurrently.
void Emit(const TraceEvent& event) {
  ThreadBuffer* buffer = tls_buffer;
  if (buffer == nullptr || buffer->capacity != Globals().ring_capacity) {
    buffer = RegisterThisThread();
  }
  buffer->writing.store(true, std::memory_order_seq_cst);
  if (!trace_internal::g_enabled.load(std::memory_order_seq_cst)) {
    buffer->writing.store(false, std::memory_order_relaxed);
    return;
  }
  const uint64_t head = buffer->head.load(std::memory_order_relaxed);
  buffer->events[head & (buffer->capacity - 1)] = event;
  buffer->events[head & (buffer->capacity - 1)].tid = buffer->tid;
  buffer->head.store(head + 1, std::memory_order_relaxed);
  buffer->writing.store(false, std::memory_order_release);
}

void AppendArgJson(JsonWriter& json, const TraceEvent::Arg& arg) {
  json.Key(arg.key);
  switch (arg.kind) {
    case TraceEvent::Arg::Kind::kInt:
      json.Int(arg.int_value);
      break;
    case TraceEvent::Arg::Kind::kDouble:
      json.Double(arg.double_value);
      break;
    case TraceEvent::Arg::Kind::kString:
      json.String(arg.string_value);
      break;
    case TraceEvent::Arg::Kind::kNone:
      json.Null();
      break;
  }
}

// One counter-track sample ('C' event) per registry counter/gauge, at
// the given session-relative timestamp. pid/tid 0 keeps the tracks out
// of the per-thread lanes.
void AppendCounterSamples(JsonWriter& json, const MetricsSnapshot& sample,
                          uint64_t ts_ns) {
  const double ts_us = static_cast<double>(ts_ns) / 1000.0;
  for (const auto& [name, value] : sample.counters) {
    json.BeginObject()
        .Key("ph").String("C")
        .Key("ts").Double(ts_us)
        .Key("pid").Int(1)
        .Key("tid").Int(0)
        .Key("name").String(name)
        .Key("args").BeginObject().Key("value").Uint(value).EndObject()
        .EndObject();
  }
  for (const auto& [name, value] : sample.gauges) {
    json.BeginObject()
        .Key("ph").String("C")
        .Key("ts").Double(ts_us)
        .Key("pid").Int(1)
        .Key("tid").Int(0)
        .Key("name").String(name)
        .Key("args").BeginObject().Key("value").Int(value).EndObject()
        .EndObject();
  }
}

}  // namespace

TraceSpan::TraceSpan(const char* category, const char* name) {
  if (!TracingActive()) return;
  active_ = true;
  category_ = category;
  name_ = name;
  TraceEvent event;
  event.phase = 'B';
  event.ts_ns = NowNs();
  event.category = category;
  event.name = name;
  Emit(event);
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceEvent event;
  event.phase = 'E';
  event.ts_ns = NowNs();
  event.category = category_;
  event.name = name_;
  event.num_args = num_args_;
  for (uint32_t i = 0; i < num_args_; ++i) event.args[i] = args_[i];
  Emit(event);
}

TraceSpan& TraceSpan::Arg(const char* key, int64_t value) {
  if (!active_ || num_args_ >= TraceEvent::kMaxArgs) return *this;
  args_[num_args_].key = key;
  args_[num_args_].kind = TraceEvent::Arg::Kind::kInt;
  args_[num_args_].int_value = value;
  ++num_args_;
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, uint64_t value) {
  return Arg(key, static_cast<int64_t>(value));
}

TraceSpan& TraceSpan::Arg(const char* key, double value) {
  if (!active_ || num_args_ >= TraceEvent::kMaxArgs) return *this;
  args_[num_args_].key = key;
  args_[num_args_].kind = TraceEvent::Arg::Kind::kDouble;
  args_[num_args_].double_value = value;
  ++num_args_;
  return *this;
}

TraceSpan& TraceSpan::Arg(const char* key, const char* value) {
  if (!active_ || num_args_ >= TraceEvent::kMaxArgs) return *this;
  args_[num_args_].key = key;
  args_[num_args_].kind = TraceEvent::Arg::Kind::kString;
  std::strncpy(args_[num_args_].string_value, value,
               sizeof(args_[num_args_].string_value) - 1);
  args_[num_args_].string_value[sizeof(args_[num_args_].string_value) - 1] =
      '\0';
  ++num_args_;
  return *this;
}

void TraceSession::Start(const TraceSessionConfig& config) {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  STINDEX_CHECK_MSG(!trace_internal::g_enabled.load(),
                    "TraceSession::Start while a session is active");
  STINDEX_CHECK(config.events_per_thread > 0);
  globals.ring_capacity = RoundUpPow2(config.events_per_thread);
  // Tracing is off, so no writer touches heads/rings here; pre-existing
  // buffers are resized lazily by their owning thread's first event.
  for (auto& buffer : globals.buffers) {
    buffer->head.store(0, std::memory_order_relaxed);
  }
  globals.collected.clear();
  globals.dropped = 0;
  globals.stopped = false;
  globals.session_start = std::chrono::steady_clock::now();
  globals.start_sample = MetricRegistry::Global().Snapshot();
  trace_internal::g_enabled.store(true, std::memory_order_seq_cst);
}

void TraceSession::Stop() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  if (globals.stopped) return;
  globals.stopped = true;
  globals.stop_ts_ns = NowNs();
  trace_internal::g_enabled.store(false, std::memory_order_seq_cst);
  for (auto& buffer : globals.buffers) {
    // Drain handshake: once `writing` reads false (acquire) after the
    // seq-cst disable above, every write to this ring happened-before
    // this point and no new one can start.
    while (buffer->writing.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    if (buffer->capacity == 0) continue;
    const uint64_t head = buffer->head.load(std::memory_order_relaxed);
    const uint64_t kept =
        head < buffer->capacity ? head : static_cast<uint64_t>(buffer->capacity);
    globals.dropped += head - kept;
    for (uint64_t i = head - kept; i < head; ++i) {
      globals.collected.push_back(
          buffer->events[i & (buffer->capacity - 1)]);
    }
  }
  globals.stop_sample = MetricRegistry::Global().Snapshot();
  if (globals.dropped > 0) {
    MetricRegistry::Global()
        .GetCounter("trace.dropped_events")
        ->Add(globals.dropped);
  }
}

bool TraceSession::IsActive() {
  return trace_internal::g_enabled.load(std::memory_order_seq_cst);
}

const std::vector<TraceEvent>& TraceSession::CollectedEvents() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  STINDEX_CHECK_MSG(globals.stopped,
                    "TraceSession::CollectedEvents before Stop");
  return globals.collected;
}

uint64_t TraceSession::DroppedEvents() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  return globals.dropped;
}

std::string TraceSession::ExportChromeTrace() {
  TraceGlobals& globals = Globals();
  std::lock_guard<std::mutex> lock(globals.mu);
  STINDEX_CHECK_MSG(globals.stopped,
                    "TraceSession::ExportChromeTrace before Stop");
  JsonWriter json;
  json.BeginObject();
  json.Key("displayTimeUnit").String("ms");
  json.Key("otherData")
      .BeginObject()
      .Key("tool").String("stindex")
      .Key("dropped_events").Uint(globals.dropped)
      .EndObject();
  json.Key("traceEvents").BeginArray();
  for (const TraceEvent& event : globals.collected) {
    json.BeginObject()
        .Key("ph").String(std::string(1, event.phase))
        .Key("ts").Double(static_cast<double>(event.ts_ns) / 1000.0)
        .Key("pid").Int(1)
        .Key("tid").Uint(event.tid)
        .Key("cat").String(event.category)
        .Key("name").String(event.name);
    json.Key("args").BeginObject();
    for (uint32_t i = 0; i < event.num_args; ++i) {
      AppendArgJson(json, event.args[i]);
    }
    json.EndObject();
    json.EndObject();
  }
  AppendCounterSamples(json, globals.start_sample, 0);
  AppendCounterSamples(json, globals.stop_sample, globals.stop_ts_ns);
  json.EndArray();
  json.EndObject();
  return json.str();
}

Status TraceSession::WriteChromeTrace(const std::string& path) {
  const std::string document = ExportChromeTrace();
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open trace file for writing: " + path);
  }
  out << document << "\n";
  if (!out.good()) {
    return Status::IoError("write to trace file failed: " + path);
  }
  return Status::OK();
}

}  // namespace stindex
