#ifndef STINDEX_UTIL_HILBERT_H_
#define STINDEX_UTIL_HILBERT_H_

#include <cstdint>

namespace stindex {

// Maps a 3-D point with `bits`-bit coordinates to its index on the 3-D
// Hilbert space-filling curve (Skilling's transpose algorithm). Used for
// Hilbert-packed R-tree bulk loading [Kamel & Faloutsos]. bits <= 21 so
// the index fits in 63 bits.
uint64_t HilbertIndex3D(uint32_t x, uint32_t y, uint32_t z, int bits);

}  // namespace stindex

#endif  // STINDEX_UTIL_HILBERT_H_
