#ifndef STINDEX_UTIL_HTTP_EXPOSITION_H_
#define STINDEX_UTIL_HTTP_EXPOSITION_H_

// A small dependency-free HTTP/1.1 exposition server: the live telemetry
// plane of a long-running stindex process. One dedicated thread accepts
// loopback connections and serves
//
//   /metrics   Prometheus text exposition (util/prom_writer.h): the full
//              cumulative registry plus the sliding-window companion
//              series (<name>_rate gauges, <name>_window summaries with
//              rolling p50/p95/p99) of the server-owned MetricsWindow.
//   /healthz   200 "ok" while the installed health check passes, 503
//              with the check's detail once it fails (e.g. the live tier
//              latched on a WAL I/O error).
//   /statusz   one JSON object (util/json_writer.h): uptime, build info,
//              scrape/window bookkeeping, trace.dropped_events, plus
//              whatever the installed status source appends (the server
//              driver wires in WAL/checkpoint/pool/live-tier state).
//
// The accept loop doubles as the window publisher: every
// `epoch_seconds` it advances the MetricsWindow, so windowed series
// exist exactly while a server (or soak driver) runs — bench paths never
// construct one, keeping instrumented runs byte-identical (the
// determinism contract of util/metrics.h).
//
// Requests are handled serially on the server thread — scrapes are rare
// and tiny — but any number of clients may connect concurrently; pending
// connections queue in the listen backlog. Handlers only read registry
// snapshots and call the installed callbacks, both of which must be
// thread-safe against the serving process's worker threads.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "util/json_writer.h"
#include "util/metrics.h"
#include "util/status.h"

namespace stindex {

struct HttpExpositionOptions {
  // TCP port to bind; 0 asks the kernel for an ephemeral port (read it
  // back from port() — the test and script path).
  uint16_t port = 0;
  // Loopback by default: the telemetry plane is for a local scraper or
  // an ssh tunnel, not the open network.
  std::string bind_address = "127.0.0.1";
  // Cadence of the window publisher and span of the sliding window:
  // every epoch_seconds the server advances the window, which covers the
  // last window_epochs advances (default 15 x 2 s = rolling 30 s).
  double epoch_seconds = 2.0;
  size_t window_epochs = 15;
};

class HttpExpositionServer {
 public:
  // Returns false for unhealthy; an explanation may be appended to
  // `detail` either way. Called per /healthz request, so it must be
  // cheap and thread-safe.
  using HealthCheck = std::function<bool(std::string* detail)>;
  // Appends key/value members to the open /statusz JSON object (the
  // server owns BeginObject/EndObject and its own standard fields).
  using StatusSource = std::function<void(JsonWriter* json)>;

  explicit HttpExpositionServer(HttpExpositionOptions options = {});
  ~HttpExpositionServer();  // stops and joins if still running

  HttpExpositionServer(const HttpExpositionServer&) = delete;
  HttpExpositionServer& operator=(const HttpExpositionServer&) = delete;

  // Installs the callbacks. Only legal before Start(); without them
  // /healthz always reports healthy and /statusz carries the standard
  // fields only.
  void set_health_check(HealthCheck check);
  void set_status_source(StatusSource source);

  // Binds, listens and spawns the serving thread. The bound port is
  // available from port() afterwards (resolves option port 0).
  Status Start();

  // Stops the serving thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }

  // The server-owned sliding window, advanced by the serving thread
  // every epoch_seconds. Exposed so drivers and tests can advance or
  // inspect it directly (e.g. a soak driver publishing an interval
  // summary, or a unit test with an effectively-infinite epoch).
  MetricsWindow* window() { return &window_; }

  // Lifetime /metrics requests served (also the telemetry.scrapes
  // registry counter).
  uint64_t scrapes() const { return scrapes_.load(std::memory_order_relaxed); }

 private:
  void Serve();
  void HandleConnection(int fd);
  // Response body builders.
  std::string MetricsBody() const;
  std::string HealthzBody(int* status_code) const;
  std::string StatuszBody() const;

  HttpExpositionOptions options_;
  HealthCheck health_check_;
  StatusSource status_source_;
  MetricsWindow window_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scrapes_{0};
  std::chrono::steady_clock::time_point started_at_;
  std::thread thread_;
};

}  // namespace stindex

#endif  // STINDEX_UTIL_HTTP_EXPOSITION_H_
