#ifndef STINDEX_UTIL_PROM_WRITER_H_
#define STINDEX_UTIL_PROM_WRITER_H_

// Prometheus text-exposition rendering of a MetricsSnapshot (the
// `stindex_cli --stats-format=prom` output and the /metrics endpoint of
// util/http_exposition.h). Counters and gauges map directly; histograms
// become summaries with quantile labels plus the conventional _sum and
// _count series. Metric names are sanitized per the Prometheus naming
// rules: dots (our registry's namespace separator) and the other
// separator characters used in registry names (space, '/', ':', '-')
// become underscores, the result is prefixed with "stindex_", and any
// OTHER byte outside [a-zA-Z0-9_] is rejected loudly (STINDEX_CHECK) —
// a control character or quote in a metric name is a bug at the
// registration site, not something to launder into an underscore.
// `bufferpool.rstar.misses` is exposed as
// `stindex_bufferpool_rstar_misses`.

#include <string>

#include "util/metrics.h"

namespace stindex {

// `name` after sanitization and prefixing — exposed for tests and for
// anything that needs to predict the exposition name of a metric.
// CHECK-fails on bytes that are neither Prometheus-legal nor one of the
// mapped separators ". /:-".
std::string PrometheusMetricName(const std::string& name);

// The full exposition document: one # HELP line, one # TYPE line and
// one-or-more sample lines per metric, counters first, then gauges, then
// histograms (each group in the snapshot's sorted name order). Ends with
// a newline.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

// The sliding-window companion series of a MetricsWindow capture:
//
//   stindex_metrics_window_seconds           gauge, window span
//   <name>_rate                              gauge, counter increase/s
//   <name>_window{quantile="..."}/_sum/_count  summary over the window
//
// Appended after RenderPrometheus's cumulative series by the /metrics
// endpoint, so dashboards get rolling p50/p95/p99 without PromQL-side
// histogram juggling. Empty (just the window gauge at 0) until the
// window holds two epochs.
std::string RenderPrometheusWindow(const WindowedMetricsSnapshot& window);

}  // namespace stindex

#endif  // STINDEX_UTIL_PROM_WRITER_H_
