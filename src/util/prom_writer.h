#ifndef STINDEX_UTIL_PROM_WRITER_H_
#define STINDEX_UTIL_PROM_WRITER_H_

// Prometheus text-exposition rendering of a MetricsSnapshot (the
// `stindex_cli --stats-format=prom` output). Counters and gauges map
// directly; histograms become summaries with quantile labels plus the
// conventional _sum and _count series. Metric names are sanitized to the
// Prometheus charset [a-zA-Z0-9_] (every other byte becomes '_') and
// prefixed with "stindex_", so `bufferpool.rstar.misses` is exposed as
// `stindex_bufferpool_rstar_misses`.

#include <string>

#include "util/metrics.h"

namespace stindex {

// `name` after sanitization and prefixing — exposed for tests and for
// anything that needs to predict the exposition name of a metric.
std::string PrometheusMetricName(const std::string& name);

// The full exposition document: one # TYPE line and one-or-more sample
// lines per metric, counters first, then gauges, then histograms (each
// group in the snapshot's sorted name order). Ends with a newline.
std::string RenderPrometheus(const MetricsSnapshot& snapshot);

}  // namespace stindex

#endif  // STINDEX_UTIL_PROM_WRITER_H_
