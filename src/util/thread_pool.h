#ifndef STINDEX_UTIL_THREAD_POOL_H_
#define STINDEX_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stindex {

// A fixed-size, reusable worker pool with a chunked, work-stealing-free
// ParallelFor. Designed for the split pipeline's needs:
//
//  * Determinism. ParallelFor splits [0, n) into exactly `chunks`
//    contiguous ranges whose boundaries depend only on (n, chunks) —
//    never on scheduling, pool size, or which worker ran what. Callers
//    that write results into per-index or per-chunk slots therefore
//    produce byte-identical output at any thread count.
//  * Reuse. Workers are started once and reused across calls; the
//    process-wide pool (`Shared`) grows on demand and is shared by every
//    ParallelFor in the process, so nested/sequential parallel phases do
//    not multiply threads.
//  * No deadlock on nesting. A ParallelFor issued from inside a pool
//    task runs its chunks inline on the calling worker (same chunk
//    decomposition, sequential order) instead of queueing behind the
//    task that is waiting for it.
//
// Exceptions thrown by chunk bodies are captured and the first one is
// rethrown from ParallelFor after all chunks of the batch finished.
// The pool itself stays usable after a throwing batch.
class ThreadPool {
 public:
  // Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Joins all workers; pending tasks are completed first.
  ~ThreadPool();

  int num_threads() const;

  // Runs body(chunk, begin, end) over [0, n) split into min(chunks, n)
  // contiguous ranges of near-equal size (the first n % chunks ranges are
  // one element longer). Blocks until every chunk finished; rethrows the
  // first chunk exception. chunks <= 1 (or a call from inside one of this
  // pool's tasks) runs inline on the calling thread. `chunk` is the
  // 0-based index of the range, matching ParallelChunks below — callers
  // use it to address pre-sized per-chunk output slots.
  void ParallelFor(size_t n, int chunks,
                   const std::function<void(size_t, size_t, size_t)>& body);

  // The process-wide pool, grown to at least `min_threads` workers (it
  // never shrinks). Thread-safe.
  static ThreadPool& Shared(int min_threads);

 private:
  struct Batch;

  void AddWorkers(int count);  // callers hold mu_
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

// Number of chunks ParallelFor(num_threads, n, ...) executes:
// min(max(num_threads, 1), n). Callers pre-size per-chunk output slots
// with this.
size_t ParallelChunks(int num_threads, size_t n);

// Convenience wrapper: chunked deterministic parallel-for over the shared
// pool. `num_threads <= 1` runs body(0, 0, n) inline without touching the
// pool, so serial callers pay nothing. This is the entry point the split
// pipeline, distribution, and benchmark drivers use.
void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body);

}  // namespace stindex

#endif  // STINDEX_UTIL_THREAD_POOL_H_
