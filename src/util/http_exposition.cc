#include "util/http_exposition.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/check.h"
#include "util/prom_writer.h"

namespace stindex {

namespace {

// How long the accept loop sleeps in poll() between checks of the stop
// flag and the window-epoch deadline. Short enough that Stop() and the
// publisher cadence are responsive, long enough to stay idle-cheap.
constexpr int kPollMs = 50;

const char* ReasonPhrase(int code) {
  switch (code) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 503:
      return "Service Unavailable";
    default:
      return "Internal Server Error";
  }
}

std::string BuildResponse(int code, const std::string& content_type,
                          const std::string& body) {
  std::string response = "HTTP/1.1 " + std::to_string(code) + " " +
                         ReasonPhrase(code) + "\r\n";
  response += "Content-Type: " + content_type + "\r\n";
  response += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  response += "Connection: close\r\n\r\n";
  response += body;
  return response;
}

// Sends the whole buffer, tolerating short writes. MSG_NOSIGNAL: a
// scraper hanging up mid-response must not SIGPIPE the process.
void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // client went away; nothing to clean up but the fd
    }
    sent += static_cast<size_t>(n);
  }
}

// Reads until the end of the request headers (CRLFCRLF) or the socket
// receive timeout. We only ever need the request line; the body, if a
// client sends one, is ignored.
std::string ReadRequestHead(int fd) {
  std::string head;
  char buffer[1024];
  while (head.size() < 16 * 1024) {
    const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // EOF, timeout or error — parse whatever we have
    }
    head.append(buffer, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos) break;
  }
  return head;
}

// "GET /metrics HTTP/1.1\r\n..." -> "/metrics" (query strings stripped;
// the endpoints take no parameters). Empty on anything but a GET.
std::string ParseGetTarget(const std::string& head) {
  if (head.compare(0, 4, "GET ") != 0) return "";
  const size_t start = 4;
  size_t end = head.find(' ', start);
  if (end == std::string::npos) {
    end = head.find('\r', start);
    if (end == std::string::npos) end = head.size();
  }
  std::string target = head.substr(start, end - start);
  const size_t query = target.find('?');
  if (query != std::string::npos) target.resize(query);
  return target;
}

}  // namespace

HttpExpositionServer::HttpExpositionServer(HttpExpositionOptions options)
    : options_(std::move(options)),
      window_(options_.window_epochs == 0 ? 1 : options_.window_epochs) {}

HttpExpositionServer::~HttpExpositionServer() { Stop(); }

void HttpExpositionServer::set_health_check(HealthCheck check) {
  STINDEX_CHECK_MSG(!running(), "set_health_check after Start()");
  health_check_ = std::move(check);
}

void HttpExpositionServer::set_status_source(StatusSource source) {
  STINDEX_CHECK_MSG(!running(), "set_status_source after Start()");
  status_source_ = std::move(source);
}

Status HttpExpositionServer::Start() {
  STINDEX_CHECK_MSG(!running(), "exposition server already running");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string message = std::string("bind ") + options_.bind_address +
                                ":" + std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  if (listen(listen_fd_, 16) != 0) {
    const std::string message =
        std::string("listen: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  // Resolve the kernel-assigned port when the caller asked for 0.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(message);
  }
  port_ = ntohs(bound.sin_port);

  started_at_ = std::chrono::steady_clock::now();
  // Seed the window so the first WindowSnapshot after one epoch already
  // has its two boundary captures.
  window_.Advance();
  stop_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void HttpExpositionServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    // Never started, or a prior Stop already joined.
    if (thread_.joinable()) thread_.join();
    return;
  }
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExpositionServer::Serve() {
  using clock = std::chrono::steady_clock;
  const auto epoch_period = std::chrono::duration_cast<clock::duration>(
      std::chrono::duration<double>(options_.epoch_seconds));
  clock::time_point next_epoch = clock::now() + epoch_period;

  pollfd pfd;
  pfd.fd = listen_fd_;
  pfd.events = POLLIN;
  while (!stop_.load(std::memory_order_acquire)) {
    pfd.revents = 0;
    const int ready = poll(&pfd, 1, kPollMs);
    if (clock::now() >= next_epoch) {
      window_.Advance();
      next_epoch += epoch_period;
      // A long scrape stall should not cause a burst of catch-up epochs.
      if (clock::now() >= next_epoch) next_epoch = clock::now() + epoch_period;
    }
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound a stuck client: a scraper is local and fast, so one second
    // each way is generous.
    timeval timeout;
    timeout.tv_sec = 1;
    timeout.tv_usec = 0;
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    HandleConnection(conn);
    close(conn);
  }
}

void HttpExpositionServer::HandleConnection(int fd) {
  const std::string target = ParseGetTarget(ReadRequestHead(fd));
  if (target == "/metrics") {
    scrapes_.fetch_add(1, std::memory_order_relaxed);
    MetricRegistry::Global().GetCounter("telemetry.scrapes")->Increment();
    SendAll(fd, BuildResponse(200, "text/plain; version=0.0.4",
                              MetricsBody()));
  } else if (target == "/healthz") {
    int code = 200;
    const std::string body = HealthzBody(&code);
    SendAll(fd, BuildResponse(code, "text/plain", body));
  } else if (target == "/statusz") {
    SendAll(fd, BuildResponse(200, "application/json", StatuszBody()));
  } else {
    SendAll(fd, BuildResponse(
                    404, "text/plain",
                    "not found; try /metrics, /healthz or /statusz\n"));
  }
}

std::string HttpExpositionServer::MetricsBody() const {
  std::string body = RenderPrometheus(MetricRegistry::Global().Snapshot());
  body += RenderPrometheusWindow(window_.WindowSnapshot());
  return body;
}

std::string HttpExpositionServer::HealthzBody(int* status_code) const {
  std::string detail;
  const bool healthy = health_check_ ? health_check_(&detail) : true;
  *status_code = healthy ? 200 : 503;
  std::string body = healthy ? "ok" : "unhealthy";
  if (!detail.empty()) {
    body += ": ";
    body += detail;
  }
  body += "\n";
  return body;
}

std::string HttpExpositionServer::StatuszBody() const {
  const std::chrono::duration<double> uptime =
      std::chrono::steady_clock::now() - started_at_;
  const WindowedMetricsSnapshot window = window_.WindowSnapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("server").String("stindex");
  json.Key("build").BeginObject();
#ifdef NDEBUG
  json.Key("config").String("release");
#else
  json.Key("config").String("debug");
#endif
  json.Key("compiled").String(__DATE__ " " __TIME__);
  json.EndObject();
  json.Key("uptime_s").Double(uptime.count());
  json.Key("port").Uint(port_);
  json.Key("scrapes").Uint(scrapes_.load(std::memory_order_relaxed));
  json.Key("trace_dropped_events")
      .Uint(MetricRegistry::Global()
                .GetCounter("trace.dropped_events")
                ->Value());
  json.Key("window").BeginObject();
  json.Key("seconds").Double(window.seconds);
  json.Key("epochs").Uint(window.epochs);
  json.Key("max_epochs").Uint(window_.max_epochs());
  json.EndObject();
  if (status_source_) status_source_(&json);
  json.EndObject();
  std::string body = json.str();
  body += "\n";
  return body;
}

}  // namespace stindex
