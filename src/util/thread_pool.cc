#include "util/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>

#include "util/check.h"
#include "util/trace.h"

namespace stindex {

namespace {

// Set while a worker thread executes tasks for its pool; lets ParallelFor
// detect nesting (a batch issued from inside a task of the same pool) and
// fall back to inline execution instead of deadlocking.
thread_local ThreadPool* current_pool = nullptr;

}  // namespace

// Completion state of one ParallelFor call. Chunk tasks hold a
// shared_ptr so the state outlives an early-exiting caller (which cannot
// happen today — the caller always waits — but keeps the lifetime local).
struct ThreadPool::Batch {
  std::mutex mu;
  std::condition_variable done_cv;
  size_t pending = 0;
  std::exception_ptr error;  // first failure wins

  void Finish(std::exception_ptr e) {
    std::lock_guard<std::mutex> lock(mu);
    if (e && !error) error = e;
    if (--pending == 0) done_cv.notify_all();
  }
};

ThreadPool::ThreadPool(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  AddWorkers(std::max(num_threads, 1));
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::AddWorkers(int count) {
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  current_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stopping_ and drained
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

void ThreadPool::ParallelFor(
    size_t n, int chunks,
    const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  const size_t num_chunks =
      std::min(n, static_cast<size_t>(std::max(chunks, 1)));
  // The chunk decomposition below is the single source of truth for both
  // the inline and the pooled path: chunk c covers
  //   [c*q + min(c, r), (c+1)*q + min(c+1, r))  with q = n / chunks,
  //   r = n % chunks,
  // i.e. the first r chunks get one extra element. It depends only on
  // (n, chunks), which is what makes per-chunk output slots deterministic.
  const size_t quot = n / num_chunks;
  const size_t rem = n % num_chunks;
  auto chunk_begin = [quot, rem](size_t c) {
    return c * quot + std::min(c, rem);
  };

  if (num_chunks == 1 || current_pool == this) {
    for (size_t c = 0; c < num_chunks; ++c) {
      TraceSpan span("pool", "chunk");
      span.Arg("chunk", static_cast<int64_t>(c))
          .Arg("size", static_cast<int64_t>(chunk_begin(c + 1) -
                                            chunk_begin(c)));
      body(c, chunk_begin(c), chunk_begin(c + 1));
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->pending = num_chunks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    STINDEX_CHECK_MSG(!stopping_, "ParallelFor on a stopping ThreadPool");
    for (size_t c = 0; c < num_chunks; ++c) {
      const size_t begin = chunk_begin(c);
      const size_t end = chunk_begin(c + 1);
      queue_.emplace_back([batch, c, begin, end, &body] {
        std::exception_ptr error;
        try {
          TraceSpan span("pool", "chunk");
          span.Arg("chunk", static_cast<int64_t>(c))
              .Arg("size", static_cast<int64_t>(end - begin));
          body(c, begin, end);
        } catch (...) {
          error = std::current_exception();
        }
        batch->Finish(error);
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&batch] { return batch->pending == 0; });
  if (batch->error) std::rethrow_exception(batch->error);
}

ThreadPool& ThreadPool::Shared(int min_threads) {
  static ThreadPool* pool = new ThreadPool(1);  // never destroyed: workers
  // may still be draining when static destructors run, and the OS reclaims
  // the threads anyway.
  std::lock_guard<std::mutex> lock(pool->mu_);
  const int have = static_cast<int>(pool->workers_.size());
  constexpr int kMaxShared = 256;
  const int want = std::min(std::max(min_threads, 1), kMaxShared);
  if (want > have) pool->AddWorkers(want - have);
  return *pool;
}

size_t ParallelChunks(int num_threads, size_t n) {
  return std::min(n, static_cast<size_t>(std::max(num_threads, 1)));
}

void ParallelFor(int num_threads, size_t n,
                 const std::function<void(size_t, size_t, size_t)>& body) {
  if (n == 0) return;
  if (num_threads <= 1) {
    TraceSpan span("pool", "chunk");
    span.Arg("chunk", static_cast<int64_t>(0)).Arg("size",
                                                   static_cast<int64_t>(n));
    body(0, 0, n);
    return;
  }
  ThreadPool::Shared(num_threads).ParallelFor(n, num_threads, body);
}

}  // namespace stindex
