#ifndef STINDEX_UTIL_RANDOM_H_
#define STINDEX_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace stindex {

// Deterministic pseudo-random generator (xoshiro256**), seeded via
// SplitMix64. Used everywhere instead of <random> engines so that dataset
// generation is reproducible across standard libraries and platforms.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Normal deviate via Box-Muller.
  double Gaussian(double mean, double stddev);

 private:
  uint64_t state_[4];
};

}  // namespace stindex

#endif  // STINDEX_UTIL_RANDOM_H_
