#ifndef STINDEX_UTIL_RANDOM_H_
#define STINDEX_UTIL_RANDOM_H_

#include <cstdint>

#include "util/check.h"

namespace stindex {

// Deterministic pseudo-random generator (xoshiro256**), seeded via
// SplitMix64. Used everywhere instead of <random> engines so that dataset
// generation is reproducible across standard libraries and platforms.
//
// Thread safety: an Rng is mutable state and is NOT thread-safe; sharing
// one instance across worker threads is both a data race and a
// determinism bug (interleaving makes each worker's draw sequence depend
// on scheduling). Parallel code must give each worker its own Rng seeded
// with DeriveSeed(base_seed, worker_index), which is deterministic for
// any worker count.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Deterministically derives an independent sub-seed for stream
  // `stream` (e.g. a worker index) from `base_seed`. The derivation is
  //
  //   DeriveSeed(base, stream) = Mix(Mix(base) ^ Mix(stream + 1))
  //
  // where Mix is one SplitMix64 output round (golden-gamma increment
  // followed by the xor-shift-multiply finalizer). Mixing both inputs
  // before combining decorrelates nearby bases and streams, and the
  // `stream + 1` offset makes DeriveSeed(base, 0) differ from `base`
  // itself, so a worker's stream never collides with the parent's.
  static uint64_t DeriveSeed(uint64_t base_seed, uint64_t stream);

  // Next raw 64-bit value.
  uint64_t Next();

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial with success probability p in [0, 1].
  bool Bernoulli(double p);

  // Normal deviate via Box-Muller.
  double Gaussian(double mean, double stddev);

 private:
  uint64_t state_[4];
};

}  // namespace stindex

#endif  // STINDEX_UTIL_RANDOM_H_
