# Empty compiler generated dependencies file for split_tuning.
# This may be replaced when dependencies are built.
