file(REMOVE_RECURSE
  "CMakeFiles/split_tuning.dir/split_tuning.cpp.o"
  "CMakeFiles/split_tuning.dir/split_tuning.cpp.o.d"
  "split_tuning"
  "split_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
