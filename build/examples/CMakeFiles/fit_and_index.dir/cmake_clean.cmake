file(REMOVE_RECURSE
  "CMakeFiles/fit_and_index.dir/fit_and_index.cpp.o"
  "CMakeFiles/fit_and_index.dir/fit_and_index.cpp.o.d"
  "fit_and_index"
  "fit_and_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fit_and_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
