# Empty compiler generated dependencies file for fit_and_index.
# This may be replaced when dependencies are built.
