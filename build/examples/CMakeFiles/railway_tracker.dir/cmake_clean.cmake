file(REMOVE_RECURSE
  "CMakeFiles/railway_tracker.dir/railway_tracker.cpp.o"
  "CMakeFiles/railway_tracker.dir/railway_tracker.cpp.o.d"
  "railway_tracker"
  "railway_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/railway_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
