# Empty compiler generated dependencies file for railway_tracker.
# This may be replaced when dependencies are built.
