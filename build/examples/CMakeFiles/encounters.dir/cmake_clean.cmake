file(REMOVE_RECURSE
  "CMakeFiles/encounters.dir/encounters.cpp.o"
  "CMakeFiles/encounters.dir/encounters.cpp.o.d"
  "encounters"
  "encounters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encounters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
