# Empty dependencies file for encounters.
# This may be replaced when dependencies are built.
