# Empty compiler generated dependencies file for bench_fig18_snapshot_io.
# This may be replaced when dependencies are built.
