file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_snapshot_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig18_snapshot_io.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig18_snapshot_io.dir/bench_fig18_snapshot_io.cc.o"
  "CMakeFiles/bench_fig18_snapshot_io.dir/bench_fig18_snapshot_io.cc.o.d"
  "bench_fig18_snapshot_io"
  "bench_fig18_snapshot_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_snapshot_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
