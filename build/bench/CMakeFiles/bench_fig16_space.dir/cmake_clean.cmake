file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_space.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig16_space.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig16_space.dir/bench_fig16_space.cc.o"
  "CMakeFiles/bench_fig16_space.dir/bench_fig16_space.cc.o.d"
  "bench_fig16_space"
  "bench_fig16_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
