# Empty dependencies file for bench_fig16_space.
# This may be replaced when dependencies are built.
