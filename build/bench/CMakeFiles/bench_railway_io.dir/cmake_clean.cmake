file(REMOVE_RECURSE
  "CMakeFiles/bench_railway_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_railway_io.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_railway_io.dir/bench_railway_io.cc.o"
  "CMakeFiles/bench_railway_io.dir/bench_railway_io.cc.o.d"
  "bench_railway_io"
  "bench_railway_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_railway_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
