# Empty dependencies file for bench_railway_io.
# This may be replaced when dependencies are built.
