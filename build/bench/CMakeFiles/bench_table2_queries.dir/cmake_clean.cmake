file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_queries.dir/bench_common.cc.o"
  "CMakeFiles/bench_table2_queries.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_table2_queries.dir/bench_table2_queries.cc.o"
  "CMakeFiles/bench_table2_queries.dir/bench_table2_queries.cc.o.d"
  "bench_table2_queries"
  "bench_table2_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
