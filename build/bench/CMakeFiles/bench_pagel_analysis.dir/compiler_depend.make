# Empty compiler generated dependencies file for bench_pagel_analysis.
# This may be replaced when dependencies are built.
