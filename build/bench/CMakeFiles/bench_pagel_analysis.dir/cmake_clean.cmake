file(REMOVE_RECURSE
  "CMakeFiles/bench_pagel_analysis.dir/bench_common.cc.o"
  "CMakeFiles/bench_pagel_analysis.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_pagel_analysis.dir/bench_pagel_analysis.cc.o"
  "CMakeFiles/bench_pagel_analysis.dir/bench_pagel_analysis.cc.o.d"
  "bench_pagel_analysis"
  "bench_pagel_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pagel_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
