# Empty compiler generated dependencies file for bench_ephemeral_equivalence.
# This may be replaced when dependencies are built.
