file(REMOVE_RECURSE
  "CMakeFiles/bench_ephemeral_equivalence.dir/bench_common.cc.o"
  "CMakeFiles/bench_ephemeral_equivalence.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_ephemeral_equivalence.dir/bench_ephemeral_equivalence.cc.o"
  "CMakeFiles/bench_ephemeral_equivalence.dir/bench_ephemeral_equivalence.cc.o.d"
  "bench_ephemeral_equivalence"
  "bench_ephemeral_equivalence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ephemeral_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
