# Empty dependencies file for bench_queryset_sweep.
# This may be replaced when dependencies are built.
