file(REMOVE_RECURSE
  "CMakeFiles/bench_queryset_sweep.dir/bench_common.cc.o"
  "CMakeFiles/bench_queryset_sweep.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_queryset_sweep.dir/bench_queryset_sweep.cc.o"
  "CMakeFiles/bench_queryset_sweep.dir/bench_queryset_sweep.cc.o.d"
  "bench_queryset_sweep"
  "bench_queryset_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queryset_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
