# Empty dependencies file for bench_ablation_online.
# This may be replaced when dependencies are built.
