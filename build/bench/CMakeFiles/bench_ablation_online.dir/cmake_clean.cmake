file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_online.dir/bench_ablation_online.cc.o"
  "CMakeFiles/bench_ablation_online.dir/bench_ablation_online.cc.o.d"
  "CMakeFiles/bench_ablation_online.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_online.dir/bench_common.cc.o.d"
  "bench_ablation_online"
  "bench_ablation_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
