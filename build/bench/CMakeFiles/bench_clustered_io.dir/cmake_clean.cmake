file(REMOVE_RECURSE
  "CMakeFiles/bench_clustered_io.dir/bench_clustered_io.cc.o"
  "CMakeFiles/bench_clustered_io.dir/bench_clustered_io.cc.o.d"
  "CMakeFiles/bench_clustered_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_clustered_io.dir/bench_common.cc.o.d"
  "bench_clustered_io"
  "bench_clustered_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_clustered_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
