# Empty dependencies file for bench_clustered_io.
# This may be replaced when dependencies are built.
