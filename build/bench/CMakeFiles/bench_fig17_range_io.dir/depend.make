# Empty dependencies file for bench_fig17_range_io.
# This may be replaced when dependencies are built.
