file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_range_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig17_range_io.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig17_range_io.dir/bench_fig17_range_io.cc.o"
  "CMakeFiles/bench_fig17_range_io.dir/bench_fig17_range_io.cc.o.d"
  "bench_fig17_range_io"
  "bench_fig17_range_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_range_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
