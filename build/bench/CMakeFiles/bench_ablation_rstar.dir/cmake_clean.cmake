file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rstar.dir/bench_ablation_rstar.cc.o"
  "CMakeFiles/bench_ablation_rstar.dir/bench_ablation_rstar.cc.o.d"
  "CMakeFiles/bench_ablation_rstar.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_rstar.dir/bench_common.cc.o.d"
  "bench_ablation_rstar"
  "bench_ablation_rstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
