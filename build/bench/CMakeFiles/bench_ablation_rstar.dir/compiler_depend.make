# Empty compiler generated dependencies file for bench_ablation_rstar.
# This may be replaced when dependencies are built.
