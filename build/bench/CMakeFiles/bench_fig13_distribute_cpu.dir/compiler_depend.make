# Empty compiler generated dependencies file for bench_fig13_distribute_cpu.
# This may be replaced when dependencies are built.
