file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_distribute_cpu.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig13_distribute_cpu.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig13_distribute_cpu.dir/bench_fig13_distribute_cpu.cc.o"
  "CMakeFiles/bench_fig13_distribute_cpu.dir/bench_fig13_distribute_cpu.cc.o.d"
  "bench_fig13_distribute_cpu"
  "bench_fig13_distribute_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_distribute_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
