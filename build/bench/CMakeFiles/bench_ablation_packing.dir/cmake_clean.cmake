file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cc.o"
  "CMakeFiles/bench_ablation_packing.dir/bench_ablation_packing.cc.o.d"
  "CMakeFiles/bench_ablation_packing.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_packing.dir/bench_common.cc.o.d"
  "bench_ablation_packing"
  "bench_ablation_packing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_packing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
