file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_split_cpu.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig11_split_cpu.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig11_split_cpu.dir/bench_fig11_split_cpu.cc.o"
  "CMakeFiles/bench_fig11_split_cpu.dir/bench_fig11_split_cpu.cc.o.d"
  "bench_fig11_split_cpu"
  "bench_fig11_split_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_split_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
