# Empty compiler generated dependencies file for bench_fig11_split_cpu.
# This may be replaced when dependencies are built.
