# Empty dependencies file for bench_fig14_distribute_io.
# This may be replaced when dependencies are built.
