file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_distribute_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig14_distribute_io.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig14_distribute_io.dir/bench_fig14_distribute_io.cc.o"
  "CMakeFiles/bench_fig14_distribute_io.dir/bench_fig14_distribute_io.cc.o.d"
  "bench_fig14_distribute_io"
  "bench_fig14_distribute_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_distribute_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
