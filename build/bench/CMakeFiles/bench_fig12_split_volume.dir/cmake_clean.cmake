file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_split_volume.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig12_split_volume.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig12_split_volume.dir/bench_fig12_split_volume.cc.o"
  "CMakeFiles/bench_fig12_split_volume.dir/bench_fig12_split_volume.cc.o.d"
  "bench_fig12_split_volume"
  "bench_fig12_split_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_split_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
