# Empty compiler generated dependencies file for bench_fig12_split_volume.
# This may be replaced when dependencies are built.
