# Empty dependencies file for bench_ablation_overlapping.
# This may be replaced when dependencies are built.
