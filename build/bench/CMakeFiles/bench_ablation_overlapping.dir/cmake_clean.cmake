file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overlapping.dir/bench_ablation_overlapping.cc.o"
  "CMakeFiles/bench_ablation_overlapping.dir/bench_ablation_overlapping.cc.o.d"
  "CMakeFiles/bench_ablation_overlapping.dir/bench_common.cc.o"
  "CMakeFiles/bench_ablation_overlapping.dir/bench_common.cc.o.d"
  "bench_ablation_overlapping"
  "bench_ablation_overlapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overlapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
