file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_splits_io.dir/bench_common.cc.o"
  "CMakeFiles/bench_fig15_splits_io.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_fig15_splits_io.dir/bench_fig15_splits_io.cc.o"
  "CMakeFiles/bench_fig15_splits_io.dir/bench_fig15_splits_io.cc.o.d"
  "bench_fig15_splits_io"
  "bench_fig15_splits_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_splits_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
