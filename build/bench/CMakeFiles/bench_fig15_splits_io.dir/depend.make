# Empty dependencies file for bench_fig15_splits_io.
# This may be replaced when dependencies are built.
