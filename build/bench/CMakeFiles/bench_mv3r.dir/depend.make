# Empty dependencies file for bench_mv3r.
# This may be replaced when dependencies are built.
