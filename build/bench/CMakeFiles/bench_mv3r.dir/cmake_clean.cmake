file(REMOVE_RECURSE
  "CMakeFiles/bench_mv3r.dir/bench_common.cc.o"
  "CMakeFiles/bench_mv3r.dir/bench_common.cc.o.d"
  "CMakeFiles/bench_mv3r.dir/bench_mv3r.cc.o"
  "CMakeFiles/bench_mv3r.dir/bench_mv3r.cc.o.d"
  "bench_mv3r"
  "bench_mv3r.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mv3r.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
