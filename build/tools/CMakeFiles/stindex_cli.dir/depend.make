# Empty dependencies file for stindex_cli.
# This may be replaced when dependencies are built.
