file(REMOVE_RECURSE
  "CMakeFiles/stindex_cli.dir/stindex_cli.cc.o"
  "CMakeFiles/stindex_cli.dir/stindex_cli.cc.o.d"
  "stindex_cli"
  "stindex_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stindex_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
