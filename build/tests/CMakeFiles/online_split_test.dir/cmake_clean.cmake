file(REMOVE_RECURSE
  "CMakeFiles/online_split_test.dir/online_split_test.cc.o"
  "CMakeFiles/online_split_test.dir/online_split_test.cc.o.d"
  "online_split_test"
  "online_split_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_split_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
