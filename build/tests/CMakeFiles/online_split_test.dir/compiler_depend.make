# Empty compiler generated dependencies file for online_split_test.
# This may be replaced when dependencies are built.
