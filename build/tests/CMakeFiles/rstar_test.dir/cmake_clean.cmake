file(REMOVE_RECURSE
  "CMakeFiles/rstar_test.dir/rstar_test.cc.o"
  "CMakeFiles/rstar_test.dir/rstar_test.cc.o.d"
  "rstar_test"
  "rstar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
