# Empty dependencies file for rstar_test.
# This may be replaced when dependencies are built.
