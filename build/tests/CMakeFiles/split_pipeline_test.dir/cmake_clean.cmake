file(REMOVE_RECURSE
  "CMakeFiles/split_pipeline_test.dir/split_pipeline_test.cc.o"
  "CMakeFiles/split_pipeline_test.dir/split_pipeline_test.cc.o.d"
  "split_pipeline_test"
  "split_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
