# Empty compiler generated dependencies file for split_pipeline_test.
# This may be replaced when dependencies are built.
