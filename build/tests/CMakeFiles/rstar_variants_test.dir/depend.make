# Empty dependencies file for rstar_variants_test.
# This may be replaced when dependencies are built.
