file(REMOVE_RECURSE
  "CMakeFiles/rstar_variants_test.dir/rstar_variants_test.cc.o"
  "CMakeFiles/rstar_variants_test.dir/rstar_variants_test.cc.o.d"
  "rstar_variants_test"
  "rstar_variants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstar_variants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
