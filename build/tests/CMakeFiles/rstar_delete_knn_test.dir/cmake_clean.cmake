file(REMOVE_RECURSE
  "CMakeFiles/rstar_delete_knn_test.dir/rstar_delete_knn_test.cc.o"
  "CMakeFiles/rstar_delete_knn_test.dir/rstar_delete_knn_test.cc.o.d"
  "rstar_delete_knn_test"
  "rstar_delete_knn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rstar_delete_knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
