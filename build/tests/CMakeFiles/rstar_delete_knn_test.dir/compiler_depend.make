# Empty compiler generated dependencies file for rstar_delete_knn_test.
# This may be replaced when dependencies are built.
