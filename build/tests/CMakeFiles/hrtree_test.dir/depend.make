# Empty dependencies file for hrtree_test.
# This may be replaced when dependencies are built.
