file(REMOVE_RECURSE
  "CMakeFiles/hrtree_test.dir/hrtree_test.cc.o"
  "CMakeFiles/hrtree_test.dir/hrtree_test.cc.o.d"
  "hrtree_test"
  "hrtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hrtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
