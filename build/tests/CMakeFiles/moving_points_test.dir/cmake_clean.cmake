file(REMOVE_RECURSE
  "CMakeFiles/moving_points_test.dir/moving_points_test.cc.o"
  "CMakeFiles/moving_points_test.dir/moving_points_test.cc.o.d"
  "moving_points_test"
  "moving_points_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_points_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
