# Empty compiler generated dependencies file for moving_points_test.
# This may be replaced when dependencies are built.
