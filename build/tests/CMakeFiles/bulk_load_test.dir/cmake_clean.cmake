file(REMOVE_RECURSE
  "CMakeFiles/bulk_load_test.dir/bulk_load_test.cc.o"
  "CMakeFiles/bulk_load_test.dir/bulk_load_test.cc.o.d"
  "bulk_load_test"
  "bulk_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bulk_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
