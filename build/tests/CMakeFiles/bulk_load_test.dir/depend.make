# Empty dependencies file for bulk_load_test.
# This may be replaced when dependencies are built.
