# Empty compiler generated dependencies file for mv3r_test.
# This may be replaced when dependencies are built.
