file(REMOVE_RECURSE
  "CMakeFiles/mv3r_test.dir/mv3r_test.cc.o"
  "CMakeFiles/mv3r_test.dir/mv3r_test.cc.o.d"
  "mv3r_test"
  "mv3r_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv3r_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
