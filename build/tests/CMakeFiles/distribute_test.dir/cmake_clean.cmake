file(REMOVE_RECURSE
  "CMakeFiles/distribute_test.dir/distribute_test.cc.o"
  "CMakeFiles/distribute_test.dir/distribute_test.cc.o.d"
  "distribute_test"
  "distribute_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
