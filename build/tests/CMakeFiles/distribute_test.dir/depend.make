# Empty dependencies file for distribute_test.
# This may be replaced when dependencies are built.
