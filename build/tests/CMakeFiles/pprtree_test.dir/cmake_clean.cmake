file(REMOVE_RECURSE
  "CMakeFiles/pprtree_test.dir/pprtree_test.cc.o"
  "CMakeFiles/pprtree_test.dir/pprtree_test.cc.o.d"
  "pprtree_test"
  "pprtree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pprtree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
