# Empty compiler generated dependencies file for pprtree_test.
# This may be replaced when dependencies are built.
