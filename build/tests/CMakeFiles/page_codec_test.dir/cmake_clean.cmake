file(REMOVE_RECURSE
  "CMakeFiles/page_codec_test.dir/page_codec_test.cc.o"
  "CMakeFiles/page_codec_test.dir/page_codec_test.cc.o.d"
  "page_codec_test"
  "page_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
