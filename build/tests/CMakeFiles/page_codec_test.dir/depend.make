# Empty dependencies file for page_codec_test.
# This may be replaced when dependencies are built.
