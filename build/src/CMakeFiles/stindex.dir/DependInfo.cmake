
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distribute.cc" "src/CMakeFiles/stindex.dir/core/distribute.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/distribute.cc.o.d"
  "/root/repo/src/core/dp_split.cc" "src/CMakeFiles/stindex.dir/core/dp_split.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/dp_split.cc.o.d"
  "/root/repo/src/core/merge_split.cc" "src/CMakeFiles/stindex.dir/core/merge_split.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/merge_split.cc.o.d"
  "/root/repo/src/core/online_split.cc" "src/CMakeFiles/stindex.dir/core/online_split.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/online_split.cc.o.d"
  "/root/repo/src/core/piecewise_split.cc" "src/CMakeFiles/stindex.dir/core/piecewise_split.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/piecewise_split.cc.o.d"
  "/root/repo/src/core/segment.cc" "src/CMakeFiles/stindex.dir/core/segment.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/segment.cc.o.d"
  "/root/repo/src/core/split_pipeline.cc" "src/CMakeFiles/stindex.dir/core/split_pipeline.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/split_pipeline.cc.o.d"
  "/root/repo/src/core/volume_curve.cc" "src/CMakeFiles/stindex.dir/core/volume_curve.cc.o" "gcc" "src/CMakeFiles/stindex.dir/core/volume_curve.cc.o.d"
  "/root/repo/src/datagen/clustered_dataset.cc" "src/CMakeFiles/stindex.dir/datagen/clustered_dataset.cc.o" "gcc" "src/CMakeFiles/stindex.dir/datagen/clustered_dataset.cc.o.d"
  "/root/repo/src/datagen/query_gen.cc" "src/CMakeFiles/stindex.dir/datagen/query_gen.cc.o" "gcc" "src/CMakeFiles/stindex.dir/datagen/query_gen.cc.o.d"
  "/root/repo/src/datagen/railway.cc" "src/CMakeFiles/stindex.dir/datagen/railway.cc.o" "gcc" "src/CMakeFiles/stindex.dir/datagen/railway.cc.o.d"
  "/root/repo/src/datagen/random_dataset.cc" "src/CMakeFiles/stindex.dir/datagen/random_dataset.cc.o" "gcc" "src/CMakeFiles/stindex.dir/datagen/random_dataset.cc.o.d"
  "/root/repo/src/geometry/box.cc" "src/CMakeFiles/stindex.dir/geometry/box.cc.o" "gcc" "src/CMakeFiles/stindex.dir/geometry/box.cc.o.d"
  "/root/repo/src/geometry/rect.cc" "src/CMakeFiles/stindex.dir/geometry/rect.cc.o" "gcc" "src/CMakeFiles/stindex.dir/geometry/rect.cc.o.d"
  "/root/repo/src/hrtree/hr_tree.cc" "src/CMakeFiles/stindex.dir/hrtree/hr_tree.cc.o" "gcc" "src/CMakeFiles/stindex.dir/hrtree/hr_tree.cc.o.d"
  "/root/repo/src/hybrid/mv3r_index.cc" "src/CMakeFiles/stindex.dir/hybrid/mv3r_index.cc.o" "gcc" "src/CMakeFiles/stindex.dir/hybrid/mv3r_index.cc.o.d"
  "/root/repo/src/io/csv.cc" "src/CMakeFiles/stindex.dir/io/csv.cc.o" "gcc" "src/CMakeFiles/stindex.dir/io/csv.cc.o.d"
  "/root/repo/src/model/pagel_metrics.cc" "src/CMakeFiles/stindex.dir/model/pagel_metrics.cc.o" "gcc" "src/CMakeFiles/stindex.dir/model/pagel_metrics.cc.o.d"
  "/root/repo/src/model/ppr_cost_model.cc" "src/CMakeFiles/stindex.dir/model/ppr_cost_model.cc.o" "gcc" "src/CMakeFiles/stindex.dir/model/ppr_cost_model.cc.o.d"
  "/root/repo/src/model/rtree_cost_model.cc" "src/CMakeFiles/stindex.dir/model/rtree_cost_model.cc.o" "gcc" "src/CMakeFiles/stindex.dir/model/rtree_cost_model.cc.o.d"
  "/root/repo/src/model/split_advisor.cc" "src/CMakeFiles/stindex.dir/model/split_advisor.cc.o" "gcc" "src/CMakeFiles/stindex.dir/model/split_advisor.cc.o.d"
  "/root/repo/src/pprtree/ppr_tree.cc" "src/CMakeFiles/stindex.dir/pprtree/ppr_tree.cc.o" "gcc" "src/CMakeFiles/stindex.dir/pprtree/ppr_tree.cc.o.d"
  "/root/repo/src/rstar/rstar_tree.cc" "src/CMakeFiles/stindex.dir/rstar/rstar_tree.cc.o" "gcc" "src/CMakeFiles/stindex.dir/rstar/rstar_tree.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/stindex.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/stindex.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/page_store.cc" "src/CMakeFiles/stindex.dir/storage/page_store.cc.o" "gcc" "src/CMakeFiles/stindex.dir/storage/page_store.cc.o.d"
  "/root/repo/src/trajectory/fit.cc" "src/CMakeFiles/stindex.dir/trajectory/fit.cc.o" "gcc" "src/CMakeFiles/stindex.dir/trajectory/fit.cc.o.d"
  "/root/repo/src/trajectory/polynomial.cc" "src/CMakeFiles/stindex.dir/trajectory/polynomial.cc.o" "gcc" "src/CMakeFiles/stindex.dir/trajectory/polynomial.cc.o.d"
  "/root/repo/src/trajectory/prefix_mbr.cc" "src/CMakeFiles/stindex.dir/trajectory/prefix_mbr.cc.o" "gcc" "src/CMakeFiles/stindex.dir/trajectory/prefix_mbr.cc.o.d"
  "/root/repo/src/trajectory/trajectory.cc" "src/CMakeFiles/stindex.dir/trajectory/trajectory.cc.o" "gcc" "src/CMakeFiles/stindex.dir/trajectory/trajectory.cc.o.d"
  "/root/repo/src/util/hilbert.cc" "src/CMakeFiles/stindex.dir/util/hilbert.cc.o" "gcc" "src/CMakeFiles/stindex.dir/util/hilbert.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/stindex.dir/util/random.cc.o" "gcc" "src/CMakeFiles/stindex.dir/util/random.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/stindex.dir/util/status.cc.o" "gcc" "src/CMakeFiles/stindex.dir/util/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
