# Empty compiler generated dependencies file for stindex.
# This may be replaced when dependencies are built.
