file(REMOVE_RECURSE
  "libstindex.a"
)
