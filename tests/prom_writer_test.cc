#include "util/prom_writer.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"

namespace stindex {
namespace {

TEST(PromWriterTest, MetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("io.query.misses"),
            "stindex_io_query_misses");
  EXPECT_EQ(PrometheusMetricName("already_clean"), "stindex_already_clean");
  EXPECT_EQ(PrometheusMetricName("Mixed.Case-09"), "stindex_Mixed_Case_09");
  EXPECT_EQ(PrometheusMetricName("sp ace/slash:colon"),
            "stindex_sp_ace_slash_colon");
}

// Bytes outside [a-zA-Z0-9_] and the mapped separators ". /:-" are a bug
// at the registration site; the renderer must reject them loudly instead
// of laundering them into underscores.
TEST(PromWriterDeathTest, RejectsIllegalMetricNameBytes) {
  EXPECT_DEATH(PrometheusMetricName("a\tb"), "neither Prometheus-legal");
  EXPECT_DEATH(PrometheusMetricName("new\nline"), "neither Prometheus-legal");
  EXPECT_DEATH(PrometheusMetricName("quo\"te"), "neither Prometheus-legal");
  EXPECT_DEATH(PrometheusMetricName("brace{s}"), "neither Prometheus-legal");
}

TEST(PromWriterTest, RendersEveryKindWithTypeLines) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("io.query.misses", 42);
  snapshot.gauges.emplace_back("tree.height", -3);
  HistogramSnapshot histogram;
  histogram.count = 10;
  histogram.sum = 12.5;
  histogram.min = 0.5;
  histogram.max = 4.0;
  histogram.p50 = 1.0;
  histogram.p90 = 2.0;
  histogram.p95 = 2.0;
  histogram.p99 = 4.0;
  snapshot.histograms.emplace_back("io.query.latency_ms", histogram);

  const std::string out = RenderPrometheus(snapshot);
  EXPECT_NE(out.find("# TYPE stindex_io_query_misses counter\n"
                     "stindex_io_query_misses 42\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE stindex_tree_height gauge\n"
                     "stindex_tree_height -3\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE stindex_io_query_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms{quantile=\"0.95\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms_sum 12.5\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms_count 10\n"),
            std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

TEST(PromWriterTest, EmitsHelpLines) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("io.query.misses", 42);
  const std::string out = RenderPrometheus(snapshot);
  // HELP precedes TYPE and names the source metric.
  const size_t help = out.find("# HELP stindex_io_query_misses ");
  const size_t type = out.find("# TYPE stindex_io_query_misses counter");
  ASSERT_NE(help, std::string::npos);
  ASSERT_NE(type, std::string::npos);
  EXPECT_LT(help, type);
  EXPECT_NE(out.find("'io.query.misses'"), std::string::npos);
}

// Round trip: parse the exposition text back and compare against the
// snapshot it was rendered from. The parser accepts exactly the subset
// the writer emits: "# HELP"/"# TYPE" comment lines and
// "name[{labels}] value" samples.
TEST(PromWriterTest, RoundTripsThroughTextParse) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.ResetForTest();
  registry.GetCounter("prom.roundtrip.counter")->Add(123);
  registry.GetGauge("prom.roundtrip.gauge")->Set(-77);
  HistogramMetric* histogram =
      registry.GetHistogram("prom.roundtrip.hist");
  for (int i = 1; i <= 100; ++i) histogram->Record(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.Snapshot();

  std::map<std::string, std::string> types;
  std::map<std::string, double> samples;
  std::istringstream in(RenderPrometheus(snapshot));
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, kind;
      fields >> name >> kind;
      types[name] = kind;
      continue;
    }
    if (line.rfind("# ", 0) == 0) continue;  // HELP and other comments
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }

  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "counter");
    EXPECT_EQ(samples[prom], static_cast<double>(value)) << prom;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "gauge");
    EXPECT_EQ(samples[prom], static_cast<double>(value)) << prom;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "summary");
    EXPECT_EQ(samples[prom + "{quantile=\"0.5\"}"], hist.p50) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.9\"}"], hist.p90) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.95\"}"], hist.p95) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.99\"}"], hist.p99) << prom;
    EXPECT_EQ(samples[prom + "_sum"], hist.sum) << prom;
    EXPECT_EQ(samples[prom + "_count"], static_cast<double>(hist.count))
        << prom;
  }
  // Every emitted # TYPE line corresponds to a snapshot metric.
  EXPECT_EQ(types.size(), snapshot.counters.size() + snapshot.gauges.size() +
                              snapshot.histograms.size());
  registry.ResetForTest();
}

// The sliding-window companion series: a window span gauge, one _rate
// gauge per counter and one _window summary per histogram.
TEST(PromWriterTest, RendersWindowSeries) {
  WindowedMetricsSnapshot window;
  window.seconds = 4.0;
  window.epochs = 2;
  window.counter_rates.emplace_back("io.query.misses", 12.5);
  HistogramSnapshot hist;
  hist.count = 8;
  hist.sum = 16.0;
  hist.p50 = 1.0;
  hist.p95 = 4.0;
  hist.p99 = 4.0;
  window.histograms.emplace_back("io.query.latency_ms", hist);

  const std::string out = RenderPrometheusWindow(window);
  EXPECT_NE(out.find("stindex_metrics_window_seconds 4\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE stindex_io_query_misses_rate gauge\n"
                     "stindex_io_query_misses_rate 12.5\n"),
            std::string::npos);
  EXPECT_NE(
      out.find("# TYPE stindex_io_query_latency_ms_window summary\n"),
      std::string::npos);
  EXPECT_NE(
      out.find("stindex_io_query_latency_ms_window{quantile=\"0.95\"} 4\n"),
      std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms_window_count 8\n"),
            std::string::npos);
}

// An empty window (fewer than two epochs) renders just the span gauge.
TEST(PromWriterTest, EmptyWindowRendersSpanOnly) {
  const std::string out = RenderPrometheusWindow(WindowedMetricsSnapshot{});
  EXPECT_NE(out.find("stindex_metrics_window_seconds 0\n"),
            std::string::npos);
  EXPECT_EQ(out.find("_rate"), std::string::npos);
  EXPECT_EQ(out.find("_window{"), std::string::npos);
}

}  // namespace
}  // namespace stindex
