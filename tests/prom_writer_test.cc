#include "util/prom_writer.h"

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/metrics.h"

namespace stindex {
namespace {

TEST(PromWriterTest, MetricNameSanitization) {
  EXPECT_EQ(PrometheusMetricName("io.query.misses"),
            "stindex_io_query_misses");
  EXPECT_EQ(PrometheusMetricName("already_clean"), "stindex_already_clean");
  EXPECT_EQ(PrometheusMetricName("Mixed.Case-09"), "stindex_Mixed_Case_09");
  EXPECT_EQ(PrometheusMetricName("sp ace/slash:colon"),
            "stindex_sp_ace_slash_colon");
  // Only [a-zA-Z0-9_] survives.
  const std::string name = PrometheusMetricName("a\tb\nc\"d{e}");
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    EXPECT_TRUE(ok) << "bad char in " << name;
  }
}

TEST(PromWriterTest, RendersEveryKindWithTypeLines) {
  MetricsSnapshot snapshot;
  snapshot.counters.emplace_back("io.query.misses", 42);
  snapshot.gauges.emplace_back("tree.height", -3);
  HistogramSnapshot histogram;
  histogram.count = 10;
  histogram.sum = 12.5;
  histogram.min = 0.5;
  histogram.max = 4.0;
  histogram.p50 = 1.0;
  histogram.p90 = 2.0;
  histogram.p95 = 2.0;
  histogram.p99 = 4.0;
  snapshot.histograms.emplace_back("io.query.latency_ms", histogram);

  const std::string out = RenderPrometheus(snapshot);
  EXPECT_NE(out.find("# TYPE stindex_io_query_misses counter\n"
                     "stindex_io_query_misses 42\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE stindex_tree_height gauge\n"
                     "stindex_tree_height -3\n"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE stindex_io_query_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms{quantile=\"0.95\"} 2\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms_sum 12.5\n"),
            std::string::npos);
  EXPECT_NE(out.find("stindex_io_query_latency_ms_count 10\n"),
            std::string::npos);
  EXPECT_EQ(out.back(), '\n');
}

// Round trip: parse the exposition text back and compare against the
// snapshot it was rendered from. The parser accepts exactly the subset
// the writer emits: "# TYPE name kind" lines and "name[{labels}] value".
TEST(PromWriterTest, RoundTripsThroughTextParse) {
  MetricRegistry& registry = MetricRegistry::Global();
  registry.ResetForTest();
  registry.GetCounter("prom.roundtrip.counter")->Add(123);
  registry.GetGauge("prom.roundtrip.gauge")->Set(-77);
  HistogramMetric* histogram =
      registry.GetHistogram("prom.roundtrip.hist");
  for (int i = 1; i <= 100; ++i) histogram->Record(static_cast<double>(i));
  const MetricsSnapshot snapshot = registry.Snapshot();

  std::map<std::string, std::string> types;
  std::map<std::string, double> samples;
  std::istringstream in(RenderPrometheus(snapshot));
  std::string line;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream fields(line.substr(7));
      std::string name, kind;
      fields >> name >> kind;
      types[name] = kind;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }

  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "counter");
    EXPECT_EQ(samples[prom], static_cast<double>(value)) << prom;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "gauge");
    EXPECT_EQ(samples[prom], static_cast<double>(value)) << prom;
  }
  for (const auto& [name, hist] : snapshot.histograms) {
    const std::string prom = PrometheusMetricName(name);
    EXPECT_EQ(types[prom], "summary");
    EXPECT_EQ(samples[prom + "{quantile=\"0.5\"}"], hist.p50) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.9\"}"], hist.p90) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.95\"}"], hist.p95) << prom;
    EXPECT_EQ(samples[prom + "{quantile=\"0.99\"}"], hist.p99) << prom;
    EXPECT_EQ(samples[prom + "_sum"], hist.sum) << prom;
    EXPECT_EQ(samples[prom + "_count"], static_cast<double>(hist.count))
        << prom;
  }
  // Every emitted # TYPE line corresponds to a snapshot metric.
  EXPECT_EQ(types.size(), snapshot.counters.size() + snapshot.gauges.size() +
                              snapshot.histograms.size());
  registry.ResetForTest();
}

}  // namespace
}  // namespace stindex
